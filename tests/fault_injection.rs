//! The self-healing invariant of the recovery ladder: a fault-injected
//! solver must prove the **same optima** as its clean twin on every
//! instance the clean solver completes — recovering through the ladder,
//! never pruning on a corrupted bound — and the recovery counters must
//! show the injected faults were actually hit, not skipped around.
//!
//! Instances mirror the `search_orders` ordering-regression suite: the
//! Table-1 paper figures (`MAX_THR` at the min-delay cycle time and
//! `MIN_CYC(1)`) plus the 20/40-edge bench instances (`MIN_CYC(1)`).
//! Direct `solve_with_stats` runs on a planted MILP cover the deep end
//! of the ladder (the dense-oracle rung), which hinted runs absorb
//! earlier: their warm-start hint solve eats the first injected failure.

use rr_bench::milp_bench_instance as bench_instance;
use rr_core::{formulation, CoreOptions};
use rr_milp::{
    cmp, solve_with_stats, FaultPlan, LinExpr, Model, RecoveryStats, Sense, SolverOptions, Status,
};
use rr_rrg::figures;
use rr_rrg::Rrg;

/// One fixed seed for the whole suite — the plan is deterministic, so a
/// failure reproduces exactly.
const SEED: u64 = 0xDAC_2009;

fn core_opts(faults: Option<FaultPlan>) -> CoreOptions {
    let mut opts = CoreOptions::fast();
    opts.solver.time_limit = None;
    opts.solver.max_nodes = 20_000;
    opts.solver.gap_tol = 1e-9;
    opts.solver.faults = faults;
    opts
}

/// Same planted ring-difference MILP family the solver stress suites
/// use: difference constraints over a ring plus coupling knapsack rows.
fn ring_difference_milp(n: usize, rows: usize) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_integer(format!("x{i}"), 0.0, 6.0))
        .collect();
    let mut obj = LinExpr::new();
    for (i, &v) in vars.iter().enumerate() {
        obj += ((i % 4 + 1) as f64) * v;
    }
    m.set_objective(obj);
    for i in 0..n {
        let j = (i + 1) % n;
        m.add_constraint(vars[i] - vars[j], cmp::LE, ((i % 3) as f64) - 0.5);
    }
    for r in 0..rows {
        let mut row = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            row += (((i + r) % 5 + 1) as f64) * v;
        }
        m.add_constraint(row, cmp::GE, 2.5 * n as f64 + r as f64);
    }
    m
}

fn absorb(total: &mut RecoveryStats, run: &RecoveryStats) {
    total.absorb(run);
}

/// Clean twin vs fault-injected twin on every Table-1 figure and bench
/// instance; accumulates the union of recovery counters and asserts
/// every failure class was observed and every ladder rung fired at
/// least once across the suite.
#[test]
fn faulted_runs_prove_the_same_optima_as_clean_twins() {
    let mut union = RecoveryStats::default();

    let figure_instances: Vec<(&str, Rrg)> = vec![
        ("figure_1a(0.5)", figures::figure_1a(0.5)),
        ("figure_1a(0.9)", figures::figure_1a(0.9)),
        ("figure_1b(0.5)", figures::figure_1b(0.5)),
        ("figure_2(0.7)", figures::figure_2(0.7)),
    ];
    for (name, g) in &figure_instances {
        for problem in ["max_thr", "min_cyc"] {
            let solve = |faults: Option<FaultPlan>| match problem {
                "max_thr" => formulation::max_thr(g, g.max_delay(), &core_opts(faults)),
                _ => formulation::min_cyc(g, 1.0, &core_opts(faults)),
            };
            let clean = solve(None).unwrap_or_else(|e| panic!("{name}/{problem} clean: {e}"));
            let faulted = solve(Some(FaultPlan::seeded(SEED)))
                .unwrap_or_else(|e| panic!("{name}/{problem} faulted: {e}"));
            assert_eq!(
                clean.stats.recovery,
                RecoveryStats::default(),
                "{name}/{problem}: clean run recorded recovery activity"
            );
            assert!(
                (clean.objective - faulted.objective).abs() <= 1e-7,
                "{name}/{problem}: clean {} vs faulted {}",
                clean.objective,
                faulted.objective
            );
            assert_eq!(
                clean.proven_optimal, faulted.proven_optimal,
                "{name}/{problem}: verdicts diverged under faults"
            );
            absorb(&mut union, &faulted.stats.recovery);
        }
    }

    for edges in [20usize, 40] {
        let g = bench_instance(edges);
        let clean = formulation::min_cyc(&g, 1.0, &core_opts(None))
            .unwrap_or_else(|e| panic!("bench{edges} clean: {e}"));
        let faulted = formulation::min_cyc(&g, 1.0, &core_opts(Some(FaultPlan::seeded(SEED))))
            .unwrap_or_else(|e| panic!("bench{edges} faulted: {e}"));
        // Bench instances record *genuine* events even on clean runs
        // (the FT update legitimately refuses unstable pivots there), so
        // only the injection counter is pinned to zero.
        assert_eq!(clean.stats.recovery.faults_injected, 0);
        // The clean run's genuine events count toward the union too —
        // they exercise the same taxonomy the injector drives.
        absorb(&mut union, &clean.stats.recovery);
        assert!(
            (clean.objective - faulted.objective).abs() <= 1e-7,
            "bench{edges}: clean {} vs faulted {}",
            clean.objective,
            faulted.objective
        );
        assert_eq!(clean.proven_optimal, faulted.proven_optimal);
        assert!(
            faulted.stats.recovery.faults_injected > 0,
            "bench{edges}: no fault fired — the plan is miscalibrated"
        );
        absorb(&mut union, &faulted.stats.recovery);
    }

    // Direct, unhinted searches reach the dense-oracle rung: the first
    // injected iteration-limit burst lands on the root's cold solve and
    // the ladder walks product-form → rebuild → Bland → dense.
    for (n, rows, seed) in [(12usize, 6usize, SEED), (15, 5, SEED ^ 0xFF)] {
        let m = ring_difference_milp(n, rows);
        let clean_opts = SolverOptions::default();
        let fault_opts = SolverOptions {
            faults: Some(FaultPlan::seeded(seed)),
            ..SolverOptions::default()
        };
        let (clean, clean_stats) = solve_with_stats(&m, &clean_opts).expect("clean ring solve");
        let (faulted, faulted_stats) =
            solve_with_stats(&m, &fault_opts).expect("faulted ring solve");
        assert_eq!(clean_stats.recovery.faults_injected, 0);
        assert_eq!(clean.status, Status::Optimal);
        assert_eq!(faulted.status, Status::Optimal);
        assert!(
            (clean.objective - faulted.objective).abs() <= 1e-7,
            "ring({n},{rows}): clean {} vs faulted {}",
            clean.objective,
            faulted.objective
        );
        absorb(&mut union, &faulted_stats.recovery);
    }

    // Every failure class observed...
    assert!(union.unstable_updates > 0, "no unstable update: {union:?}");
    assert!(
        union.singular_refactors > 0,
        "no singular refactor: {union:?}"
    );
    assert!(
        union.cycling_suspected > 0,
        "no cycling suspicion: {union:?}"
    );
    assert!(union.residual_drift > 0, "no residual drift: {union:?}");
    assert!(union.pivot_budget > 0, "no pivot-budget event: {union:?}");
    assert!(union.time_budget > 0, "no time-budget event: {union:?}");
    // ...and every ladder rung fired.
    assert!(union.ft_retries > 0, "FT-retry rung never fired: {union:?}");
    assert!(
        union.forced_refactors > 0,
        "forced-refactor rung never fired: {union:?}"
    );
    assert!(
        union.product_form_switches > 0,
        "product-form rung never fired: {union:?}"
    );
    assert!(
        union.cold_rebuilds > 0,
        "cold-rebuild rung never fired: {union:?}"
    );
    assert!(
        union.bland_restarts > 0,
        "Bland rung never fired: {union:?}"
    );
    assert!(
        union.dense_oracle_solves > 0,
        "dense-oracle rung never fired: {union:?}"
    );
    assert!(union.faults_injected > 0);
}

/// The seeded plan is deterministic: two identical faulted runs produce
/// identical objectives, node counts, and recovery counters.
#[test]
fn fault_injection_is_deterministic() {
    let m = ring_difference_milp(12, 6);
    let opts = SolverOptions {
        faults: Some(FaultPlan::seeded(SEED)),
        ..SolverOptions::default()
    };
    let (a, sa) = solve_with_stats(&m, &opts).expect("first run");
    let (b, sb) = solve_with_stats(&m, &opts).expect("second run");
    assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    assert_eq!(sa.nodes, sb.nodes);
    assert_eq!(sa.simplex_iters, sb.simplex_iters);
    assert_eq!(sa.recovery, sb.recovery);
}

/// `faults: None` must be fully inert: the recovery counters of a clean
/// run are all zero (the golden-trajectory suite in `search_orders`
/// separately pins that the trajectories are bit-exact).
#[test]
fn clean_runs_record_no_recovery_activity() {
    let m = ring_difference_milp(12, 6);
    let (sol, stats) = solve_with_stats(&m, &SolverOptions::default()).expect("clean solve");
    assert_eq!(sol.status, Status::Optimal);
    assert_eq!(stats.recovery, RecoveryStats::default());
}
