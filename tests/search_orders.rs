//! Node-ordering regression suite for the unified branch & bound search
//! core (`rr-milp`):
//!
//! * **Bit-compatibility** — `NodeOrder::DfsNearerFirst` through the new
//!   `SearchCore` must reproduce the exact node count, pivot count and
//!   incumbent trace of the pre-refactor `WarmSearch` on two fixed-seed
//!   instances (golden values captured before the refactor landed).
//! * **Plateau escape** — on the 40-edge `MAX_THR` bench instance (the
//!   ROADMAP motivating case) truncated DFS plateaus at incumbent 4.0
//!   under small node caps; `BestBound` must find 3.0 within the same
//!   cap.
//! * **Agreement** — both orderings prove identical optima on every
//!   Table-1-style instance they can run to completion.
//!
//! Everything here is deterministic: fixed seeds, node caps instead of
//! wall-clock limits.

use rr_bench::milp_bench_instance as bench_instance;
use rr_core::{formulation, CoreOptions};
use rr_milp::{
    cmp, solve_with_stats, Branching, FactorKind, LinExpr, Model, NodeOrder, Pricing, Sense,
    SolverOptions, Status, UpdateKind,
};
use rr_rrg::figures;
use rr_rrg::Rrg;

/// Deterministic solver options: node caps only, no wall clock. The
/// goldens below were captured under most-fractional branching without
/// cycle-sum cuts, so both are pinned off here (the pseudo-cost default
/// has its own goldens in `pseudo_cost_search.rs`).
fn capped(order: NodeOrder, max_nodes: usize, factor: FactorKind) -> CoreOptions {
    let mut opts = CoreOptions::fast();
    opts.solver.time_limit = None;
    opts.solver.max_nodes = max_nodes;
    opts.solver.node_order = order;
    opts.solver.factor = factor;
    opts.solver.branching = Branching::MostFractional;
    opts.solver.pricing = Pricing::Dantzig;
    opts.cuts = false;
    opts
}

/// The ring-difference golden instance: difference constraints over a
/// ring plus coupling knapsack rows (same shape the solver stress suite
/// uses). Deliberately defined *here*, not imported: the goldens below
/// pin the search trajectory of exactly this model, so its definition
/// must stay frozen with them.
fn ring_difference_milp(n: usize, rows: usize) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_integer(format!("x{i}"), 0.0, 6.0))
        .collect();
    let mut obj = LinExpr::new();
    for (i, &v) in vars.iter().enumerate() {
        obj += ((i % 4 + 1) as f64) * v;
    }
    m.set_objective(obj);
    for i in 0..n {
        let j = (i + 1) % n;
        m.add_constraint(vars[i] - vars[j], cmp::LE, ((i % 3) as f64) - 0.5);
    }
    for r in 0..rows {
        let mut row = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            row += (((i + r) % 5 + 1) as f64) * v;
        }
        m.add_constraint(row, cmp::GE, 2.5 * n as f64 + r as f64);
    }
    m
}

/// Golden regression of the refactor itself, instance 1: the exact
/// search trajectory of the pre-refactor `WarmSearch` on the ring MILP
/// (captured at commit 6387b77, default options of that era — which
/// means the **product-form** eta update, pinned explicitly now that
/// Forrest–Tomlin is the default; the FT path is covered by its own
/// A/B agreement suites).
#[test]
fn dfs_reproduces_pre_refactor_trajectory_on_ring_milp() {
    let m = ring_difference_milp(12, 6);
    let opts = SolverOptions {
        update: UpdateKind::ProductForm,
        branching: Branching::MostFractional,
        pricing: Pricing::Dantzig,
        ..SolverOptions::default()
    };
    let (sol, stats) = solve_with_stats(&m, &opts).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!(
        (sol.objective - 50.0).abs() < 1e-12,
        "obj {}",
        sol.objective
    );
    assert_eq!(
        stats.nodes, 79,
        "node count drifted from pre-refactor golden"
    );
    assert_eq!(
        stats.simplex_iters, 135,
        "pivot count drifted from pre-refactor golden"
    );
    assert_eq!(stats.warm_solves, 78);
    assert_eq!(stats.cold_solves, 1);
    assert!(!stats.truncated);
    // Incumbent trace: exactly one incumbent, at node 64, objective 50.
    assert_eq!(stats.incumbents, 1);
    assert_eq!(stats.first_incumbent_node, 64);
    assert_eq!(stats.incumbent_trace.len(), 1);
    let (node, obj) = stats.incumbent_trace[0];
    assert_eq!(node, 64);
    assert!((obj - 50.0).abs() < 1e-12);
}

/// Golden regression, instance 2: the 20-edge `MAX_THR` bench instance
/// at `CoreOptions::fast()` sans wall clock (node cap 2000) — a
/// hint-seeded, budget-truncated search (captured at commit 6387b77,
/// product-form update pinned as in instance 1).
#[test]
fn dfs_reproduces_pre_refactor_trajectory_on_bench20_max_thr() {
    let g = bench_instance(20);
    let mut opts = capped(NodeOrder::DfsNearerFirst, 2000, FactorKind::Sparse);
    opts.solver.update = UpdateKind::ProductForm;
    let out = formulation::max_thr(&g, g.max_delay(), &opts).unwrap();
    assert!(
        (out.objective - 6.497_501_818_546_008_5).abs() < 1e-12,
        "obj {}",
        out.objective
    );
    assert_eq!(
        out.stats.nodes, 2000,
        "node count drifted from pre-refactor golden"
    );
    assert_eq!(
        out.stats.simplex_iters, 5969,
        "pivot count drifted from pre-refactor golden"
    );
    assert_eq!(out.stats.warm_solves, 1999);
    assert_eq!(out.stats.cold_solves, 1);
    assert!(out.stats.truncated);
    assert!(!out.proven_optimal);
    // Single incumbent, seeded by the warm-start hint before any node.
    assert_eq!(out.stats.incumbents, 1);
    assert_eq!(out.stats.first_incumbent_node, 0);
    assert_eq!(out.stats.incumbent_trace.len(), 1);
    let (node, obj) = out.stats.incumbent_trace[0];
    assert_eq!(node, 0);
    assert!((obj - 6.497_501_818_546_008_5).abs() < 1e-12);
}

/// The ROADMAP motivating case: on the 40-edge `MAX_THR` bench instance
/// (dense-LU configuration) truncated DFS plateaus at incumbent 4.0 at
/// node caps from 200 to 4000, while best-bound search finds 3.0 within
/// the same cap.
#[test]
fn best_bound_escapes_the_dfs_plateau_on_the_40_edge_bench() {
    let g = bench_instance(40);
    let cap = 1000;
    let dfs = formulation::max_thr(
        &g,
        g.max_delay(),
        &capped(NodeOrder::DfsNearerFirst, cap, FactorKind::Dense),
    )
    .unwrap();
    assert!(
        dfs.stats.truncated,
        "DFS unexpectedly completed; raise the cap"
    );
    assert!(
        (dfs.objective - 4.0).abs() < 1e-6,
        "DFS plateau moved: objective {} (golden 4.0)",
        dfs.objective
    );
    let bb = formulation::max_thr(
        &g,
        g.max_delay(),
        &capped(NodeOrder::BestBound, cap, FactorKind::Dense),
    )
    .unwrap();
    assert!(
        bb.objective <= 3.0 + 1e-6,
        "best-bound failed to escape the plateau: objective {} (DFS {})",
        bb.objective,
        dfs.objective
    );
    // Quantified by the new stats: best-bound's incumbent trajectory
    // reaches its best strictly below DFS's plateau value.
    let best_traced = bb
        .stats
        .incumbent_trace
        .iter()
        .map(|&(_, obj)| obj)
        .fold(f64::INFINITY, f64::min);
    assert!(best_traced <= 3.0 + 1e-6);
}

/// Both orderings prove identical optima (within 1e-7) on every Table-1
/// instance they can run to completion: the paper-figure circuits
/// (`MAX_THR` at the min-delay cycle time and `MIN_CYC(1)`) and the
/// bench-family instances (`MIN_CYC(1)`, the formulation both orderings
/// close — `MAX_THR` keeps a fractional-x plateau open at any cap).
#[test]
fn orderings_prove_identical_optima_on_table1_instances() {
    let figures: Vec<(&str, Rrg)> = vec![
        ("figure_1a(0.5)", figures::figure_1a(0.5)),
        ("figure_1a(0.9)", figures::figure_1a(0.9)),
        ("figure_1b(0.5)", figures::figure_1b(0.5)),
        ("figure_2(0.7)", figures::figure_2(0.7)),
    ];
    let opts_for = |order: NodeOrder| {
        let mut o = capped(order, 20_000, FactorKind::Sparse);
        o.solver.gap_tol = 1e-9;
        o
    };
    for (name, g) in &figures {
        for problem in ["max_thr", "min_cyc"] {
            let solve = |order: NodeOrder| match problem {
                "max_thr" => formulation::max_thr(g, g.max_delay(), &opts_for(order)),
                _ => formulation::min_cyc(g, 1.0, &opts_for(order)),
            };
            let dfs = solve(NodeOrder::DfsNearerFirst)
                .unwrap_or_else(|e| panic!("{name}/{problem} DFS failed: {e}"));
            let bb = solve(NodeOrder::BestBound)
                .unwrap_or_else(|e| panic!("{name}/{problem} best-bound failed: {e}"));
            assert!(
                dfs.proven_optimal,
                "{name}/{problem}: DFS did not prove optimality"
            );
            assert!(
                bb.proven_optimal,
                "{name}/{problem}: best-bound did not prove optimality"
            );
            assert!(
                (dfs.objective - bb.objective).abs() < 1e-7,
                "{name}/{problem}: DFS {} vs best-bound {}",
                dfs.objective,
                bb.objective
            );
        }
    }
    for edges in [20usize, 40] {
        let g = bench_instance(edges);
        let dfs = formulation::min_cyc(&g, 1.0, &opts_for(NodeOrder::DfsNearerFirst))
            .unwrap_or_else(|e| panic!("bench{edges} DFS failed: {e}"));
        let bb = formulation::min_cyc(&g, 1.0, &opts_for(NodeOrder::BestBound))
            .unwrap_or_else(|e| panic!("bench{edges} best-bound failed: {e}"));
        assert!(
            dfs.proven_optimal,
            "bench{edges}: DFS did not prove optimality"
        );
        assert!(
            bb.proven_optimal,
            "bench{edges}: best-bound did not prove optimality"
        );
        assert!(
            (dfs.objective - bb.objective).abs() < 1e-7,
            "bench{edges}: DFS {} vs best-bound {}",
            dfs.objective,
            bb.objective
        );
    }
}

/// A node-cap-truncated `MAX_THR` must be explicitly distinguishable
/// from a proven optimum across the whole rr-core report path:
/// `proven_optimal`, the new `truncated` flag, and the Table-1 row
/// provenance marker.
#[test]
fn truncated_solves_surface_feasible_verdicts_in_reports() {
    let g = bench_instance(20);
    let out = formulation::max_thr(
        &g,
        g.max_delay(),
        &capped(NodeOrder::DfsNearerFirst, 50, FactorKind::Sparse),
    )
    .unwrap();
    assert!(
        !out.proven_optimal,
        "a 50-node cap cannot prove this optimum"
    );
    assert!(out.truncated(), "OptOutcome must surface the truncation");
    assert!(out.stats.truncated);

    // A completed solve reports the opposite on every surface.
    let done = formulation::min_cyc(&g, 1.0, &{
        let mut o = capped(NodeOrder::BestBound, 20_000, FactorKind::Sparse);
        o.solver.gap_tol = 1e-9;
        o
    })
    .unwrap();
    assert!(done.proven_optimal);
    assert!(!done.truncated());
}
