//! End-to-end regression of the basis-factorization layer on the
//! `milp_scaling` bench family (same generator, same seed 42): the
//! largest (40-edge) instance is optimized once over the Markowitz
//! sparse LU and once over the dense-LU oracle.
//!
//! `MIN_CYC(1)` is the formulation both kinds drive to **proven**
//! optimality within a sane budget, so any objective disagreement there
//! is a factorization bug, not a search-path artifact; `MAX_THR` (whose
//! fractional-`x` plateau keeps DFS from closing a 1e-9 gap — see the
//! best-first ROADMAP item) is cross-checked at the bench's own options,
//! where the fixed-seed search is deterministic. The sparse kernel must
//! also actually exploit sparsity: its recorded `nnz(L+U)` stays far
//! below the dense `m²` storage.

use rr_bench::milp_bench_instance as bench_instance;
use rr_core::{formulation, CoreOptions};
use rr_milp::FactorKind;

fn opts_with(factor: FactorKind, gap_tol: f64) -> CoreOptions {
    let mut opts = CoreOptions::fast();
    opts.solver.factor = factor;
    opts.solver.gap_tol = gap_tol;
    opts.solver.max_nodes = 20_000;
    opts.solver.time_limit = Some(std::time::Duration::from_secs(60));
    opts
}

#[test]
fn factor_kinds_prove_the_same_optimum_on_the_largest_bench_instance() {
    let g = bench_instance(40);
    let sparse = formulation::min_cyc(&g, 1.0, &opts_with(FactorKind::Sparse, 1e-9))
        .expect("sparse-LU MIN_CYC solves");
    let dense = formulation::min_cyc(&g, 1.0, &opts_with(FactorKind::Dense, 1e-9))
        .expect("dense-LU MIN_CYC solves");

    // Identical verdicts: both *prove* the optimum, so the objectives
    // must coincide regardless of pivot paths.
    assert!(sparse.proven_optimal, "sparse run did not prove optimality");
    assert!(dense.proven_optimal, "dense run did not prove optimality");
    assert!(
        (sparse.objective - dense.objective).abs() < 1e-7,
        "factor kinds disagree: sparse {} vs dense {}",
        sparse.objective,
        dense.objective
    );

    // The sparse kernel must beat the dense m² storage on this basis.
    let m = sparse.stats.basis_rows;
    assert!(m > 100, "instance too small to be meaningful ({m} rows)");
    assert!(sparse.stats.refactors > 0 && sparse.stats.peak_lu_nnz > 0);
    assert!(
        sparse.stats.peak_lu_nnz < m * m / 4,
        "sparse LU fill {} did not clearly beat the dense {}² = {}",
        sparse.stats.peak_lu_nnz,
        m,
        m * m
    );
    assert_eq!(
        dense.stats.peak_lu_nnz,
        dense.stats.basis_rows * dense.stats.basis_rows,
        "dense oracle must report its full m² storage"
    );
}

/// `MAX_THR` at the bench's own options: the fixed-seed searches are
/// deterministic, and on this instance both factorizations walk the same
/// tree — identical objective and identical verdict flags.
#[test]
fn factor_kinds_agree_on_max_thr_at_bench_options() {
    let g = bench_instance(20);
    let tau = g.max_delay();
    let mut sparse_opts = CoreOptions::fast();
    sparse_opts.solver.factor = FactorKind::Sparse;
    let mut dense_opts = CoreOptions::fast();
    dense_opts.solver.factor = FactorKind::Dense;
    let sparse = formulation::max_thr(&g, tau, &sparse_opts).expect("sparse MAX_THR solves");
    let dense = formulation::max_thr(&g, tau, &dense_opts).expect("dense MAX_THR solves");
    assert_eq!(
        sparse.proven_optimal, dense.proven_optimal,
        "verdicts diverge"
    );
    assert!(
        (sparse.objective - dense.objective).abs() < 1e-7,
        "sparse {} vs dense {}",
        sparse.objective,
        dense.objective
    );
}
