//! Cross-crate validation on random workloads: the four throughput
//! estimators (LP bound, TGMG simulation, elastic machine, Markov chain)
//! must stay consistent, and optimizer outputs must verify against the
//! independent simulators.

use rr_core::{evaluate_config, formulation, CoreOptions};
use rr_elastic::{simulate as machine_sim, MachineParams};
use rr_markov::{exact_throughput_with, MarkovParams};
use rr_rrg::generate::GeneratorParams;
use rr_rrg::Config;
use rr_tgmg::late::exact_late_throughput;

#[test]
fn markov_vs_machine_vs_lp_on_random_small_graphs() {
    for seed in 0..6 {
        let g = GeneratorParams::paper_defaults(5, 1, 9).generate(seed);
        let markov = exact_throughput_with(
            &g,
            &MarkovParams {
                max_states: 500_000,
                ..Default::default()
            },
        );
        let Ok(markov) = markov else {
            continue; // state space too large for this seed — fine
        };
        let machine = machine_sim(
            &g,
            &MachineParams {
                horizon: 20_000,
                warmup: 4_000,
                ..Default::default()
            },
        )
        .unwrap()
        .throughput;
        assert!(
            (markov.throughput - machine).abs() < 0.02,
            "seed {seed}: markov {} vs machine {machine}",
            markov.throughput
        );
    }
}

#[test]
fn optimizer_configs_verify_under_the_elastic_machine() {
    // MAX_THR output, evaluated by the *other* simulator: the measured
    // throughput must not exceed the MILP's claimed 1/x (it is an upper
    // bound) and should be within a sane distance.
    for seed in [1, 4] {
        let g = GeneratorParams::paper_defaults(8, 2, 16).generate(seed);
        let out = formulation::max_thr(&g, g.max_delay() * 1.5, &CoreOptions::fast()).unwrap();
        let applied = out.config.apply(&g).unwrap();
        let measured = machine_sim(&applied, &MachineParams::fast(seed))
            .unwrap()
            .throughput;
        let claimed = 1.0 / out.objective;
        assert!(
            measured <= claimed + 0.05,
            "seed {seed}: measured {measured} above claimed bound {claimed}"
        );
    }
}

#[test]
fn late_eval_evaluation_matches_min_cycle_ratio() {
    for seed in 0..4 {
        let g = GeneratorParams::paper_defaults(7, 0, 12)
            .generate(seed)
            .with_late_evaluation();
        let ev = evaluate_config(&g, &Config::initial(&g), &CoreOptions::fast()).unwrap();
        let mcr = exact_late_throughput(&g).min(1.0);
        assert!(
            (ev.theta_lp - mcr).abs() < 1e-5,
            "seed {seed}: LP {} vs MCR {mcr}",
            ev.theta_lp
        );
    }
}

#[test]
fn config_round_trip_through_all_representations() {
    let g = GeneratorParams::paper_defaults(6, 2, 14).generate(9);
    let cfg = Config::initial(&g);
    // Config → applied graph → machine; Config → skeleton instantiation →
    // TGMG sim. Same physical system, same throughput.
    let applied = cfg.apply(&g).unwrap();
    let a = machine_sim(&applied, &MachineParams::fast(1))
        .unwrap()
        .throughput;
    let t = rr_tgmg::skeleton::TgmgSkeleton::of(&g).instantiate(&cfg.tokens, &cfg.buffers);
    let b = rr_tgmg::sim::simulate(&t, &rr_tgmg::sim::SimParams::fast(2))
        .unwrap()
        .throughput;
    assert!((a - b).abs() < 0.06, "machine {a} vs tgmg {b}");
}
