//! Integration: the Table-1/Table-2 pipeline on small generated
//! benchmarks — every column well-formed, the improvement non-negative,
//! the LP bound an upper bound, and the sweep Pareto-consistent.

use rr_core::{pareto, report::evaluate_benchmark, CoreOptions};
use rr_rrg::iscas::IscasProfile;

#[test]
fn small_profile_rows_are_well_formed() {
    for name in ["s208", "s838"] {
        let g = IscasProfile::by_name(name).unwrap().generate(11);
        let (row, table1) = evaluate_benchmark(name, &g, &CoreOptions::fast()).unwrap();

        // ξ* is the raw cycle time (bubble-free → Θ = 1).
        assert!(row.xi_star > 0.0);
        // Retiming can only help or tie.
        assert!(row.xi_nee <= row.xi_star + 1e-9);
        // The sweep is anchored by the retiming config: never worse.
        assert!(
            row.xi_sim_min <= row.xi_nee + 0.5,
            "{name}: ξ_sim {} vs ξ_nee {}",
            row.xi_sim_min,
            row.xi_nee
        );
        assert!(row.improvement_pct >= -1.0);
        // The LP never under-estimates the *true* throughput; the short
        // test-horizon simulation may overshoot by its measurement noise.
        for ev in &table1.outcome.evaluations {
            assert!(
                ev.theta_lp + 0.03 >= ev.theta_sim,
                "{name}: bound violated: lp {} vs sim {}",
                ev.theta_lp,
                ev.theta_sim
            );
        }
        // Θ_lp = 1 appears in the sweep (its min-delay retiming anchor).
        assert!(table1
            .outcome
            .evaluations
            .iter()
            .any(|e| (e.theta_lp - 1.0).abs() < 1e-6));
    }
}

#[test]
fn sweep_points_are_non_dominated_on_small_graph() {
    let g = IscasProfile::by_name("s208").unwrap().generate(3);
    let (_, table1) = evaluate_benchmark("s208", &g, &CoreOptions::fast()).unwrap();
    let evals = &table1.outcome.evaluations;
    // With proven-optimal MILP solves the stored points must be mutually
    // non-dominated w.r.t. Θ_lp; with budget-limited solves dominated
    // points can slip in, so only check in the proven case.
    if table1.outcome.all_proven_optimal {
        let nd = pareto::non_dominated_indices(evals);
        assert_eq!(nd.len(), evals.len());
    }
}

#[test]
fn deterministic_given_seed() {
    let a = IscasProfile::by_name("s208").unwrap().generate(5);
    let b = IscasProfile::by_name("s208").unwrap().generate(5);
    let (ra, _) = evaluate_benchmark("s208", &a, &CoreOptions::fast()).unwrap();
    let (rb, _) = evaluate_benchmark("s208", &b, &CoreOptions::fast()).unwrap();
    assert_eq!(ra.xi_star, rb.xi_star);
    assert_eq!(ra.xi_nee, rb.xi_nee);
    assert_eq!(ra.xi_sim_min, rb.xi_sim_min);
}
