//! Backend-unification gate (PR 10): one LP backend for every model.
//!
//! The `LegacyBackend` — a rebuild-the-model-per-node dense-tableau
//! search backend that owned mirrored and free integer variables — is
//! gone. This suite pins the three facts that deletion rests on:
//!
//! * **Goldens survive** — the two PR 4 golden instances (frozen local
//!   copies) replay bit-exact through the unified warm path: same
//!   objective, node count, pivot count, warm/cold solve split.
//! * **The legacy model class runs warm** — mirrored (upper-bound-only)
//!   and free (split-pair) integer fixtures solve through `WarmBackend`
//!   at `workers ∈ {1, 2}`, agree with the dense-tableau oracle request
//!   to ≤ 1e-7, and warm-start cleanly (`cold_solves == 1`, every
//!   subsequent node a warm dual reoptimization).
//! * **No model clones in the node loop** — source-level assertions:
//!   the `LegacyBackend` / `SNAP_LEAVES` identifiers survive only in
//!   prose, and `model.clone()` appears exactly once in
//!   `branch_bound.rs` (the whole-solve cross-validation pin, outside
//!   the search loop) and never in `parallel.rs`.

use rr_bench::milp_bench_instance as bench_instance;
use rr_core::{formulation, CoreOptions};
use rr_milp::{
    cmp, solve_with_stats, Branching, FactorKind, Kernel, LinExpr, Model, NodeOrder, Pricing,
    Sense, SolverOptions, Status, UpdateKind,
};

/// PR 4 golden options: most-fractional + Dantzig + product form, the
/// configuration the goldens were captured under (frozen copy of the
/// `search_orders.rs` helper — the two suites must drift independently).
fn golden_opts() -> SolverOptions {
    SolverOptions {
        update: UpdateKind::ProductForm,
        branching: Branching::MostFractional,
        pricing: Pricing::Dantzig,
        ..SolverOptions::default()
    }
}

/// Frozen copy of the PR 4 ring-difference golden instance. Deliberately
/// duplicated here rather than imported: this gate pins the *unified*
/// backend's trajectory on exactly this model, so its definition must
/// stay frozen with the golden values below.
fn ring_difference_milp(n: usize, rows: usize) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_integer(format!("x{i}"), 0.0, 6.0))
        .collect();
    let mut obj = LinExpr::new();
    for (i, &v) in vars.iter().enumerate() {
        obj += ((i % 4 + 1) as f64) * v;
    }
    m.set_objective(obj);
    for i in 0..n {
        let j = (i + 1) % n;
        m.add_constraint(vars[i] - vars[j], cmp::LE, ((i % 3) as f64) - 0.5);
    }
    for r in 0..rows {
        let mut row = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            row += (((i + r) % 5 + 1) as f64) * v;
        }
        m.add_constraint(row, cmp::GE, 2.5 * n as f64 + r as f64);
    }
    m
}

/// Golden replay 1: the ring MILP through the unified warm path must
/// reproduce the PR 4 trajectory exactly — deleting the legacy backend
/// may not move a single node or pivot on the boxed-integer path.
#[test]
fn ring_milp_golden_replays_bit_exact_through_the_unified_backend() {
    let m = ring_difference_milp(12, 6);
    let (sol, stats) = solve_with_stats(&m, &golden_opts()).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!(
        (sol.objective - 50.0).abs() < 1e-12,
        "obj {}",
        sol.objective
    );
    assert_eq!(stats.nodes, 79, "node count drifted from the PR 4 golden");
    assert_eq!(
        stats.simplex_iters, 135,
        "pivot count drifted from the PR 4 golden"
    );
    assert_eq!(stats.warm_solves, 78);
    assert_eq!(
        stats.cold_solves, 1,
        "clean runs warm-start after one cold solve"
    );
    assert!(!stats.truncated);
}

/// Golden replay 2: the 20-edge `MAX_THR` bench instance (hint-seeded,
/// budget-truncated) through the unified warm path.
#[test]
fn bench20_max_thr_golden_replays_bit_exact_through_the_unified_backend() {
    let g = bench_instance(20);
    let mut opts = CoreOptions::fast();
    opts.solver.time_limit = None;
    opts.solver.max_nodes = 2000;
    opts.solver.node_order = NodeOrder::DfsNearerFirst;
    opts.solver.factor = FactorKind::Sparse;
    opts.solver.branching = Branching::MostFractional;
    opts.solver.pricing = Pricing::Dantzig;
    opts.solver.update = UpdateKind::ProductForm;
    opts.cuts = false;
    let out = formulation::max_thr(&g, g.max_delay(), &opts).unwrap();
    assert!(
        (out.objective - 6.497_501_818_546_008_5).abs() < 1e-12,
        "obj {}",
        out.objective
    );
    assert_eq!(
        out.stats.nodes, 2000,
        "node count drifted from the PR 4 golden"
    );
    assert_eq!(
        out.stats.simplex_iters, 5969,
        "pivot count drifted from the PR 4 golden"
    );
    assert_eq!(out.stats.warm_solves, 1999);
    assert_eq!(out.stats.cold_solves, 1);
    assert!(out.stats.truncated);
}

/// A mirrored-integer fixture: `y` has no lower bound, only an upper
/// bound (standard form mirrors it), plus a shifted integer `x` coupling
/// it. Minimize `3x - 2y` s.t. `x - y >= 1.3`, `x + y <= 6.2`,
/// `x ∈ [0, 10]`, `y ∈ (-∞, 5.5]`, both integer. Optimum: x=4, y=2,
/// obj = 8.
fn mirrored_fixture() -> Model {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_integer("x", 0.0, 10.0);
    let y = m.add_integer("y", f64::NEG_INFINITY, 5.5);
    m.set_objective(3.0 * x - 2.0 * y);
    m.add_constraint(x - y, cmp::GE, 1.3);
    m.add_constraint(x + y, cmp::LE, 6.2);
    m
}

/// A free-integer fixture: `z` is fully free (split-pair columns in
/// standard form) with a fractional optimum forcing branching into
/// negative territory. Minimize `z + 2w` s.t. `z + w >= -3.5`,
/// `z - w >= -9.2`, `w ∈ [0, 4]` integer, `z` free integer.
/// LP relaxation sits at z=-6.35, w=2.85; integer optimum z=-6, w=3,
/// obj = 0... (pinned against the dense oracle below rather than by
/// hand).
fn free_fixture() -> Model {
    let mut m = Model::new(Sense::Minimize);
    let z = m.add_integer("z", f64::NEG_INFINITY, f64::INFINITY);
    let w = m.add_integer("w", 0.0, 4.0);
    m.set_objective(z + 2.0 * w);
    m.add_constraint(z + w, cmp::GE, -3.5);
    m.add_constraint(z - w, cmp::GE, -9.2);
    m
}

/// Mirrored and free integer fixtures — the deleted backend's entire
/// model class — must solve through the warm path at `workers ∈ {1, 2}`,
/// agree with the dense-tableau oracle request to ≤ 1e-7, and on serial
/// clean runs take exactly one cold solve with every remaining node a
/// warm dual reoptimization.
#[test]
fn legacy_model_class_runs_warm_parallel_and_oracle_checked() {
    for (name, m) in [("mirrored", mirrored_fixture()), ("free", free_fixture())] {
        let dense = m
            .solve_with(&SolverOptions {
                kernel: Kernel::DenseTableau,
                ..SolverOptions::default()
            })
            .unwrap_or_else(|e| panic!("{name}: dense oracle failed: {e:?}"));
        assert_eq!(dense.status, Status::Optimal);
        for workers in [1usize, 2] {
            let opts = SolverOptions {
                workers,
                ..SolverOptions::default()
            };
            let (sol, stats) = solve_with_stats(&m, &opts)
                .unwrap_or_else(|e| panic!("{name}/workers={workers}: {e:?}"));
            assert_eq!(sol.status, Status::Optimal);
            assert!(
                (sol.objective - dense.objective).abs() <= 1e-7,
                "{name}/workers={workers}: warm {} vs dense oracle {}",
                sol.objective,
                dense.objective
            );
            assert!(
                m.max_violation(sol.values(), 1e-6) < 1e-5,
                "{name}/workers={workers}: infeasible point"
            );
            for x in sol.values() {
                assert!((x - x.round()).abs() < 1e-6, "{name}: {x} not integral");
            }
            assert!(!stats.truncated);
            if workers == 1 {
                assert_eq!(
                    stats.cold_solves, 1,
                    "{name}: clean serial runs must warm-start after one cold solve"
                );
                assert_eq!(
                    stats.warm_solves,
                    stats.nodes - 1,
                    "{name}: every non-root node must be a warm reoptimization"
                );
            } else {
                // Parallel trajectories are schedule-dependent, but every
                // worker still warm-starts: cold solves are bounded by the
                // worker count, never by the node count.
                assert!(
                    stats.cold_solves <= workers,
                    "{name}: {} cold solves for {} workers",
                    stats.cold_solves,
                    workers
                );
            }
        }
    }
}

/// Source-level assertions that the deletion is real and stays real:
/// the `LegacyBackend` / `SNAP_LEAVES` identifiers survive only in
/// prose (comment lines), and no model is cloned inside the node loop —
/// `model.clone()` appears exactly once in `branch_bound.rs` (the
/// whole-solve cross-validation pin, after the search returns) and
/// never in `parallel.rs`.
#[test]
fn no_legacy_backend_and_no_model_clones_in_the_node_loop() {
    let branch_bound = include_str!("../crates/milp/src/branch_bound.rs");
    let parallel = include_str!("../crates/milp/src/parallel.rs");

    for ident in ["LegacyBackend", "SNAP_LEAVES"] {
        for (file, src) in [("branch_bound.rs", branch_bound), ("parallel.rs", parallel)] {
            for (lineno, line) in src.lines().enumerate() {
                if line.contains(ident) {
                    assert!(
                        line.trim_start().starts_with("//"),
                        "{file}:{}: `{ident}` outside a comment: {line}",
                        lineno + 1
                    );
                }
            }
        }
    }

    let clones_in_branch_bound = branch_bound.matches("model.clone()").count();
    assert_eq!(
        clones_in_branch_bound, 1,
        "branch_bound.rs must clone the model exactly once (the \
         cross-validation pin); found {clones_in_branch_bound}"
    );
    assert_eq!(
        parallel.matches("model.clone()").count(),
        0,
        "parallel.rs must never clone the model"
    );
}
