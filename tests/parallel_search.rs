//! Determinism gate for the parallel branch & bound
//! (`SolverOptions::workers`):
//!
//! * **Serial bit-exactness** — `workers = 1` routes through the
//!   unchanged serial core, so it must reproduce the pinned
//!   `search_orders` goldens *bit-exact*: same objective, same node and
//!   pivot counts, same incumbent trace.
//! * **Schedule independence of verdicts** — `workers ∈ {2, 4}` must
//!   prove identical optima (≤ 1e-7) and identical verdicts as the
//!   serial search on every Table-1 instance the serial search
//!   completes (paper figures × {MAX_THR, MIN_CYC} plus the bench
//!   `MIN_CYC` instances). The parallel node *schedule* is
//!   nondeterministic; a completed branch & bound proves the optimum
//!   regardless of schedule, which is exactly what this asserts.
//! * **Fault tolerance under parallelism** — a fault-injected parallel
//!   run (every worker carries its own deterministic injector and
//!   recovery ladder) must still agree with its clean twin, and the
//!   merged recovery ledger must show the injections actually fired.
//!
//! The multi-instance sweeps fan out through the shared
//! `parallel_map_bounded` helper — the same bounded-parallelism idiom
//! the table harness uses.

use rr_bench::{milp_bench_instance as bench_instance, parallel_map_bounded};
use rr_core::{formulation, CoreOptions};
use rr_milp::{
    cmp, solve_with_stats, Branching, FactorKind, FaultPlan, LinExpr, Model, NodeOrder, Pricing,
    Sense, SolverOptions, Status, UpdateKind,
};
use rr_rrg::figures;
use rr_rrg::Rrg;

/// Deterministic solver options: node caps only, no wall clock. Pinned
/// to most-fractional branching without cycle-sum cuts — the regime the
/// trajectory goldens were captured under.
fn capped(order: NodeOrder, max_nodes: usize, workers: usize) -> CoreOptions {
    let mut opts = CoreOptions::fast();
    opts.solver.time_limit = None;
    opts.solver.max_nodes = max_nodes;
    opts.solver.node_order = order;
    opts.solver.factor = FactorKind::Sparse;
    opts.solver.gap_tol = 1e-9;
    opts.solver.workers = workers;
    opts.solver.branching = Branching::MostFractional;
    opts.solver.pricing = Pricing::Dantzig;
    opts.cuts = false;
    opts
}

/// The `search_orders` golden instance, frozen with its trajectory pins.
fn ring_difference_milp(n: usize, rows: usize) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_integer(format!("x{i}"), 0.0, 6.0))
        .collect();
    let mut obj = LinExpr::new();
    for (i, &v) in vars.iter().enumerate() {
        obj += ((i % 4 + 1) as f64) * v;
    }
    m.set_objective(obj);
    for i in 0..n {
        let j = (i + 1) % n;
        m.add_constraint(vars[i] - vars[j], cmp::LE, ((i % 3) as f64) - 0.5);
    }
    for r in 0..rows {
        let mut row = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            row += (((i + r) % 5 + 1) as f64) * v;
        }
        m.add_constraint(row, cmp::GE, 2.5 * n as f64 + r as f64);
    }
    m
}

/// Bit-exact stats equality. `node_bounds` holds NaN for failed node
/// LPs, so the derived `PartialEq` (NaN ≠ NaN) cannot express
/// "identical trajectory"; those entries are compared bitwise instead.
fn assert_stats_identical(mut a: rr_milp::BranchBoundStats, mut b: rr_milp::BranchBoundStats) {
    let bounds_a: Vec<u64> = std::mem::take(&mut a.node_bounds)
        .iter()
        .map(|x| x.to_bits())
        .collect();
    let bounds_b: Vec<u64> = std::mem::take(&mut b.node_bounds)
        .iter()
        .map(|x| x.to_bits())
        .collect();
    assert_eq!(bounds_a, bounds_b, "node-bound trajectories diverged");
    assert_eq!(a, b);
}

/// `workers = 1` reproduces the pinned serial golden bit-exact — and
/// produces the byte-identical stats struct of a default (`workers`
/// unset) run, because it *is* the serial code path.
#[test]
fn one_worker_matches_the_serial_goldens_bit_exact() {
    let m = ring_difference_milp(12, 6);
    let serial = SolverOptions {
        update: UpdateKind::ProductForm,
        branching: Branching::MostFractional,
        pricing: Pricing::Dantzig,
        ..SolverOptions::default()
    };
    let explicit = SolverOptions {
        workers: 1,
        ..serial.clone()
    };
    let (sol_default, stats_default) = solve_with_stats(&m, &serial).unwrap();
    let (sol, stats) = solve_with_stats(&m, &explicit).unwrap();
    // The search_orders golden, verbatim.
    assert_eq!(sol.status, Status::Optimal);
    assert!(
        (sol.objective - 50.0).abs() < 1e-12,
        "obj {}",
        sol.objective
    );
    assert_eq!(stats.nodes, 79, "node count drifted from serial golden");
    assert_eq!(stats.simplex_iters, 135, "pivot count drifted");
    assert_eq!(stats.warm_solves, 78);
    assert_eq!(stats.cold_solves, 1);
    assert_eq!(stats.incumbents, 1);
    assert_eq!(stats.first_incumbent_node, 64);
    assert_eq!(stats.incumbent_trace, vec![(64, 50.0)]);
    // Bit-exactness against the default run, field for field.
    assert_eq!(sol.objective.to_bits(), sol_default.objective.to_bits());
    assert_stats_identical(stats, stats_default);
}

/// `workers = 1` on the best-bound 40-edge plateau case: identical
/// trajectory to the default serial run, including under truncation.
#[test]
fn one_worker_matches_serial_best_bound_truncated_runs() {
    let g = bench_instance(40);
    let serial =
        formulation::max_thr(&g, g.max_delay(), &capped(NodeOrder::BestBound, 1000, 1)).unwrap();
    let default_run =
        formulation::max_thr(&g, g.max_delay(), &capped(NodeOrder::BestBound, 1000, 0)).unwrap();
    assert_eq!(
        serial.objective.to_bits(),
        default_run.objective.to_bits(),
        "workers=1 diverged from the default serial run"
    );
    assert!(serial.stats.truncated);
    assert_stats_identical(serial.stats, default_run.stats);
    assert!(serial.objective <= 3.0 + 1e-6);
}

/// Every Table-1 instance the serial search completes: `workers ∈ {2,4}`
/// prove the same optimum (≤ 1e-7) with the same verdict.
#[test]
fn parallel_workers_prove_identical_optima_on_table1_instances() {
    let figures: Vec<(&str, Rrg)> = vec![
        ("figure_1a(0.5)", figures::figure_1a(0.5)),
        ("figure_1a(0.9)", figures::figure_1a(0.9)),
        ("figure_1b(0.5)", figures::figure_1b(0.5)),
        ("figure_2(0.7)", figures::figure_2(0.7)),
    ];
    let mut jobs: Vec<(String, Rrg, &'static str)> = Vec::new();
    for (name, g) in &figures {
        for problem in ["max_thr", "min_cyc"] {
            jobs.push((name.to_string(), g.clone(), problem));
        }
    }
    for edges in [20usize, 40] {
        jobs.push((format!("bench{edges}"), bench_instance(edges), "min_cyc"));
    }
    // Outer fan-out through the shared harness helper; each job runs the
    // serial reference plus both parallel configurations.
    let failures: Vec<String> = parallel_map_bounded(4, jobs, |(name, g, problem)| {
        let solve = |workers: usize| {
            let opts = capped(NodeOrder::BestBound, 20_000, workers);
            match problem {
                "max_thr" => formulation::max_thr(&g, g.max_delay(), &opts),
                _ => formulation::min_cyc(&g, 1.0, &opts),
            }
        };
        let serial = match solve(1) {
            Ok(out) => out,
            Err(e) => return format!("{name}/{problem}: serial failed: {e}"),
        };
        if !serial.proven_optimal {
            return format!("{name}/{problem}: serial did not prove optimality");
        }
        for workers in [2usize, 4] {
            let par = match solve(workers) {
                Ok(out) => out,
                Err(e) => return format!("{name}/{problem}: {workers} workers failed: {e}"),
            };
            if !par.proven_optimal {
                return format!("{name}/{problem}: {workers} workers did not prove optimality");
            }
            // Relative tolerance: different pivot paths leave LP-level
            // noise in the recovered objective, which scales with its
            // magnitude (bench40's τ ≈ 54.6 wobbles by ~2e-7).
            if (par.objective - serial.objective).abs() > 1e-7 * serial.objective.abs().max(1.0) {
                return format!(
                    "{name}/{problem}: {workers} workers found {} vs serial {}",
                    par.objective, serial.objective
                );
            }
        }
        String::new()
    })
    .into_iter()
    .filter(|s| !s.is_empty())
    .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// A fault-injected parallel run agrees with its clean parallel twin on
/// every instance, and the merged per-worker recovery ledgers show the
/// injections actually fired somewhere in the sweep.
#[test]
fn faulted_parallel_runs_agree_with_clean_twins() {
    let instances: Vec<(String, Rrg)> = vec![
        ("figure_1a(0.5)".into(), figures::figure_1a(0.5)),
        ("figure_1b(0.5)".into(), figures::figure_1b(0.5)),
        ("bench20".into(), bench_instance(20)),
    ];
    let mut injected_total = 0usize;
    for (name, g) in &instances {
        let solve = |faults: Option<FaultPlan>| {
            let mut opts = capped(NodeOrder::BestBound, 20_000, 4);
            opts.solver.faults = faults;
            formulation::min_cyc(g, 1.0, &opts)
        };
        let clean = solve(None).unwrap_or_else(|e| panic!("{name} clean: {e}"));
        let faulted = solve(Some(FaultPlan::seeded(0xDAC_2009)))
            .unwrap_or_else(|e| panic!("{name} faulted: {e}"));
        assert_eq!(clean.stats.recovery.faults_injected, 0);
        assert!(
            (clean.objective - faulted.objective).abs() <= 1e-7,
            "{name}: clean {} vs faulted {}",
            clean.objective,
            faulted.objective
        );
        assert_eq!(
            clean.proven_optimal, faulted.proven_optimal,
            "{name}: verdicts diverged under faults"
        );
        injected_total += faulted.stats.recovery.faults_injected;
    }
    assert!(
        injected_total > 0,
        "the fault plan never fired across the parallel sweep"
    );
}
