//! End-to-end integration: the paper's §1 narrative must hold across all
//! crates at once — retiming baseline, recycling, early evaluation,
//! anti-tokens, and the optimizer's rediscovery of Figure 2.

use retiming_recycling::prelude::*;
use rr_core::{min_eff_cyc, CoreOptions};
use rr_elastic::{simulate, MachineParams};
use rr_markov::exact_throughput;
use rr_retime::min_period_retiming;
use rr_rrg::{cycle_time, figures};
use rr_tgmg::{lp_bound, sim as tgmg_sim, skeleton::tgmg_of};

/// §1.2: retiming alone cannot break cycle time 3 on Figure 1(a).
#[test]
fn retiming_alone_cannot_beat_three() {
    let g = figures::figure_1a(0.5);
    assert_eq!(cycle_time::cycle_time(&g).unwrap(), 3.0);
    assert_eq!(min_period_retiming(&g).unwrap().period, 3.0);
}

/// §1.2: Figure 1(b) reaches τ = 1 but its *late* effective cycle time is
/// still 3 (Θ = 1/3) — "this reduction of a cycle time is useless".
#[test]
fn recycling_without_early_evaluation_is_useless() {
    let g = figures::figure_1b(0.5).with_late_evaluation();
    let tau = cycle_time::cycle_time(&g).unwrap();
    assert_eq!(tau, 1.0);
    let th = exact_throughput(&g).unwrap().throughput;
    assert!((th - 1.0 / 3.0).abs() < 1e-9);
    assert!((tau / th - 3.0).abs() < 1e-6, "ξ must remain 3");
}

/// §1.4: all four throughput oracles agree on the early-evaluation
/// figures, and match the paper's printed values.
#[test]
fn four_oracles_agree_on_the_figures() {
    for (alpha, expected) in [(0.5, 0.4918), (0.9, 0.71875)] {
        let g = figures::figure_1b(alpha);
        let markov = exact_throughput(&g).unwrap().throughput;
        let machine = simulate(&g, &MachineParams::default()).unwrap().throughput;
        let tgmg = tgmg_sim::simulate(&tgmg_of(&g), &tgmg_sim::SimParams::default())
            .unwrap()
            .throughput;
        let bound = lp_bound::throughput_upper_bound(&tgmg_of(&g)).unwrap();
        assert!(
            (markov - expected).abs() < 1e-3,
            "markov {markov} vs {expected}"
        );
        assert!(
            (machine - markov).abs() < 0.02,
            "machine {machine} vs {markov}"
        );
        assert!((tgmg - markov).abs() < 0.02, "tgmg {tgmg} vs {markov}");
        assert!(
            bound >= markov - 1e-6,
            "LP bound {bound} below exact {markov}"
        );
    }
}

/// §1.4 + §4: `MIN_EFF_CYC` starting from Figure 1(a) discovers a
/// configuration at least as good as Figure 2 — the paper's optimum —
/// and never loses to min-delay retiming.
#[test]
fn optimizer_rediscovers_figure_2() {
    for alpha in [0.5, 0.9] {
        let g = figures::figure_1a(alpha);
        let out = min_eff_cyc(&g, &CoreOptions::fast()).unwrap();
        let best = out.best_simulated().expect("nonempty sweep");
        let fig2_xi = 1.0 / figures::figure_2_throughput(alpha);
        assert!(
            best.xi_sim <= fig2_xi * 1.05,
            "α={alpha}: ξ = {} vs Figure 2's {fig2_xi}",
            best.xi_sim
        );
        let retiming = min_period_retiming(&g).unwrap().period;
        assert!(best.xi_sim <= retiming + 1e-6);
    }
}

/// The anti-token arithmetic of §1.3: an empty EB equals a token followed
/// by an anti-token (0 = 1 − 1), so Figure 2's bottom bypass with R0 = −2
/// keeps both cycle token sums invariant.
#[test]
fn anti_token_invariants() {
    let g = figures::figure_2(0.5);
    assert_eq!(g.edge(figures::edge::BOTTOM).tokens(), -2);
    // Token sums: top cycle 4, bottom cycle 1 (§1.4).
    let t = |e| g.edge(e).tokens();
    let shared = t(figures::edge::M_F1)
        + t(figures::edge::F1_F2)
        + t(figures::edge::F2_F3)
        + t(figures::edge::F3_F);
    assert_eq!(shared + t(figures::edge::TOP), 4);
    assert_eq!(shared + t(figures::edge::BOTTOM), 1);
}

/// Facade smoke test: the re-exported module tree is usable as one
/// dependency.
#[test]
fn facade_reexports_work() {
    let g = rr_rrg::figures::figure_1a(0.5);
    let _ = retiming_recycling::rrg::cycle_time::cycle_time(&g).unwrap();
    let _ = retiming_recycling::tgmg::skeleton::tgmg_of(&g);
}
