//! Trajectory goldens for the **default** search configuration:
//! pseudo-cost branching with reliability probes plus lazily-separated
//! cycle-sum cuts (`Branching::PseudoCost`, `CoreOptions::cuts`).
//!
//! The `search_orders` suite pins the historical most-fractional
//! trajectories; this file pins the pseudo-cost ones, using the same
//! solver options as the `milp_scaling::branching_comparison` bench arm
//! so the node counts recorded in `BENCH_milp.json` and the goldens
//! here are the same numbers:
//!
//! * **Node-count goldens** on two fixed-seed instances (the 20-edge
//!   bench graph and the s27 ISCAS profile) — serial search under a
//!   node cap with no wall clock, so the counts are deterministic.
//! * **Search-strength gates** — pseudo-cost + cuts must *complete*
//!   (prove the optimum within gap) under budgets where most-fractional
//!   truncates, on the 40-edge cap-1000 instance and on s27.
//! * **Dual-bound regression** — under pseudo-cost branching the
//!   reported `dual_bound` and the `gap_tol` test use the global
//!   open-node minimum (a valid bound), not the root LP bound.

use rr_bench::milp_bench_instance as bench_instance;
use rr_core::{formulation, CoreOptions};
use rr_milp::{Branching, FactorKind, NodeOrder, Pricing};
use rr_rrg::iscas::IscasProfile;

/// The `branching_comparison` bench-arm options, verbatim: `fast()`
/// core options (2% gap), node cap only, sparse factors, serial.
fn opts(branching: Branching, cuts: bool, max_nodes: usize) -> CoreOptions {
    let mut opts = CoreOptions::fast();
    opts.solver.time_limit = None;
    opts.solver.max_nodes = max_nodes;
    opts.solver.factor = FactorKind::Sparse;
    opts.solver.gap_tol = 0.02;
    opts.solver.branching = branching;
    opts.solver.pricing = Pricing::Dantzig;
    opts.cuts = cuts;
    opts
}

/// 20-edge bench instance, MAX_THR: the pseudo-cost + cuts default
/// proves the most-fractional golden objective in 37 nodes where
/// most-fractional exhausts a 4000-node budget.
#[test]
fn bench20_pseudo_cost_golden() {
    let g = bench_instance(20);
    let out =
        formulation::max_thr(&g, g.max_delay(), &opts(Branching::PseudoCost, true, 4000)).unwrap();
    assert!(out.proven_optimal, "pseudo-cost run must complete");
    assert!(!out.stats.truncated);
    // Same optimum as the pinned most-fractional golden in
    // `search_orders.rs`.
    assert!(
        (out.objective - 6.4975018185460085).abs() < 1e-6,
        "obj {}",
        out.objective
    );
    assert_eq!(out.stats.nodes, 37, "node-count golden drifted");
    assert_eq!(out.stats.simplex_iters, 818, "pivot golden drifted");
    assert_eq!(out.stats.cuts_added, 5);
    assert_eq!(out.stats.cuts_activated, 5);
    assert!(
        out.stats.strong_branches > 0,
        "reliability probes never ran"
    );
    assert!(out.stats.pseudo_updates > 0, "pseudo-costs never learned");
    // Completed search: the reported dual bound meets the incumbent.
    assert!(
        (out.stats.dual_bound - out.objective).abs() < 1e-9,
        "dual bound {} vs objective {}",
        out.stats.dual_bound,
        out.objective
    );
}

/// s27, MAX_THR: most-fractional DFS parks on a ξ = 4.0 incumbent and
/// burns any node budget we give it; pseudo-cost + cuts proves ξ = 3.0
/// in 59 nodes.
#[test]
fn s27_pseudo_cost_escapes_the_most_fractional_plateau() {
    let g = IscasProfile::by_name("s27").unwrap().generate(2009);
    let pc =
        formulation::max_thr(&g, g.max_delay(), &opts(Branching::PseudoCost, true, 2000)).unwrap();
    assert!(pc.proven_optimal);
    assert!((pc.objective - 3.0).abs() < 1e-6, "obj {}", pc.objective);
    assert_eq!(pc.stats.nodes, 59, "node-count golden drifted");
    assert!(pc.stats.cuts_activated > 0, "no cycle-sum cut ever fired");

    let mf = formulation::max_thr(
        &g,
        g.max_delay(),
        &opts(Branching::MostFractional, false, 2000),
    )
    .unwrap();
    assert!(
        mf.stats.truncated,
        "most-fractional now completes; retire this gate"
    );
    assert!(pc.stats.nodes < mf.stats.nodes);
    assert!(pc.objective <= mf.objective + 1e-7);
}

/// 40-edge bench instance under the cap-1000 budget of the acceptance
/// sweep: pseudo-cost + cuts completes, most-fractional truncates.
#[test]
fn bench40_pseudo_cost_completes_under_the_cap_1000_budget() {
    let g = bench_instance(40);
    let pc =
        formulation::max_thr(&g, g.max_delay(), &opts(Branching::PseudoCost, true, 1000)).unwrap();
    assert!(pc.proven_optimal);
    assert!(!pc.stats.truncated);
    assert!((pc.objective - 3.0).abs() < 1e-6, "obj {}", pc.objective);
    assert!(pc.stats.nodes < 1000);

    let mf = formulation::max_thr(
        &g,
        g.max_delay(),
        &opts(Branching::MostFractional, false, 1000),
    )
    .unwrap();
    assert!(mf.stats.truncated);
    assert_eq!(mf.stats.nodes, 1000);
    assert!(pc.stats.nodes < mf.stats.nodes);
    assert!(pc.objective <= mf.objective + 1e-7);
}

/// Dual-bound regression (the PR's headline bugfix): a *truncated*
/// pseudo-cost best-bound run reports the global open-node minimum —
/// a bound that is (a) at least the root LP bound, (b) never above the
/// true optimum, and (c) strictly tighter than the root bound once the
/// best-bound frontier has climbed.
#[test]
fn truncated_pseudo_cost_reports_a_valid_global_dual_bound() {
    let g = bench_instance(40);
    // Cap 68: the ratio-test tie-anchor fix shortened this search to 69
    // nodes, so the historical cap of 150 no longer truncates it — and the
    // best-bound frontier only climbs past the root on the last few nodes.
    let mut o = opts(Branching::PseudoCost, true, 68);
    o.solver.node_order = NodeOrder::BestBound;
    o.solver.gap_tol = 1e-9;
    let out = formulation::max_thr(&g, g.max_delay(), &o).unwrap();
    assert!(
        out.stats.truncated,
        "completed in {} nodes",
        out.stats.nodes
    );
    let root = out.stats.root_bound;
    let dual = out.stats.dual_bound;
    assert!(dual.is_finite());
    assert!(dual >= root - 1e-9, "dual {dual} below root {root}");
    // The true optimum is ξ = 3.0 (proven by the completed runs above);
    // a *valid* lower bound can never overshoot it.
    assert!(dual <= 3.0 + 1e-6, "dual {dual} overshoots the optimum");
    assert!(
        dual > root + 1e-3,
        "best-bound frontier never tightened past the root LP ({root})"
    );
}

/// `gap_tol` regression: under pseudo-cost branching the gap test
/// measures against the global dual bound, so a 20% tolerance stops the
/// bench20 search early — and the reported `dual_bound` actually backs
/// the claimed gap. (Against the historical root-LP rule the apparent
/// gap never closed and `gap_tol` was dead weight.)
#[test]
fn gap_tolerance_fires_on_the_true_gap_under_pseudo_cost() {
    let g = bench_instance(20);
    let mut o = opts(Branching::PseudoCost, true, 4000);
    o.solver.gap_tol = 0.2;
    let out = formulation::max_thr(&g, g.max_delay(), &o).unwrap();
    assert!(
        out.proven_optimal,
        "within-gap termination counts as proven"
    );
    assert!(!out.stats.truncated);
    assert!(
        out.stats.nodes <= 37,
        "gap termination expanded more nodes than the gap-free run"
    );
    // The claim is backed by the reported bound, which stays valid.
    assert!(
        out.objective - out.stats.dual_bound <= 0.2 * out.objective.abs().max(1.0) + 1e-9,
        "gap claim not supported: obj {} dual {}",
        out.objective,
        out.stats.dual_bound
    );
    assert!(out.stats.dual_bound <= 6.4975018185460085 + 1e-6);
}
