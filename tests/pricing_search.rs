//! Pricing-rule regression suite for the revised simplex kernel
//! (`SolverOptions::pricing`):
//!
//! * **Agreement** — steepest-edge pricing (dual steepest-edge leaving
//!   rows, Devex entering columns, long-step ratio test, incremental
//!   reduced costs) and the historical Dantzig rule must prove
//!   identical optima on the Table-1 figure instances and the bench
//!   graphs, across both node orderings and serial/parallel search.
//! * **Degeneracy** — the Bland anti-cycling fallback still engages
//!   under steepest-edge pricing: a massively degenerate model must
//!   terminate at its true optimum.
//! * **Counter ledger** — the directional pivot counters tie out:
//!   `dual_pivots + primal_pivots + bound_flips = simplex_iters` on
//!   warm runs, and a warm search actually takes dual pivots.
//!
//! Everything here is deterministic: fixed seeds, node caps instead of
//! wall-clock limits.

use rr_bench::milp_bench_instance as bench_instance;
use rr_core::{formulation, CoreOptions};
use rr_milp::{
    cmp, solve_with_stats, Branching, FactorKind, LinExpr, Model, NodeOrder, Pricing, Sense,
    SolverOptions, Status,
};
use rr_rrg::figures;

/// Deterministic solver options: node caps only, no wall clock.
fn capped(pricing: Pricing, order: NodeOrder, max_nodes: usize, workers: usize) -> CoreOptions {
    let mut opts = CoreOptions::fast();
    opts.solver.time_limit = None;
    opts.solver.max_nodes = max_nodes;
    opts.solver.node_order = order;
    opts.solver.factor = FactorKind::Sparse;
    opts.solver.gap_tol = 1e-9;
    opts.solver.workers = workers;
    opts.solver.branching = Branching::MostFractional;
    opts.solver.pricing = pricing;
    opts.cuts = false;
    opts
}

/// Both pricing rules prove identical optima on every Table-1 figure
/// instance, for both problems, both node orderings and `workers ∈
/// {1, 2}` — completed runs only, which at these sizes is all of them.
#[test]
fn pricing_rules_agree_on_table1_instances() {
    let instances = [
        ("figure_1a(0.5)", figures::figure_1a(0.5)),
        ("figure_1b(0.5)", figures::figure_1b(0.5)),
        ("figure_2(0.7)", figures::figure_2(0.7)),
    ];
    for (name, g) in &instances {
        for problem in ["max_thr", "min_cyc"] {
            for order in [NodeOrder::DfsNearerFirst, NodeOrder::BestBound] {
                for workers in [1usize, 2] {
                    let solve = |pricing: Pricing| {
                        let o = capped(pricing, order, 20_000, workers);
                        match problem {
                            "max_thr" => formulation::max_thr(g, g.max_delay(), &o),
                            _ => formulation::min_cyc(g, 1.0, &o),
                        }
                        .unwrap_or_else(|e| panic!("{name}/{problem}: {e}"))
                    };
                    let se = solve(Pricing::SteepestEdge);
                    let dz = solve(Pricing::Dantzig);
                    assert!(se.proven_optimal, "{name}/{problem}: SE truncated");
                    assert!(dz.proven_optimal, "{name}/{problem}: Dantzig truncated");
                    assert!(
                        (se.objective - dz.objective).abs() < 1e-7,
                        "{name}/{problem}/{order:?}/workers={workers}: \
                         steepest-edge {} vs dantzig {}",
                        se.objective,
                        dz.objective
                    );
                }
            }
        }
    }
}

/// The 20-edge bench instance under the production configuration
/// (pseudo-cost branching + cycle-sum cuts — plain most-fractional
/// keeps the `MAX_THR` fractional plateau open at any cap): both
/// pricings complete and land on the pinned optimum.
#[test]
fn pricing_rules_agree_on_bench20() {
    let g = bench_instance(20);
    for pricing in [Pricing::SteepestEdge, Pricing::Dantzig] {
        let mut o = CoreOptions::fast();
        o.solver.time_limit = None;
        o.solver.max_nodes = 4000;
        o.solver.factor = FactorKind::Sparse;
        o.solver.pricing = pricing;
        let out = formulation::max_thr(&g, g.max_delay(), &o).unwrap();
        assert!(out.proven_optimal, "{pricing:?} truncated");
        assert!(
            (out.objective - 6.497_501_818_546_008_5).abs() < 1e-6,
            "{pricing:?}: obj {}",
            out.objective
        );
    }
}

/// A massively degenerate model — many redundant facets through the
/// same vertex — terminates at its optimum under steepest-edge pricing:
/// the degenerate-run Bland fallback is pricing-agnostic.
#[test]
fn steepest_edge_terminates_on_a_degenerate_model() {
    let mut m = Model::new(Sense::Maximize);
    let n = 8;
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_integer(format!("x{i}"), 0.0, 1.0))
        .collect();
    let mut obj = LinExpr::new();
    for &v in &vars {
        obj += 1.0 * v;
    }
    m.set_objective(obj);
    // Every pair constraint passes through the all-half vertex; any
    // subset of k of them is tight there, so node LPs are heavily
    // degenerate.
    for i in 0..n {
        for j in (i + 1)..n {
            m.add_constraint(vars[i] + vars[j], cmp::LE, 1.0);
        }
    }
    let opts = SolverOptions {
        pricing: Pricing::SteepestEdge,
        max_nodes: 20_000,
        ..SolverOptions::default()
    };
    let (sol, stats) = solve_with_stats(&m, &opts).unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!(!stats.truncated);
    // At most one variable can be 1 (pairwise caps): optimum 1.
    assert!((sol.objective - 1.0).abs() < 1e-7, "obj {}", sol.objective);
}

/// Directional pivot counters tie out against the kernel's total
/// iteration count on serial warm runs under both pricing rules, and a
/// warm search actually exercises the dual reoptimizer.
#[test]
fn pivot_counters_tie_out_on_serial_warm_runs() {
    let g = bench_instance(20);
    for pricing in [Pricing::SteepestEdge, Pricing::Dantzig] {
        let o = capped(pricing, NodeOrder::DfsNearerFirst, 2000, 1);
        let out = formulation::max_thr(&g, g.max_delay(), &o).unwrap();
        let s = &out.stats;
        assert_eq!(
            s.dual_pivots + s.primal_pivots + s.bound_flips,
            s.simplex_iters,
            "{pricing:?}: counter ledger does not tie out"
        );
        assert!(s.primal_pivots > 0, "{pricing:?}: no primal pivots counted");
        assert!(
            s.dual_pivots > 0,
            "{pricing:?}: warm search never took a dual pivot"
        );
    }
}

/// The ledger also ties out through the parallel merge layer (every
/// worker's kernel is absorbed additively).
#[test]
fn pivot_counters_tie_out_across_workers() {
    let g = bench_instance(20);
    let o = capped(Pricing::SteepestEdge, NodeOrder::BestBound, 2000, 2);
    let out = formulation::max_thr(&g, g.max_delay(), &o).unwrap();
    let s = &out.stats;
    assert_eq!(
        s.dual_pivots + s.primal_pivots + s.bound_flips,
        s.simplex_iters,
        "parallel merge lost pricing counters"
    );
}
