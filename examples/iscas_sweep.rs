//! One Table-2 benchmark, end to end, with the full Pareto frontier
//! printed — a miniature of the `table1`/`table2` harness binaries.
//!
//! ```text
//! cargo run --release --example iscas_sweep            # default s382
//! cargo run --release --example iscas_sweep s27 7      # circuit + seed
//! ```

use rr_core::{report::evaluate_benchmark, CoreOptions};
use rr_rrg::iscas::IscasProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "s382".into());
    let seed: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(2009);

    let profile = IscasProfile::by_name(&name)
        .ok_or_else(|| format!("unknown circuit {name}; names come from Table 2 (s27, s382, …)"))?;
    // Keep the example snappy on one core: cap the instance size.
    let effective = profile.scaled(90);
    let g = effective.generate(seed);
    println!(
        "{name}: |N1| = {}, |N2| = {}, |E| = {} (seed {seed}{})",
        g.num_simple(),
        g.num_early(),
        g.num_edges(),
        if effective == profile { "" } else { ", scaled" },
    );

    let mut opts = CoreOptions::default();
    opts.solver.time_limit = Some(std::time::Duration::from_secs(15));
    let (row, table1) = evaluate_benchmark(&name, &g, &opts)?;
    print!("{table1}");
    println!(
        "\nξ* = {:.2} → ξ_nee = {:.2} (retiming) → ξ = {:.2} (early evaluation), I = {:.1}%",
        row.xi_star, row.xi_nee, row.xi_sim_min, row.improvement_pct
    );
    Ok(())
}
