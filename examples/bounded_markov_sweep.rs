//! Bounded-capacity Markov sweep at the sparse solver's new scale.
//!
//! The paper analyses its motivating example with a hand-resolved Markov
//! chain and notes the approach "does not scale in general"; the sparse
//! CSR engine in `rr-markov` pushes the exact analysis to bounded-capacity
//! chains with 10⁴–10⁵ recurrent states. This example sweeps the per-EB
//! capacity `k` over pipelined figure-1(b) instances and prints, per
//! configuration, the reachable state count, the recurrent-class size and
//! the *exact* throughput — quantifying what the paper's footnote-1
//! idealisation ("each elastic FIFO is big enough") is worth, with the
//! Markov chain itself rather than a finite simulation.
//!
//! `k = 1` starves the three-token top channels (capacity 3 = tokens 3:
//! no slack for the mux to run ahead) and the ring deadlocks — the
//! failure mode FIFO sizing (Lu & Koh, ICCAD'03) exists to prevent;
//! `k = 2`, the real-elastic-buffer model, already recovers the
//! unbounded-capacity throughput on every instance here.
//!
//! ```text
//! cargo run --release --example bounded_markov_sweep
//! ```

use rr_elastic::Capacity;
use rr_markov::{exact_throughput_with, MarkovParams, StationarySolver};
use rr_rrg::figures;
use std::time::Instant;

fn main() {
    println!(
        "exact bounded-capacity throughput via the sparse Markov engine\n\
         (pipelined figure-1(b) instances; k = per-EB token capacity)\n"
    );
    println!(
        "{:<14} {:>10} {:>9} {:>10} {:>12} {:>9}",
        "instance", "capacity", "states", "recurrent", "throughput", "solve"
    );
    for (label, lens) in [
        ("pipeline 2x3", vec![3usize, 3]),
        ("pipeline 2x4", vec![4, 4]),
        ("pipeline 2x5", vec![5, 5]),
    ] {
        let g = figures::figure_1b_pipeline(&lens, 0.6);
        for cap in [
            Capacity::PerBuffer(1),
            Capacity::PerBuffer(2),
            Capacity::PerBuffer(3),
            Capacity::Unbounded,
        ] {
            let params = MarkovParams {
                capacity: cap,
                max_states: 500_000,
                max_exact_solve: 500_000,
                solver: StationarySolver::SparseIterative,
                faults: None,
            };
            let cap_label = match cap {
                Capacity::Unbounded => "unbounded".to_string(),
                Capacity::PerBuffer(k) => format!("k={k}"),
            };
            let t0 = Instant::now();
            match exact_throughput_with(&g, &params) {
                Ok(r) => {
                    let note = if !r.exact {
                        " (power-iteration estimate: deadlocked terminal states)"
                    } else {
                        ""
                    };
                    println!(
                        "{label:<14} {cap_label:>10} {:>9} {:>10} {:>12.6} {:>8.0?}{note}",
                        r.states,
                        r.recurrent_states,
                        r.throughput,
                        t0.elapsed()
                    );
                }
                Err(e) => println!("{label:<14} {cap_label:>10} failed: {e}"),
            }
        }
        println!();
    }
    println!(
        "note: every k ≥ 2 row is an exact stationary solve (‖πP − π‖₁ below\n\
         1e-10); the largest recurrent class here (~28k states) is 14× past\n\
         the old dense engine's 2,000-state wall."
    );
}
