//! Quickstart: build an elastic system, measure it four ways, optimize it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use retiming_recycling::prelude::*;
use rr_core::{min_eff_cyc, CoreOptions};
use rr_elastic::{simulate, MachineParams};
use rr_markov::exact_throughput;
use rr_rrg::{cycle_time, RrgBuilder};
use rr_tgmg::{lp_bound, skeleton::tgmg_of};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe an elastic system as a Retiming & Recycling Graph: a
    //    multiplexer that usually (90 %) takes the short loop, and a
    //    3-stage pipeline on the long loop.
    let mut b = RrgBuilder::new();
    let mux = b.add_early("mux", 1.0);
    let a = b.add_simple("a", 6.0);
    let c = b.add_simple("c", 6.0);
    let d = b.add_simple("d", 6.0);
    let short = b.add_edge(mux, mux, 1, 1); // self-loop carrying a token
    b.add_edge(mux, a, 1, 1);
    b.add_edge(a, c, 0, 0);
    b.add_edge(c, d, 0, 0);
    let long = b.add_edge(d, mux, 1, 1);
    b.set_gamma(short, 0.9);
    b.set_gamma(long, 0.1);
    let rrg = b.build()?;

    // 2. Measure the unoptimized system.
    let tau = cycle_time::cycle_time(&rrg)?;
    let tgmg = tgmg_of(&rrg);
    let bound = lp_bound::throughput_upper_bound(&tgmg)?;
    let machine = simulate(&rrg, &MachineParams::default())?;
    let markov = exact_throughput(&rrg)?;
    println!("before optimization:");
    println!("  cycle time τ              = {tau}");
    println!("  Θ upper bound (LP)        = {bound:.4}");
    println!("  Θ measured (machine sim)  = {:.4}", machine.throughput);
    println!("  Θ exact (Markov chain)    = {:.4}", markov.throughput);
    println!(
        "  effective cycle time ξ    = {:.3}",
        tau / markov.throughput
    );

    // 3. Optimize: retiming + recycling with early evaluation.
    let out = min_eff_cyc(&rrg, &CoreOptions::default())?;
    println!("\nPareto sweep ({} configurations):", out.evaluations.len());
    for ev in &out.evaluations {
        println!(
            "  τ = {:>5.1}  Θ_lp = {:.4}  Θ = {:.4}  ξ = {:.3}",
            ev.tau, ev.theta_lp, ev.theta_sim, ev.xi_sim
        );
    }
    let best = out.best_simulated().expect("nonempty sweep");
    println!(
        "\nbest effective cycle time ξ = {:.3}  (was {:.3})",
        best.xi_sim,
        tau / markov.throughput
    );
    Ok(())
}
