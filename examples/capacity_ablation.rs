//! Ablation of the paper's footnote-1 assumption ("each elastic FIFO is
//! big enough"): how much throughput do *real* capacity-2 elastic buffers
//! lose against the idealised unbounded channels, across the motivating
//! figures and a few random benchmarks?
//!
//! The paper sidesteps this with a pointer to Lu & Koh's FIFO-sizing work;
//! this example quantifies the gap in our reproduction.
//!
//! ```text
//! cargo run --release --example capacity_ablation
//! ```

use rr_elastic::{simulate, Capacity, MachineParams};
use rr_rrg::{figures, generate::GeneratorParams, Rrg};

fn measure(name: &str, g: &Rrg) {
    let base = MachineParams {
        horizon: 20_000,
        warmup: 2_000,
        ..Default::default()
    };
    let unbounded = simulate(g, &base).map(|r| r.throughput);
    let line: String = [1u32, 2, 4]
        .iter()
        .map(|&k| {
            let params = MachineParams {
                capacity: Capacity::PerBuffer(k),
                ..base.clone()
            };
            match simulate(g, &params) {
                Ok(r) => format!("  k={k}: {:.4}", r.throughput),
                Err(_) => format!("  k={k}: deadlock"),
            }
        })
        .collect();
    match unbounded {
        Ok(th) => println!("{name:<24} unbounded: {th:.4}{line}"),
        Err(e) => println!("{name:<24} unbounded failed: {e}"),
    }
}

fn main() {
    println!("throughput under per-EB capacity k vs the footnote-1 idealisation\n");
    for &alpha in &[0.5, 0.9] {
        measure(
            &format!("figure 1(b) α={alpha}"),
            &figures::figure_1b(alpha),
        );
        measure(&format!("figure 2    α={alpha}"), &figures::figure_2(alpha));
    }
    for seed in 0..4 {
        let g = GeneratorParams::paper_defaults(14, 3, 34).generate(seed);
        measure(&format!("random-17n-34e seed={seed}"), &g);
    }
    println!(
        "\nNote: k = 2 models real elastic buffers; wire channels (R = 0) hold no\n\
         tokens under any k, so producers there couple combinationally to their\n\
         consumers, which can deadlock token-starved loops — exactly the failure\n\
         mode FIFO sizing (Lu & Koh, ICCAD'03) exists to prevent."
    );
}
