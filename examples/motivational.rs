//! The paper's §1 walk-through, reproduced end to end:
//!
//! 1. Figure 1(a): retiming alone cannot beat cycle time 3.
//! 2. Figure 1(b): recycling reaches τ = 1 but late evaluation caps the
//!    throughput at 1/3 — no effective gain.
//! 3. Early evaluation lifts Figure 1(b) to Θ = 0.491 / 0.719 (α = 0.5 /
//!    0.9) — the paper's Markov-chain numbers.
//! 4. Figure 2 (retiming + recycling + anti-tokens) reaches Θ = 1/(3−2α).
//! 5. `MIN_EFF_CYC` discovers that configuration automatically.
//!
//! ```text
//! cargo run --release --example motivational
//! ```

use rr_core::{min_eff_cyc, CoreOptions};
use rr_markov::exact_throughput;
use rr_retime::min_period_retiming;
use rr_rrg::{cycle_time, figures};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alpha = 0.9;

    // --- 1. Retiming alone -------------------------------------------
    let fig1a = figures::figure_1a(alpha);
    let ls = min_period_retiming(&fig1a)?;
    println!(
        "figure 1(a): τ = {}, min-delay retiming reaches τ = {} (paper: 3 is minimal)",
        cycle_time::cycle_time(&fig1a)?,
        ls.period
    );

    // --- 2./3. Recycling, late vs early ------------------------------
    let fig1b = figures::figure_1b(alpha);
    let late = exact_throughput(&fig1b.with_late_evaluation())?;
    let early = exact_throughput(&fig1b)?;
    println!(
        "figure 1(b): τ = {}, Θ_late = {:.4} (ξ = {:.2}), Θ_early = {:.4} (ξ = {:.3})",
        cycle_time::cycle_time(&fig1b)?,
        late.throughput,
        1.0 / late.throughput,
        early.throughput,
        1.0 / early.throughput,
    );
    println!("             paper: Θ_early(α=0.9) = 0.719");

    // --- 4. The optimal configuration --------------------------------
    let fig2 = figures::figure_2(alpha);
    let opt = exact_throughput(&fig2)?;
    println!(
        "figure 2   : τ = {}, Θ = {:.4} — closed form 1/(3−2α) = {:.4}, ξ = {:.3}",
        cycle_time::cycle_time(&fig2)?,
        opt.throughput,
        figures::figure_2_throughput(alpha),
        1.0 / opt.throughput,
    );

    // --- 5. Automatic discovery --------------------------------------
    let out = min_eff_cyc(&fig1a, &CoreOptions::default())?;
    let best = out.best_simulated().expect("sweep found configurations");
    println!(
        "MIN_EFF_CYC: best ξ = {:.3} at τ = {} with Θ = {:.4} ({} Pareto points)",
        best.xi_sim,
        best.tau,
        best.theta_sim,
        out.evaluations.len()
    );
    println!(
        "improvement over best retiming: {:.1}% (paper reports up to ~50% for such cases)",
        (ls.period - best.xi_sim) / ls.period * 100.0
    );
    Ok(())
}
