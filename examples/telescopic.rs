//! Telescopic units — the paper's §6 future-work item, implemented.
//!
//! A telescopic block is clocked for its *typical* delay and stretches
//! over extra cycles for rare worst-case operations; the elastic
//! handshake absorbs the stretch. This example compares, on the
//! motivating example, three ways to build the pipeline stage `F2`:
//!
//! * **conservative** — clock the whole system for the worst case
//!   (τ grows by the worst-case slack, Θ = 1),
//! * **telescopic**   — clock for the typical case, stretch with
//!   probability `1 − p` (τ stays, Θ drops a little),
//! * **oracle**       — clock for the typical case and pretend the worst
//!   case never happens (a lower bound, not implementable).
//!
//! ```text
//! cargo run --release --example telescopic
//! ```

use rr_elastic::{simulate, MachineParams, TelescopicSpec};
use rr_rrg::{cycle_time, figures};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alpha = 0.9;
    let g = figures::figure_2(alpha); // already optimally retimed/recycled
    let f2 = g.node_by_name("F2").expect("figure node");
    let tau = cycle_time::cycle_time(&g)?; // = 1.0, set by the unit delays

    println!("figure 2 (α = {alpha}) with a variable-latency F2:");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12}",
        "design", "τ", "Θ", "ξ = τ/Θ", "vs oracle"
    );

    let oracle = simulate(&g, &MachineParams::default())?.throughput;
    println!(
        "{:<14} {:>10.2} {:>10.4} {:>10.3} {:>11.1}%",
        "oracle",
        tau,
        oracle,
        tau / oracle,
        0.0
    );

    for (p, extra) in [(0.95, 1u64), (0.8, 1), (0.8, 3)] {
        // Conservative: the clock stretches for the worst case on every
        // cycle — τ scales by the worst-case latency of the slow unit.
        let tau_cons = tau * (1 + extra) as f64;
        let xi_cons = tau_cons / oracle;

        // Telescopic: same clock, occasional stretching.
        let params = MachineParams {
            telescopic: vec![TelescopicSpec {
                node: f2,
                fast_prob: p,
                slow_extra: extra,
            }],
            ..Default::default()
        };
        let tele = simulate(&g, &params)?.throughput;
        let xi_tele = tau / tele;

        println!(
            "{:<14} {:>10.2} {:>10.4} {:>10.3} {:>11.1}%",
            format!("conserv. {extra}x"),
            tau_cons,
            oracle,
            xi_cons,
            (xi_cons / (tau / oracle) - 1.0) * 100.0
        );
        println!(
            "{:<14} {:>10.2} {:>10.4} {:>10.3} {:>11.1}%",
            format!("tele p={p}"),
            tau,
            tele,
            xi_tele,
            (xi_tele / (tau / oracle) - 1.0) * 100.0
        );
    }
    println!(
        "\nTelescoping beats conservative clocking whenever the slow path is rare:\n\
         the ξ penalty is ≈ (1−p)·extra instead of a full ×(1+extra) clock stretch."
    );
    Ok(())
}
