#!/usr/bin/env bash
# Tier-1 verify plus bench-rot protection, exactly as CI runs it.
#
#   ./scripts/ci.sh
#
# All dependencies are vendored (vendor/{rand,proptest,criterion}), so
# the build works fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "==> cargo test -q"
cargo test -q --offline

# The rr-milp property suites are the sparse-LU ↔ dense-oracle agreement
# gate. The vendored proptest draws a deterministic, name-seeded stream
# (see vendor/proptest), so this is a fixed-seed run by construction —
# a failure here reproduces exactly on re-run.
echo "==> cargo test -p rr-milp proptests (fixed-seed kernel/oracle gate)"
cargo test -q -p rr-milp --offline proptests

# The node-ordering regression: DFS through the unified search core must
# reproduce the pre-refactor golden trajectories bit-for-bit, best-bound
# must escape the 40-edge MAX_THR plateau, and both orderings must prove
# identical optima on every instance they can complete. Fixed seeds and
# node caps (no wall clocks), so failures reproduce exactly.
echo "==> cargo test --test search_orders (fixed-seed node-ordering gate)"
cargo test -q --offline --test search_orders

# The self-healing gate: fixed-seed fault-injected runs must prove the
# same optima as their clean twins on every Table-1 figure and bench
# instance, with the recovery counters showing every failure class was
# observed and every ladder rung fired. The FaultPlan is seeded (one
# deterministic SplitMix64 stream per site), so failures replay exactly.
echo "==> cargo test --test fault_injection (fixed-seed recovery-ladder gate)"
cargo test -q --offline --release --test fault_injection

# The parallel-search determinism gate: workers=1 must reproduce the
# serial goldens bit-exact, workers∈{2,4} must prove identical optima
# and verdicts on every completed Table-1 instance, and fault-injected
# parallel runs must agree with their clean twins. Run in release: the
# suite solves every instance at three worker counts.
echo "==> cargo test --test parallel_search (parallel-search determinism gate)"
cargo test -q --offline --release --test parallel_search

# The pseudo-cost trajectory gate: node-count goldens for the default
# search (pseudo-cost branching + cycle-sum cuts) on fixed-seed
# instances, the search-strength comparisons against most-fractional,
# and the dual-bound/gap regression tests. Fixed seeds and node caps.
echo "==> cargo test --test pseudo_cost_search (pseudo-cost golden gate)"
cargo test -q --offline --release --test pseudo_cost_search

# The pricing gate: steepest-edge (dual steepest-edge rows + Devex
# columns + long-step ratio test) and the historical Dantzig rule must
# prove identical optima on the Table-1 figures and the bench-20
# instance across orderings and worker counts, steepest edge must
# terminate on a massively degenerate model, and the directional pivot
# counters must tie out against the kernel's iteration ledger.
echo "==> cargo test --test pricing_search (pricing agreement gate)"
cargo test -q --offline --release --test pricing_search

# The backend-unification gate: the two PR 4 golden instances must
# replay bit-exact through the unified warm backend, mirrored/free
# integer fixtures (the deleted LegacyBackend's model class) must solve
# warm at workers∈{1,2} and agree with the dense oracle, and
# source-level assertions pin that no model clone lives in the node
# loop. Fixed seeds and node caps, so failures reproduce exactly.
echo "==> cargo test --test backend_unification (one-backend gate)"
cargo test -q --offline --release --test backend_unification

# The reduced Table-2 sweep: all 18 ISCAS89 profiles scaled to 20 edges
# under a deterministic per-MILP node budget (the generous wall clock
# never binds in practice). Before pseudo-cost branching and cycle-sum
# cuts, the low-θ MIN_CYC steps of the sweep blew any such budget on
# most circuits; the gate holds the line at ≥ 12 of 18 circuits with
# every MILP in their sweeps proven within gap (currently 17–18). The
# sweep's per-circuit records append to BENCH_milp.json.
echo "==> table2 --max-edges 20 (reduced Table-2 sweep gate)"
cargo run --release -q -p rr-bench --bin table2 --offline -- \
  --max-edges 20 --max-nodes 20000 --time-limit 600 --require-complete 12

# Bench code must at least compile so the perf harness can't silently
# rot between PRs (running the benches stays a manual/nightly job); this
# also covers the ordering and parallel A/B arms of milp_scaling
# (ordering_comparison, parallel_comparison).
echo "==> cargo bench --no-run"
cargo bench --no-run --offline

echo "CI OK"
