//! Stationary solve on the terminal strongly connected component.
//!
//! Two interchangeable solvers compute `π P = π, Σπ = 1` on the recurrent
//! class (selected by [`MarkovParams::solver`]):
//!
//! * [`StationarySolver::SparseIterative`] — the production path: a
//!   Gauss–Seidel sweep over the in-transition (CSC) structure of the
//!   class, normalised each pass, with a rigorous residual-based stopping
//!   rule `‖πP − π‖₁ < ε`. When the sweep stalls (periodic classes can
//!   make plain Gauss–Seidel oscillate) it degrades to damped power steps
//!   `π ← (π + πP)/2`, which converge on any irreducible class. Memory
//!   and per-sweep work are `O(transitions)`.
//! * [`StationarySolver::DenseGaussJordan`] — the original `O(k³)`
//!   elimination, kept as a cross-validation oracle. It refuses classes
//!   beyond [`DENSE_STATE_CAP`] states instead of grinding.
//!
//! Multi-terminal chains (or classes beyond `max_exact_solve`) fall back
//! to the Cesàro-averaged power iteration in [`crate::power`].

use std::collections::HashMap;

use crate::chain::Chain;
use crate::power::power_iteration;
use crate::{MarkovError, MarkovParams, MarkovResult, SolveQuality, StationarySolver};

/// Hard cap on the dense oracle: beyond this many recurrent states the
/// `O(k³)` elimination is hopeless and [`MarkovError::DenseSolveTooLarge`]
/// is returned instead. (This was the silent fallback threshold of the
/// old dense-only engine.)
pub const DENSE_STATE_CAP: usize = 2_000;

/// `‖πP − π‖₁` threshold of the sparse iterative solver, scaled mildly
/// with the class size to stay achievable in double precision.
fn residual_eps(k: usize) -> f64 {
    1e-13 + k as f64 * 1e-15
}

/// Finds the recurrent class and solves for the stationary throughput.
pub fn solve_chain(chain: &Chain, params: &MarkovParams) -> Result<MarkovResult, MarkovError> {
    let n = chain.num_states();
    let sccs = tarjan(chain);
    let mut comp_of = vec![usize::MAX; n];
    for (ci, comp) in sccs.iter().enumerate() {
        for &s in comp {
            comp_of[s] = ci;
        }
    }
    // Terminal SCCs: no transition leaves the component.
    let mut terminal: Vec<usize> = Vec::new();
    'comp: for (ci, comp) in sccs.iter().enumerate() {
        for &s in comp {
            for &t in chain.succs(s) {
                if comp_of[t as usize] != ci {
                    continue 'comp;
                }
            }
        }
        terminal.push(ci);
    }

    if terminal.len() == 1 && sccs[terminal[0]].len() <= params.max_exact_solve {
        let mut comp = sccs[terminal[0]].clone();
        comp.sort_unstable();
        let (theta, quality) = match params.solver {
            StationarySolver::SparseIterative => stationary_sparse(chain, &comp, params),
            StationarySolver::DenseGaussJordan => {
                if comp.len() > DENSE_STATE_CAP {
                    return Err(MarkovError::DenseSolveTooLarge {
                        states: comp.len(),
                        cap: DENSE_STATE_CAP,
                    });
                }
                (stationary_dense(chain, &comp), SolveQuality::Direct)
            }
        };
        Ok(MarkovResult {
            throughput: theta,
            states: n,
            recurrent_states: comp.len(),
            exact: quality != SolveQuality::CesaroAverage,
            quality,
        })
    } else {
        // Multi-terminal or oversized: Cesàro-averaged power iteration
        // from the initial state.
        let theta = power_iteration(chain).ok_or(MarkovError::NoConvergence)?;
        Ok(MarkovResult {
            throughput: theta,
            states: n,
            recurrent_states: terminal.iter().map(|&c| sccs[c].len()).sum(),
            exact: false,
            quality: SolveQuality::CesaroAverage,
        })
    }
}

/// The terminal class of `chain` restricted to local indices, stored both
/// row-wise (CSR, for residuals and power steps) and column-wise (CSC,
/// for Gauss–Seidel updates).
struct LocalClass {
    /// CSR: out-transitions `(local target, prob)` per local state.
    out_offsets: Vec<usize>,
    out_cols: Vec<u32>,
    out_probs: Vec<f64>,
    /// CSC: in-transitions `(local source, prob)` per local state, with
    /// self-loops split out into `self_prob`.
    in_offsets: Vec<usize>,
    in_rows: Vec<u32>,
    in_probs: Vec<f64>,
    self_prob: Vec<f64>,
}

impl LocalClass {
    /// Builds the local CSR/CSC pair for a terminal class (`comp` sorted
    /// ascending). All transitions of a terminal class stay inside it.
    fn new(chain: &Chain, comp: &[usize]) -> LocalClass {
        let k = comp.len();
        let mut local = HashMap::with_capacity(k);
        for (i, &s) in comp.iter().enumerate() {
            local.insert(s, i as u32);
        }
        let mut out_offsets = Vec::with_capacity(k + 1);
        let mut out_cols = Vec::new();
        let mut out_probs = Vec::new();
        let mut self_prob = vec![0.0f64; k];
        let mut in_degree = vec![0usize; k];
        out_offsets.push(0);
        for (i, &s) in comp.iter().enumerate() {
            for (t, p, _) in chain.row(s) {
                let j = local[&t];
                out_cols.push(j);
                out_probs.push(p);
                if j as usize == i {
                    self_prob[i] += p;
                } else {
                    in_degree[j as usize] += 1;
                }
            }
            out_offsets.push(out_cols.len());
        }
        // Scatter the transposed (CSC) structure, self-loops excluded.
        let mut in_offsets = vec![0usize; k + 1];
        for j in 0..k {
            in_offsets[j + 1] = in_offsets[j] + in_degree[j];
        }
        let mut cursor = in_offsets.clone();
        let mut in_rows = vec![0u32; in_offsets[k]];
        let mut in_probs = vec![0.0f64; in_offsets[k]];
        for i in 0..k {
            for idx in out_offsets[i]..out_offsets[i + 1] {
                let j = out_cols[idx] as usize;
                if j != i {
                    in_rows[cursor[j]] = i as u32;
                    in_probs[cursor[j]] = out_probs[idx];
                    cursor[j] += 1;
                }
            }
        }
        LocalClass {
            out_offsets,
            out_cols,
            out_probs,
            in_offsets,
            in_rows,
            in_probs,
            self_prob,
        }
    }

    fn num_states(&self) -> usize {
        self.self_prob.len()
    }

    /// `next ← πP` (dense over the class, sparse over transitions).
    fn apply(&self, pi: &[f64], next: &mut [f64]) {
        next.iter_mut().for_each(|x| *x = 0.0);
        for (i, &p) in pi.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            for idx in self.out_offsets[i]..self.out_offsets[i + 1] {
                next[self.out_cols[idx] as usize] += p * self.out_probs[idx];
            }
        }
    }
}

/// `‖πP − π‖₁`, reusing `scratch` for the product.
fn residual(class: &LocalClass, pi: &[f64], scratch: &mut [f64]) -> f64 {
    class.apply(pi, scratch);
    pi.iter()
        .zip(scratch.iter())
        .map(|(a, b)| (a - b).abs())
        .sum()
}

/// Sparse iterative stationary throughput on one terminal class:
/// Gauss–Seidel with damped-power fallback, stopping on the `‖πP − π‖₁`
/// residual. Never fails — when both iterative phases exhaust their
/// budgets the Cesàro average of the damped-power iterates is returned
/// with [`SolveQuality::CesaroAverage`] (a budget overrun on a
/// well-formed chain should degrade the answer's pedigree, not destroy
/// the whole sweep that asked for it).
fn stationary_sparse(chain: &Chain, comp: &[usize], params: &MarkovParams) -> (f64, SolveQuality) {
    let faults = params.faults.unwrap_or_default();
    let class = LocalClass::new(chain, comp);
    let k = class.num_states();
    if k == 1 {
        return (chain.expected_reward(comp[0]), SolveQuality::Direct);
    }
    let eps = residual_eps(k);
    let mut pi = vec![1.0 / k as f64; k];
    let mut scratch = vec![0.0f64; k];

    // Phase 1: Gauss–Seidel sweeps. π_j ← Σ_{i≠j} π_i p_ij / (1 − p_jj),
    // consuming already-updated entries — typically a few dozen sweeps
    // even on 10⁵-state classes. The injected stall reproduces what the
    // rising-residual detector does on a periodic class.
    let max_sweeps = if faults.stall_gauss_seidel { 0 } else { 10_000 };
    let mut prev_res = f64::INFINITY;
    let mut rising = 0u32;
    for _ in 0..max_sweeps {
        for j in 0..k {
            let mut acc = 0.0f64;
            for idx in class.in_offsets[j]..class.in_offsets[j + 1] {
                acc += pi[class.in_rows[idx] as usize] * class.in_probs[idx];
            }
            let denom = 1.0 - class.self_prob[j];
            // `denom` can only vanish on an absorbing singleton, handled
            // above; guard against pathological rounding anyway.
            pi[j] = if denom > 1e-300 { acc / denom } else { acc };
        }
        let mass: f64 = pi.iter().sum();
        if !(mass.is_finite() && mass > 0.0) {
            break; // diverged — let the damped-power phase restart it
        }
        let inv = 1.0 / mass;
        pi.iter_mut().for_each(|x| *x *= inv);
        let res = residual(&class, &pi, &mut scratch);
        if res < eps {
            return (
                class_throughput(chain, comp, &pi),
                SolveQuality::GaussSeidel,
            );
        }
        rising = if res >= prev_res { rising + 1 } else { 0 };
        prev_res = res;
        if rising >= 8 {
            break; // oscillating (periodic class): switch to damped power
        }
    }

    // Phase 2: damped power steps π ← (π + πP)/2. The ½ damping makes the
    // iteration aperiodic, so it converges on any irreducible class; the
    // residual is read off the same product. A Cesàro running average of
    // the iterates is kept alongside: it is the degraded answer should
    // the budget run out.
    if pi.iter().any(|x| !x.is_finite()) {
        pi.iter_mut().for_each(|x| *x = 1.0 / k as f64);
    }
    // The injected stall leaves a budget far too small for the residual
    // tolerance yet big enough to seed a meaningful Cesàro average.
    let max_steps = if faults.stall_damped_power {
        16
    } else {
        4_000_000
    };
    let mut cesaro = vec![0.0f64; k];
    for _ in 0..max_steps {
        class.apply(&pi, &mut scratch);
        let mut res = 0.0f64;
        let mut mass = 0.0f64;
        for (p, q) in pi.iter_mut().zip(scratch.iter()) {
            res += (*p - *q).abs();
            *p = 0.5 * (*p + *q);
            mass += *p;
        }
        let inv = 1.0 / mass;
        for (p, c) in pi.iter_mut().zip(cesaro.iter_mut()) {
            *p *= inv;
            *c += *p;
        }
        if res < eps {
            return (
                class_throughput(chain, comp, &pi),
                SolveQuality::DampedPower,
            );
        }
    }
    // Budget exhausted: degrade to the Cesàro average — the time average
    // of the damped iterates, which converges (slowly but surely) to the
    // stationary distribution even when the pointwise iteration crawls.
    let mass: f64 = cesaro.iter().sum();
    if mass.is_finite() && mass > 0.0 {
        let inv = 1.0 / mass;
        cesaro.iter_mut().for_each(|x| *x *= inv);
    } else {
        // Even the average is unusable; report the uniform distribution
        // rather than NaNs — quality already says "do not trust blindly".
        cesaro.iter_mut().for_each(|x| *x = 1.0 / k as f64);
    }
    (
        class_throughput(chain, comp, &cesaro),
        SolveQuality::CesaroAverage,
    )
}

/// `Σ_s π(s)·r̄(s)` over the class.
fn class_throughput(chain: &Chain, comp: &[usize], pi: &[f64]) -> f64 {
    comp.iter()
        .zip(pi.iter())
        .map(|(&s, &p)| p * chain.expected_reward(s))
        .sum()
}

/// Solves `π P = π, Σπ = 1` on one recurrent class by dense Gaussian
/// elimination and returns `Σ_s π(s)·r̄(s)` — the cross-validation oracle.
fn stationary_dense(chain: &Chain, comp: &[usize]) -> f64 {
    let k = comp.len();
    let mut local = HashMap::with_capacity(k);
    for (i, &s) in comp.iter().enumerate() {
        local.insert(s, i);
    }
    // Rows 0..k-1: (P^T − I) π = 0, last row replaced by Σπ = 1.
    let w = k + 1;
    let mut a = vec![0.0f64; k * w];
    for (i, &s) in comp.iter().enumerate() {
        for (t, p, _) in chain.row(s) {
            let j = local[&t];
            a[j * w + i] += p;
        }
    }
    for d in 0..k {
        a[d * w + d] -= 1.0;
    }
    for c in 0..k {
        a[(k - 1) * w + c] = 1.0;
    }
    a[(k - 1) * w + k] = 1.0;

    gaussian_solve(&mut a, k);
    let pi: Vec<f64> = (0..k).map(|i| a[i * w + k]).collect();
    class_throughput(chain, comp, &pi)
}

/// In-place Gauss–Jordan with partial pivoting on a `k × (k+1)` augmented
/// system; the solution lands in the last column.
fn gaussian_solve(a: &mut [f64], k: usize) {
    let w = k + 1;
    for col in 0..k {
        let mut best = col;
        for r in col + 1..k {
            if a[r * w + col].abs() > a[best * w + col].abs() {
                best = r;
            }
        }
        if best != col {
            for c in 0..w {
                a.swap(col * w + c, best * w + c);
            }
        }
        let pivot = a[col * w + col];
        if pivot.abs() < 1e-12 {
            continue; // singular direction; the normalisation row disambiguates
        }
        for r in 0..k {
            if r != col {
                let f = a[r * w + col] / pivot;
                if f != 0.0 {
                    for c in col..w {
                        a[r * w + c] -= f * a[col * w + c];
                    }
                }
            }
        }
        let inv = 1.0 / pivot;
        for c in col..w {
            a[col * w + c] *= inv;
        }
    }
}

/// Iterative Tarjan SCC on the CSR transition graph.
fn tarjan(chain: &Chain) -> Vec<Vec<usize>> {
    let n = chain.num_states();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        call.push((root, 0));
        index[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ei)) = call.last_mut() {
            let succs = chain.succs(v);
            if *ei < succs.len() {
                let w = succs[*ei] as usize;
                *ei += 1;
                if index[w] == usize::MAX {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    comps
}
