//! Exact steady-state throughput of elastic systems via sparse Markov
//! chains — the analysis the paper uses for its motivating example (§1.4):
//! "The behavior of ESs with early evaluation can be modeled using Markov
//! chains. Although this approach does not scale in general, … it can be
//! used for analysis of this small example to compute an exact expression
//! for the throughput."
//!
//! The chain's states are the canonical machine states of
//! [`rr_elastic::Machine`] (channel queues, anti-token debt, pending guard
//! selections); one transition = one clock cycle; branching comes from the
//! γ-distributed guard draws. The long-run average of "reference node
//! fired this cycle" is the throughput.
//!
//! The engine is organised in three layers:
//!
//! * [`chain`] enumerates the reachable state space into a CSR transition
//!   matrix (flat column/probability/reward arrays, interned state keys)
//!   and validates that every row's probability mass is 1;
//! * [`solve`] (internal) locates the terminal strongly connected
//!   component and solves the stationary equations — by default with a
//!   sparse Gauss–Seidel / damped-power hybrid that stops on the residual
//!   `‖πP − π‖₁`, scaling to recurrent classes of 10⁴–10⁵ states; the
//!   original dense Gauss–Jordan elimination survives as a
//!   cross-validation oracle behind [`MarkovParams::solver`];
//! * [`power`] (internal) covers multi-terminal or oversized chains with
//!   a Cesàro-averaged power iteration whose stopping rule extrapolates
//!   the limit (Aitken Δ² over geometric checkpoints).
//!
//! # Failure taxonomy and degradation ladder
//!
//! The sparse iterative solve never aborts a sweep over a convergence
//! budget. It degrades through explicit rungs — Gauss–Seidel → damped
//! power steps → Cesàro average of the damped iterates — and reports
//! which rung produced the answer in [`MarkovResult::quality`]
//! ([`SolveQuality`]); only the Cesàro rung marks the result inexact.
//! Structural failures stay hard errors ([`MarkovError`]): a
//! probability leak or an oversized state space cannot be "degraded
//! around" without silently skewing every downstream number. A seeded
//! [`MarkovFaults`] plan ([`MarkovParams::faults`], default off) stalls
//! each iterative phase deterministically so the ladder is testable on
//! well-behaved chains.
//!
//! # Choosing a solver
//!
//! [`MarkovParams::solver`] defaults to
//! [`StationarySolver::SparseIterative`]; select
//! [`StationarySolver::DenseGaussJordan`] to cross-check the iterative
//! result with an `O(k³)` elimination (it refuses recurrent classes past
//! [`DENSE_STATE_CAP`] states with
//! [`MarkovError::DenseSolveTooLarge`] rather than grinding). The two
//! agree to well below 1e-7 on every chain both can solve; the `markov_scaling`
//! bench in `rr-bench` A/B-measures them and appends the wall times to
//! `BENCH_markov.json`.
//!
//! # Example
//!
//! ```
//! use rr_markov::exact_throughput;
//! use rr_rrg::figures;
//!
//! // Figure 2's closed form Θ = 1/(3 − 2α), derived in the paper by
//! // "resolving the Markov chain", falls out exactly:
//! let th = exact_throughput(&figures::figure_2(0.9))?;
//! assert!((th.throughput - 5.0 / 6.0).abs() < 1e-9);
//! # Ok::<(), rr_markov::MarkovError>(())
//! ```

use std::error::Error;
use std::fmt;

use rr_elastic::{Capacity, MachineError};
use rr_rrg::Rrg;

pub mod chain;
mod power;
mod solve;

pub use chain::{build_chain, Chain, ROW_MASS_TOLERANCE};
pub use solve::DENSE_STATE_CAP;

#[cfg(test)]
mod proptests;

/// Stationary-solve algorithm for the terminal recurrent class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StationarySolver {
    /// Sparse Gauss–Seidel / damped-power hybrid with a residual-based
    /// stopping rule (`‖πP − π‖₁ < ε`). Handles recurrent classes of
    /// 10⁴–10⁵ states; the production default.
    #[default]
    SparseIterative,
    /// Dense Gauss–Jordan elimination — the original `O(k³)` solver, kept
    /// as a cross-validation oracle. Refuses classes beyond
    /// [`DENSE_STATE_CAP`] states.
    DenseGaussJordan,
}

/// How the stationary distribution was obtained — the solver's own
/// degradation ladder, reported instead of silently mixing methods.
/// Ordered from strongest to weakest guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveQuality {
    /// Direct elimination (dense oracle) or a trivial singleton class —
    /// no iteration involved.
    Direct,
    /// Gauss–Seidel sweeps converged below the residual tolerance.
    GaussSeidel,
    /// Gauss–Seidel stalled (periodic class); the damped power phase
    /// converged below the same residual tolerance. Still exact.
    DampedPower,
    /// Neither iterative phase reached the tolerance within its budget;
    /// the reported throughput is the Cesàro average of the damped-power
    /// iterates — a best-effort estimate, **not** an exact solve.
    CesaroAverage,
}

/// Deterministic fault injection for the Markov solve — exercises the
/// degradation ladder without pathological chains. Default off; see the
/// fault-injection test suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MarkovFaults {
    /// Pretend the Gauss–Seidel phase oscillates: skip it entirely, as
    /// the rising-residual detector would after 8 rising sweeps.
    pub stall_gauss_seidel: bool,
    /// Truncate the damped-power budget so it cannot reach the residual
    /// tolerance, forcing the Cesàro-average degradation.
    pub stall_damped_power: bool,
}

/// Limits for the state-space exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovParams {
    /// Abort if more reachable states than this are found.
    pub max_states: usize,
    /// Use the exact stationary solve up to this many recurrent states;
    /// fall back to power iteration beyond.
    pub max_exact_solve: usize,
    /// Channel capacity model of the underlying machine.
    pub capacity: Capacity,
    /// Stationary-solve algorithm for the recurrent class.
    pub solver: StationarySolver,
    /// Deterministic fault injection (default `None` — fully inert).
    pub faults: Option<MarkovFaults>,
}

impl Default for MarkovParams {
    fn default() -> Self {
        MarkovParams {
            max_states: 200_000,
            max_exact_solve: 200_000,
            capacity: Capacity::Unbounded,
            solver: StationarySolver::SparseIterative,
            faults: None,
        }
    }
}

/// Analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovResult {
    /// Exact steady-state throughput (expected firings of node 0 per
    /// cycle).
    pub throughput: f64,
    /// Number of reachable states explored.
    pub states: usize,
    /// Number of states in the recurrent class that was solved.
    pub recurrent_states: usize,
    /// `true` when the stationary distribution was solved exactly (vs
    /// power iteration or a Cesàro-average degradation).
    pub exact: bool,
    /// Which rung of the solver's degradation ladder produced the
    /// answer; `exact` is equivalent to
    /// `quality != SolveQuality::CesaroAverage`.
    pub quality: SolveQuality,
}

/// Analysis failures.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// More reachable states than [`MarkovParams::max_states`].
    StateSpaceTooLarge { limit: usize },
    /// Underlying machine failure.
    Machine(MachineError),
    /// A state's outgoing transition probabilities do not sum to 1 within
    /// [`ROW_MASS_TOLERANCE`] — a machine or γ-assignment bug that would
    /// silently skew every downstream solve.
    ProbabilityLeak { state: usize, mass: f64 },
    /// The dense cross-validation oracle was asked for a recurrent class
    /// larger than [`DENSE_STATE_CAP`]; use the sparse solver instead.
    DenseSolveTooLarge { states: usize, cap: usize },
    /// The multi-terminal power-iteration fallback did not reach its
    /// residual tolerance within the iteration budget. (The
    /// single-terminal sparse solve no longer fails this way — it
    /// degrades to a Cesàro average and reports
    /// [`SolveQuality::CesaroAverage`] instead.)
    NoConvergence,
    /// An early-evaluation node has an incoming edge without a γ
    /// assignment, so guard probabilities cannot be formed.
    MissingGamma { edge: usize },
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::StateSpaceTooLarge { limit } => {
                write!(f, "reachable state space exceeds {limit} states")
            }
            MarkovError::Machine(e) => write!(f, "machine error: {e}"),
            MarkovError::ProbabilityLeak { state, mass } => write!(
                f,
                "state {state}: outgoing probability mass {mass} ≠ 1 (machine or γ bug)"
            ),
            MarkovError::DenseSolveTooLarge { states, cap } => write!(
                f,
                "dense oracle refuses {states} recurrent states (cap {cap}); \
                 use StationarySolver::SparseIterative"
            ),
            MarkovError::NoConvergence => f.write_str("iterative solve did not converge"),
            MarkovError::MissingGamma { edge } => write!(
                f,
                "edge {edge}: early-evaluation input lacks a γ probability"
            ),
        }
    }
}

impl Error for MarkovError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MarkovError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for MarkovError {
    fn from(e: MachineError) -> Self {
        MarkovError::Machine(e)
    }
}

/// Exact throughput with default limits.
///
/// # Errors
///
/// See [`MarkovError`].
pub fn exact_throughput(g: &Rrg) -> Result<MarkovResult, MarkovError> {
    exact_throughput_with(g, &MarkovParams::default())
}

/// Exact throughput with explicit limits.
///
/// # Errors
///
/// See [`MarkovError`].
pub fn exact_throughput_with(g: &Rrg, params: &MarkovParams) -> Result<MarkovResult, MarkovError> {
    let chain = build_chain(g, params)?;
    solve::solve_chain(&chain, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_rrg::figures;

    #[test]
    fn figure_2_closed_form_is_exact() {
        for &alpha in &[0.25, 0.5, 0.75, 0.9] {
            let r = exact_throughput(&figures::figure_2(alpha)).unwrap();
            let exact = figures::figure_2_throughput(alpha);
            assert!(
                (r.throughput - exact).abs() < 1e-9,
                "α={alpha}: Markov {} vs closed form {exact} ({} states)",
                r.throughput,
                r.states
            );
            assert!(r.exact);
        }
    }

    #[test]
    fn figure_1b_matches_paper_values() {
        // §1.4: Θ = 0.491 at α = 0.5 and Θ = 0.719 at α = 0.9. The exact
        // chain gives 0.49180… and 0.71875: the paper truncated (not
        // rounded) the first value to three decimals.
        let r05 = exact_throughput(&figures::figure_1b(0.5)).unwrap();
        assert!(
            (r05.throughput - 0.4918).abs() < 1e-3,
            "Θ(0.5) = {}",
            r05.throughput
        );
        let r09 = exact_throughput(&figures::figure_1b(0.9)).unwrap();
        assert!(
            (r09.throughput - 0.719).abs() < 5e-4,
            "Θ(0.9) = {}",
            r09.throughput
        );
    }

    #[test]
    fn figure_1a_is_deterministic_rate_one() {
        let r = exact_throughput(&figures::figure_1a(0.5)).unwrap();
        assert!((r.throughput - 1.0).abs() < 1e-9, "Θ = {}", r.throughput);
    }

    #[test]
    fn late_evaluation_is_exact_min_cycle_ratio() {
        let g = figures::figure_1b(0.5).with_late_evaluation();
        let r = exact_throughput(&g).unwrap();
        assert!(
            (r.throughput - 1.0 / 3.0).abs() < 1e-9,
            "Θ = {}",
            r.throughput
        );
    }

    #[test]
    fn state_limit_is_enforced() {
        let params = MarkovParams {
            max_states: 3,
            ..Default::default()
        };
        let err = exact_throughput_with(&figures::figure_1b(0.5), &params).unwrap_err();
        assert!(matches!(err, MarkovError::StateSpaceTooLarge { .. }));
    }

    #[test]
    fn throughput_agrees_with_machine_simulation() {
        let g = figures::figure_1b(0.7);
        let exact = exact_throughput(&g).unwrap().throughput;
        let sim = rr_elastic::simulate(&g, &rr_elastic::MachineParams::default())
            .unwrap()
            .throughput;
        assert!((exact - sim).abs() < 0.01, "exact {exact} vs sim {sim}");
    }

    #[test]
    fn bounded_capacity_chain_solves_too() {
        let g = figures::figure_1b(0.5);
        let params = MarkovParams {
            capacity: Capacity::PerBuffer(2),
            ..Default::default()
        };
        let bounded = exact_throughput_with(&g, &params).unwrap();
        let unbounded = exact_throughput(&g).unwrap();
        assert!(bounded.throughput <= unbounded.throughput + 1e-9);
        assert!(bounded.throughput > 0.0);
    }

    #[test]
    fn solvers_agree_on_all_figure_chains() {
        for g in [
            figures::figure_1a(0.5),
            figures::figure_1b(0.5),
            figures::figure_1b(0.9),
            figures::figure_2(0.25),
            figures::figure_2(0.9),
        ] {
            let sparse = exact_throughput_with(&g, &MarkovParams::default()).unwrap();
            let dense = exact_throughput_with(
                &g,
                &MarkovParams {
                    solver: StationarySolver::DenseGaussJordan,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(sparse.exact && dense.exact);
            assert!(
                (sparse.throughput - dense.throughput).abs() < 1e-7,
                "sparse {} vs dense {}",
                sparse.throughput,
                dense.throughput
            );
        }
    }

    #[test]
    fn sparse_solves_beyond_the_old_dense_cap() {
        // Two pipelined figure-1(b) stages of length 3: ~2.5k recurrent
        // states — past the 2,000-state wall where the old dense-only
        // engine silently fell back to power iteration. The sparse path
        // must solve it exactly; the dense oracle must refuse it with a
        // structured error; and the answer must agree with an independent
        // machine simulation.
        let g = figures::figure_1b_pipeline(&[3, 3], 0.6);
        let sparse = exact_throughput(&g).unwrap();
        assert!(sparse.exact, "sparse path fell back to power iteration");
        assert!(
            sparse.recurrent_states > DENSE_STATE_CAP,
            "instance shrank below the cap: {} states",
            sparse.recurrent_states
        );

        let dense_params = MarkovParams {
            solver: StationarySolver::DenseGaussJordan,
            ..Default::default()
        };
        match exact_throughput_with(&g, &dense_params) {
            Err(MarkovError::DenseSolveTooLarge { states, cap }) => {
                assert_eq!(states, sparse.recurrent_states);
                assert_eq!(cap, DENSE_STATE_CAP);
            }
            other => panic!("expected DenseSolveTooLarge, got {other:?}"),
        }

        let sim = rr_elastic::simulate(
            &g,
            &rr_elastic::MachineParams {
                horizon: 60_000,
                warmup: 10_000,
                ..Default::default()
            },
        )
        .unwrap()
        .throughput;
        assert!(
            (sparse.throughput - sim).abs() < 0.01,
            "sparse {} vs simulation {sim}",
            sparse.throughput
        );
    }

    /// The old power-iteration stopping rule compared Cesàro averages
    /// 1,000 iterations apart against 1e-7: the successive delta shrinks
    /// like `c/t²` while the absolute error is still `c/t`, so on a
    /// slow-mixing chain (γ near 1 the mux almost always takes the top
    /// channel, and the bottom-channel excursions that set the throughput
    /// are rare) it fired while the answer was off in the fourth decimal.
    #[test]
    fn slow_mixing_power_iteration_is_accurate_where_old_criterion_failed() {
        let g = figures::figure_1b(0.9999);
        let truth = exact_throughput(&g).unwrap();
        assert!(truth.exact);

        // Force the power-iteration fallback.
        let power = exact_throughput_with(
            &g,
            &MarkovParams {
                max_exact_solve: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!power.exact);

        // Replicate the old stopping rule on the same chain.
        let chain = build_chain(&g, &MarkovParams::default()).unwrap();
        let old = old_criterion_estimate(&chain);

        // Measured: the old rule fires at t = 2,000 with ~8e-6 error (it
        // claimed 1e-7); the extrapolated rule is accurate to ~6e-11.
        let old_err = (old - truth.throughput).abs();
        let new_err = (power.throughput - truth.throughput).abs();
        assert!(
            old_err > 2e-6,
            "old criterion unexpectedly accurate: err {old_err:.2e}"
        );
        assert!(
            new_err < 1e-8,
            "extrapolated criterion off by {new_err:.2e} (old: {old_err:.2e})"
        );
        assert!(new_err * 100.0 < old_err);
    }

    /// The pre-fix stopping rule, verbatim: converged when Cesàro averages
    /// 1,000 iterations apart differ by less than 1e-7.
    fn old_criterion_estimate(chain: &Chain) -> f64 {
        let n = chain.num_states();
        let mut dist = vec![0.0f64; n];
        dist[0] = 1.0;
        let mut next = vec![0.0f64; n];
        let mut avg_prev = f64::NAN;
        let mut cum_reward = 0.0;
        for it in 1..=400_000usize {
            next.iter_mut().for_each(|x| *x = 0.0);
            let mut step_reward = 0.0;
            for (s, d) in dist.iter().enumerate() {
                if *d == 0.0 {
                    continue;
                }
                for (t, p, r) in chain.row(s) {
                    next[t] += d * p;
                    step_reward += d * p * r;
                }
            }
            std::mem::swap(&mut dist, &mut next);
            cum_reward += step_reward;
            if it % 1_000 == 0 {
                let avg = cum_reward / it as f64;
                if (avg - avg_prev).abs() < 1e-7 {
                    return avg;
                }
                avg_prev = avg;
            }
        }
        panic!("old criterion never fired");
    }

    /// Each rung of the degradation ladder, driven by the seeded fault
    /// plan on a chain all rungs can handle: a clean solve converges in
    /// Gauss–Seidel; a stalled Gauss–Seidel converges in damped power;
    /// stalling both degrades to the Cesàro average — which must still
    /// be *reported* (not an error) and land near the true throughput.
    #[test]
    fn fault_plan_walks_the_degradation_ladder() {
        let g = figures::figure_1b(0.5);
        let clean = exact_throughput(&g).unwrap();
        assert_eq!(clean.quality, SolveQuality::GaussSeidel);
        assert!(clean.exact);

        let damped = exact_throughput_with(
            &g,
            &MarkovParams {
                faults: Some(MarkovFaults {
                    stall_gauss_seidel: true,
                    stall_damped_power: false,
                }),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(damped.quality, SolveQuality::DampedPower);
        assert!(damped.exact);
        assert!(
            (damped.throughput - clean.throughput).abs() < 1e-9,
            "damped {} vs clean {}",
            damped.throughput,
            clean.throughput
        );

        let cesaro = exact_throughput_with(
            &g,
            &MarkovParams {
                faults: Some(MarkovFaults {
                    stall_gauss_seidel: true,
                    stall_damped_power: true,
                }),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(cesaro.quality, SolveQuality::CesaroAverage);
        assert!(!cesaro.exact);
        // 16 damped steps from uniform: crude but in the ballpark.
        assert!(
            (cesaro.throughput - clean.throughput).abs() < 0.1,
            "cesaro {} vs clean {}",
            cesaro.throughput,
            clean.throughput
        );
    }

    /// A singleton recurrent class short-circuits every iterative phase.
    #[test]
    fn singleton_class_reports_direct_quality() {
        let r = exact_throughput(&figures::figure_1a(0.5)).unwrap();
        assert_eq!(r.quality, SolveQuality::Direct);
        assert!(r.exact);
    }

    #[test]
    fn probability_leak_is_reported() {
        // The graph builder tolerates γ sums within GAMMA_TOL = 1e-6; the
        // chain builder demands 1e-9. A γ assignment in the gap passes
        // validation upstream but must be caught (not silently skew the
        // solve) when the chain is assembled.
        use rr_rrg::RrgBuilder;
        let mut b = RrgBuilder::new();
        let m = b.add_early("m", 0.0);
        let f = b.add_simple("f", 1.0);
        let e1 = b.add_edge(f, m, 1, 1);
        let e2 = b.add_edge(f, m, 1, 1);
        b.add_edge(m, f, 1, 1);
        b.set_gamma(e1, 0.5);
        b.set_gamma(e2, 0.5 - 5e-7); // leaks 5e-7 of probability mass
        let g = b.build().expect("leak is below the builder's tolerance");
        let err = exact_throughput(&g).unwrap_err();
        match err {
            MarkovError::ProbabilityLeak { mass, .. } => {
                assert!((mass - (1.0 - 5e-7)).abs() < 1e-9, "mass {mass}");
            }
            other => panic!("expected ProbabilityLeak, got {other:?}"),
        }
    }
}
