//! Exact steady-state throughput of (small) elastic systems via Markov
//! chains — the analysis the paper uses for its motivating example (§1.4):
//! "The behavior of ESs with early evaluation can be modeled using Markov
//! chains. Although this approach does not scale in general, … it can be
//! used for analysis of this small example to compute an exact expression
//! for the throughput."
//!
//! The chain's states are the canonical machine states of
//! [`rr_elastic::Machine`] (channel queues, anti-token debt, pending guard
//! selections); one transition = one clock cycle; branching comes from the
//! γ-distributed guard draws. The long-run average of "reference node
//! fired this cycle" is the throughput.
//!
//! The solver enumerates the reachable state space (guard combinations ×
//! deterministic step), locates the terminal strongly connected component,
//! and solves the stationary equations exactly by Gaussian elimination; a
//! Cesàro-averaged power iteration covers the (rare) multi-terminal or
//! very large cases.
//!
//! # Example
//!
//! ```
//! use rr_markov::exact_throughput;
//! use rr_rrg::figures;
//!
//! // Figure 2's closed form Θ = 1/(3 − 2α), derived in the paper by
//! // "resolving the Markov chain", falls out exactly:
//! let th = exact_throughput(&figures::figure_2(0.9))?;
//! assert!((th.throughput - 5.0 / 6.0).abs() < 1e-9);
//! # Ok::<(), rr_markov::MarkovError>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use rr_elastic::{Capacity, Machine, MachineError};
use rr_rrg::{EdgeId, NodeId, Rrg};

/// Limits for the state-space exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovParams {
    /// Abort if more reachable states than this are found.
    pub max_states: usize,
    /// Use the exact linear solve up to this many recurrent states; fall
    /// back to power iteration beyond.
    pub max_exact_solve: usize,
    /// Channel capacity model of the underlying machine.
    pub capacity: Capacity,
}

impl Default for MarkovParams {
    fn default() -> Self {
        MarkovParams {
            max_states: 200_000,
            max_exact_solve: 2_000,
            capacity: Capacity::Unbounded,
        }
    }
}

/// Analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovResult {
    /// Exact steady-state throughput (expected firings of node 0 per
    /// cycle).
    pub throughput: f64,
    /// Number of reachable states explored.
    pub states: usize,
    /// Number of states in the recurrent class that was solved.
    pub recurrent_states: usize,
    /// `true` when the stationary distribution was solved exactly (vs
    /// power iteration).
    pub exact: bool,
}

/// Analysis failures.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// More reachable states than [`MarkovParams::max_states`].
    StateSpaceTooLarge { limit: usize },
    /// Underlying machine failure.
    Machine(MachineError),
    /// The chain has several terminal components *and* is too large for
    /// the power-iteration fallback to converge within its budget.
    NoConvergence,
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::StateSpaceTooLarge { limit } => {
                write!(f, "reachable state space exceeds {limit} states")
            }
            MarkovError::Machine(e) => write!(f, "machine error: {e}"),
            MarkovError::NoConvergence => f.write_str("power iteration did not converge"),
        }
    }
}

impl Error for MarkovError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MarkovError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for MarkovError {
    fn from(e: MachineError) -> Self {
        MarkovError::Machine(e)
    }
}

/// Exact throughput with default limits.
///
/// # Errors
///
/// See [`MarkovError`].
pub fn exact_throughput(g: &Rrg) -> Result<MarkovResult, MarkovError> {
    exact_throughput_with(g, &MarkovParams::default())
}

/// Exact throughput with explicit limits.
///
/// # Errors
///
/// See [`MarkovError`].
pub fn exact_throughput_with(g: &Rrg, params: &MarkovParams) -> Result<MarkovResult, MarkovError> {
    let chain = build_chain(g, params)?;
    solve_chain(&chain, params)
}

/// The explicit chain: per state, a list of `(successor, probability,
/// reward)` transitions (reward = 1.0 when the reference node fired).
struct Chain {
    transitions: Vec<Vec<(usize, f64, f64)>>,
}

/// Enumerates guard-choice combinations and successor states.
fn build_chain(g: &Rrg, params: &MarkovParams) -> Result<Chain, MarkovError> {
    let initial = Machine::new(g, params.capacity)?;
    let mut index: HashMap<Vec<u64>, usize> = HashMap::new();
    let mut machines: Vec<Machine> = Vec::new();
    let mut transitions: Vec<Vec<(usize, f64, f64)>> = Vec::new();

    index.insert(initial.canonical_state(), 0);
    machines.push(initial);
    transitions.push(Vec::new());

    let mut frontier = vec![0usize];
    while let Some(s) = frontier.pop() {
        let machine = machines[s].clone();
        let undrawn = machine.undrawn_early_nodes();
        let combos = guard_combinations(g, &undrawn);
        let mut out = Vec::with_capacity(combos.len());
        for (choice, prob) in combos {
            let mut m = machine.clone();
            let mut it = choice.iter();
            let outcome = m.step_with(|v| {
                let &(node, edge) = it.next().expect("draw called more times than undrawn");
                debug_assert_eq!(node, v, "draw order mismatch");
                edge
            });
            let reward = f64::from(outcome.fired[0]);
            let key = m.canonical_state();
            let next = match index.get(&key) {
                Some(&i) => i,
                None => {
                    let i = machines.len();
                    if i >= params.max_states {
                        return Err(MarkovError::StateSpaceTooLarge {
                            limit: params.max_states,
                        });
                    }
                    index.insert(key, i);
                    machines.push(m);
                    transitions.push(Vec::new());
                    frontier.push(i);
                    i
                }
            };
            out.push((next, prob, reward));
        }
        transitions[s] = out;
    }
    Ok(Chain { transitions })
}

/// Cartesian product of guard choices for the undrawn early nodes, with
/// the probability of each combination.
fn guard_combinations(g: &Rrg, undrawn: &[NodeId]) -> Vec<(Vec<(NodeId, EdgeId)>, f64)> {
    let mut combos: Vec<(Vec<(NodeId, EdgeId)>, f64)> = vec![(Vec::new(), 1.0)];
    for &v in undrawn {
        let mut next = Vec::with_capacity(combos.len() * g.in_edges(v).len());
        for &e in g.in_edges(v) {
            let p = g.edge(e).gamma().expect("early input without γ");
            for (combo, cp) in &combos {
                let mut c = combo.clone();
                c.push((v, e));
                next.push((c, cp * p));
            }
        }
        combos = next;
    }
    // `step_with` draws in ascending node-id order; keep combos sorted to
    // match.
    for (c, _) in &mut combos {
        c.sort_by_key(|&(v, _)| v);
    }
    combos
}

/// Finds the recurrent class and solves for the stationary throughput.
fn solve_chain(chain: &Chain, params: &MarkovParams) -> Result<MarkovResult, MarkovError> {
    let n = chain.transitions.len();
    let sccs = tarjan(&chain.transitions);
    let mut comp_of = vec![usize::MAX; n];
    for (ci, comp) in sccs.iter().enumerate() {
        for &s in comp {
            comp_of[s] = ci;
        }
    }
    // Terminal SCCs: no transition leaves the component.
    let mut terminal: Vec<usize> = Vec::new();
    'comp: for (ci, comp) in sccs.iter().enumerate() {
        for &s in comp {
            for &(t, _, _) in &chain.transitions[s] {
                if comp_of[t] != ci {
                    continue 'comp;
                }
            }
        }
        terminal.push(ci);
    }

    if terminal.len() == 1 && sccs[terminal[0]].len() <= params.max_exact_solve {
        let comp = &sccs[terminal[0]];
        let theta = stationary_throughput(chain, comp);
        Ok(MarkovResult {
            throughput: theta,
            states: n,
            recurrent_states: comp.len(),
            exact: true,
        })
    } else {
        // Multi-terminal or oversized: Cesàro-averaged power iteration
        // from the initial state.
        let theta = power_iteration(chain).ok_or(MarkovError::NoConvergence)?;
        Ok(MarkovResult {
            throughput: theta,
            states: n,
            recurrent_states: terminal.iter().map(|&c| sccs[c].len()).sum(),
            exact: false,
        })
    }
}

/// Solves `π P = π, Σπ = 1` on one recurrent class by Gaussian
/// elimination and returns `Σ_s π(s)·r̄(s)`.
fn stationary_throughput(chain: &Chain, comp: &[usize]) -> f64 {
    let k = comp.len();
    let mut local = HashMap::with_capacity(k);
    for (i, &s) in comp.iter().enumerate() {
        local.insert(s, i);
    }
    // Rows 0..k-1: (P^T − I) π = 0, last row replaced by Σπ = 1.
    let w = k + 1;
    let mut a = vec![0.0f64; k * w];
    for (i, &s) in comp.iter().enumerate() {
        for &(t, p, _) in &chain.transitions[s] {
            let j = local[&t];
            a[j * w + i] += p;
        }
    }
    for d in 0..k {
        a[d * w + d] -= 1.0;
    }
    for c in 0..k {
        a[(k - 1) * w + c] = 1.0;
    }
    a[(k - 1) * w + k] = 1.0;

    gaussian_solve(&mut a, k);
    let pi: Vec<f64> = (0..k).map(|i| a[i * w + k]).collect();

    let mut theta = 0.0;
    for (i, &s) in comp.iter().enumerate() {
        let expected_reward: f64 = chain.transitions[s].iter().map(|&(_, p, r)| p * r).sum();
        theta += pi[i] * expected_reward;
    }
    theta
}

/// In-place Gauss–Jordan with partial pivoting on a `k × (k+1)` augmented
/// system; the solution lands in the last column.
fn gaussian_solve(a: &mut [f64], k: usize) {
    let w = k + 1;
    for col in 0..k {
        let mut best = col;
        for r in col + 1..k {
            if a[r * w + col].abs() > a[best * w + col].abs() {
                best = r;
            }
        }
        if best != col {
            for c in 0..w {
                a.swap(col * w + c, best * w + c);
            }
        }
        let pivot = a[col * w + col];
        if pivot.abs() < 1e-12 {
            continue; // singular direction; the normalisation row disambiguates
        }
        for r in 0..k {
            if r != col {
                let f = a[r * w + col] / pivot;
                if f != 0.0 {
                    for c in col..w {
                        a[r * w + c] -= f * a[col * w + c];
                    }
                }
            }
        }
        let inv = 1.0 / pivot;
        for c in col..w {
            a[col * w + c] *= inv;
        }
    }
}

/// Cesàro-averaged distribution iteration; `None` if averages never
/// settle.
fn power_iteration(chain: &Chain) -> Option<f64> {
    let n = chain.transitions.len();
    let mut dist = vec![0.0f64; n];
    dist[0] = 1.0;
    let mut next = vec![0.0f64; n];
    let mut avg_prev = f64::NAN;
    let mut cum_reward = 0.0;
    let max_iters = 400_000usize;
    for it in 1..=max_iters {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut step_reward = 0.0;
        for (s, d) in dist.iter().enumerate() {
            if *d == 0.0 {
                continue;
            }
            for &(t, p, r) in &chain.transitions[s] {
                next[t] += d * p;
                step_reward += d * p * r;
            }
        }
        std::mem::swap(&mut dist, &mut next);
        cum_reward += step_reward;
        if it % 1_000 == 0 {
            let avg = cum_reward / it as f64;
            if (avg - avg_prev).abs() < 1e-7 {
                return Some(avg);
            }
            avg_prev = avg;
        }
    }
    None
}

/// Iterative Tarjan SCC on the transition graph.
fn tarjan(transitions: &[Vec<(usize, f64, f64)>]) -> Vec<Vec<usize>> {
    let n = transitions.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        call.push((root, 0));
        index[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ei)) = call.last_mut() {
            if *ei < transitions[v].len() {
                let w = transitions[v][*ei].0;
                *ei += 1;
                if index[w] == usize::MAX {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_rrg::figures;

    #[test]
    fn figure_2_closed_form_is_exact() {
        for &alpha in &[0.25, 0.5, 0.75, 0.9] {
            let r = exact_throughput(&figures::figure_2(alpha)).unwrap();
            let exact = figures::figure_2_throughput(alpha);
            assert!(
                (r.throughput - exact).abs() < 1e-9,
                "α={alpha}: Markov {} vs closed form {exact} ({} states)",
                r.throughput,
                r.states
            );
            assert!(r.exact);
        }
    }

    #[test]
    fn figure_1b_matches_paper_values() {
        // §1.4: Θ = 0.491 at α = 0.5 and Θ = 0.719 at α = 0.9. The exact
        // chain gives 0.49180… and 0.71875: the paper truncated (not
        // rounded) the first value to three decimals.
        let r05 = exact_throughput(&figures::figure_1b(0.5)).unwrap();
        assert!(
            (r05.throughput - 0.4918).abs() < 1e-3,
            "Θ(0.5) = {}",
            r05.throughput
        );
        let r09 = exact_throughput(&figures::figure_1b(0.9)).unwrap();
        assert!(
            (r09.throughput - 0.719).abs() < 5e-4,
            "Θ(0.9) = {}",
            r09.throughput
        );
    }

    #[test]
    fn figure_1a_is_deterministic_rate_one() {
        let r = exact_throughput(&figures::figure_1a(0.5)).unwrap();
        assert!((r.throughput - 1.0).abs() < 1e-9, "Θ = {}", r.throughput);
    }

    #[test]
    fn late_evaluation_is_exact_min_cycle_ratio() {
        let g = figures::figure_1b(0.5).with_late_evaluation();
        let r = exact_throughput(&g).unwrap();
        assert!(
            (r.throughput - 1.0 / 3.0).abs() < 1e-9,
            "Θ = {}",
            r.throughput
        );
    }

    #[test]
    fn state_limit_is_enforced() {
        let params = MarkovParams {
            max_states: 3,
            ..Default::default()
        };
        let err = exact_throughput_with(&figures::figure_1b(0.5), &params).unwrap_err();
        assert!(matches!(err, MarkovError::StateSpaceTooLarge { .. }));
    }

    #[test]
    fn throughput_agrees_with_machine_simulation() {
        let g = figures::figure_1b(0.7);
        let exact = exact_throughput(&g).unwrap().throughput;
        let sim = rr_elastic::simulate(&g, &rr_elastic::MachineParams::default())
            .unwrap()
            .throughput;
        assert!((exact - sim).abs() < 0.01, "exact {exact} vs sim {sim}");
    }

    #[test]
    fn bounded_capacity_chain_solves_too() {
        let g = figures::figure_1b(0.5);
        let params = MarkovParams {
            capacity: Capacity::PerBuffer(2),
            ..Default::default()
        };
        let bounded = exact_throughput_with(&g, &params).unwrap();
        let unbounded = exact_throughput(&g).unwrap();
        assert!(bounded.throughput <= unbounded.throughput + 1e-9);
        assert!(bounded.throughput > 0.0);
    }
}
