//! Property-based cross-validation of the two stationary solvers.
//!
//! The sparse Gauss–Seidel/power hybrid is the production path; the dense
//! Gauss–Jordan elimination is its oracle. On every chain both can solve —
//! figure variants across the γ range and random bounded-capacity
//! benchmark graphs — their throughputs must agree to 1e-7 (in practice
//! they agree to ~1e-12; the bound leaves room for ill-conditioned
//! classes).

use proptest::prelude::*;

use rr_elastic::Capacity;
use rr_rrg::generate::GeneratorParams;
use rr_rrg::{figures, Rrg};

use crate::{exact_throughput_with, MarkovError, MarkovParams, StationarySolver};

/// Solves with both solvers and asserts agreement; skips instances the
/// dense oracle refuses or that exceed the exploration limits.
fn assert_solvers_agree(g: &Rrg, capacity: Capacity, label: &str) {
    let sparse_params = MarkovParams {
        capacity,
        max_states: 50_000,
        ..Default::default()
    };
    let dense_params = MarkovParams {
        solver: StationarySolver::DenseGaussJordan,
        ..sparse_params.clone()
    };
    let sparse = match exact_throughput_with(g, &sparse_params) {
        Ok(r) => r,
        Err(MarkovError::StateSpaceTooLarge { .. }) => return,
        Err(e) => panic!("{label}: sparse solve failed: {e}"),
    };
    let dense = match exact_throughput_with(g, &dense_params) {
        Ok(r) => r,
        Err(MarkovError::DenseSolveTooLarge { .. }) => return,
        Err(e) => panic!("{label}: dense solve failed: {e}"),
    };
    assert_eq!(sparse.exact, dense.exact);
    assert_eq!(sparse.states, dense.states);
    assert_eq!(sparse.recurrent_states, dense.recurrent_states);
    assert!(
        (sparse.throughput - dense.throughput).abs() < 1e-7,
        "{label}: sparse {} vs dense {} ({} recurrent states)",
        sparse.throughput,
        dense.throughput,
        sparse.recurrent_states
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Figure chains across the whole γ range, unbounded and bounded.
    #[test]
    fn solvers_agree_on_figure_chains(
        alpha in 0.05f64..0.95,
        variant in 0usize..3,
        cap in 0u32..3,
    ) {
        let g = match variant {
            0 => figures::figure_1a(alpha),
            1 => figures::figure_1b(alpha),
            _ => figures::figure_2(alpha),
        };
        let capacity = match cap {
            0 => Capacity::Unbounded,
            k => Capacity::PerBuffer(k),
        };
        assert_solvers_agree(&g, capacity, &format!("figure v{variant} α={alpha}"));
    }

    /// Random paper-recipe benchmark graphs under bounded capacity — the
    /// workload whose state spaces actually stress the sparse path.
    #[test]
    fn solvers_agree_on_random_bounded_chains(
        seed in 0u64..500,
        simple in 4usize..7,
        early in 1usize..3,
        k in 1u32..3,
    ) {
        let edges = (simple + early) * 2;
        let g = GeneratorParams::paper_defaults(simple, early, edges).generate(seed);
        assert_solvers_agree(
            &g,
            Capacity::PerBuffer(k),
            &format!("random s={seed} n={simple}+{early} k={k}"),
        );
    }
}
