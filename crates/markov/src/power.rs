//! Cesàro-averaged power iteration — the fallback for multi-terminal
//! chains and state spaces past `max_exact_solve`.
//!
//! The running reward average `A(t) = (1/t)·Σ_{s≤t} E[reward_s]` converges
//! to the throughput like `θ + c/t` (`c` grows with the mixing time), so
//! the *successive difference* of `A` at checkpoints shrinks like `c/t²`
//! long before `A` itself is accurate — the bug the old stopping rule had:
//! it compared averages 1,000 iterations apart against 1e-7 and declared
//! victory while the absolute error was still `c/t`.
//!
//! The criterion here extrapolates the limit instead. Checkpoints are
//! geometric (`t, 2t, 4t, …`), so the `c/t` error term is a geometric
//! sequence in checkpoint index and Aitken's Δ² transform annihilates it
//! exactly; convergence is declared when two successive *extrapolated
//! limits* agree, and the extrapolated value (not the raw average) is
//! returned. A slow-mixing regression test in `lib.rs` pins the chain
//! (near-1 γ on figure 1(b)) where the old rule fired ~3 decades early.

use crate::chain::Chain;

/// First checkpoint; later checkpoints double. Must be ≥ 2 so Aitken has
/// three distinct averages by the third checkpoint.
const FIRST_CHECKPOINT: usize = 1_024;

/// Iteration budget. The fallback only runs on chains the exact solvers
/// refused, so the budget is generous; exhausting it reports
/// `NoConvergence` rather than returning a bad number.
const MAX_ITERS: usize = 1 << 25;

/// Agreement threshold between successive extrapolated limits.
const LIMIT_TOLERANCE: f64 = 1e-9;

/// Cesàro-averaged distribution iteration from state 0; `None` if the
/// extrapolated limits never settle.
pub fn power_iteration(chain: &Chain) -> Option<f64> {
    let n = chain.num_states();
    let mut dist = vec![0.0f64; n];
    dist[0] = 1.0;
    let mut next = vec![0.0f64; n];
    let mut cum_reward = 0.0f64;

    let mut checkpoint = FIRST_CHECKPOINT;
    // Rolling window of the last three checkpoint averages.
    let mut window: [f64; 3] = [f64::NAN; 3];
    let mut filled = 0usize;
    let mut limit_prev = f64::NAN;

    for it in 1..=MAX_ITERS {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut step_reward = 0.0;
        for (s, d) in dist.iter().enumerate() {
            if *d == 0.0 {
                continue;
            }
            for (t, p, r) in chain.row(s) {
                next[t] += d * p;
                step_reward += d * p * r;
            }
        }
        std::mem::swap(&mut dist, &mut next);
        cum_reward += step_reward;

        if it == checkpoint {
            checkpoint *= 2;
            let avg = cum_reward / it as f64;
            window = [window[1], window[2], avg];
            filled += 1;
            if filled < 3 {
                continue;
            }
            let (a0, a1, a2) = (window[0], window[1], window[2]);
            let (d1, d2) = (a1 - a0, a2 - a1);
            // Flat sequence: the chain mixed long ago, the average is the
            // answer (Aitken would divide ~0 by ~0).
            if d1.abs() < 1e-13 && d2.abs() < 1e-13 {
                return Some(a2);
            }
            let denom = d2 - d1;
            let limit = if denom.abs() > 1e-300 {
                a2 - d2 * d2 / denom
            } else {
                a2
            };
            if (limit - limit_prev).abs() < LIMIT_TOLERANCE * limit.abs().max(1.0) {
                return Some(limit);
            }
            limit_prev = limit;
        }
    }
    None
}
