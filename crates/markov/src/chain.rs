//! Reachable-state enumeration into a compressed sparse row (CSR) chain.
//!
//! The chain of an elastic machine is extremely sparse: each state has one
//! successor per guard combination (a handful), while bounded-capacity
//! state spaces run to 10⁴–10⁵ states. Per-state `Vec`s of transitions
//! waste a pointer-and-capacity header per state and scatter the rows over
//! the heap; the CSR layout below stores the whole transition structure in
//! four flat arrays, so both solvers stream it cache-linearly.

use std::collections::HashMap;

use rr_elastic::Machine;
use rr_rrg::{EdgeId, NodeId, Rrg};

use crate::{MarkovError, MarkovParams};

/// The explicit chain in CSR form: state `s`'s transitions are the index
/// range `row_offsets[s]..row_offsets[s + 1]` of the parallel
/// `cols`/`probs`/`rewards` arrays (successor state, transition
/// probability, expected reward — 1.0 when the reference node fired).
#[derive(Debug, Clone)]
pub struct Chain {
    row_offsets: Vec<usize>,
    cols: Vec<u32>,
    probs: Vec<f64>,
    rewards: Vec<f64>,
}

impl Chain {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Total number of stored transitions.
    pub fn num_transitions(&self) -> usize {
        self.cols.len()
    }

    /// Successor states of `s` (parallel to [`Chain::probs`]).
    pub fn succs(&self, s: usize) -> &[u32] {
        &self.cols[self.row_offsets[s]..self.row_offsets[s + 1]]
    }

    /// Transition probabilities out of `s`.
    pub fn probs(&self, s: usize) -> &[f64] {
        &self.probs[self.row_offsets[s]..self.row_offsets[s + 1]]
    }

    /// Transition rewards out of `s`.
    pub fn rewards(&self, s: usize) -> &[f64] {
        &self.rewards[self.row_offsets[s]..self.row_offsets[s + 1]]
    }

    /// `(successor, probability, reward)` triples out of `s`.
    pub fn row(&self, s: usize) -> impl Iterator<Item = (usize, f64, f64)> + '_ {
        let r = self.row_offsets[s]..self.row_offsets[s + 1];
        r.map(move |i| (self.cols[i] as usize, self.probs[i], self.rewards[i]))
    }

    /// Expected one-step reward from `s`.
    pub fn expected_reward(&self, s: usize) -> f64 {
        let r = self.row_offsets[s]..self.row_offsets[s + 1];
        r.map(|i| self.probs[i] * self.rewards[i]).sum()
    }
}

/// Interns canonical state keys: each distinct key is stored once (as the
/// map key) and identified by its dense state index. Lookups probe with a
/// borrowed slice, so the enumeration loop allocates only on first sight
/// of a state.
struct StateInterner {
    index: HashMap<Box<[u64]>, u32>,
}

impl StateInterner {
    fn new() -> Self {
        StateInterner {
            index: HashMap::new(),
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns the state index for `key`, interning it when new; the
    /// second component is `true` on first sight.
    fn intern(&mut self, key: &[u64]) -> (u32, bool) {
        if let Some(&i) = self.index.get(key) {
            return (i, false);
        }
        let i = u32::try_from(self.index.len()).expect("state index fits u32");
        self.index.insert(key.into(), i);
        (i, true)
    }
}

/// How far a row's outgoing probability mass may drift from 1 before the
/// chain is rejected as inconsistent ([`MarkovError::ProbabilityLeak`]).
///
/// Deliberately three decades stricter than the graph builder's
/// `rr_rrg::validate::GAMMA_TOL` (1e-6): the builder is lenient towards
/// hand-entered γs, but an *exact* solver must not silently absorb a
/// leak — a row mass of `1 − 5e-7` biases every stationary probability at
/// the same order, which is above the 1e-7 agreement this crate promises.
/// Callers with builder-valid-but-drifting γs should renormalise them;
/// masses within float rounding of 1 (≤ 1e-9, orders above the ~1e-15
/// accumulation error of well-formed draws) always pass.
pub const ROW_MASS_TOLERANCE: f64 = 1e-9;

/// Enumerates guard-choice combinations and successor states into a CSR
/// chain. State 0 is the machine's initial state; states are discovered
/// breadth-first, and every row's probability mass is validated against
/// [`ROW_MASS_TOLERANCE`] as it is emitted.
///
/// # Errors
///
/// [`MarkovError::StateSpaceTooLarge`] past `params.max_states`;
/// [`MarkovError::ProbabilityLeak`] when a state's outgoing probabilities
/// do not sum to 1 (a machine or γ-assignment bug that would silently
/// skew both solvers); [`MarkovError::Machine`] from machine construction.
pub fn build_chain(g: &Rrg, params: &MarkovParams) -> Result<Chain, MarkovError> {
    let initial = Machine::new(g, params.capacity)?;
    let mut interner = StateInterner::new();
    let mut machines: Vec<Machine> = Vec::new();
    let mut key_scratch: Vec<u64> = Vec::new();

    initial.canonical_state_into(&mut key_scratch);
    interner.intern(&key_scratch);
    machines.push(initial);

    let mut row_offsets = vec![0usize];
    let mut cols: Vec<u32> = Vec::new();
    let mut probs: Vec<f64> = Vec::new();
    let mut rewards: Vec<f64> = Vec::new();

    // States are indexed in discovery order, so scanning `s` upward visits
    // every state after it has been interned: the CSR rows are emitted in
    // order without a separate frontier or per-state buffers.
    let mut s = 0usize;
    while s < machines.len() {
        let machine = machines[s].clone();
        let undrawn = machine.undrawn_early_nodes();
        let combos = guard_combinations(g, &undrawn)?;
        let mut row_mass = 0.0f64;
        for (choice, prob) in combos {
            let mut m = machine.clone();
            let mut it = choice.iter();
            let outcome = m.step_with(|v| {
                let &(node, edge) = it.next().expect("draw called more times than undrawn");
                debug_assert_eq!(node, v, "draw order mismatch");
                edge
            });
            let reward = f64::from(outcome.fired[0]);
            m.canonical_state_into(&mut key_scratch);
            let (next, new) = interner.intern(&key_scratch);
            if new {
                if interner.len() > params.max_states {
                    return Err(MarkovError::StateSpaceTooLarge {
                        limit: params.max_states,
                    });
                }
                machines.push(m);
            }
            cols.push(next);
            probs.push(prob);
            rewards.push(reward);
            row_mass += prob;
        }
        if (row_mass - 1.0).abs() > ROW_MASS_TOLERANCE {
            return Err(MarkovError::ProbabilityLeak {
                state: s,
                mass: row_mass,
            });
        }
        row_offsets.push(cols.len());
        s += 1;
    }
    Ok(Chain {
        row_offsets,
        cols,
        probs,
        rewards,
    })
}

/// One guard draw per undrawn early node, with the joint probability of
/// the combination.
type GuardCombo = (Vec<(NodeId, EdgeId)>, f64);

/// Cartesian product of guard choices for the undrawn early nodes, with
/// the probability of each combination.
///
/// # Errors
///
/// [`MarkovError::MissingGamma`] when an early node's input edge carries
/// no γ assignment — a structured error rather than a panic, so a
/// malformed graph fails the analysis instead of the process.
fn guard_combinations(g: &Rrg, undrawn: &[NodeId]) -> Result<Vec<GuardCombo>, MarkovError> {
    let mut combos: Vec<GuardCombo> = vec![(Vec::new(), 1.0)];
    for &v in undrawn {
        let mut next = Vec::with_capacity(combos.len() * g.in_edges(v).len());
        for &e in g.in_edges(v) {
            let p = g
                .edge(e)
                .gamma()
                .ok_or(MarkovError::MissingGamma { edge: e.0 })?;
            for (combo, cp) in &combos {
                let mut c = combo.clone();
                c.push((v, e));
                next.push((c, cp * p));
            }
        }
        combos = next;
    }
    // `step_with` draws in ascending node-id order; keep combos sorted to
    // match.
    for (c, _) in &mut combos {
        c.sort_by_key(|&(v, _)| v);
    }
    Ok(combos)
}
