//! Exact throughput of **late-evaluation** elastic systems: the minimum
//! cycle ratio
//!
//! ```text
//! Θ = min over directed cycles C of  Σ_{e∈C} R0(e) / Σ_{e∈C} R(e)
//! ```
//!
//! (tokens over latency). This classic marked-graph result gives the exact
//! steady-state throughput when no early evaluation is present, so it
//! serves both as the Table-2 baseline `ξ_nee` helper and as an oracle for
//! the LP bound and the simulators.
//!
//! Computed by binary search on λ with a negative-cycle test on weights
//! `R0(e) − λ·R(e)` (parametric Bellman–Ford).

use rr_rrg::Rrg;

/// Exact late-evaluation throughput of a configuration given by explicit
/// token/buffer vectors. Returns 1.0 for graphs whose cycles all have
/// ratio ≥ 1 (throughput is capped at one token per cycle per EB chain).
///
/// Returns `f64::INFINITY` if the graph has no directed cycle (acyclic
/// pipelines are not rate-limited).
///
/// # Panics
///
/// Panics if vector lengths do not match or if a cycle has zero total
/// buffers (combinational cycle — invalid configuration).
pub fn min_cycle_ratio(g: &Rrg, tokens: &[i64], buffers: &[i64]) -> f64 {
    assert_eq!(tokens.len(), g.num_edges());
    assert_eq!(buffers.len(), g.num_edges());
    if !has_cycle(g) {
        return f64::INFINITY;
    }
    assert!(
        !has_negative_cycle(g, |e| {
            if buffers[e] == 0 {
                0.0
            } else {
                -(buffers[e] as f64)
            }
        }) || buffers.iter().any(|&b| b > 0),
        "graph has cycles but no buffered cycle"
    );

    // Θ ≤ 1 for valid configurations (R ≥ R0 edge-wise); still search a
    // slightly larger interval to stay robust for exotic inputs.
    let mut lo = 0.0f64;
    let mut hi = 2.0f64;
    // exists cycle with Σ(R0 − λR) < 0  ⇔  MCR < λ
    let below =
        |lambda: f64| has_negative_cycle(g, |e| tokens[e] as f64 - lambda * buffers[e] as f64);
    if !below(hi) {
        // All cycles have ratio ≥ 2 — only possible without valid R≥R0;
        // treat as capped.
        return hi;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if below(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

/// [`min_cycle_ratio`] on the graph's own tokens/buffers.
pub fn exact_late_throughput(g: &Rrg) -> f64 {
    let tokens: Vec<i64> = g.edges().map(|(_, e)| e.tokens()).collect();
    let buffers: Vec<i64> = g.edges().map(|(_, e)| e.buffers()).collect();
    min_cycle_ratio(g, &tokens, &buffers)
}

fn has_cycle(g: &Rrg) -> bool {
    // A graph has a directed cycle iff some SCC has ≥ 2 nodes or a
    // self-loop exists.
    if g.edges().any(|(_, e)| e.source() == e.target()) {
        return true;
    }
    rr_rrg::algo::sccs(g).iter().any(|c| c.len() >= 2)
}

/// Bellman–Ford negative-cycle test with f64 weights (virtual source).
fn has_negative_cycle(g: &Rrg, w: impl Fn(usize) -> f64) -> bool {
    let n = g.num_nodes();
    let mut dist = vec![0.0f64; n];
    for pass in 0..=n {
        let mut changed = false;
        for (id, e) in g.edges() {
            let cand = dist[e.source().index()] + w(id.index());
            if cand < dist[e.target().index()] - 1e-12 {
                dist[e.target().index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        if pass == n {
            return true;
        }
    }
    unreachable!("loop always returns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_rrg::{figures, RrgBuilder};

    #[test]
    fn figure_1a_ratio_is_one() {
        assert!((exact_late_throughput(&figures::figure_1a(0.5)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn figure_1b_ratio_is_one_third() {
        let th = exact_late_throughput(&figures::figure_1b(0.5));
        assert!((th - 1.0 / 3.0).abs() < 1e-9, "Θ = {th}");
    }

    #[test]
    fn figure_2_late_ratio_counts_anti_tokens() {
        // Bottom cycle: tokens 1, buffers 3 → 1/3 late throughput.
        let th = exact_late_throughput(&figures::figure_2(0.5));
        assert!((th - 1.0 / 3.0).abs() < 1e-9, "Θ = {th}");
    }

    #[test]
    fn acyclic_graph_is_unbounded() {
        let mut b = RrgBuilder::new();
        let a = b.add_simple("a", 1.0);
        let c = b.add_simple("c", 1.0);
        b.add_edge(a, c, 1, 1);
        let g = b.build().unwrap();
        assert!(exact_late_throughput(&g).is_infinite());
    }

    #[test]
    fn explicit_vectors_override_graph() {
        let g = figures::figure_1b(0.5);
        let tokens: Vec<i64> = g.edges().map(|(_, e)| e.tokens()).collect();
        let mut buffers: Vec<i64> = g.edges().map(|(_, e)| e.buffers()).collect();
        // Adding two more bubbles on the bottom cycle lowers the ratio.
        buffers[figures::edge::F2_F3.index()] += 2;
        let th = min_cycle_ratio(&g, &tokens, &buffers);
        assert!((th - 1.0 / 5.0).abs() < 1e-9, "Θ = {th}");
    }
}
