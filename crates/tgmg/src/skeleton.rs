//! The RRG → TGMG translation (Procedures 1 and 2) in *skeleton* form.
//!
//! The TGMG's **structure** depends only on the RRG's shape; the token
//! counts `R0` and buffer counts `R` of a retiming/recycling configuration
//! only parameterise markings and delays. The skeleton records those
//! dependencies symbolically:
//!
//! * every RRG edge `e = (u, v)` becomes a delay node
//!   [`NodeTag::EdgeDelay`] with `δ = R(e)` (this is Procedure 1 applied
//!   uniformly, i.e. also to single-input consumers, which leaves the LP
//!   bound unchanged and keeps one code path);
//! * the marking `R0(e)` sits on the edge leaving the delay node;
//! * every early node `v` gets a unit-delay [`NodeTag::Throttle`] on a
//!   token-carrying self-cycle and one [`NodeTag::Splitter`] per input
//!   (Procedure 2), which prevents the fluid LP relaxation from firing `v`
//!   more than once per cycle.
//!
//! Instantiating the skeleton with concrete `tokens`/`buffers` vectors
//! yields a numeric [`Tgmg`]; the optimizer in `rr-core` walks the same
//! skeleton to emit MILP constraints, so the two can never drift apart.

use rr_rrg::{EdgeId, NodeId, NodeKind, Rrg};

use crate::gmg::{Tgmg, TgmgEdge, TgmgNode};

/// Role of a TGMG node relative to the source RRG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeTag {
    /// The image of an RRG node (zero delay).
    Original(NodeId),
    /// The Procedure-1 node of an RRG edge; its delay is the edge's buffer
    /// count `R(e)`.
    EdgeDelay(EdgeId),
    /// Procedure-2 splitter on an input edge of an early node.
    Splitter(EdgeId),
    /// Procedure-2 unit-delay throttle of an early node.
    Throttle(NodeId),
}

/// Where a skeleton node's delay comes from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelaySrc {
    /// A constant (0 for originals/splitters, 1 for throttles).
    Const(f64),
    /// The buffer count `R(e)` of the configuration being evaluated.
    BuffersOf(EdgeId),
}

/// Where a skeleton edge's initial marking comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkingSrc {
    /// A constant (0 almost everywhere, 1 on throttle self-cycles).
    Const(i64),
    /// The token count `R0(e)` of the configuration being evaluated.
    TokensOf(EdgeId),
}

/// A skeleton node.
#[derive(Debug, Clone)]
pub struct SkelNode {
    /// Role of the node.
    pub tag: NodeTag,
    /// Evaluation discipline (early only for original early nodes).
    pub kind: NodeKind,
    /// Delay source.
    pub delay: DelaySrc,
}

/// A skeleton edge.
#[derive(Debug, Clone)]
pub struct SkelEdge {
    /// Source skeleton-node index.
    pub from: usize,
    /// Target skeleton-node index.
    pub to: usize,
    /// Marking source.
    pub marking: MarkingSrc,
    /// Guard probability (set exactly on edges entering early nodes).
    pub gamma: Option<f64>,
}

/// The symbolic TGMG of an RRG's shape.
#[derive(Debug, Clone)]
pub struct TgmgSkeleton {
    /// Skeleton nodes.
    pub nodes: Vec<SkelNode>,
    /// Skeleton edges.
    pub edges: Vec<SkelEdge>,
    /// Skeleton index of each RRG node's [`NodeTag::Original`] image.
    pub original: Vec<usize>,
}

impl TgmgSkeleton {
    /// Builds the skeleton of an RRG (Procedures 1 + 2 on the shape).
    pub fn of(g: &Rrg) -> TgmgSkeleton {
        let mut nodes: Vec<SkelNode> = Vec::new();
        let mut edges: Vec<SkelEdge> = Vec::new();

        // Original nodes.
        let original: Vec<usize> = g
            .node_ids()
            .map(|v| {
                nodes.push(SkelNode {
                    tag: NodeTag::Original(v),
                    kind: g.node(v).kind(),
                    delay: DelaySrc::Const(0.0),
                });
                nodes.len() - 1
            })
            .collect();

        // Throttles for early nodes (Procedure 2): unit delay, self-cycle
        // with one token.
        let mut throttle = vec![usize::MAX; g.num_nodes()];
        for (v, node) in g.nodes() {
            if node.is_early() {
                nodes.push(SkelNode {
                    tag: NodeTag::Throttle(v),
                    kind: NodeKind::Simple,
                    delay: DelaySrc::Const(1.0),
                });
                let s = nodes.len() - 1;
                throttle[v.index()] = s;
                edges.push(SkelEdge {
                    from: original[v.index()],
                    to: s,
                    marking: MarkingSrc::Const(1),
                    gamma: None,
                });
            }
        }

        // Edge-delay nodes (Procedure 1) and splitters (Procedure 2).
        for (e, edge) in g.edges() {
            let (u, v) = (edge.source(), edge.target());
            nodes.push(SkelNode {
                tag: NodeTag::EdgeDelay(e),
                kind: NodeKind::Simple,
                delay: DelaySrc::BuffersOf(e),
            });
            let ne = nodes.len() - 1;
            edges.push(SkelEdge {
                from: original[u.index()],
                to: ne,
                marking: MarkingSrc::Const(0),
                gamma: None,
            });
            if g.node(v).is_early() {
                nodes.push(SkelNode {
                    tag: NodeTag::Splitter(e),
                    kind: NodeKind::Simple,
                    delay: DelaySrc::Const(0.0),
                });
                let nk = nodes.len() - 1;
                // Token-carrying half of the split input edge.
                edges.push(SkelEdge {
                    from: ne,
                    to: nk,
                    marking: MarkingSrc::TokensOf(e),
                    gamma: None,
                });
                // Guarded edge into the early node.
                edges.push(SkelEdge {
                    from: nk,
                    to: original[v.index()],
                    marking: MarkingSrc::Const(0),
                    gamma: Some(
                        g.edge(e)
                            .gamma()
                            .expect("validated RRGs have γ on early inputs"),
                    ),
                });
                // Throttle release.
                edges.push(SkelEdge {
                    from: throttle[v.index()],
                    to: nk,
                    marking: MarkingSrc::Const(0),
                    gamma: None,
                });
            } else {
                edges.push(SkelEdge {
                    from: ne,
                    to: original[v.index()],
                    marking: MarkingSrc::TokensOf(e),
                    gamma: None,
                });
            }
        }

        TgmgSkeleton {
            nodes,
            edges,
            original,
        }
    }

    /// Instantiates the skeleton with explicit token/buffer vectors
    /// (indexed by RRG edge).
    ///
    /// # Panics
    ///
    /// Panics if the vectors are shorter than the RRG edge count implied
    /// by the skeleton.
    pub fn instantiate(&self, tokens: &[i64], buffers: &[i64]) -> Tgmg {
        let nodes = self
            .nodes
            .iter()
            .map(|n| TgmgNode {
                name: match n.tag {
                    NodeTag::Original(v) => format!("orig_{}", v.index()),
                    NodeTag::EdgeDelay(e) => format!("edge_{}", e.index()),
                    NodeTag::Splitter(e) => format!("split_{}", e.index()),
                    NodeTag::Throttle(v) => format!("throttle_{}", v.index()),
                },
                kind: n.kind,
                delay: match n.delay {
                    DelaySrc::Const(d) => d,
                    DelaySrc::BuffersOf(e) => buffers[e.index()] as f64,
                },
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|e| TgmgEdge {
                from: e.from,
                to: e.to,
                marking: match e.marking {
                    MarkingSrc::Const(c) => c,
                    MarkingSrc::TokensOf(re) => tokens[re.index()],
                },
                gamma: e.gamma,
            })
            .collect();
        Tgmg::new(nodes, edges)
    }

    /// Instantiates the skeleton from the RRG's own tokens and buffers.
    pub fn instantiate_from(&self, g: &Rrg) -> Tgmg {
        let tokens: Vec<i64> = g.edges().map(|(_, e)| e.tokens()).collect();
        let buffers: Vec<i64> = g.edges().map(|(_, e)| e.buffers()).collect();
        self.instantiate(&tokens, &buffers)
    }
}

/// One-call convenience: the numeric TGMG of an RRG (Procedures 1 + 2).
pub fn tgmg_of(g: &Rrg) -> Tgmg {
    TgmgSkeleton::of(g).instantiate_from(g)
}

/// A skeleton edge after chain elimination: a path `p → … → q` through
/// simple single-in/single-out nodes, folded into one constraint-bearing
/// super-edge. Its LP marking is
/// `m̂ = x·Σ markings − Σ chain_delays + σ(p) − σ(q)` —
/// the Fourier–Motzkin elimination of the interior σ potentials, which
/// recovers exactly the compact throughput constraints (5)–(10) printed
/// in the paper.
#[derive(Debug, Clone)]
pub struct ReducedEdge {
    /// Source index into [`ReducedSkeleton::nodes`].
    pub from: usize,
    /// Target index into [`ReducedSkeleton::nodes`].
    pub to: usize,
    /// All `m0` contributions along the chain.
    pub markings: Vec<MarkingSrc>,
    /// Delays of the eliminated interior nodes (enter `m̂` negatively).
    pub chain_delays: Vec<DelaySrc>,
    /// Guard probability (the chain's final edge enters an early node).
    pub gamma: Option<f64>,
}

/// The skeleton with every simple 1-in/1-out node (the Procedure-1 edge
/// nodes) eliminated. Used by the MILP formulation: roughly halves the
/// variable count without changing the LP optimum.
#[derive(Debug, Clone)]
pub struct ReducedSkeleton {
    /// Kept nodes, in original skeleton order.
    pub nodes: Vec<SkelNode>,
    /// Super-edges between kept nodes.
    pub edges: Vec<ReducedEdge>,
}

impl TgmgSkeleton {
    /// Eliminates chain σ-nodes (see [`ReducedSkeleton`]).
    pub fn reduced(&self) -> ReducedSkeleton {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut outdeg = vec![0usize; n];
        let mut out_edge = vec![usize::MAX; n];
        for (i, e) in self.edges.iter().enumerate() {
            indeg[e.to] += 1;
            outdeg[e.from] += 1;
            out_edge[e.from] = i;
        }
        let mut eliminable: Vec<bool> = (0..n)
            .map(|w| self.nodes[w].kind == NodeKind::Simple && indeg[w] == 1 && outdeg[w] == 1)
            .collect();
        // A cycle made up *entirely* of eliminable nodes (a plain ring of
        // pass-through stages) would otherwise vanish together with its
        // throughput constraint; keep one anchor node per such cycle so
        // it folds into a self-loop super-edge `Σδ ≤ x·Σm0` instead.
        loop {
            let mut covered = vec![false; n];
            for e in &self.edges {
                if eliminable[e.from] {
                    continue; // interior edge, reached by a walk below
                }
                let mut cur = e.to;
                while eliminable[cur] && !covered[cur] {
                    covered[cur] = true;
                    cur = self.edges[out_edge[cur]].to;
                }
            }
            match (0..n).find(|&w| eliminable[w] && !covered[w]) {
                Some(w) => eliminable[w] = false,
                None => break,
            }
        }
        let mut kept_index = vec![usize::MAX; n];
        let mut nodes = Vec::new();
        for (w, node) in self.nodes.iter().enumerate() {
            if !eliminable[w] {
                kept_index[w] = nodes.len();
                nodes.push(node.clone());
            }
        }

        let mut edges = Vec::new();
        for (i, first) in self.edges.iter().enumerate() {
            if eliminable[first.from] {
                continue; // interior edge of some chain
            }
            let mut markings = vec![first.marking];
            let mut chain_delays = Vec::new();
            let mut cur = first.to;
            let mut gamma = first.gamma;
            let mut hops = 0usize;
            while eliminable[cur] {
                chain_delays.push(self.nodes[cur].delay);
                let next_edge = &self.edges[out_edge[cur]];
                markings.push(next_edge.marking);
                gamma = next_edge.gamma;
                cur = next_edge.to;
                hops += 1;
                assert!(
                    hops <= n,
                    "isolated cycle of eliminable skeleton nodes (edge {i})"
                );
            }
            edges.push(ReducedEdge {
                from: kept_index[first.from],
                to: kept_index[cur],
                markings,
                chain_delays,
                gamma,
            });
        }
        ReducedSkeleton { nodes, edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_rrg::figures;

    #[test]
    fn figure_1b_skeleton_shape() {
        // Figure 3/4 of the paper: 5 original nodes, 6 edge nodes, plus
        // (for the single early mux with two inputs) one throttle and two
        // splitters.
        let g = figures::figure_1b(0.5);
        let sk = TgmgSkeleton::of(&g);
        let originals = sk
            .nodes
            .iter()
            .filter(|n| matches!(n.tag, NodeTag::Original(_)))
            .count();
        let edge_delays = sk
            .nodes
            .iter()
            .filter(|n| matches!(n.tag, NodeTag::EdgeDelay(_)))
            .count();
        let splitters = sk
            .nodes
            .iter()
            .filter(|n| matches!(n.tag, NodeTag::Splitter(_)))
            .count();
        let throttles = sk
            .nodes
            .iter()
            .filter(|n| matches!(n.tag, NodeTag::Throttle(_)))
            .count();
        assert_eq!((originals, edge_delays, splitters, throttles), (5, 6, 2, 1));
        // Edges: throttle in (1) + per simple-target edge 2×4, per
        // early-target edge 4×2.
        assert_eq!(sk.edges.len(), 1 + 2 * 4 + 4 * 2);
    }

    #[test]
    fn instantiation_reads_configuration() {
        let g = figures::figure_1b(0.5);
        let sk = TgmgSkeleton::of(&g);
        let t = sk.instantiate_from(&g);
        t.check().unwrap();
        assert!(t.has_integer_delays());
        // The top channel's edge-delay node carries δ = 3.
        let top_idx = sk
            .nodes
            .iter()
            .position(|n| n.tag == NodeTag::EdgeDelay(figures::edge::TOP))
            .unwrap();
        assert_eq!(t.nodes[top_idx].delay, 3.0);
        // Its outgoing (token) edge holds 3 tokens.
        let tok_edge = t.succ[top_idx][0];
        assert_eq!(t.edges[tok_edge].marking, 3);
    }

    #[test]
    fn guard_probabilities_land_on_splitter_edges() {
        let g = figures::figure_1b(0.9);
        let t = tgmg_of(&g);
        let gammas: Vec<f64> = t.edges.iter().filter_map(|e| e.gamma).collect();
        assert_eq!(gammas.len(), 2);
        let sum: f64 = gammas.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn anti_tokens_survive_translation() {
        let g = figures::figure_2(0.5);
        let t = tgmg_of(&g);
        assert!(t.edges.iter().any(|e| e.marking == -2));
    }

    #[test]
    fn reduction_eliminates_chain_nodes() {
        let g = figures::figure_1b(0.5);
        let sk = TgmgSkeleton::of(&g);
        let red = sk.reduced();
        // No edge-delay node survives (they are all 1-in/1-out), and in
        // this graph even the pass-through originals F1..F3 fold away:
        // kept are the mux, the fork node f, the throttle, two splitters.
        assert!(red
            .nodes
            .iter()
            .all(|n| !matches!(n.tag, NodeTag::EdgeDelay(_))));
        assert_eq!(red.nodes.len(), 5);
        // Total marking mass is preserved: Σ over super-edges of Σm0
        // equals skeleton total (tokens 0+1+0+0+3+0 = 4 plus the
        // throttle's 1).
        let total: i64 = red
            .edges
            .iter()
            .flat_map(|e| e.markings.iter())
            .map(|&m| match m {
                MarkingSrc::Const(c) => c,
                MarkingSrc::TokensOf(e) => g.edge(e).tokens(),
            })
            .sum();
        assert_eq!(total, 4 + 1);
        // γ survives on the edges entering the early node and still
        // normalises.
        let gammas: Vec<f64> = red.edges.iter().filter_map(|e| e.gamma).collect();
        assert_eq!(gammas.len(), 2);
        assert!((gammas.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The m→…→f chain really folded several interior nodes.
        assert!(red.edges.iter().any(|e| e.chain_delays.len() >= 3));
    }

    #[test]
    fn pure_rings_keep_an_anchor_node() {
        // A plain two-node ring: every skeleton node is simple 1-in/1-out,
        // so naive chain elimination would delete the whole cycle and its
        // throughput constraint with it. One anchor must survive, with a
        // self-loop super-edge carrying the cycle's tokens and delays.
        let mut b = rr_rrg::RrgBuilder::new();
        let a = b.add_simple("a", 1.0);
        let c = b.add_simple("c", 1.0);
        b.add_edge(a, c, 1, 2); // one token, one bubble
        b.add_edge(c, a, 0, 0);
        let g = b.build().unwrap();
        let red = TgmgSkeleton::of(&g).reduced();
        assert_eq!(red.nodes.len(), 1, "one anchor per pure ring");
        assert_eq!(red.edges.len(), 1);
        let e = &red.edges[0];
        assert_eq!(e.from, e.to, "the ring folds into a self-loop");
        let tokens: i64 = e
            .markings
            .iter()
            .map(|&m| match m {
                MarkingSrc::Const(c) => c,
                MarkingSrc::TokensOf(e) => g.edge(e).tokens(),
            })
            .sum();
        assert_eq!(tokens, 1);
        // The chain delays cover both edge-delay nodes (buffers 2 and 0)
        // plus the eliminated original; the anchor's own delay completes
        // the cycle sum.
        assert!(!e.chain_delays.is_empty());
    }

    #[test]
    fn late_only_graph_has_no_throttles() {
        let g = figures::figure_1b(0.5).with_late_evaluation();
        let sk = TgmgSkeleton::of(&g);
        assert!(sk
            .nodes
            .iter()
            .all(|n| !matches!(n.tag, NodeTag::Throttle(_) | NodeTag::Splitter(_))));
    }
}
