//! The TGMG data model (Definitions 3.1–3.3).

use rr_rrg::NodeKind;

/// A TGMG node: a delay and an evaluation discipline.
///
/// For simple nodes the (single) guard is the whole input set; for early
/// nodes each input edge is its own guard, selected with the probability
/// stored on the edge.
#[derive(Debug, Clone)]
pub struct TgmgNode {
    /// Human-readable label (diagnostics only).
    pub name: String,
    /// Late or early evaluation.
    pub kind: NodeKind,
    /// Firing delay δ(n) ≥ 0.
    pub delay: f64,
}

/// A TGMG edge with its initial marking (negative = anti-tokens) and, for
/// edges entering early nodes, the guard probability γ.
#[derive(Debug, Clone)]
pub struct TgmgEdge {
    /// Source node index.
    pub from: usize,
    /// Target node index.
    pub to: usize,
    /// Initial marking `m0` (may be negative).
    pub marking: i64,
    /// Guard-selection probability when `to` is early.
    pub gamma: Option<f64>,
}

/// A timed guarded marked graph.
#[derive(Debug, Clone)]
pub struct Tgmg {
    /// Nodes, indexed densely.
    pub nodes: Vec<TgmgNode>,
    /// Edges, indexed densely.
    pub edges: Vec<TgmgEdge>,
    /// Outgoing edge indices per node.
    pub succ: Vec<Vec<usize>>,
    /// Incoming edge indices per node.
    pub pred: Vec<Vec<usize>>,
}

impl Tgmg {
    /// Builds a TGMG from parts, deriving the adjacency lists.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node out of range.
    pub fn new(nodes: Vec<TgmgNode>, edges: Vec<TgmgEdge>) -> Tgmg {
        let n = nodes.len();
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            assert!(e.from < n && e.to < n, "edge {i} out of range");
            succ[e.from].push(i);
            pred[e.to].push(i);
        }
        Tgmg {
            nodes,
            edges,
            succ,
            pred,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The initial marking vector.
    pub fn initial_marking(&self) -> Vec<i64> {
        self.edges.iter().map(|e| e.marking).collect()
    }

    /// `true` when every node delay is a nonnegative integer (required by
    /// the cycle-based simulator).
    pub fn has_integer_delays(&self) -> bool {
        self.nodes
            .iter()
            .all(|n| n.delay >= 0.0 && n.delay.fract() == 0.0)
    }

    /// Sum of markings around each edge of a cycle given as edge indices
    /// (diagnostic helper for invariant tests).
    pub fn cycle_marking(&self, cycle: &[usize]) -> i64 {
        cycle.iter().map(|&e| self.edges[e].marking).sum()
    }

    /// Checks structural sanity: guard probabilities present exactly on
    /// the inputs of early nodes and normalised per node.
    pub fn check(&self) -> Result<(), String> {
        for (i, node) in self.nodes.iter().enumerate() {
            if node.delay < 0.0 || node.delay.is_nan() {
                return Err(format!("node {i} has bad delay {}", node.delay));
            }
            match node.kind {
                NodeKind::EarlyEval => {
                    let mut sum = 0.0;
                    for &e in &self.pred[i] {
                        let Some(p) = self.edges[e].gamma else {
                            return Err(format!("edge {e} into early node {i} lacks γ"));
                        };
                        if p <= 0.0 || p > 1.0 {
                            return Err(format!("edge {e} has γ={p} outside (0,1]"));
                        }
                        sum += p;
                    }
                    if (sum - 1.0).abs() > 1e-6 {
                        return Err(format!("γ of node {i} sums to {sum}"));
                    }
                }
                NodeKind::Simple => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tgmg {
        Tgmg::new(
            vec![
                TgmgNode {
                    name: "a".into(),
                    kind: NodeKind::Simple,
                    delay: 1.0,
                },
                TgmgNode {
                    name: "b".into(),
                    kind: NodeKind::Simple,
                    delay: 2.0,
                },
            ],
            vec![
                TgmgEdge {
                    from: 0,
                    to: 1,
                    marking: 1,
                    gamma: None,
                },
                TgmgEdge {
                    from: 1,
                    to: 0,
                    marking: 2,
                    gamma: None,
                },
            ],
        )
    }

    #[test]
    fn adjacency_built() {
        let g = tiny();
        assert_eq!(g.succ[0], vec![0]);
        assert_eq!(g.pred[0], vec![1]);
        assert!(g.has_integer_delays());
        assert_eq!(g.cycle_marking(&[0, 1]), 3);
        g.check().unwrap();
    }

    #[test]
    fn check_rejects_missing_gamma() {
        let mut g = tiny();
        g.nodes[1].kind = NodeKind::EarlyEval;
        assert!(g.check().is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_bounds_enforced() {
        Tgmg::new(
            vec![TgmgNode {
                name: "a".into(),
                kind: NodeKind::Simple,
                delay: 0.0,
            }],
            vec![TgmgEdge {
                from: 0,
                to: 7,
                marking: 0,
                gamma: None,
            }],
        );
    }
}
