//! Discrete-event simulation of TGMGs under infinite-server semantics
//! (Definition 3.2 plus the timing interpretation of Definition 3.3).
//!
//! This is the reproduction's stand-in for the paper's "intensive
//! simulations" of generated Verilog: by Lemma 3.1 the refined TGMG of an
//! RRG has exactly the RRG's throughput, so measuring the TGMG measures
//! the elastic system. (The independent cycle-accurate machine in
//! `rr-elastic` cross-checks this.)
//!
//! Semantics implemented here:
//!
//! * **Guard selection** — an early node draws one input edge with
//!   probability γ and *keeps that selection* until it fires (the select
//!   token persists until consumed).
//! * **Enabling** — simple nodes need positive marking on every input;
//!   early nodes only on the selected input.
//! * **Firing** — consumes one token from *every* input (non-selected
//!   inputs may go negative: anti-tokens), produces one token on every
//!   output after δ(n) time units. Multiple firings may overlap
//!   (infinite servers).
//!
//! Delays must be nonnegative integers (they are: buffer counts and the
//! unit throttle). Zero-delay cascades terminate because every cycle of a
//! valid configuration contains a positive-delay node (liveness gives each
//! RRG cycle a token, hence a buffer, hence an edge-delay ≥ 1).

use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rr_rrg::NodeKind;

use crate::gmg::Tgmg;

/// How an early node treats its guard selection while the selected input
/// is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardPolicy {
    /// The selection persists until the node fires (a select token is
    /// consumed exactly once per firing).
    #[default]
    Persistent,
    /// A fresh selection is drawn at every time step while the node is
    /// blocked.
    ResampleEachCycle,
}

/// Simulation horizon and measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct SimParams {
    /// Total simulated cycles.
    pub horizon: u64,
    /// Cycles discarded before measuring (steady-state warm-up).
    pub warmup: u64,
    /// RNG seed for guard selection.
    pub seed: u64,
    /// Blocked-guard semantics.
    pub guard_policy: GuardPolicy,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            horizon: 30_000,
            warmup: 3_000,
            seed: 0xE1A5_71C5,
            guard_policy: GuardPolicy::default(),
        }
    }
}

impl SimParams {
    /// Quick, low-accuracy parameters for property tests.
    pub fn fast(seed: u64) -> Self {
        SimParams {
            horizon: 4_000,
            warmup: 500,
            seed,
            ..Self::default()
        }
    }
}

/// Simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Measured steady-state throughput of the reference node (node 0;
    /// all nodes of a live TGMG share the same rate).
    pub throughput: f64,
    /// Firings of every node over the whole horizon.
    pub firings: Vec<u64>,
    /// Simulated cycles.
    pub cycles: u64,
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Delays must be nonnegative integers.
    NonIntegerDelay { node: usize, delay: f64 },
    /// No node can ever fire again (dead marking).
    Deadlock { at_cycle: u64 },
    /// A zero-delay cascade did not terminate: the graph has a zero-delay
    /// cycle with positive marking (invalid configuration).
    ZeroDelayLivelock { at_cycle: u64 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NonIntegerDelay { node, delay } => {
                write!(f, "node {node} has non-integer delay {delay}")
            }
            SimError::Deadlock { at_cycle } => write!(f, "deadlock at cycle {at_cycle}"),
            SimError::ZeroDelayLivelock { at_cycle } => {
                write!(f, "zero-delay livelock at cycle {at_cycle}")
            }
        }
    }
}

impl Error for SimError {}

/// Runs the simulation and measures the steady-state throughput.
///
/// # Errors
///
/// See [`SimError`].
pub fn simulate(t: &Tgmg, params: &SimParams) -> Result<SimResult, SimError> {
    for (i, n) in t.nodes.iter().enumerate() {
        if n.delay < 0.0 || n.delay.fract() != 0.0 {
            return Err(SimError::NonIntegerDelay {
                node: i,
                delay: n.delay,
            });
        }
    }
    let delays: Vec<u64> = t.nodes.iter().map(|n| n.delay as u64).collect();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut marking: Vec<i64> = t.initial_marking();
    let mut firings: Vec<u64> = vec![0; t.num_nodes()];
    // Pending guard selection per early node: the chosen *input edge*.
    let mut selection: Vec<Option<usize>> = vec![None; t.num_nodes()];
    // Completion events: (time, node), min-heap.
    let mut events: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();

    let mut warmup_counts: Vec<u64> = vec![0; t.num_nodes()];
    let mut warmup_time: Option<u64> = None;
    // Upper bound on firings per instant: every firing consumes a token
    // from each input; total positive marking bounds the cascade.
    let cascade_limit: u64 = 1_000
        + 4 * t
            .edges
            .iter()
            .map(|e| e.marking.unsigned_abs())
            .sum::<u64>()
        + 4 * t.num_nodes() as u64;

    let mut now: u64 = 0;
    loop {
        // Fire everything enabled at the current instant, cascading
        // through zero-delay completions.
        let mut cascade: u64 = 0;
        loop {
            let mut fired_any = false;
            for v in 0..t.num_nodes() {
                loop {
                    let enabled = match t.nodes[v].kind {
                        NodeKind::Simple => {
                            !t.pred[v].is_empty() && t.pred[v].iter().all(|&e| marking[e] > 0)
                        }
                        NodeKind::EarlyEval => {
                            let sel =
                                *selection[v].get_or_insert_with(|| draw_guard(t, v, &mut rng));
                            marking[sel] > 0
                        }
                    };
                    if !enabled {
                        break;
                    }
                    // Fire v once.
                    for &e in &t.pred[v] {
                        marking[e] -= 1;
                    }
                    if t.nodes[v].kind == NodeKind::EarlyEval {
                        selection[v] = None;
                    }
                    firings[v] += 1;
                    fired_any = true;
                    cascade += 1;
                    if cascade > cascade_limit {
                        return Err(SimError::ZeroDelayLivelock { at_cycle: now });
                    }
                    if delays[v] == 0 {
                        for &e in &t.succ[v] {
                            marking[e] += 1;
                        }
                    } else {
                        events.push(std::cmp::Reverse((now + delays[v], v)));
                        // This node may still be enabled for another
                        // concurrent firing; loop again.
                    }
                }
            }
            if !fired_any {
                break;
            }
        }

        if warmup_time.is_none() && now >= params.warmup {
            warmup_counts.copy_from_slice(&firings);
            warmup_time = Some(now);
        }
        if params.guard_policy == GuardPolicy::ResampleEachCycle {
            for s in selection.iter_mut() {
                *s = None;
            }
        }
        // Advance time to the next completion.
        let Some(&std::cmp::Reverse((t_next, _))) = events.peek() else {
            return Err(SimError::Deadlock { at_cycle: now });
        };
        if t_next >= params.horizon {
            break;
        }
        now = t_next;
        while let Some(&std::cmp::Reverse((te, v))) = events.peek() {
            if te != now {
                break;
            }
            events.pop();
            for &e in &t.succ[v] {
                marking[e] += 1;
            }
        }
    }

    let measured_from = warmup_time.unwrap_or(0);
    let window = (params.horizon - measured_from) as f64;
    let throughput = (firings[0].saturating_sub(warmup_counts[0])) as f64 / window;
    Ok(SimResult {
        throughput,
        firings,
        cycles: params.horizon,
    })
}

fn draw_guard(t: &Tgmg, v: usize, rng: &mut StdRng) -> usize {
    let mut x: f64 = rng.random_range(0.0..1.0);
    let ins = &t.pred[v];
    for &e in ins {
        let p = t.edges[e].gamma.expect("early input without γ");
        if x < p {
            return e;
        }
        x -= p;
    }
    *ins.last().expect("early node without inputs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::tgmg_of;
    use rr_rrg::figures;

    fn measure(g: &rr_rrg::Rrg) -> f64 {
        simulate(&tgmg_of(g), &SimParams::default())
            .unwrap()
            .throughput
    }

    #[test]
    fn figure_1a_throughput_is_one() {
        let th = measure(&figures::figure_1a(0.5));
        assert!((th - 1.0).abs() < 0.01, "Θ = {th}");
    }

    #[test]
    fn figure_1b_late_throughput_is_one_third() {
        let th = measure(&figures::figure_1b(0.5).with_late_evaluation());
        assert!((th - 1.0 / 3.0).abs() < 0.01, "Θ = {th}");
    }

    #[test]
    fn figure_1b_early_matches_paper_markov_values() {
        // Paper §1.4: Θ = 0.491 at α = 0.5 and 0.719 at α = 0.9.
        let th05 = measure(&figures::figure_1b(0.5));
        assert!((th05 - 0.491).abs() < 0.015, "Θ(0.5) = {th05}");
        let th09 = measure(&figures::figure_1b(0.9));
        assert!((th09 - 0.719).abs() < 0.015, "Θ(0.9) = {th09}");
    }

    #[test]
    fn figure_2_matches_closed_form() {
        for &alpha in &[0.3, 0.5, 0.7, 0.9] {
            let th = measure(&figures::figure_2(alpha));
            let exact = figures::figure_2_throughput(alpha);
            assert!(
                (th - exact).abs() < 0.02,
                "α={alpha}: Θ = {th}, closed form {exact}"
            );
        }
    }

    #[test]
    fn all_nodes_share_the_rate() {
        let t = tgmg_of(&figures::figure_2(0.7));
        let r = simulate(&t, &SimParams::default()).unwrap();
        // Compare original nodes' firing counts (within warm-up slack).
        let counts: Vec<u64> = (0..5).map(|i| r.firings[i]).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max - min < 0.05 * max, "{counts:?}");
    }

    #[test]
    fn deadlocked_graph_reports_deadlock() {
        use crate::gmg::{Tgmg, TgmgEdge, TgmgNode};
        use rr_rrg::NodeKind;
        // Two nodes in a token-free cycle.
        let t = Tgmg::new(
            vec![
                TgmgNode {
                    name: "a".into(),
                    kind: NodeKind::Simple,
                    delay: 1.0,
                },
                TgmgNode {
                    name: "b".into(),
                    kind: NodeKind::Simple,
                    delay: 1.0,
                },
            ],
            vec![
                TgmgEdge {
                    from: 0,
                    to: 1,
                    marking: 0,
                    gamma: None,
                },
                TgmgEdge {
                    from: 1,
                    to: 0,
                    marking: 0,
                    gamma: None,
                },
            ],
        );
        assert!(matches!(
            simulate(&t, &SimParams::fast(1)),
            Err(SimError::Deadlock { .. })
        ));
    }

    #[test]
    fn non_integer_delay_rejected() {
        use crate::gmg::{Tgmg, TgmgEdge, TgmgNode};
        use rr_rrg::NodeKind;
        let t = Tgmg::new(
            vec![TgmgNode {
                name: "a".into(),
                kind: NodeKind::Simple,
                delay: 0.5,
            }],
            vec![TgmgEdge {
                from: 0,
                to: 0,
                marking: 1,
                gamma: None,
            }],
        );
        assert!(matches!(
            simulate(&t, &SimParams::fast(1)),
            Err(SimError::NonIntegerDelay { .. })
        ));
    }

    #[test]
    fn seeds_are_deterministic() {
        let t = tgmg_of(&figures::figure_1b(0.6));
        let a = simulate(&t, &SimParams::default()).unwrap();
        let b = simulate(&t, &SimParams::default()).unwrap();
        assert_eq!(a.firings, b.firings);
    }
}
