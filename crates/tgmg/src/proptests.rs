//! Cross-validation properties of the throughput machinery:
//!
//! * the LP bound really is an upper bound on the simulated throughput,
//! * for late-evaluation graphs the LP bound equals the exact minimum
//!   cycle ratio and the simulator converges to it,
//! * bubble-free graphs run at Θ = 1,
//! * the throttle keeps the early-evaluation bound at most 1.

use proptest::prelude::*;
use rr_rrg::generate::GeneratorParams;

use crate::late;
use crate::lp_bound::throughput_upper_bound;
use crate::sim::{simulate, SimParams};
use crate::skeleton::tgmg_of;

fn small_params() -> impl Strategy<Value = (GeneratorParams, u64)> {
    (2usize..10, 0usize..3, 0usize..12, any::<u64>()).prop_map(|(ns, ne, extra, seed)| {
        let n = ns + ne;
        (
            GeneratorParams::paper_defaults(ns, ne, n + ne + extra),
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lp_bound_dominates_simulation((p, seed) in small_params()) {
        let g = p.generate(seed);
        let t = tgmg_of(&g);
        let bound = throughput_upper_bound(&t).unwrap();
        let sim = simulate(&t, &SimParams::fast(seed)).unwrap().throughput;
        // Allow the short-horizon simulator a little measurement noise.
        prop_assert!(sim <= bound + 0.05, "sim {sim} exceeds bound {bound}");
        prop_assert!(bound <= 1.0 + 1e-6, "bound {bound} above 1");
    }

    #[test]
    fn late_eval_lp_equals_min_cycle_ratio((p, seed) in small_params()) {
        let g = p.generate(seed).with_late_evaluation();
        let t = tgmg_of(&g);
        let bound = throughput_upper_bound(&t).unwrap();
        let mcr = late::exact_late_throughput(&g);
        prop_assert!((bound - mcr.min(2.0)).abs() < 1e-5,
            "LP {bound} vs MCR {mcr}");
    }

    #[test]
    fn late_eval_simulation_converges_to_mcr((p, seed) in small_params()) {
        let g = p.generate(seed).with_late_evaluation();
        let t = tgmg_of(&g);
        let mcr = late::exact_late_throughput(&g);
        let sim = simulate(
            &t,
            &SimParams {
                horizon: 12_000,
                warmup: 2_000,
                seed,
                ..SimParams::default()
            },
        )
        .unwrap()
        .throughput;
        prop_assert!((sim - mcr).abs() < 0.05, "sim {sim} vs MCR {mcr}");
    }

    #[test]
    fn bubble_free_graphs_run_at_unit_rate((p, seed) in small_params()) {
        let g = p.generate(seed);
        // The generator only places tokens inside EBs (no bubbles), so the
        // initial configuration must run at Θ = 1 regardless of early
        // marking.
        let t = tgmg_of(&g);
        let bound = throughput_upper_bound(&t).unwrap();
        prop_assert!((bound - 1.0).abs() < 1e-6, "bound {bound}");
        let sim = simulate(&t, &SimParams::fast(seed)).unwrap().throughput;
        prop_assert!((sim - 1.0).abs() < 0.05, "sim {sim}");
    }
}
