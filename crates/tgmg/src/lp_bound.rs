//! The LP throughput upper bound — problem (4) of the paper.
//!
//! For a TGMG with delays δ, markings `m0` and guard probabilities γ the
//! steady-state throughput is bounded by the optimum of
//!
//! ```text
//! max φ
//!   δ(n)·φ ≤ m̂(e)                    n simple, e ∈ •n
//!   δ(n)·φ ≤ Σ_{e∈•n} γ(e)·m̂(e)      n early
//!   m̂(e) = m0(e) + σ(u) − σ(v)       e = (u, v)
//! ```
//!
//! with free node potentials σ. For guard-free graphs this LP computes the
//! exact minimum cycle ratio; with early evaluation it is a (sometimes
//! loose) upper bound — the paper's Table 1 `err%` column quantifies the
//! gap against simulation.

use rr_milp::{cmp, LinExpr, Model, Sense, SolveError, SolverOptions};
use rr_rrg::NodeKind;

use crate::gmg::Tgmg;

/// Throughput upper bound `Θ_lp` of a TGMG.
///
/// Returns `f64::INFINITY` when the LP is unbounded (possible only for
/// graphs that are not strongly connected, e.g. acyclic pipelines whose
/// fluid throughput is unlimited).
///
/// # Errors
///
/// Propagates solver failures. A structurally valid TGMG is always
/// feasible (φ = 0, σ = 0), so [`SolveError::Infeasible`] indicates a
/// malformed marking.
pub fn throughput_upper_bound(t: &Tgmg) -> Result<f64, SolveError> {
    throughput_upper_bound_with(t, &SolverOptions::default())
}

/// [`throughput_upper_bound`] with explicit solver options.
///
/// # Errors
///
/// See [`throughput_upper_bound`].
pub fn throughput_upper_bound_with(t: &Tgmg, opts: &SolverOptions) -> Result<f64, SolveError> {
    throughput_upper_bound_counted(t, opts).map(|(b, _)| b)
}

/// [`throughput_upper_bound_with`], additionally reporting the simplex
/// pivot count of the LP solve (perf telemetry for the scaling benches;
/// the count is 0 when the LP is detected unbounded).
///
/// # Errors
///
/// See [`throughput_upper_bound`].
pub fn throughput_upper_bound_counted(
    t: &Tgmg,
    opts: &SolverOptions,
) -> Result<(f64, usize), SolveError> {
    let mut m = Model::new(Sense::Maximize);
    let phi = m.add_continuous("phi", 0.0, f64::INFINITY);
    let sigma: Vec<_> = (0..t.num_nodes())
        .map(|i| m.add_free(format!("sigma_{i}")))
        .collect();
    m.set_objective(LinExpr::var(phi));

    for (i, node) in t.nodes.iter().enumerate() {
        match node.kind {
            NodeKind::Simple => {
                for &e in &t.pred[i] {
                    let edge = &t.edges[e];
                    // δ·φ − σ(u) + σ(v) ≤ m0
                    let expr = node.delay * phi - sigma[edge.from] + sigma[edge.to];
                    m.add_constraint(expr, cmp::LE, edge.marking as f64);
                }
            }
            NodeKind::EarlyEval => {
                // δ·φ ≤ Σ γ(e)·(m0(e) + σ(u) − σ(v))
                let mut expr = node.delay * phi;
                let mut rhs = 0.0;
                for &e in &t.pred[i] {
                    let edge = &t.edges[e];
                    let g = edge.gamma.expect("early input without γ");
                    expr += g * (LinExpr::var(sigma[edge.to]) - sigma[edge.from]);
                    rhs += g * edge.marking as f64;
                }
                m.add_constraint(expr, cmp::LE, rhs);
            }
        }
    }

    // The model is a pure LP (φ and the free potentials are continuous),
    // so the relaxation *is* the problem.
    match m.solve_relaxation_counted(opts) {
        Ok((sol, pivots)) => Ok((sol[phi], pivots)),
        Err(SolveError::Unbounded) => Ok((f64::INFINITY, 0)),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::tgmg_of;
    use rr_rrg::figures;

    #[test]
    fn bubble_free_graph_has_unit_throughput() {
        let t = tgmg_of(&figures::figure_1a(0.5));
        let b = throughput_upper_bound(&t).unwrap();
        assert!((b - 1.0).abs() < 1e-6, "bound {b}");
    }

    #[test]
    fn late_figure_1b_bound_is_one_third() {
        // With late evaluation the bound equals the exact minimum cycle
        // ratio 1/3.
        let t = tgmg_of(&figures::figure_1b(0.5).with_late_evaluation());
        let b = throughput_upper_bound(&t).unwrap();
        assert!((b - 1.0 / 3.0).abs() < 1e-6, "bound {b}");
    }

    #[test]
    fn early_evaluation_raises_the_bound() {
        let late =
            throughput_upper_bound(&tgmg_of(&figures::figure_1b(0.9).with_late_evaluation()))
                .unwrap();
        let early = throughput_upper_bound(&tgmg_of(&figures::figure_1b(0.9))).unwrap();
        assert!(early > late + 0.1, "early {early} should beat late {late}");
        assert!(early <= 1.0 + 1e-6);
    }

    #[test]
    fn figure_2_bound_upper_bounds_closed_form() {
        for &alpha in &[0.3, 0.5, 0.9] {
            let t = tgmg_of(&figures::figure_2(alpha));
            let b = throughput_upper_bound(&t).unwrap();
            let exact = figures::figure_2_throughput(alpha);
            assert!(
                b >= exact - 1e-6,
                "α={alpha}: bound {b} below exact {exact}"
            );
            assert!(b <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn acyclic_graph_is_unbounded() {
        use crate::gmg::{Tgmg, TgmgEdge, TgmgNode};
        use rr_rrg::NodeKind;
        let t = Tgmg::new(
            vec![
                TgmgNode {
                    name: "a".into(),
                    kind: NodeKind::Simple,
                    delay: 1.0,
                },
                TgmgNode {
                    name: "b".into(),
                    kind: NodeKind::Simple,
                    delay: 1.0,
                },
            ],
            vec![TgmgEdge {
                from: 0,
                to: 1,
                marking: 0,
                gamma: None,
            }],
        );
        assert!(throughput_upper_bound(&t).unwrap().is_infinite());
    }
}
