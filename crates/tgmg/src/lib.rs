//! Timed Guarded Marked Graphs (TGMGs) and the throughput machinery of §3.
//!
//! A TGMG (Júlvez/Cortadella/Kishinevsky, ICCAD'06; Definitions 3.1–3.4 of
//! the paper) is a marked graph whose *early-evaluation* nodes fire as soon
//! as one probabilistically-selected input ("guard") carries a token,
//! consuming one token from **every** input — possibly driving the
//! non-selected inputs negative, which is exactly the anti-token
//! counterflow of elastic systems.
//!
//! This crate implements:
//!
//! * the TGMG data model and firing semantics ([`gmg`]),
//! * the RRG → TGMG translation, i.e. the paper's **Procedure 1** (an edge
//!   with `R` buffers becomes a delay-`R` node) and **Procedure 2** (a
//!   unit-delay throttle per early node) — in a *skeleton* form that can be
//!   instantiated for any retiming/recycling configuration ([`skeleton`]),
//! * the **LP throughput upper bound** (4), `Θ_lp` ([`lp_bound`]),
//! * a **discrete-event simulator** measuring the actual steady-state
//!   throughput `Θ` ([`sim`]) — the stand-in for the paper's RTL
//!   simulations (Lemma 3.1 guarantees the refined TGMG has exactly the
//!   RRG's throughput),
//! * the exact **late-evaluation throughput** (minimum cycle ratio) used
//!   for baselines and cross-checks ([`late`]).
//!
//! # Example
//!
//! ```
//! use rr_rrg::figures;
//! use rr_tgmg::{skeleton::TgmgSkeleton, lp_bound, sim};
//!
//! let rrg = figures::figure_2(0.9);
//! let tgmg = TgmgSkeleton::of(&rrg).instantiate_from(&rrg);
//! let bound = lp_bound::throughput_upper_bound(&tgmg)?;
//! let measured = sim::simulate(&tgmg, &sim::SimParams::default())?.throughput;
//! // Θ = 1/(3−2α) = 5/6; the LP bound is an upper bound on the measured Θ.
//! assert!(measured <= bound + 0.02);
//! assert!((measured - 5.0 / 6.0).abs() < 0.02);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod gmg;
pub mod late;
pub mod lp_bound;
pub mod sim;
pub mod skeleton;

pub use gmg::{Tgmg, TgmgEdge, TgmgNode};
pub use skeleton::{DelaySrc, MarkingSrc, NodeTag, TgmgSkeleton};

#[cfg(test)]
mod proptests;
