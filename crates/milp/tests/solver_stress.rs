//! Stress and edge-case tests of the MILP solver beyond the unit tests:
//! structured problem families with known optima, warm-start behaviour,
//! priorities, and limit semantics.

use rr_milp::{
    cmp, solve_with_stats, Kernel, LinExpr, Model, Sense, SolveError, SolverOptions, Status,
};

/// max Σx_i over a cube cut by one diagonal plane — LP corner is
/// fractional, integer optimum known.
fn diagonal_cut(n: usize, cap: f64) -> (Model, Vec<rr_milp::VarId>) {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_integer(format!("x{i}"), 0.0, 1.0))
        .collect();
    let mut sum = LinExpr::new();
    for &v in &vars {
        sum += LinExpr::var(v);
    }
    m.set_objective(sum.clone());
    m.add_constraint(sum, cmp::LE, cap);
    (m, vars)
}

#[test]
fn diagonal_cut_optimum_is_floor() {
    for n in [4usize, 8, 16] {
        let cap = n as f64 - 0.5;
        let (m, _) = diagonal_cut(n, cap);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - (n as f64 - 1.0)).abs() < 1e-6);
    }
}

#[test]
fn equality_knapsack() {
    // 3a + 5b + 7c == 19, minimize a + b + c → (0,1,2) → 3.
    let mut m = Model::new(Sense::Minimize);
    let a = m.add_integer("a", 0.0, 10.0);
    let b = m.add_integer("b", 0.0, 10.0);
    let c = m.add_integer("c", 0.0, 10.0);
    m.set_objective(a + b + LinExpr::var(c));
    m.add_constraint(3.0 * a + 5.0 * b + 7.0 * c, cmp::EQ, 19.0);
    let sol = m.solve().unwrap();
    assert!((sol.objective - 3.0).abs() < 1e-6, "obj {}", sol.objective);
    let lhs = 3.0 * sol[a] + 5.0 * sol[b] + 7.0 * sol[c];
    assert!((lhs - 19.0).abs() < 1e-6);
}

#[test]
fn warm_start_is_used_when_nodes_run_out() {
    // With zero B&B exploration room, the hint is the only incumbent.
    let (m, vars) = diagonal_cut(10, 9.5);
    let opts = SolverOptions {
        max_nodes: 1,
        rounding_heuristic: false,
        ..Default::default()
    };
    // All-zeros is feasible but poor; the solver must return *something*.
    let hint: Vec<_> = vars.iter().map(|&v| (v, 0.0)).collect();
    let sol = m.solve_with_hint(&opts, &hint).unwrap();
    assert!(sol.objective >= -1e-9);
    // And an infeasible hint must be ignored, not crash: request 1s
    // everywhere (violates the ≤ 9.5 row).
    let bad_hint: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
    match m.solve_with_hint(&opts, &bad_hint) {
        Ok(sol) => assert!(sol.objective <= 9.0 + 1e-6),
        Err(SolveError::IterationLimit) => {} // no incumbent found in 1 node
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
fn priorities_steer_branching() {
    // Two symmetric fractional variables; the high-priority one must be
    // branched first. We can't observe the tree directly, but priorities
    // must not change the optimum.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_integer("x", 0.0, 3.0);
    let y = m.add_integer("y", 0.0, 3.0);
    m.set_objective(x + LinExpr::var(y));
    m.add_constraint(2.0 * x + 2.0 * y, cmp::LE, 9.0);
    m.set_priority(x, 10);
    let sol = m.solve().unwrap();
    assert!((sol.objective - 4.0).abs() < 1e-6);
}

#[test]
fn gap_tolerance_accepts_near_optimal() {
    let (m, _) = diagonal_cut(12, 11.5);
    let opts = SolverOptions {
        gap_tol: 0.2, // 20%: the first decent incumbent ends the search
        ..Default::default()
    };
    let sol = m.solve_with(&opts).unwrap();
    // Within 20% of the LP bound 11.5.
    assert!(sol.objective >= 11.5 * 0.8 - 1.0);
}

#[test]
fn time_limit_is_respected() {
    use std::time::{Duration, Instant};
    // A knapsack family with many near-ties explores a big tree.
    let mut m = Model::new(Sense::Maximize);
    let n = 24;
    let mut obj = LinExpr::new();
    let mut row = LinExpr::new();
    for i in 0..n {
        let v = m.add_integer(format!("x{i}"), 0.0, 1.0);
        obj += (100.0 + (i % 7) as f64 * 0.01) * v;
        row += (100.0 + (i % 5) as f64 * 0.013) * v;
    }
    m.set_objective(obj);
    m.add_constraint(row, cmp::LE, 100.0 * (n as f64) / 2.0 + 0.37);
    let opts = SolverOptions {
        time_limit: Some(Duration::from_millis(300)),
        max_nodes: usize::MAX,
        ..Default::default()
    };
    let t0 = Instant::now();
    let _ = m.solve_with(&opts);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "time limit ignored: {:?}",
        t0.elapsed()
    );
}

#[test]
fn unused_variables_default_to_bounds() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_continuous("x", 2.0, 9.0);
    let _unused = m.add_integer("u", -3.0, 5.0);
    m.set_objective(LinExpr::var(x));
    let sol = m.solve().unwrap();
    assert!((sol[x] - 2.0).abs() < 1e-7);
}

#[test]
fn empty_model_solves_trivially() {
    let m = Model::new(Sense::Minimize);
    let sol = m.solve().unwrap();
    assert_eq!(sol.objective, 0.0);
}

#[test]
fn mixed_equalities_and_bounds_with_negative_coefficients() {
    // min 3x − 2y s.t. x − y == -2, x + y >= 4, 0 ≤ x ≤ 10, 0 ≤ y ≤ 10
    // → y = x + 2, x + x + 2 ≥ 4 → x ≥ 1 → obj = 3x − 2x − 4 = x − 4 → x=1.
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_continuous("x", 0.0, 10.0);
    let y = m.add_continuous("y", 0.0, 10.0);
    m.set_objective(3.0 * x - 2.0 * y);
    m.add_constraint(x - y, cmp::EQ, -2.0);
    m.add_constraint(x + y, cmp::GE, 4.0);
    let sol = m.solve().unwrap();
    assert!((sol[x] - 1.0).abs() < 1e-6);
    assert!((sol[y] - 3.0).abs() < 1e-6);
    assert!((sol.objective - (-3.0)).abs() < 1e-6);
}

/// The near-tie knapsack family from `time_limit_is_respected`, sized to
/// need real branching without taking seconds.
fn near_tie_knapsack(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let mut obj = LinExpr::new();
    let mut row = LinExpr::new();
    for i in 0..n {
        let v = m.add_integer(format!("x{i}"), 0.0, 1.0);
        obj += (100.0 + (i % 7) as f64 * 0.01) * v;
        row += (100.0 + (i % 5) as f64 * 0.013) * v;
    }
    m.set_objective(obj);
    m.add_constraint(row, cmp::LE, 100.0 * (n as f64) / 2.0 + 0.37);
    m
}

/// A multi-row MILP shaped like the retiming formulations: difference
/// constraints `x_u − x_v ≤ w` over a ring plus coupling knapsack rows —
/// node LPs need real simplex work, which is where warm starts pay.
fn ring_difference_milp(n: usize, rows: usize) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_integer(format!("x{i}"), 0.0, 6.0))
        .collect();
    let mut obj = LinExpr::new();
    for (i, &v) in vars.iter().enumerate() {
        obj += ((i % 4 + 1) as f64) * v;
    }
    m.set_objective(obj);
    for i in 0..n {
        let j = (i + 1) % n;
        m.add_constraint(vars[i] - vars[j], cmp::LE, ((i % 3) as f64) - 0.5);
    }
    for r in 0..rows {
        let mut row = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            row += (((i + r) % 5 + 1) as f64) * v;
        }
        m.add_constraint(row, cmp::GE, 2.5 * n as f64 + r as f64);
    }
    m
}

/// The warm-start regression: over this file's instance family,
/// warm-started branch & bound must (a) agree with cold start on the
/// optimum, (b) actually warm-start most nodes, and (c) spend no more
/// simplex pivots in total than solving every node two-phase from
/// scratch. (On single-row toys a cold boxed solve is nearly free, so
/// the per-instance comparison carries a small absolute slack; the
/// family total — dominated by the realistic multi-row instances — must
/// hold strictly.)
#[test]
fn warm_start_spends_fewer_pivots_than_cold_start() {
    let instances: Vec<(&str, Model)> = vec![
        ("diagonal_cut_8", diagonal_cut(8, 7.5).0),
        ("diagonal_cut_16", diagonal_cut(16, 15.5).0),
        ("near_tie_knapsack_10", near_tie_knapsack(10)),
        ("near_tie_knapsack_14", near_tie_knapsack(14)),
        ("ring_difference_12x6", ring_difference_milp(12, 6)),
        ("ring_difference_18x9", ring_difference_milp(18, 9)),
        ("equality_knapsack", {
            let mut m = Model::new(Sense::Minimize);
            let a = m.add_integer("a", 0.0, 10.0);
            let b = m.add_integer("b", 0.0, 10.0);
            let c = m.add_integer("c", 0.0, 10.0);
            m.set_objective(a + b + LinExpr::var(c));
            m.add_constraint(3.0 * a + 5.0 * b + 7.0 * c, cmp::EQ, 19.0);
            m
        }),
    ];
    // The heuristic and gap settings stay at defaults so both runs take
    // identical branching decisions whenever the node LPs agree.
    let warm_opts = SolverOptions::default();
    let cold_opts = SolverOptions {
        warm_start: false,
        ..Default::default()
    };
    let mut total_warm = 0usize;
    let mut total_cold = 0usize;
    for (name, m) in &instances {
        let (sol_w, st_w) = solve_with_stats(m, &warm_opts).unwrap();
        let (sol_c, st_c) = solve_with_stats(m, &cold_opts).unwrap();
        assert!(
            (sol_w.objective - sol_c.objective).abs() < 1e-6,
            "{name}: warm obj {} vs cold obj {}",
            sol_w.objective,
            sol_c.objective
        );
        assert!(
            st_w.simplex_iters <= st_c.simplex_iters + 32,
            "{name}: warm start spent {} pivots, cold start only {}",
            st_w.simplex_iters,
            st_c.simplex_iters
        );
        total_warm += st_w.simplex_iters;
        total_cold += st_c.simplex_iters;
        if st_w.nodes > 1 {
            assert!(
                st_w.warm_solves > 0,
                "{name}: multi-node search never warm-started"
            );
        }
    }
    assert!(
        total_warm <= total_cold,
        "family total: warm {total_warm} vs cold {total_cold}"
    );
}

/// The dense tableau stays available as a cross-validation oracle on
/// this file's instances.
#[test]
fn dense_oracle_agrees_on_stress_instances() {
    let oracle = SolverOptions {
        kernel: Kernel::DenseTableau,
        ..Default::default()
    };
    for (m, expect) in [
        (diagonal_cut(8, 7.5).0, 7.0),
        (near_tie_knapsack(10), 500.03),
    ] {
        let revised = m.solve().unwrap().objective;
        let dense = m.solve_with(&oracle).unwrap().objective;
        assert!(
            (revised - dense).abs() < 1e-6,
            "revised {revised} vs dense {dense}"
        );
        assert!(
            (revised - expect).abs() < 0.5,
            "objective {revised} far from expected {expect}"
        );
    }
}

#[test]
fn big_m_coefficients_stay_stable() {
    // The retiming MILPs mix ±1 with τ* ≈ 5000 coefficients; check a
    // caricature: indicator-style big-M rows.
    let big = 5_000.0;
    let mut m = Model::new(Sense::Minimize);
    let z = m.add_integer("z", 0.0, 1.0);
    let x = m.add_continuous("x", 0.0, f64::INFINITY);
    m.set_objective(10.0 * z + LinExpr::var(x));
    // x ≥ 7 − big·z : picking z=1 relaxes the row but costs 10.
    m.add_constraint(x + big * z, cmp::GE, 7.0);
    let sol = m.solve().unwrap();
    assert_eq!(sol.int_value(z), 0);
    assert!((sol[x] - 7.0).abs() < 1e-5);
}
