//! Revised simplex kernel with **bounded variables**, on [`BoxedForm`].
//!
//! Where the dense oracle ([`crate::simplex`]) updates an `(m+1) × width`
//! tableau on every pivot, this kernel keeps the constraint matrix as
//! **sparse columns**, the basis as a sparse LU kept current across
//! pivots by Forrest–Tomlin updates — or an LU snapshot plus
//! product-form eta file under
//! [`UpdateKind::ProductForm`](crate::UpdateKind), see
//! [`crate::factor`] — and — crucially — variable bounds on the
//! *columns* (`l ≤ y ≤ u`) rather than as extra rows. Nonbasic columns
//! rest at either bound; the entering step may terminate in a **bound
//! flip** (no basis change at all). Compared to the row-bounded layout
//! this roughly halves the basis dimension of the retiming MILPs, which
//! every FTRAN/BTRAN and refactorization pays for directly.
//!
//! Three entry points matter:
//!
//! * [`Revised::solve_two_phase`] — cold start: crash basis, phase 1 over
//!   signed artificials (dropped permanently once they leave the basis),
//!   phase 2 over the real costs. Dantzig pricing with a Bland fallback
//!   after a long degenerate run, mirroring the oracle.
//! * [`Revised::dual_reopt`] — warm start: from any **dual-feasible**
//!   basis (rc ≥ 0 at lower bounds, rc ≤ 0 at upper bounds — a property
//!   rhs and bound changes cannot disturb), dual simplex pivots repair
//!   the primal infeasibility introduced by branching. Because any
//!   optimal basis anywhere in the branch & bound tree is dual feasible
//!   for *every* node, the search runs as one continuous simplex process
//!   with in-place bound mutations and no per-node refactorization.
//! * [`Revised::set_col_bounds`] / [`Revised::set_rhs`] — mutate a
//!   column's box or a row's right-hand side in place; `x_B` is lazily
//!   resynced by one sparse FTRAN at the next pivot run.

use crate::factor::{Eta, Factor, FactorConfig};
use crate::model::{Pricing, SolverOptions, UpdateKind};
use crate::recover::{
    FaultInjector, FaultSite, NumericalEvent, RecoveryStats, RESIDUAL_CHECK_EVERY,
};
use crate::solution::SolveError;
use crate::standard::BoxedForm;
use std::time::Instant;

/// Drop tolerance for product-form eta entries: pivot-direction
/// components at or below this magnitude are sparsified away. A
/// *storage* threshold, deliberately far below
/// [`SolverOptions::pivot_tol`] so the dropped mass stays at round-off
/// level — not a pivot admissibility check.
const ETA_DROP_TOL: f64 = 1e-12;

/// Telemetry of the factorization layer, accumulated per kernel
/// instance (surfaced through
/// [`BranchBoundStats`](crate::BranchBoundStats) and the `milp_scaling`
/// bench records).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct FactorStats {
    /// Successful basis refactorizations.
    pub refactors: usize,
    /// Largest `nnz(L+U)` any snapshot reached (the dense oracle
    /// reports its full `m²` storage here).
    pub peak_lu_nnz: usize,
    /// Successful Forrest–Tomlin updates (0 under the product form).
    pub ft_updates: usize,
    /// Refactorizations forced by a refused (unstable) Forrest–Tomlin
    /// update, as opposed to the scheduled length/fill policy.
    pub forced_refactors: usize,
    /// Largest nonzero count the (updated) `U` factor reached — the
    /// fill price of absorbing pivots into the factors (the dense
    /// oracle reports its full `m²` storage here).
    pub peak_u_nnz: usize,
}

/// Maintained steepest-edge reference weights disagreeing with the
/// exactly recomputed value by more than this factor (either way) are
/// treated as corrupted: the event is recorded and the framework reset
/// (see the crate-level "Pricing" docs). Well inside the update
/// formula's round-off headroom — healthy weights drift by a few ulps
/// per pivot, not by an order of magnitude.
const DSE_DRIFT_FACTOR: f64 = 16.0;

/// Devex reference weights above this trigger a framework reset: the
/// reference basis is too far away for the weights to approximate
/// steepest-edge norms, and the magnitudes start to threaten overflow
/// in the `rc²/w` scores.
const DEVEX_RESET_ABOVE: f64 = 1e8;

/// Floor of every maintained pricing weight — the exact norms are
/// `≥ 1` in exact arithmetic (the unit row of `B⁻ᵀe_r` alone), so the
/// floor only guards the update formula's cancellation.
const WEIGHT_FLOOR: f64 = 1e-10;

/// Pivot counters split by simplex direction, plus the pricing
/// framework's reset count (surfaced through
/// [`BranchBoundStats`](crate::BranchBoundStats) and the `milp_scaling`
/// bench records). `dual_pivots + primal_pivots + bound_flips` equals
/// [`Revised::iters`] for any single kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct PricingStats {
    /// Basis-change pivots performed by the dual reoptimizer.
    pub dual_pivots: usize,
    /// Basis-change pivots performed by the primal phases (including
    /// artificial drive-out swaps).
    pub primal_pivots: usize,
    /// Bound flips: primal entering columns whose span was exhausted
    /// before any basic variable blocked, plus the dual long-step
    /// ratio test's flipped candidates.
    pub bound_flips: usize,
    /// Pricing reference frameworks reset to units — drifted dual
    /// steepest-edge weights (also a recovery-ladder event) plus
    /// routine Devex reference resets (not a numerical event).
    pub weight_resets: usize,
}

/// Outcome of a pivoting phase.
enum PhaseEnd {
    Optimal,
    Unbounded,
}

/// Outcome of a dual ratio test: the entering column, its movement
/// direction, its pivot-row coefficient `α = ρᵀA_q` (as the scan
/// computed it — the incremental rc update must stay consistent with
/// it), and the exhausted candidates the long-step scan decided to
/// bound-flip before the pivot (always empty on the historical path).
struct DualChoice {
    enter: usize,
    sigma: f64,
    alpha: f64,
    flips: Vec<usize>,
}

/// A resumable basis description: which column is basic in each row and
/// which nonbasic columns rest at their upper bound.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BasisState {
    basis: Vec<usize>,
    at_upper: Vec<bool>,
}

/// The bounded-variable revised simplex kernel; see the module docs.
pub(crate) struct Revised {
    /// Constraint rows.
    m: usize,
    /// Real (structural + slack/surplus) columns.
    n: usize,
    /// Sparse columns of `A`: `cols[j]` = `(row, value)` entries.
    cols: Vec<Vec<(usize, f64)>>,
    /// Right-hand side (mutable across branch & bound nodes).
    b: Vec<f64>,
    /// Phase-2 minimization costs, length `n`.
    cost: Vec<f64>,
    /// Column boxes (mutable across branch & bound nodes), length `n`.
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Basic column of each row. Indices `>= n` are artificials: index
    /// `n + 2r` is the `+1` unit column of row `r`, `n + 2r + 1` the `-1`
    /// one (signed so a crash basis is feasible for either rhs sign);
    /// artificial boxes are `[0, ∞)`.
    basis: Vec<usize>,
    /// Membership flags, length `n + 2m`.
    in_basis: Vec<bool>,
    /// Nonbasic-at-upper flags for real columns, length `n`.
    at_upper: Vec<bool>,
    /// Values of the basic variables.
    xb: Vec<f64>,
    /// Rhs-space deltas accumulated since `xb` was last synced (`x_B`
    /// must be corrected by `B⁻¹·w` via one sparse FTRAN).
    pending: Vec<(usize, f64)>,
    factor: Option<Factor>,
    /// Snapshot kind + refactor policy, resolved from the solver options
    /// at construction.
    fcfg: FactorConfig,
    /// `true` while the current basis is known dual feasible for the
    /// phase-2 costs — the precondition for warm-starting
    /// [`Revised::dual_reopt`] in place. Dual pivots preserve it; primal
    /// phase-1 pivots and interrupted primal runs clear it.
    dual_ok: bool,
    /// Simplex pivots (incl. bound flips) performed by this instance.
    pub iters: usize,
    /// Refactorization/fill telemetry.
    pub(crate) factor_stats: FactorStats,
    /// Event/rung ledger of the recovery ladder (see [`crate::recover`]).
    pub(crate) recovery: RecoveryStats,
    /// Deterministic fault injector, armed by `SolverOptions::faults`
    /// (`None` on clean runs — every site check is one cheap branch).
    injector: Option<FaultInjector>,
    /// Wall-clock deadline from [`SolverOptions::time_limit`], enforced
    /// at pivot-loop checkpoints, not only at node boundaries.
    deadline: Option<Instant>,
    /// Node-ladder rung 5: price with Bland's rule from the first pivot
    /// instead of waiting for the degenerate-run trigger.
    force_bland: bool,
    /// Dual steepest-edge reference weights, one per row: `dse[r]`
    /// approximates `‖B⁻ᵀe_r‖²` for the current basis. Unit-initialized
    /// at every wholesale basis change (crash/install), exact-corrected
    /// for the selected row each dual pivot, and maintained across
    /// pivots by the Forrest–Goldfarb update. Only read under
    /// [`Pricing::SteepestEdge`].
    dse: Vec<f64>,
    /// Reference-framework membership of each `dse` row: `true` once the
    /// row's weight has been anchored to its exact norm at a selection
    /// since the last re-baseline. Unreferenced rows keep the unit
    /// baseline — folding them into the Forrest–Goldfarb update would
    /// propagate a norm the basis never had, which is what collapses
    /// weights to the floor and triggers spurious drift resets.
    dse_ref: Vec<bool>,
    /// Devex reference weights of the primal pricing loop, one per real
    /// column. Unit-initialized with the reference framework at every
    /// wholesale basis change or overflow reset. Only read under
    /// [`Pricing::SteepestEdge`].
    devex: Vec<f64>,
    /// `false` while basis changes the *other* simplex direction made
    /// (primal pivots for `dse`, dual pivots for `devex`) have not been
    /// folded into the respective weights — each direction maintains its
    /// own framework only across its own pivots, so the stale set is
    /// re-baselined to units at the next loop entry (a routine restart,
    /// not weight drift).
    dse_valid: bool,
    devex_valid: bool,
    /// Directional pivot counters and weight-reset telemetry.
    pub(crate) pricing_stats: PricingStats,
}

impl Revised {
    /// Builds the kernel over a bounded-variable form (no basis yet);
    /// `opts` selects the basis factorization and its refactor policy.
    pub fn new(bf: &BoxedForm, opts: &SolverOptions) -> Revised {
        let m = bf.sf.rows.len();
        let n = bf.sf.ncols;
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (r, row) in bf.sf.rows.iter().enumerate() {
            for &(c, v) in row {
                cols[c].push((r, v));
            }
        }
        Revised {
            m,
            n,
            cols,
            b: bf.sf.rhs.clone(),
            cost: bf.sf.cost.clone(),
            lower: vec![0.0; n],
            upper: bf.col_upper.clone(),
            basis: vec![usize::MAX; m],
            in_basis: vec![false; n + 2 * m],
            at_upper: vec![false; n],
            xb: vec![0.0; m],
            pending: Vec::new(),
            factor: None,
            fcfg: FactorConfig::resolve(opts),
            dual_ok: false,
            iters: 0,
            factor_stats: FactorStats::default(),
            recovery: RecoveryStats::default(),
            injector: opts.faults.as_ref().map(FaultInjector::new),
            deadline: opts.time_limit.map(|d| Instant::now() + d),
            force_bland: false,
            dse: vec![1.0; m],
            dse_ref: vec![false; m],
            devex: vec![1.0; n],
            dse_valid: true,
            devex_valid: true,
            pricing_stats: PricingStats::default(),
        }
    }

    /// One opportunity at a fault-injection site; `true` when a plan is
    /// armed and fires now (counted, so injected runs can prove they
    /// actually injected something).
    fn inject(&mut self, site: FaultSite) -> bool {
        let fired = self.injector.as_mut().is_some_and(|inj| inj.fire(site));
        if fired {
            self.recovery.faults_injected += 1;
        }
        fired
    }

    /// `true` once the wall-clock budget is spent; the node recovery
    /// ladder stops escalating at this point.
    pub fn out_of_time(&self) -> bool {
        self.deadline.is_some_and(|dl| Instant::now() >= dl)
    }

    /// Overrides the wall-clock deadline. [`Revised::new`] starts a
    /// fresh budget from "now"; branch & bound instead captures **one**
    /// deadline at solve start and installs it on every kernel it
    /// constructs — N search workers (or ladder rebuilds) must share a
    /// single budget, not each get the full one.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// `(rows, real columns)` of the LP.
    pub fn dims(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// `true` when the current basis is dual feasible and factorized, so
    /// [`Revised::dual_reopt`] may run in place.
    pub fn dual_ok(&self) -> bool {
        self.dual_ok && self.factor.is_some()
    }

    /// Overwrites one row's right-hand side. `x_B` is lazily corrected
    /// by a sparse FTRAN at the next pivot run; dual feasibility is
    /// unaffected. Branch & bound uses this to activate lazily-separated
    /// cut rows (tightening a `>=` surplus row's rhs in place).
    pub fn set_rhs(&mut self, row: usize, value: f64) {
        let delta = value - self.b[row];
        if delta != 0.0 {
            self.b[row] = value;
            if self.factor.is_some() {
                self.pending.push((row, delta));
            }
        }
    }

    /// Rewrites a column's box `[l, u]` (branch & bound bound
    /// tightening). A nonbasic column keeps its lower/upper state, and
    /// the value shift is queued as a sparse `x_B` correction; a basic
    /// column that now violates its box is repaired by the next
    /// [`Revised::dual_reopt`]. Dual feasibility is unaffected.
    pub fn set_col_bounds(&mut self, j: usize, l: f64, u: f64) {
        debug_assert!(j < self.n && l <= u + 1e-9);
        if self.in_basis[j] {
            self.lower[j] = l;
            self.upper[j] = u;
            return;
        }
        let old = self.nb_value(j);
        self.lower[j] = l;
        self.upper[j] = u;
        if self.at_upper[j] && !u.is_finite() {
            self.at_upper[j] = false;
        }
        let new = self.nb_value(j);
        let dv = new - old;
        if dv != 0.0 && self.factor.is_some() {
            // x_B += B⁻¹·(−A_j·dv), queued sparsely.
            for &(r, a) in &self.cols[j] {
                self.pending.push((r, -a * dv));
            }
        }
    }

    /// Whether this kernel holds a solved basis at all. A freshly built
    /// kernel (e.g. right after a recovery-ladder rebuild) has every
    /// basis slot unassigned; snapshotting that state would hand
    /// children an uninstallable basis.
    pub fn has_basis(&self) -> bool {
        self.basis.first().is_none_or(|&j| j != usize::MAX)
    }

    /// The current basis/state, for warm-start snapshots.
    pub fn basis_snapshot(&self) -> BasisState {
        BasisState {
            basis: self.basis.clone(),
            at_upper: self.at_upper.clone(),
        }
    }

    /// **Per-row** magnitude scale of the right-hand side the basis must
    /// reproduce: for each row the largest of `|b_r|` and the resting
    /// nonbasic contributions `|a_rj·value_j|`, floored at a round-off
    /// allowance proportional to the *global* scale (pivoting mixes rows,
    /// so even a zero-rhs row carries noise at the global magnitude).
    /// Residual cutoffs (the phase-1 exit and the active-artificial
    /// check) are taken **relative to the violated row's own scale**: a
    /// uniformly tiny (say 1e-9-scaled) model does not mask genuine
    /// infeasibility under an absolute cutoff, a hugely scaled feasible
    /// one does not trip it on round-off, and — per-row, not a single
    /// global maximum — a unit-scale contradiction stays detectable next
    /// to a 1e6-scale row.
    fn row_scales(&self) -> Vec<f64> {
        let mut s = vec![0.0f64; self.m];
        for (sr, &br) in s.iter_mut().zip(&self.b) {
            *sr = br.abs();
        }
        for j in 0..self.n {
            if !self.in_basis[j] {
                let v = self.nb_value(j);
                if v != 0.0 {
                    for &(r, a) in &self.cols[j] {
                        s[r] = s[r].max((a * v).abs());
                    }
                }
            }
        }
        let global = s.iter().fold(0.0f64, |a, &v| a.max(v));
        let floor = (1e3 * f64::EPSILON * global).max(f64::MIN_POSITIVE);
        for sr in &mut s {
            *sr = sr.max(floor);
        }
        s
    }

    /// `true` when some basic artificial sits at a value that is
    /// non-zero **relative to its row's rhs scale** (`tol` is a relative
    /// tolerance) — the "solution" would violate a constraint and must
    /// not be trusted.
    pub fn has_active_artificial(&self, tol: f64) -> bool {
        let scales = self.row_scales();
        (0..self.m).any(|r| self.basis[r] >= self.n && self.xb[r].abs() > tol * scales[r])
    }

    /// Primal solution over the real columns (basic values clamped into
    /// their boxes to shed round-off).
    pub fn values(&self) -> Vec<f64> {
        let mut x: Vec<f64> = (0..self.n).map(|j| self.nb_value(j)).collect();
        for r in 0..self.m {
            let j = self.basis[r];
            if j < self.n {
                x[j] = self.xb[r].clamp(self.lower[j], self.upper[j].max(self.lower[j]));
            }
        }
        x
    }

    // --- column access ---------------------------------------------------

    /// Resting value of a nonbasic real column.
    #[inline]
    fn nb_value(&self, j: usize) -> f64 {
        if self.at_upper[j] {
            self.upper[j]
        } else {
            self.lower[j]
        }
    }

    /// Box of any column (artificials live in `[0, ∞)`).
    #[inline]
    fn box_of(&self, j: usize) -> (f64, f64) {
        if j < self.n {
            (self.lower[j], self.upper[j])
        } else {
            (0.0, f64::INFINITY)
        }
    }

    #[inline]
    fn for_col<F: FnMut(usize, f64)>(&self, j: usize, mut f: F) {
        if j < self.n {
            for &(r, v) in &self.cols[j] {
                f(r, v);
            }
        } else {
            let k = j - self.n;
            f(k / 2, if k.is_multiple_of(2) { 1.0 } else { -1.0 });
        }
    }

    #[inline]
    fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let mut s = 0.0;
        self.for_col(j, |r, v| s += v * y[r]);
        s
    }

    #[inline]
    fn cost_of(&self, j: usize, phase1: bool) -> f64 {
        if phase1 {
            if j < self.n {
                0.0
            } else {
                1.0
            }
        } else if j < self.n {
            self.cost[j]
        } else {
            0.0
        }
    }

    // --- factorization ---------------------------------------------------

    /// Refactorizes the current basis; on failure the stale factorization
    /// is dropped so the kernel cannot be trusted until the next
    /// successful cold solve or install.
    fn refactor(&mut self) -> Result<(), SolveError> {
        if self.inject(FaultSite::SingularRefactor) {
            self.recovery.record(NumericalEvent::SingularRefactor);
            self.factor = None;
            self.dual_ok = false;
            return Err(SolveError::Numerical("singular basis (injected)".into()));
        }
        let factor = Factor::refactor(self.m, &self.fcfg, |slot, out| {
            self.for_col(self.basis[slot], |r, v| out.push((r, v)));
        });
        match factor {
            Some(f) => {
                self.factor_stats.refactors += 1;
                self.factor_stats.peak_lu_nnz = self.factor_stats.peak_lu_nnz.max(f.lu_nnz());
                self.factor_stats.peak_u_nnz = self.factor_stats.peak_u_nnz.max(f.u_nnz());
                self.factor = Some(f);
                Ok(())
            }
            None => {
                self.recovery.record(NumericalEvent::SingularRefactor);
                self.factor = None;
                self.dual_ok = false;
                Err(SolveError::Numerical("singular basis".into()))
            }
        }
    }

    /// Recomputes `x_B = B⁻¹·(b − Σ_{nonbasic} A_j·value_j)` from scratch.
    fn compute_xb(&mut self) {
        let mut x = self.b.clone();
        for j in 0..self.n {
            if !self.in_basis[j] {
                let v = self.nb_value(j);
                if v != 0.0 {
                    for &(r, a) in &self.cols[j] {
                        x[r] -= a * v;
                    }
                }
            }
        }
        self.factor.as_ref().expect("factorized").ftran(&mut x);
        self.xb = x;
        self.pending.clear();
    }

    /// Applies pending rhs/bound deltas to `x_B` via one sparse FTRAN.
    fn sync_xb(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut delta = vec![0.0; self.m];
        for &(row, d) in &self.pending {
            delta[row] += d;
        }
        self.pending.clear();
        self.factor.as_ref().expect("factorized").ftran(&mut delta);
        for (x, d) in self.xb.iter_mut().zip(delta) {
            *x += d;
        }
    }

    // --- residual health monitor -----------------------------------------

    /// `true` when `‖B·x_B − b_eff‖∞` (with `b_eff` the rhs net of the
    /// resting nonbasic contributions) exceeds the monitor's tolerance
    /// on some row — relative to that row's own rhs scale, and NaN-safe
    /// (a NaN residual counts as drift). The tolerance is three decades
    /// above `feas_tol`, so round-off on healthy bases never trips it;
    /// only genuinely corrupted factors or basic values do.
    fn residual_drifting(&self, opts: &SolverOptions) -> bool {
        debug_assert!(self.pending.is_empty(), "residual check on stale x_B");
        // Backward-error scale: the residual of a healthy basis is
        // round-off in the *summed terms*, so each row's scale is the
        // largest magnitude that entered its sum — `|b_r|`, the resting
        // nonbasic contributions, and the basic contributions (which
        // mostly cancel but dominate the round-off).
        let mut r = self.b.clone();
        let mut mag: Vec<f64> = self.b.iter().map(|b| b.abs()).collect();
        for j in 0..self.n {
            if !self.in_basis[j] {
                let v = self.nb_value(j);
                if v != 0.0 {
                    for &(row, a) in &self.cols[j] {
                        r[row] -= a * v;
                        mag[row] = mag[row].max((a * v).abs());
                    }
                }
            }
        }
        for slot in 0..self.m {
            let xv = self.xb[slot];
            if xv != 0.0 {
                self.for_col(self.basis[slot], |row, a| {
                    r[row] -= a * xv;
                    mag[row] = mag[row].max((a * xv).abs());
                });
            }
        }
        // FTRAN mixes rows, so round-off lands on *every* row at the
        // global magnitude — the absolute floor must track the global
        // scale, not the row's own (near-empty rows would otherwise
        // flag their own round-off as drift).
        let global = mag.iter().fold(0.0f64, |acc, &v| acc.max(v));
        let floor = (1e3 * f64::EPSILON * global).max(f64::MIN_POSITIVE);
        let tol = 1e3 * opts.feas_tol;
        // Negated `<=` rather than `>` so a NaN residual (poisoned
        // arithmetic somewhere upstream) reads as drifting.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        r.iter()
            .zip(&mag)
            .any(|(&ri, &s)| !(ri.abs() <= (tol * s).max(floor)))
    }

    /// Pivot-loop health checkpoint, due every [`RESIDUAL_CHECK_EVERY`]
    /// pivots: the wall-clock deadline first (cheap), then — once any
    /// pivots have run — the residual health monitor. Drift forces a
    /// refactorization (ladder rung 2); drift that survives the fresh
    /// factorization means the basis state itself is corrupt, which
    /// escalates to the caller as a numerical error (next rung).
    fn checkpoint(&mut self, pivots_done: usize, opts: &SolverOptions) -> Result<(), SolveError> {
        if !pivots_done.is_multiple_of(RESIDUAL_CHECK_EVERY) {
            return Ok(());
        }
        if self.inject(FaultSite::FakeTimeLimit) || self.out_of_time() {
            self.recovery.record(NumericalEvent::TimeBudget);
            return Err(SolveError::IterationLimit);
        }
        if pivots_done > 0 && self.residual_drifting(opts) {
            self.recovery.record(NumericalEvent::ResidualDrift);
            self.recovery.forced_refactors += 1;
            self.factor_stats.forced_refactors += 1;
            self.refactor()?;
            self.compute_xb();
            if self.residual_drifting(opts) {
                self.dual_ok = false;
                return Err(SolveError::Numerical("persistent residual drift".into()));
            }
        }
        Ok(())
    }

    /// Trust gate for node bounds: `true` when the current basis state
    /// reproduces the effective right-hand side within the monitor's
    /// tolerance (trivially so without a factorization). On drift the
    /// kernel heals itself — refactorize, recompute `x_B` — but still
    /// answers `false`: the bound just computed must not be trusted, and
    /// the caller re-solves on the next ladder rung. Healthy calls are
    /// read-only, so clean-run trajectories are untouched.
    pub fn verify_residual(&mut self, opts: &SolverOptions) -> bool {
        if self.factor.is_none() {
            return true;
        }
        self.sync_xb();
        if !self.residual_drifting(opts) {
            return true;
        }
        self.recovery.record(NumericalEvent::ResidualDrift);
        self.recovery.forced_refactors += 1;
        self.factor_stats.forced_refactors += 1;
        if self.refactor().is_ok() {
            self.compute_xb();
        }
        false
    }

    /// Installs an externally supplied basis state (e.g. a parent
    /// node's) and recomputes `x_B`. When the basis columns match the
    /// ones already factorized only the state and `x_B` are refreshed.
    ///
    /// # Errors
    ///
    /// [`SolveError::Numerical`] when the basis is singular.
    pub fn install_basis(&mut self, state: &BasisState) -> Result<(), SolveError> {
        assert_eq!(state.basis.len(), self.m, "basis size mismatch");
        // Nonbasic columns pinned above their (branch-tightened) box
        // would corrupt x_B; clamp the resting side to the tighter bound.
        self.at_upper.copy_from_slice(&state.at_upper);
        for j in 0..self.n {
            if self.at_upper[j] && !self.upper[j].is_finite() {
                self.at_upper[j] = false;
            }
        }
        if self.factor.is_some() && self.basis == state.basis {
            self.compute_xb();
            return Ok(());
        }
        self.in_basis.iter_mut().for_each(|x| *x = false);
        self.basis.copy_from_slice(&state.basis);
        for &j in &state.basis {
            self.in_basis[j] = true;
        }
        // An arbitrary basis has unknown reduced costs until a pivot run
        // re-establishes them (the warm-start caller installs a parent
        // *optimal* basis and immediately dual-reoptimizes).
        self.dual_ok = false;
        // The maintained pricing weights describe the *old* basis; a
        // wholesale swap restarts both frameworks from units.
        self.reset_weights();
        self.refactor()?;
        self.compute_xb();
        Ok(())
    }

    /// Direction `d = B⁻¹ A_j`. Under Forrest–Tomlin the lower-solve
    /// intermediate (the FT spike of column `j`) is saved alongside, so
    /// a pivot on `j` updates the factors without repeating that solve.
    fn direction(&self, j: usize) -> (Vec<f64>, Option<Vec<f64>>) {
        let mut d = vec![0.0; self.m];
        self.for_col(j, |r, v| d[r] = v);
        let factor = self.factor.as_ref().expect("factorized");
        match factor.update_kind() {
            UpdateKind::ForrestTomlin => {
                let mut spike = Vec::with_capacity(self.m);
                factor.ftran_spiked(&mut d, &mut spike);
                (d, Some(spike))
            }
            UpdateKind::ProductForm => {
                factor.ftran(&mut d);
                (d, None)
            }
        }
    }

    /// Duals `y = B⁻ᵀ c_B` for the given phase.
    fn duals(&self, phase1: bool) -> Vec<f64> {
        let mut y: Vec<f64> = (0..self.m)
            .map(|r| self.cost_of(self.basis[r], phase1))
            .collect();
        self.factor.as_ref().expect("factorized").btran(&mut y);
        y
    }

    /// Resets both pricing reference frameworks to units. Called at
    /// every wholesale basis change; *event* resets (drift, Devex
    /// overflow) are counted separately by their call sites.
    fn reset_weights(&mut self) {
        self.dse.iter_mut().for_each(|w| *w = 1.0);
        self.dse_ref.iter_mut().for_each(|r| *r = false);
        self.devex.iter_mut().for_each(|w| *w = 1.0);
        self.dse_valid = true;
        self.devex_valid = true;
    }

    /// Phase-2 reduced costs of every real column, basic entries exactly
    /// zero — the initializer of the dual reoptimizer's incremental
    /// reduced-cost state.
    fn reduced_costs(&self) -> Vec<f64> {
        let y = self.duals(false);
        (0..self.n)
            .map(|j| {
                if self.in_basis[j] {
                    0.0
                } else {
                    self.cost_of(j, false) - self.col_dot(j, &y)
                }
            })
            .collect()
    }

    /// Executes the basis change `basis[prow] := enter`: the entering
    /// column moves by `sigma·t` from its resting value, the leaving
    /// variable parks at its upper bound when `leave_to_upper`.
    #[allow(clippy::too_many_arguments)]
    fn pivot(
        &mut self,
        prow: usize,
        enter: usize,
        sigma: f64,
        t: f64,
        d: Vec<f64>,
        spike: Option<Vec<f64>>,
        leave_to_upper: bool,
        opts: &SolverOptions,
    ) -> Result<(), SolveError> {
        debug_assert!(
            d[prow].abs() > opts.pivot_tol,
            "pivot below the configured pivot tolerance"
        );
        let enter_value = self.nb_value_any(enter) + sigma * t;
        for (x, &di) in self.xb.iter_mut().zip(d.iter()) {
            *x -= sigma * t * di;
        }
        self.xb[prow] = enter_value;
        let leaving = self.basis[prow];
        self.in_basis[leaving] = false;
        if leaving < self.n {
            self.at_upper[leaving] = leave_to_upper;
        }
        self.basis[prow] = enter;
        self.in_basis[enter] = true;
        self.iters += 1;
        self.update_basis(prow, enter, &d, spike)
    }

    /// Absorbs the basis change at `prow` into the factorization:
    /// Forrest–Tomlin updates the sparse factors in place (falling back
    /// to a full refactorization when the update is refused as unstable
    /// — a **forced** refactor), the product form appends an eta built
    /// from the pivot direction `d`. Either way the scheduled
    /// length/fill refactor policy runs afterwards.
    fn update_basis(
        &mut self,
        prow: usize,
        enter: usize,
        d: &[f64],
        mut spike: Option<Vec<f64>>,
    ) -> Result<(), SolveError> {
        // Gathered before the factor is mutably borrowed; the FT arm
        // reads it on the spike-less path and for the retry rung.
        let mut enter_col: Vec<(usize, f64)> = Vec::new();
        self.for_col(enter, |r, v| enter_col.push((r, v)));
        if self.fcfg.update == UpdateKind::ForrestTomlin {
            if let Some(spike) = spike.as_mut() {
                if self.inject(FaultSite::PerturbFtSpike) {
                    Factor::poison_spike(spike);
                }
            }
            if self.inject(FaultSite::RefuseFtUpdate) {
                // Two refusals defeat the spiked attempt *and* the retry,
                // exercising the forced-refactor rung.
                self.factor.as_mut().expect("factorized").inject_refusals(2);
            }
        }
        let factor = self.factor.as_mut().expect("factorized");
        match factor.update_kind() {
            UpdateKind::ProductForm => {
                let others: Vec<(usize, f64)> = d
                    .iter()
                    .enumerate()
                    .filter(|&(i, &v)| i != prow && v.abs() > ETA_DROP_TOL)
                    .map(|(i, &v)| (i, v))
                    .collect();
                factor.push(Eta {
                    row: prow,
                    pivot: d[prow],
                    others,
                });
            }
            UpdateKind::ForrestTomlin => {
                // The spike saved by `direction(enter)`'s FTRAN; absent
                // only if a caller pivots without having priced a
                // direction, which none does.
                let first = match spike {
                    Some(spike) => factor.ft_update_spiked(prow, spike),
                    None => factor.ft_update(prow, &enter_col),
                };
                // Ladder rung 1: a refused spiked update may only mean
                // the saved spike was corrupted — recompute it from the
                // entering column before paying for a refactorization
                // (refusals commit nothing, so the factors are intact).
                let ok = first || factor.ft_update(prow, &enter_col);
                if ok {
                    self.factor_stats.ft_updates += 1;
                    // The snapshot itself grows under FT (spikes + row
                    // etas); peaks are tracked per update, not only at
                    // refactor time as in the product form.
                    self.factor_stats.peak_lu_nnz =
                        self.factor_stats.peak_lu_nnz.max(factor.current_nnz());
                    self.factor_stats.peak_u_nnz = self.factor_stats.peak_u_nnz.max(factor.u_nnz());
                    if !first {
                        self.recovery.record(NumericalEvent::UnstableUpdate);
                        self.recovery.ft_retries += 1;
                    }
                } else {
                    // Ladder rung 2 — unstable update: refactorize the
                    // new basis instead.
                    self.factor_stats.forced_refactors += 1;
                    self.recovery.record(NumericalEvent::UnstableUpdate);
                    self.recovery.forced_refactors += 1;
                    self.refactor()?;
                    self.compute_xb();
                    return Ok(());
                }
            }
        }
        let factor = self.factor.as_ref().expect("factorized");
        if factor.needs_refactor() {
            self.refactor()?;
            self.compute_xb();
        }
        Ok(())
    }

    /// Resting value of any nonbasic column (artificials rest at 0).
    #[inline]
    fn nb_value_any(&self, j: usize) -> f64 {
        if j < self.n {
            self.nb_value(j)
        } else {
            0.0
        }
    }

    // --- crash basis -----------------------------------------------------

    /// Chooses an initial basis: per row a singleton real column whose
    /// implied basic value lies inside its box (slack/surplus columns
    /// qualify by construction), otherwise a signed artificial.
    fn crash(&mut self) {
        self.dual_ok = false;
        self.reset_weights();
        self.in_basis.iter_mut().for_each(|x| *x = false);
        // A cold solve starts from scratch: every column rests at its
        // lower bound (persisting upper-bound states would smuggle
        // warm-start information into the from-scratch baseline).
        self.at_upper.iter_mut().for_each(|x| *x = false);
        // Effective rhs with every real column resting at its current
        // bound value.
        let mut beff = self.b.clone();
        for j in 0..self.n {
            let v = self.nb_value(j);
            if v != 0.0 {
                for &(r, a) in &self.cols[j] {
                    beff[r] -= a * v;
                }
            }
        }
        // Singleton columns, highest index first (auxiliary columns are
        // appended last and carry zero cost — same preference the dense
        // oracle uses).
        let mut choice: Vec<Option<usize>> = vec![None; self.m];
        for j in 0..self.n {
            if let [(r, v)] = self.cols[j][..] {
                if v.abs() > 1e-9 {
                    // Entering the basis removes the column's own resting
                    // contribution from the effective rhs.
                    let basic_val = (beff[r] + v * self.nb_value(j)) / v;
                    if basic_val >= self.lower[j] - 1e-9 && basic_val <= self.upper[j] + 1e-9 {
                        // Ascending scan: the last qualifying column is
                        // the highest-index (auxiliary) one.
                        choice[r] = Some(j);
                    }
                }
            }
        }
        for r in 0..self.m {
            let j = match choice[r] {
                Some(j) => j,
                None => {
                    if beff[r] >= 0.0 {
                        self.n + 2 * r
                    } else {
                        self.n + 2 * r + 1
                    }
                }
            };
            self.basis[r] = j;
            self.in_basis[j] = true;
        }
    }

    // --- primal simplex --------------------------------------------------

    /// Entering column over the real nonbasic columns: Bland (first
    /// improving) when `bland`, otherwise Dantzig (largest dual
    /// violation) or — under [`Pricing::SteepestEdge`] — Devex, ranking
    /// the same improving candidates by `rc²/w_j` against the maintained
    /// reference weights (see the crate-level "Pricing" docs). At the
    /// lower bound a negative reduced cost improves; at the upper bound
    /// a positive one does.
    fn price(&self, y: &[f64], phase1: bool, bland: bool, opts: &SolverOptions) -> Option<usize> {
        let tol = opts.feas_tol;
        let devex = opts.pricing == Pricing::SteepestEdge;
        let mut best: Option<usize> = None;
        let mut best_score = 0.0f64;
        for j in 0..self.n {
            if self.in_basis[j] || self.upper[j] - self.lower[j] <= 0.0 {
                continue;
            }
            let rc = self.cost_of(j, phase1) - self.col_dot(j, y);
            let score = if self.at_upper[j] { rc } else { -rc };
            if score <= tol {
                continue;
            }
            if bland {
                return Some(j);
            }
            let ranked = if devex {
                score * score / self.devex[j].max(WEIGHT_FLOOR)
            } else {
                score
            };
            if ranked > best_score {
                best_score = ranked;
                best = Some(j);
            }
        }
        best
    }

    /// Maintains **both** reference frameworks across a primal pivot at
    /// `prow` entering `enter`. The pivot row `ρ = B⁻ᵀe_prow` (one
    /// extra BTRAN) feeds the Devex update, and — since `‖ρ‖²` is then
    /// free — also anchors `dse[prow]` exactly and carries the dual
    /// steepest-edge framework through the primal loop with the same
    /// Forrest–Goldfarb update a dual pivot would apply (the formula
    /// only cares about the basis change, not which direction chose
    /// it). Without this the framework would re-baseline at every
    /// `dual_reopt` entry and warm-started nodes would price their
    /// first dual pivots from cold units. Must run *before* the pivot
    /// mutates the basis and factors.
    fn update_weights_primal(&mut self, prow: usize, enter: usize, d: &[f64]) {
        let mut rho = vec![0.0; self.m];
        rho[prow] = 1.0;
        self.factor.as_ref().expect("factorized").btran(&mut rho);
        self.update_devex_weights(prow, enter, d[prow], &rho);
        let exact: f64 = rho.iter().map(|v| v * v).sum();
        self.dse[prow] = exact.max(WEIGHT_FLOOR);
        self.dse_ref[prow] = true;
        self.update_dse_weights(prow, &rho, d);
    }

    /// Devex reference-weight update for a primal pivot at `prow`
    /// entering `enter` (`alpha_q = d[prow]`, the pivot element; `rho`
    /// the precomputed pivot row `B⁻ᵀe_prow`): every nonbasic
    /// candidate's weight is raised to at least `(α_j/α_q)²·w_q`, and
    /// the leaving column restarts at the weight the entering one
    /// implies. An overflowing framework resets to units: a routine
    /// Devex event, counted in `weight_resets` but not in the recovery
    /// ledger. Must run *before* the pivot mutates the basis and
    /// factors.
    fn update_devex_weights(&mut self, prow: usize, enter: usize, alpha_q: f64, rho: &[f64]) {
        let wq = self.devex[enter].max(1.0);
        let mut peak = 0.0f64;
        for j in 0..self.n {
            if self.in_basis[j] || j == enter || self.upper[j] - self.lower[j] <= 0.0 {
                continue;
            }
            let alpha = self.col_dot(j, rho);
            if alpha != 0.0 {
                let k = alpha / alpha_q;
                let cand = k * k * wq;
                if cand > self.devex[j] {
                    self.devex[j] = cand;
                }
                peak = peak.max(self.devex[j]);
            }
        }
        let leaving = self.basis[prow];
        if leaving < self.n {
            self.devex[leaving] = (wq / (alpha_q * alpha_q)).max(1.0);
            peak = peak.max(self.devex[leaving]);
        }
        if peak > DEVEX_RESET_ABOVE {
            self.devex.iter_mut().for_each(|w| *w = 1.0);
            self.pricing_stats.weight_resets += 1;
        }
    }

    /// Devex counterpart for a **dual** pivot: the long-step ratio test
    /// already made a full `α_j = ρᵀA_j` pass, so the primal framework
    /// rides through the dual loop with the same max-form update at no
    /// extra solve — keeping both frameworks warm across the
    /// dual-then-primal reoptimization of every warm-started node.
    fn update_devex_from_alphas(&mut self, alphas: &[f64], enter: usize, leaving: usize) {
        let alpha_q = alphas[enter];
        if alpha_q == 0.0 {
            return;
        }
        let wq = self.devex[enter].max(1.0);
        let mut peak = 0.0f64;
        for (j, &alpha) in alphas.iter().enumerate().take(self.n) {
            if self.in_basis[j] || j == enter || self.upper[j] - self.lower[j] <= 0.0 {
                continue;
            }
            if alpha != 0.0 {
                let k = alpha / alpha_q;
                let cand = k * k * wq;
                if cand > self.devex[j] {
                    self.devex[j] = cand;
                }
                peak = peak.max(self.devex[j]);
            }
        }
        if leaving < self.n {
            self.devex[leaving] = (wq / (alpha_q * alpha_q)).max(1.0);
            peak = peak.max(self.devex[leaving]);
        }
        if peak > DEVEX_RESET_ABOVE {
            self.devex.iter_mut().for_each(|w| *w = 1.0);
            self.pricing_stats.weight_resets += 1;
        }
    }

    /// Bounded-variable ratio test for an entering column moving by
    /// `sigma·t`, `t ≥ 0`: the smallest `t` at which a basic variable
    /// hits a bound, capped by the entering column's own span (a bound
    /// flip). Returns `(t, blocking_row, leaving_to_upper)`; a `None`
    /// row at finite `t` is a flip, `t = ∞` means unbounded.
    ///
    /// Tolerances come from the solver options: rows whose pivot element
    /// is at most [`SolverOptions::pivot_tol`] are ineligible, and rows
    /// whose ratio ties the minimum within `0.01·feas_tol` are broken
    /// toward the larger pivot magnitude (Bland mode breaks ties — at
    /// the much tighter `1e-5·feas_tol`, a pure float-noise window —
    /// toward the smaller column index, as its anti-cycling argument
    /// requires).
    fn ratio_test(
        &self,
        sigma: f64,
        d: &[f64],
        bland: bool,
        opts: &SolverOptions,
    ) -> (f64, Option<usize>, bool) {
        let tol = opts.pivot_tol;
        let tie = 0.01 * opts.feas_tol;
        let bland_tie = 1e-5 * opts.feas_tol;
        let mut best_t = f64::INFINITY;
        let mut best_row: Option<usize> = None;
        let mut best_to_upper = false;
        let mut best_piv = 0.0f64;
        for (r, &dr) in d.iter().enumerate().take(self.m) {
            let delta = sigma * dr; // xb[r] decreases by delta·t
            let (lb, ub) = self.box_of(self.basis[r]);
            let (t_r, to_upper) = if delta > tol {
                (((self.xb[r] - lb).max(0.0)) / delta, false)
            } else if delta < -tol {
                if ub.is_finite() {
                    (((ub - self.xb[r]).max(0.0)) / -delta, true)
                } else {
                    continue;
                }
            } else {
                continue;
            };
            let better = if bland {
                t_r < best_t - bland_tie
                    || (t_r < best_t + bland_tie
                        && best_row.is_some_and(|br| self.basis[r] < self.basis[br]))
            } else {
                t_r < best_t - tie || (t_r < best_t + tie && delta.abs() > best_piv)
            };
            if better {
                // Anchor the tie window at the running *minimum* step: a
                // tie-break winner may carry a slightly larger `t_r`, and
                // adopting that as the new anchor would let a chain of
                // pairwise ties walk the accepted ratio arbitrarily far
                // above the true minimum (see the chained-tie regression
                // test). Returning the min also keeps every other row at
                // least as feasible as the winner's own step would.
                best_t = best_t.min(t_r);
                best_row = Some(r);
                best_to_upper = to_upper;
                best_piv = delta.abs();
            }
        }
        (best_t, best_row, best_to_upper)
    }

    /// Runs primal pivots for one phase until optimal/unbounded.
    fn run_primal(
        &mut self,
        phase1: bool,
        opts: &SolverOptions,
        pivots_left: &mut usize,
    ) -> Result<PhaseEnd, SolveError> {
        self.sync_xb();
        self.dual_ok = false;
        let steepest = opts.pricing == Pricing::SteepestEdge;
        if steepest && !self.devex_valid {
            // Dual pivots since the last primal loop changed the basis
            // without maintaining the Devex framework — restart it from
            // units (a routine re-reference, not an event).
            self.devex.iter_mut().for_each(|w| *w = 1.0);
            self.devex_valid = true;
        }
        let mut degenerate_run = 0usize;
        let switch_after = 4 * (self.m + self.n);
        let mut bland = self.force_bland;
        if self.inject(FaultSite::InjectCycling) {
            self.recovery.record(NumericalEvent::CyclingSuspected);
            bland = true;
        }
        let mut pivots_done = 0usize;
        loop {
            if *pivots_left == 0 {
                self.recovery.record(NumericalEvent::PivotBudget);
                return Err(SolveError::IterationLimit);
            }
            self.checkpoint(pivots_done, opts)?;
            let y = self.duals(phase1);
            let Some(enter) = self.price(&y, phase1, bland, opts) else {
                if !phase1 {
                    // Phase-2 optimality: the basis is dual feasible.
                    self.dual_ok = true;
                    if self.inject(FaultSite::PoisonRatioTest) {
                        // Corrupt a basic value *after* the nominally
                        // optimal exit: only the residual trust gate can
                        // keep this out of a node bound.
                        if let Some(slot) = (0..self.m).find(|&r| self.basis[r] < self.n) {
                            self.xb[slot] += 1e6 * (1.0 + self.xb[slot].abs());
                        }
                    }
                }
                return Ok(PhaseEnd::Optimal);
            };
            let sigma = if self.at_upper[enter] { -1.0 } else { 1.0 };
            let (d, spike) = self.direction(enter);
            let (t_block, block, to_upper) = self.ratio_test(sigma, &d, bland, opts);
            let span = self.upper[enter] - self.lower[enter];
            let t = t_block.min(span);
            if !t.is_finite() {
                return Ok(PhaseEnd::Unbounded);
            }
            if span <= t_block {
                // Bound flip: the entering column crosses to its other
                // bound before any basic variable blocks.
                for (x, &di) in self.xb.iter_mut().zip(d.iter()) {
                    *x -= sigma * span * di;
                }
                self.at_upper[enter] = !self.at_upper[enter];
                self.iters += 1;
                self.pricing_stats.bound_flips += 1;
            } else {
                let Some(prow) = block else {
                    return Err(SolveError::Numerical(
                        "ratio test returned a finite blocking step without a row".into(),
                    ));
                };
                if steepest {
                    self.update_weights_primal(prow, enter, &d);
                }
                self.pivot(prow, enter, sigma, t, d, spike, to_upper, opts)?;
                self.pricing_stats.primal_pivots += 1;
            }
            *pivots_left -= 1;
            pivots_done += 1;
            if t.abs() <= 1e-12 {
                degenerate_run += 1;
                if degenerate_run > switch_after && !bland {
                    self.recovery.record(NumericalEvent::CyclingSuspected);
                    bland = true;
                }
            } else {
                degenerate_run = 0;
                bland = self.force_bland;
            }
        }
    }

    /// Cold start: crash, phase 1, phase 2.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`], [`SolveError::Unbounded`],
    /// [`SolveError::IterationLimit`] or [`SolveError::Numerical`].
    pub fn solve_two_phase(
        &mut self,
        opts: &SolverOptions,
        pivots_left: &mut usize,
    ) -> Result<(), SolveError> {
        if self.inject(FaultSite::FakeIterationLimit) {
            self.recovery.record(NumericalEvent::PivotBudget);
            return Err(SolveError::IterationLimit);
        }
        if self.out_of_time() {
            self.recovery.record(NumericalEvent::TimeBudget);
            return Err(SolveError::IterationLimit);
        }
        self.crash();
        self.refactor()?;
        self.compute_xb();

        if (0..self.m).any(|r| self.basis[r] >= self.n) {
            match self.run_primal(true, opts, pivots_left)? {
                PhaseEnd::Optimal => {}
                PhaseEnd::Unbounded => {
                    return Err(SolveError::Numerical("phase-1 unbounded".into()));
                }
            }
            // Infeasibility is judged per row, relative to that row's
            // rhs/bound scale: a 1e-9-scaled model leaves a ~1e-9
            // residual when genuinely infeasible (far below any absolute
            // 1e-6 cutoff), a hugely scaled feasible one carries
            // round-off far above it, and a unit-scale contradiction is
            // not masked by an unrelated huge row.
            let scales = self.row_scales();
            let infeasible = (0..self.m)
                .any(|r| self.basis[r] >= self.n && self.xb[r].max(0.0) > 1e-6 * scales[r]);
            if infeasible {
                return Err(SolveError::Infeasible);
            }
            self.drive_out_artificials(opts, pivots_left)?;
        }

        match self.run_primal(false, opts, pivots_left)? {
            PhaseEnd::Optimal => Ok(()),
            PhaseEnd::Unbounded => Err(SolveError::Unbounded),
        }
    }

    /// Pivots zero-valued basic artificials out of the basis where a real
    /// column can replace them (rows that stay artificial are redundant).
    fn drive_out_artificials(
        &mut self,
        opts: &SolverOptions,
        pivots_left: &mut usize,
    ) -> Result<(), SolveError> {
        for r in 0..self.m {
            if self.basis[r] < self.n {
                continue;
            }
            let mut rho = vec![0.0; self.m];
            rho[r] = 1.0;
            self.factor.as_ref().expect("factorized").btran(&mut rho);
            let enter = (0..self.n).find(|&j| {
                !self.in_basis[j]
                    && self.upper[j] > self.lower[j]
                    && self.col_dot(j, &rho).abs() > 1e-7
            });
            if let Some(enter) = enter {
                let (d, spike) = self.direction(enter);
                if d[r].abs() > opts.pivot_tol {
                    // Degenerate swap: the artificial sits at 0, so the
                    // entering column does not move (t = 0).
                    self.pivot(r, enter, 1.0, 0.0, d, spike, false, opts)?;
                    self.pricing_stats.primal_pivots += 1;
                    self.dse_valid = false;
                    self.devex_valid = false;
                    *pivots_left = pivots_left.saturating_sub(1);
                }
            }
        }
        Ok(())
    }

    // --- dual simplex ----------------------------------------------------

    /// Reoptimizes after rhs/bound changes from a dual-feasible basis:
    /// dual simplex pivots until every basic variable is inside its box.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when the dual is unbounded (the node LP
    /// has no feasible point), [`SolveError::IterationLimit`] when the
    /// budget runs out mid-repair (caller should fall back to a cold
    /// solve) and [`SolveError::Numerical`] on factorization trouble.
    pub fn dual_reopt(
        &mut self,
        opts: &SolverOptions,
        pivots_left: &mut usize,
    ) -> Result<(), SolveError> {
        self.sync_xb();
        // Dual pivots preserve dual feasibility, so the flag stays set
        // across every exit except numerical failure — including
        // Infeasible (dual unbounded) and IterationLimit, after which
        // the basis is still a valid warm-start seed.
        self.dual_ok = true;
        let steepest = opts.pricing == Pricing::SteepestEdge;
        // Box violations are judged per row, relative to the row's own
        // rhs/bound scale — the same hygiene the phase-1 exit uses. The
        // noise floor tracks the *global* scale: FTRAN mixes rows, so
        // even a zero-scale row carries round-off at the global
        // magnitude, and an eligibility cut below that would pivot on
        // noise.
        let scales = self.row_scales();
        let global = scales.iter().fold(0.0f64, |a, &v| a.max(v));
        let noise_floor = 1e3 * f64::EPSILON * global;
        // Incremental reduced costs (SteepestEdge): one BTRAN + column
        // pass here, then updated per pivot from the `alpha`s the ratio
        // scan computed anyway. Dantzig recomputes the duals every pivot
        // — the historical (golden-pinned) behavior.
        let mut rc = if steepest {
            self.reduced_costs()
        } else {
            Vec::new()
        };
        if steepest && !self.dse_valid {
            // Primal pivots since the last dual loop changed the basis
            // without maintaining the steepest-edge weights — restart
            // the reference framework (a routine re-reference, not
            // drift): every row reverts to the unit baseline and drops
            // out of the framework until a selection re-anchors it.
            self.dse.iter_mut().for_each(|w| *w = 1.0);
            self.dse_ref.iter_mut().for_each(|r| *r = false);
            self.dse_valid = true;
        }
        let mut just_refactored = false;
        let mut pivots_done = 0usize;
        loop {
            // Checked before the violation scan: a checkpoint that heals
            // residual drift recomputes x_B, and the row selection below
            // must see the corrected values.
            self.checkpoint(pivots_done, opts)?;
            let Some((prow, below, worst)) =
                self.dual_leaving_row(&scales, noise_floor, steepest, opts.feas_tol)
            else {
                return Ok(()); // primal feasible (and still dual feasible)
            };
            if *pivots_left == 0 {
                self.recovery.record(NumericalEvent::PivotBudget);
                return Err(SolveError::IterationLimit);
            }

            // Row prow of B⁻¹A.
            let mut rho = vec![0.0; self.m];
            rho[prow] = 1.0;
            self.factor.as_ref().expect("factorized").btran(&mut rho);
            if steepest {
                // The exact norm is free at the selected row — always
                // correct the maintained weight with it, and treat a
                // gross mismatch as a corrupted reference framework
                // (recovery-ladder pricing rung: reset to units; pricing
                // quality dips for a few pivots, correctness never).
                let exact: f64 = rho.iter().map(|v| v * v).sum();
                let w = self.dse[prow];
                if !self.dse_ref[prow] {
                    // Lazy anchoring: an unreferenced row won the scan
                    // on the unit baseline, but that score is not
                    // comparable with the exact norms of framework
                    // members (true row norms here can run to 1e4, so
                    // the baseline overstates the row by that factor).
                    // Anchor it with the norm just computed and rescan
                    // rather than pivoting on a mispriced row — each
                    // rescan permanently admits one row, so this
                    // terminates, and only rows the scan actually
                    // surfaces ever pay the anchoring BTRAN.
                    self.dse[prow] = exact.max(WEIGHT_FLOOR);
                    self.dse_ref[prow] = true;
                    continue;
                }
                // Framework members — anchored to their exact norm at an
                // earlier selection and FG-maintained since — are
                // self-checking: a gross mismatch means the maintained
                // framework is corrupted, not merely stale.
                if !(w <= DSE_DRIFT_FACTOR * exact && exact <= DSE_DRIFT_FACTOR * w) {
                    self.recovery.record(NumericalEvent::WeightDrift);
                    self.recovery.weight_resets += 1;
                    self.pricing_stats.weight_resets += 1;
                    self.dse.iter_mut().for_each(|x| *x = 1.0);
                    self.dse_ref.iter_mut().for_each(|r| *r = false);
                    self.dse[prow] = exact.max(WEIGHT_FLOOR);
                    self.dse_ref[prow] = true;
                    continue;
                }
                self.dse[prow] = exact.max(WEIGHT_FLOOR);
            }

            // Ratio test: one column pass computes α_j = ρᵀA_j for every
            // nonbasic column under steepest edge (feeding the long-step
            // scan *and* the incremental rc update); the Dantzig path
            // keeps the historical lazy per-candidate evaluation.
            let alphas: Vec<f64> = if steepest {
                (0..self.n)
                    .map(|j| {
                        if self.in_basis[j] {
                            0.0
                        } else {
                            self.col_dot(j, &rho)
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let choice = if steepest {
                self.dual_enter_steepest(&alphas, &rc, below, worst, opts)
            } else {
                let y = self.duals(false);
                self.dual_enter_dantzig(&rho, &y, below, opts)
            };
            let Some(choice) = choice else {
                // Dual unbounded: the violated row cannot be repaired
                // (under the long-step test: not even with every
                // exhausted candidate flipped to its other bound).
                return Err(SolveError::Infeasible);
            };
            let DualChoice {
                enter,
                sigma,
                alpha: alpha_enter,
                flips,
            } = choice;
            // Long-step bound flips: each flipped candidate crosses to
            // its other bound (the coming dual step moves its reduced
            // cost across zero admissibly), eating `|α|·span` of the
            // violation while the scan continued past its breakpoint.
            if !flips.is_empty() {
                for &j in &flips {
                    let old = self.nb_value(j);
                    self.at_upper[j] = !self.at_upper[j];
                    let dv = self.nb_value(j) - old;
                    for &(r, a) in &self.cols[j] {
                        self.pending.push((r, -a * dv));
                    }
                    self.iters += 1;
                    self.pricing_stats.bound_flips += 1;
                    *pivots_left = pivots_left.saturating_sub(1);
                }
                self.sync_xb();
            }
            let (d, spike) = self.direction(enter);
            if d[prow].abs() <= opts.pivot_tol {
                // Factorization drift: the FTRAN direction disagrees with
                // the BTRAN row. Refactorize, recompute x_B, and restart
                // the iteration — the corrected x_B may change which row
                // (if any) is violated, so the stale (prow, below, enter)
                // selection must not be pivoted on. (Applied long-step
                // flips are legitimate bound-state changes and stay.)
                if just_refactored {
                    self.dual_ok = false;
                    return Err(SolveError::Numerical("dual pivot vanished".into()));
                }
                self.refactor()?;
                self.compute_xb();
                if steepest {
                    rc = self.reduced_costs();
                }
                just_refactored = true;
                continue;
            }
            just_refactored = false;
            let leaving = self.basis[prow];
            if steepest {
                self.update_dse_weights(prow, &rho, &d);
                self.update_devex_from_alphas(&alphas, enter, leaving);
            }
            self.dual_pivot(prow, enter, sigma, below, d, spike, opts)?;
            self.pricing_stats.dual_pivots += 1;
            if steepest {
                // The dual step moved the duals by γ·ρ with
                // γ = rc_q/α_q, so every nonbasic reduced cost moves by
                // −γ·α_j — the α pass above already holds every α_j.
                // The leaving variable lands nonbasic at rc = −γ; the
                // entering one becomes basic at exactly 0.
                let gamma = rc[enter] / alpha_enter;
                if gamma != 0.0 {
                    for (rcj, &alpha) in rc.iter_mut().zip(&alphas) {
                        if alpha != 0.0 {
                            *rcj -= gamma * alpha;
                        }
                    }
                }
                if leaving < self.n {
                    rc[leaving] = -gamma;
                }
                rc[enter] = 0.0;
            }
            *pivots_left = pivots_left.saturating_sub(1);
            pivots_done += 1;
        }
    }

    /// Leaving-row selection of the dual simplex: the basic variable
    /// most out of its box. Violations are judged **relative to each
    /// row's own rhs/bound scale** (the row scale maxed with the basic
    /// variable's finite bound magnitudes) and floored at the global
    /// round-off allowance — an absolute cutoff would both pivot on
    /// round-off next to a 1e6-scaled row and miss genuine violations
    /// on tiny-scaled ones (see the mixed-scale regression test). Under
    /// steepest edge the selection ranks by `violation²/β_r` against
    /// the maintained reference weights instead of the raw worst
    /// violation. Returns `(row, violated_below, violation)`.
    fn dual_leaving_row(
        &self,
        scales: &[f64],
        noise_floor: f64,
        steepest: bool,
        tol: f64,
    ) -> Option<(usize, bool, f64)> {
        let mut prow: Option<(usize, bool, f64)> = None;
        let mut best_score = 0.0f64;
        for (r, &row_scale) in scales.iter().enumerate().take(self.m) {
            let (lb, ub) = self.box_of(self.basis[r]);
            let mut scale = row_scale;
            if lb.is_finite() {
                scale = scale.max(lb.abs());
            }
            if ub.is_finite() {
                scale = scale.max(ub.abs());
            }
            let cut = (tol * scale).max(noise_floor);
            let under = lb - self.xb[r];
            let over = self.xb[r] - ub;
            let (viol, is_below) = if under >= over {
                (under, true)
            } else {
                (over, false)
            };
            if viol <= cut {
                continue;
            }
            let score = if steepest {
                viol * viol / self.dse[r].max(WEIGHT_FLOOR)
            } else {
                viol
            };
            if score > best_score {
                best_score = score;
                prow = Some((r, is_below, viol));
            }
        }
        prow
    }

    /// Dual ratio test, historical single-breakpoint form: among
    /// eligible entering candidates (pivot above `pivot_tol`, movement
    /// repairing the violated row), the smallest `|rc|/|α|` wins, ties
    /// within `0.01·feas_tol` — **anchored at the running minimum
    /// ratio**, see the chained-tie regression test — broken toward the
    /// larger pivot magnitude. Reduced costs come fresh from the duals
    /// `y`. `None` means no candidate can repair the row (dual
    /// unbounded).
    fn dual_enter_dantzig(
        &self,
        rho: &[f64],
        y: &[f64],
        below: bool,
        opts: &SolverOptions,
    ) -> Option<DualChoice> {
        let ratio_tie = 0.01 * opts.feas_tol;
        let mut enter: Option<(usize, f64, f64)> = None;
        let mut best_ratio = f64::INFINITY;
        let mut best_alpha = 0.0f64;
        for j in 0..self.n {
            if self.in_basis[j] || self.upper[j] - self.lower[j] <= 0.0 {
                continue;
            }
            let alpha = self.col_dot(j, rho);
            if alpha.abs() <= opts.pivot_tol {
                continue;
            }
            let sigma = if self.at_upper[j] { -1.0 } else { 1.0 };
            // Need −sigma·alpha > 0 when below (raise xb), < 0 when
            // above (lower xb).
            let effect = -sigma * alpha;
            if (below && effect <= opts.pivot_tol) || (!below && effect >= -opts.pivot_tol) {
                continue;
            }
            let rc = self.cost_of(j, false) - self.col_dot(j, y);
            // Dual feasibility: rc ≥ 0 at lower, ≤ 0 at upper; clamp
            // round-off.
            let num = if self.at_upper[j] {
                (-rc).max(0.0)
            } else {
                rc.max(0.0)
            };
            let ratio = num / alpha.abs();
            if ratio < best_ratio - ratio_tie
                || (ratio < best_ratio + ratio_tie && alpha.abs() > best_alpha)
            {
                // Anchor the tie window at the running minimum: a tie
                // winner's own (larger) ratio must not become the next
                // comparison anchor.
                best_ratio = best_ratio.min(ratio);
                enter = Some((j, sigma, alpha));
                best_alpha = alpha.abs();
            }
        }
        enter.map(|(enter, sigma, alpha)| DualChoice {
            enter,
            sigma,
            alpha,
            flips: Vec::new(),
        })
    }

    /// Dual ratio test, long-step ("bound-flip") form: candidates sorted
    /// by ratio are consumed in order — one whose box span the dual step
    /// exhausts **flips bounds** and the scan continues with the row
    /// violation reduced by `|α|·span`, so a single dual pivot crosses
    /// many breakpoints. The first candidate the remaining violation
    /// does not exhaust enters the basis (a tie window anchored at its
    /// ratio still breaks toward the larger pivot). `None` — committing
    /// no flips — means the row stays violated even with every
    /// candidate flipped: the dual ray is unbounded over the boxes, the
    /// node LP infeasible.
    fn dual_enter_steepest(
        &self,
        alphas: &[f64],
        rc: &[f64],
        below: bool,
        violation: f64,
        opts: &SolverOptions,
    ) -> Option<DualChoice> {
        let ratio_tie = 0.01 * opts.feas_tol;
        // (ratio, column, sigma, |alpha|, span)
        let mut cands: Vec<(f64, usize, f64, f64, f64)> = Vec::new();
        for j in 0..self.n {
            let span = self.upper[j] - self.lower[j];
            if self.in_basis[j] || span <= 0.0 {
                continue;
            }
            let alpha = alphas[j];
            if alpha.abs() <= opts.pivot_tol {
                continue;
            }
            let sigma = if self.at_upper[j] { -1.0 } else { 1.0 };
            let effect = -sigma * alpha;
            if (below && effect <= opts.pivot_tol) || (!below && effect >= -opts.pivot_tol) {
                continue;
            }
            let num = if self.at_upper[j] {
                (-rc[j]).max(0.0)
            } else {
                rc[j].max(0.0)
            };
            cands.push((num / alpha.abs(), j, sigma, alpha.abs(), span));
        }
        if cands.is_empty() {
            return None;
        }
        // Deterministic order: ratio, then larger pivot, then index.
        cands.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal))
                .then(a.1.cmp(&b.1))
        });
        let mut remaining = violation;
        let mut flips: Vec<usize> = Vec::new();
        let mut chosen: Option<usize> = None;
        for (i, &(_, j, _, alpha_abs, span)) in cands.iter().enumerate() {
            if span.is_finite() && remaining - alpha_abs * span > 0.0 {
                remaining -= alpha_abs * span;
                flips.push(j);
            } else {
                chosen = Some(i);
                break;
            }
        }
        let ci = chosen?;
        let mut pick = ci;
        for (k, cand) in cands.iter().enumerate().skip(ci + 1) {
            if cand.0 >= cands[ci].0 + ratio_tie {
                break;
            }
            if cand.3 > cands[pick].3 {
                pick = k;
            }
        }
        let (_, enter, sigma, _, _) = cands[pick];
        Some(DualChoice {
            enter,
            sigma,
            alpha: alphas[enter],
            flips,
        })
    }

    /// Forrest–Goldfarb dual steepest-edge weight update for a pivot at
    /// `prow` with direction `d = B⁻¹A_q`: with `τ = B⁻¹ρ` (one extra
    /// solve against the pre-pivot factors — the scheme's per-pivot
    /// surcharge) and `β_r` the selected row's exact norm,
    /// `β'_i = β_i − 2·(d_i/d_r)·τ_i + (d_i/d_r)²·β_r` for `i ≠ r` and
    /// `β'_r = β_r/d_r²`, floored against cancellation. Must run
    /// *before* the pivot mutates the factors.
    ///
    /// Only rows inside the reference framework are updated: the formula
    /// is exact precisely when `β_i` is, and folding an unreferenced
    /// unit baseline through it manufactures weights (often collapsing
    /// to the floor through cancellation) for a norm the basis never
    /// had. Unreferenced rows stay at the baseline until a selection
    /// anchors them.
    fn update_dse_weights(&mut self, prow: usize, rho: &[f64], d: &[f64]) {
        let mut tau = rho.to_vec();
        self.factor.as_ref().expect("factorized").ftran(&mut tau);
        let dr = d[prow];
        let beta_r = self.dse[prow];
        for i in 0..self.m {
            if i == prow || !self.dse_ref[i] {
                continue;
            }
            let k = d[i] / dr;
            if k != 0.0 {
                // Relative safeguard: catastrophic cancellation between
                // the three terms cannot drag the weight below a small
                // fraction of the incoming `k²·β_r` content.
                let guard = 1e-4 * k * k * beta_r;
                self.dse[i] = (self.dse[i] - 2.0 * k * tau[i] + k * k * beta_r)
                    .max(guard)
                    .max(WEIGHT_FLOOR);
            }
        }
        self.dse[prow] = (beta_r / (dr * dr)).max(WEIGHT_FLOOR);
    }

    /// One dual pivot: drive `xb[prow]` exactly onto its violated bound.
    #[allow(clippy::too_many_arguments)]
    fn dual_pivot(
        &mut self,
        prow: usize,
        enter: usize,
        sigma: f64,
        below: bool,
        d: Vec<f64>,
        spike: Option<Vec<f64>>,
        opts: &SolverOptions,
    ) -> Result<(), SolveError> {
        let (lb, ub) = self.box_of(self.basis[prow]);
        let target = if below { lb } else { ub };
        // xb[prow] − sigma·t·d[prow] = target
        let t = (self.xb[prow] - target) / (sigma * d[prow]);
        self.pivot(prow, enter, sigma, t.max(0.0), d, spike, !below, opts)
    }

    /// Primal phase-2 cleanup from the current (primal-feasible) basis.
    ///
    /// # Errors
    ///
    /// See [`Revised::solve_two_phase`].
    pub fn primal_opt(
        &mut self,
        opts: &SolverOptions,
        pivots_left: &mut usize,
    ) -> Result<(), SolveError> {
        match self.run_primal(false, opts, pivots_left)? {
            PhaseEnd::Optimal => Ok(()),
            PhaseEnd::Unbounded => Err(SolveError::Unbounded),
        }
    }

    // --- recovery-ladder controls ----------------------------------------

    /// Ladder rung 3: switch the update scheme the *next*
    /// refactorization resolves to (a following cold solve rebuilds the
    /// factors under it). The factors currently installed are untouched.
    pub fn set_update_kind(&mut self, kind: UpdateKind) {
        self.fcfg.update = kind;
    }

    /// Ladder rung 5: price with Bland's rule from the first pivot of
    /// every following run (`false` restores the automatic
    /// Dantzig-with-fallback policy).
    pub fn set_force_bland(&mut self, on: bool) {
        self.force_bland = on;
    }

    /// The recovery ledger accumulated by this kernel instance.
    pub fn recovery(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Ladder rungs 4 and 6: a fresh kernel over the same form under
    /// `opts` (which may select a different factorization, e.g. the
    /// dense oracle), discarding every piece of possibly corrupted
    /// basis/factor state while carrying over what must survive the
    /// swap: the branch-tightened column boxes (the form only knows the
    /// root boxes), the accumulated telemetry, the fault injector and
    /// the original wall-clock deadline (a rebuild must not extend the
    /// time budget).
    pub fn rebuilt(&mut self, bf: &BoxedForm, opts: &SolverOptions) -> Revised {
        let mut fresh = Revised::new(bf, opts);
        fresh.b.copy_from_slice(&self.b);
        fresh.lower.copy_from_slice(&self.lower);
        fresh.upper.copy_from_slice(&self.upper);
        fresh.iters = self.iters;
        fresh.factor_stats = self.factor_stats;
        fresh.pricing_stats = self.pricing_stats;
        fresh.recovery = std::mem::take(&mut self.recovery);
        fresh.injector = self.injector.take();
        fresh.deadline = self.deadline;
        fresh.force_bland = self.force_bland;
        fresh
    }
}

/// Solves `min c·y, A·y = b, l ≤ y ≤ u` with the revised kernel,
/// returning the optimal `y` and the pivot count.
///
/// # Errors
///
/// See [`Revised::solve_two_phase`].
pub(crate) fn solve(bf: &BoxedForm, opts: &SolverOptions) -> Result<(Vec<f64>, usize), SolveError> {
    if bf.sf.proven_infeasible {
        return Err(SolveError::Infeasible);
    }
    if bf.sf.rows.is_empty() {
        // No rows: optimize each boxed column independently.
        let mut y = vec![0.0; bf.sf.ncols];
        for (j, yj) in y.iter_mut().enumerate() {
            let c = bf.sf.cost[j];
            if c < -opts.feas_tol {
                if !bf.col_upper[j].is_finite() {
                    return Err(SolveError::Unbounded);
                }
                *yj = bf.col_upper[j];
            }
        }
        return Ok((y, 0));
    }
    let mut kernel = Revised::new(bf, opts);
    let mut pivots_left = opts.max_pivots;
    kernel.solve_two_phase(opts, &mut pivots_left)?;
    Ok((kernel.values(), kernel.iters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{cmp, Kernel, Model, Sense, SolverOptions};
    use crate::LinExpr;

    fn solve_model(m: &Model) -> Result<Vec<f64>, SolveError> {
        let bf = BoxedForm::build(m);
        let (y, _) = solve(&bf, &SolverOptions::default())?;
        Ok(bf.sf.recover(&y))
    }

    /// `time_limit` is enforced *inside* the kernel (solve entry and
    /// pivot-loop checkpoints), not only at node boundaries: an already
    /// expired deadline aborts before any pivot.
    #[test]
    fn zero_time_limit_aborts_inside_the_kernel() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.set_objective(3.0 * x + 5.0 * y);
        m.add_constraint(x + y, cmp::LE, 4.0);
        let bf = BoxedForm::build(&m);
        let opts = SolverOptions {
            time_limit: Some(std::time::Duration::ZERO),
            ..SolverOptions::default()
        };
        assert_eq!(solve(&bf, &opts), Err(SolveError::IterationLimit));
        let kernel = Revised::new(&bf, &opts);
        assert!(kernel.out_of_time());
        assert_eq!(
            kernel.recovery().time_budget,
            0,
            "the budget event is recorded by the solve path, not the probe"
        );
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → (2, 6), 36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(3.0 * x + 5.0 * y);
        m.add_constraint(LinExpr::var(x), cmp::LE, 4.0);
        m.add_constraint(2.0 * y, cmp::LE, 12.0);
        m.add_constraint(3.0 * x + 2.0 * y, cmp::LE, 18.0);
        let v = solve_model(&m).unwrap();
        assert!((v[0] - 2.0).abs() < 1e-7, "x = {}", v[0]);
        assert!((v[1] - 6.0).abs() < 1e-7, "y = {}", v[1]);
    }

    #[test]
    fn boxed_bounds_bind_without_rows() {
        // max x + y, x ∈ [0, 2.5], y ∈ [1, 3], x + y <= 4 → (2.5, 1.5) or
        // (1, 3): optimum value 4 with x at most 2.5 and y at least 1.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 2.5);
        let y = m.add_continuous("y", 1.0, 3.0);
        m.set_objective(x + LinExpr::var(y));
        m.add_constraint(x + y, cmp::LE, 4.0);
        let v = solve_model(&m).unwrap();
        assert!((v[0] + v[1] - 4.0).abs() < 1e-7, "{v:?}");
        assert!(v[0] <= 2.5 + 1e-9 && v[1] >= 1.0 - 1e-9);
    }

    #[test]
    fn upper_bounded_objective_rests_at_upper() {
        // max 2x + y with x ∈ [0, 3], y ∈ [0, 5] and a slack row; both
        // variables should sit at their upper bounds (bound flips, no
        // pivots needed beyond the crash).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, 5.0);
        m.set_objective(2.0 * x + y);
        m.add_constraint(x + y, cmp::LE, 100.0);
        let v = solve_model(&m).unwrap();
        assert!(
            (v[0] - 3.0).abs() < 1e-7 && (v[1] - 5.0).abs() < 1e-7,
            "{v:?}"
        );
    }

    #[test]
    fn equality_and_ge_rows_need_phase1() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(x + y);
        m.add_constraint(x + y, cmp::EQ, 4.0);
        m.add_constraint(x - y, cmp::GE, 1.0);
        let v = solve_model(&m).unwrap();
        assert!((v[0] + v[1] - 4.0).abs() < 1e-7);
        assert!(v[0] - v[1] >= 1.0 - 1e-7);
    }

    #[test]
    fn detects_infeasible_and_unbounded() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::var(x), cmp::LE, 1.0);
        m.add_constraint(LinExpr::var(x), cmp::GE, 2.0);
        assert_eq!(solve_model(&m).unwrap_err(), SolveError::Infeasible);

        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::var(x));
        m.add_constraint(-1.0 * x, cmp::LE, 5.0);
        assert_eq!(solve_model(&m).unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_handled() {
        // min x s.t. -x <= -3 (x >= 3): crash needs a signed artificial.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::var(x));
        m.add_constraint(-1.0 * x, cmp::LE, -3.0);
        let v = solve_model(&m).unwrap();
        assert!((v[0] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(x + y);
        m.add_constraint(x + y, cmp::LE, 1.0);
        m.add_constraint(x + 2.0 * y, cmp::LE, 1.0);
        m.add_constraint(2.0 * x + y, cmp::LE, 1.0);
        m.add_constraint(x - y, cmp::LE, 1.0);
        let v = solve_model(&m).unwrap();
        assert!((v[0] + v[1] - (2.0 / 3.0)).abs() < 1e-6);
    }

    #[test]
    fn dual_reopt_tracks_col_bound_tightening() {
        // max x + y s.t. x + y <= 6, x,y ∈ [0, 4] → obj 6. Tighten
        // x ∈ [0, 1] via the column box: dual reopt lands on obj 5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 4.0);
        let y = m.add_continuous("y", 0.0, 4.0);
        m.set_objective(x + LinExpr::var(y));
        m.add_constraint(x + y, cmp::LE, 6.0);
        let bf = BoxedForm::build(&m);
        let opts = SolverOptions::default();
        let mut k = Revised::new(&bf, &opts);
        let mut budget = opts.max_pivots;
        k.solve_two_phase(&opts, &mut budget).unwrap();
        let v0 = bf.sf.recover(&k.values());
        assert!((v0[0] + v0[1] - 6.0).abs() < 1e-7, "{v0:?}");
        assert!(k.dual_ok());

        // x's standard-form column is column 0 (shifted by lb 0).
        k.set_col_bounds(0, 0.0, 1.0);
        k.dual_reopt(&opts, &mut budget).unwrap();
        k.primal_opt(&opts, &mut budget).unwrap();
        let v1 = bf.sf.recover(&k.values());
        assert!(v1[0] <= 1.0 + 1e-7, "x = {}", v1[0]);
        assert!((v1[0] + v1[1] - 5.0).abs() < 1e-6, "{v1:?}");
    }

    #[test]
    fn dual_reopt_tracks_rhs_tightening() {
        // Same model, tightening the constraint row's rhs instead.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 4.0);
        let y = m.add_continuous("y", 0.0, 4.0);
        m.set_objective(x + LinExpr::var(y));
        let row = m.add_constraint(x + y, cmp::LE, 6.0);
        let bf = BoxedForm::build(&m);
        let opts = SolverOptions::default();
        let mut k = Revised::new(&bf, &opts);
        let mut budget = opts.max_pivots;
        k.solve_two_phase(&opts, &mut budget).unwrap();
        k.set_rhs(row, 3.0);
        k.dual_reopt(&opts, &mut budget).unwrap();
        k.primal_opt(&opts, &mut budget).unwrap();
        let v = bf.sf.recover(&k.values());
        assert!((v[0] + v[1] - 3.0).abs() < 1e-6, "{v:?}");
    }

    #[test]
    fn dual_reopt_detects_node_infeasibility() {
        // x <= 2 (row) with box raised to [3, 4] is infeasible.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 4.0);
        m.set_objective(LinExpr::var(x));
        m.add_constraint(LinExpr::var(x), cmp::LE, 2.0);
        let bf = BoxedForm::build(&m);
        let opts = SolverOptions::default();
        let mut k = Revised::new(&bf, &opts);
        let mut budget = opts.max_pivots;
        k.solve_two_phase(&opts, &mut budget).unwrap();
        k.set_col_bounds(0, 3.0, 4.0);
        assert_eq!(
            k.dual_reopt(&opts, &mut budget).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn snapshot_restores_across_perturbation() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 4.0);
        let y = m.add_continuous("y", 0.0, 4.0);
        m.set_objective(2.0 * x + LinExpr::var(y));
        m.add_constraint(x + y, cmp::LE, 5.0);
        let bf = BoxedForm::build(&m);
        let opts = SolverOptions::default();
        let mut k = Revised::new(&bf, &opts);
        let mut budget = opts.max_pivots;
        k.solve_two_phase(&opts, &mut budget).unwrap();
        let snap = k.basis_snapshot();
        let obj0: f64 = {
            let v = bf.sf.recover(&k.values());
            2.0 * v[0] + v[1]
        };
        // Perturb: pin x to 0, reoptimize, then restore.
        k.set_col_bounds(0, 0.0, 0.0);
        k.dual_reopt(&opts, &mut budget).unwrap();
        k.primal_opt(&opts, &mut budget).unwrap();
        k.set_col_bounds(0, 0.0, 4.0);
        k.install_basis(&snap).unwrap();
        k.dual_reopt(&opts, &mut budget).unwrap();
        k.primal_opt(&opts, &mut budget).unwrap();
        let v = bf.sf.recover(&k.values());
        assert!((2.0 * v[0] + v[1] - obj0).abs() < 1e-6, "{v:?} vs {obj0}");
    }

    /// The refactor policy from `SolverOptions` actually drives the
    /// kernel: with `refactor_eta_len = 1` every basis-change pivot
    /// flushes the eta file, so the refactor count must track the pivot
    /// count — and the optimum must not move.
    #[test]
    fn solver_options_refactor_policy_reaches_the_kernel() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        let z = m.add_continuous("z", 0.0, f64::INFINITY);
        m.set_objective(2.0 * x + 3.0 * y + z);
        m.add_constraint(x + y + z, cmp::GE, 6.0);
        m.add_constraint(x + 2.0 * y, cmp::GE, 4.0);
        m.add_constraint(y + 3.0 * z, cmp::GE, 5.0);
        let bf = BoxedForm::build(&m);
        let run = |opts: &SolverOptions| {
            let mut k = Revised::new(&bf, opts);
            let mut budget = opts.max_pivots;
            k.solve_two_phase(opts, &mut budget).unwrap();
            let v = bf.sf.recover(&k.values());
            let obj = 2.0 * v[0] + 3.0 * v[1] + v[2];
            (obj, k.factor_stats.refactors, k.iters)
        };
        let (obj_default, refactors_default, _) = run(&SolverOptions::default());
        let eager = SolverOptions {
            refactor_eta_len: 1,
            ..Default::default()
        };
        let (obj_eager, refactors_eager, iters) = run(&eager);
        assert!((obj_default - obj_eager).abs() < 1e-9);
        // Defaults never hit the `max(64, 2m)` cap on this small LP…
        assert_eq!(refactors_default, 1, "only the crash refactor expected");
        // …while the configured policy refactors after every eta push.
        assert!(
            refactors_eager > 1 && refactors_eager <= iters + 1,
            "eager policy did not fire: {refactors_eager} refactors over {iters} pivots"
        );
    }

    /// A kernel whose `ratio_test` can be probed directly: two rows, two
    /// real columns, basis = the two structural columns, `xb` set by the
    /// test. (`ratio_test` reads only the basis, boxes and `xb`, so no
    /// factorization is needed.)
    fn ratio_probe(xb: [f64; 2], opts: &SolverOptions) -> Revised {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constraint(LinExpr::var(x), cmp::EQ, 1.0);
        m.add_constraint(LinExpr::var(y), cmp::EQ, 1.0);
        let bf = BoxedForm::build(&m);
        let mut k = Revised::new(&bf, opts);
        k.basis[0] = 0;
        k.basis[1] = 1;
        k.in_basis[0] = true;
        k.in_basis[1] = true;
        k.xb = xb.to_vec();
        k
    }

    /// **Tolerance-hygiene regression**: the ratio test's tie window is
    /// `0.01·feas_tol`, so a non-default `feas_tol` genuinely changes
    /// which row blocks. Two rows with ratios 1.0 and 1.0 + 5e-10: at
    /// the default (window 1e-9) they tie and the larger pivot wins
    /// (row 1); with `feas_tol = 1e-12` the window collapses and the
    /// strictly smaller ratio wins (row 0).
    #[test]
    fn feas_tol_changes_the_blocking_row() {
        let d = [1.0, 2.0];
        let defaults = SolverOptions::default();
        let k = ratio_probe([1.0, 2.0 * (1.0 + 5e-10)], &defaults);
        let (t, row, _) = k.ratio_test(1.0, &d, false, &defaults);
        assert_eq!(
            row,
            Some(1),
            "default window must tie-break to the larger pivot"
        );
        assert!((t - 1.0).abs() < 1e-6);

        let tight = SolverOptions {
            feas_tol: 1e-12,
            ..Default::default()
        };
        let k = ratio_probe([1.0, 2.0 * (1.0 + 5e-10)], &tight);
        let (_, row, _) = k.ratio_test(1.0, &d, false, &tight);
        assert_eq!(
            row,
            Some(0),
            "tight feas_tol must pick the strictly smaller ratio"
        );
    }

    /// **Tolerance-hygiene regression**: rows whose pivot element is at
    /// most `pivot_tol` are ineligible — so shrinking `pivot_tol` below
    /// a tiny pivot brings its row into play.
    #[test]
    fn pivot_tol_gates_ratio_test_eligibility() {
        let d = [1e-10, 1.0];
        let defaults = SolverOptions::default(); // pivot_tol = 1e-9
        let k = ratio_probe([1e-12, 5.0], &defaults);
        let (_, row, _) = k.ratio_test(1.0, &d, false, &defaults);
        assert_eq!(row, Some(1), "sub-tolerance pivot row must be skipped");

        let loose = SolverOptions {
            pivot_tol: 1e-12,
            ..Default::default()
        };
        let k = ratio_probe([1e-12, 5.0], &loose);
        let (_, row, _) = k.ratio_test(1.0, &d, false, &loose);
        assert_eq!(
            row,
            Some(0),
            "smaller pivot_tol must admit the tiny-pivot row"
        );
    }

    /// **Scaled-model regression (ported from the PR 3 factor suite to
    /// the primal entry point)**: a 1e-9-scaled *infeasible* model —
    /// after the standard form's row equilibration a uniformly tiny
    /// model is exactly a tiny-**rhs** model — leaves a ~1e-9 phase-1
    /// residual, far below the old absolute `1e-6` cutoff, which
    /// silently accepted the garbage point as "feasible". The cutoff is
    /// relative to the rhs scale now.
    #[test]
    fn tiny_scaled_infeasibility_is_detected() {
        let s = 1e-9;
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(x + LinExpr::var(y));
        // Two parallel equalities 1e-9 apart: infeasible by exactly s.
        m.add_constraint(x + y, cmp::EQ, s);
        m.add_constraint(x + y, cmp::EQ, 2.0 * s);
        assert_eq!(solve_model(&m).unwrap_err(), SolveError::Infeasible);
    }

    /// The relative cutoff is **per row**, not a single global maximum:
    /// a unit-scale contradiction (y constrained to both 1 and 2) next
    /// to an unrelated 1e6-scale row must still be detected — under a
    /// global scale the cutoff would balloon to `1e-6·1e6 = 1` and
    /// accept the 0.5-violating point as feasible.
    #[test]
    fn mixed_scale_infeasibility_is_not_masked_by_a_large_row() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(x + y);
        m.add_constraint(x + 0.5 * y, cmp::EQ, 1e6);
        m.add_constraint(x - y, cmp::EQ, 1.0);
        m.add_constraint(x - y, cmp::EQ, 2.0);
        assert_eq!(solve_model(&m).unwrap_err(), SolveError::Infeasible);
    }

    /// The feasible side of the same regression: a well-conditioned
    /// model living entirely at rhs scale 1e-9 must solve to its (tiny)
    /// optimum — the relative cutoff must not misfire on round-off.
    #[test]
    fn tiny_scaled_feasible_model_solves() {
        let s = 1e-9;
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(x + y);
        m.add_constraint(x + y, cmp::EQ, 4.0 * s);
        m.add_constraint(x - y, cmp::GE, s);
        let v = solve_model(&m).unwrap();
        assert!((v[0] + v[1] - 4.0 * s).abs() < 1e-6 * s, "{v:?}");
        assert!(v[0] - v[1] >= s * (1.0 - 1e-6), "{v:?}");
    }

    /// `SolverOptions::update` reaches the kernel: under Forrest–Tomlin
    /// the eta file stays empty and updates are counted (with the same
    /// optimum); under the product form no FT update ever runs.
    #[test]
    fn update_kind_reaches_the_kernel() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        let z = m.add_continuous("z", 0.0, f64::INFINITY);
        m.set_objective(2.0 * x + 3.0 * y + z);
        m.add_constraint(x + y + z, cmp::GE, 6.0);
        m.add_constraint(x + 2.0 * y, cmp::GE, 4.0);
        m.add_constraint(y + 3.0 * z, cmp::GE, 5.0);
        let bf = BoxedForm::build(&m);
        let run = |update: crate::model::UpdateKind| {
            let opts = SolverOptions {
                update,
                ..Default::default()
            };
            let mut k = Revised::new(&bf, &opts);
            let mut budget = opts.max_pivots;
            k.solve_two_phase(&opts, &mut budget).unwrap();
            let v = bf.sf.recover(&k.values());
            (2.0 * v[0] + 3.0 * v[1] + v[2], k.factor_stats)
        };
        let (obj_ft, stats_ft) = run(UpdateKind::ForrestTomlin);
        let (obj_pf, stats_pf) = run(UpdateKind::ProductForm);
        assert!((obj_ft - obj_pf).abs() < 1e-9, "{obj_ft} vs {obj_pf}");
        assert!(stats_ft.ft_updates > 0, "FT mode never updated the factors");
        assert_eq!(stats_pf.ft_updates, 0, "product form ran FT updates");
        assert!(stats_ft.peak_u_nnz > 0);
    }

    /// N-row generalization of [`ratio_probe`]: row `r` holds structural
    /// column `r` basic at `xb[r]`, every box is `[0, 10]`.
    fn ratio_probe_n(xb: &[f64], opts: &SolverOptions) -> Revised {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..xb.len())
            .map(|i| m.add_continuous(format!("x{i}"), 0.0, 10.0))
            .collect();
        for &v in &vars {
            m.add_constraint(LinExpr::var(v), cmp::EQ, 1.0);
        }
        let bf = BoxedForm::build(&m);
        let mut k = Revised::new(&bf, opts);
        for r in 0..xb.len() {
            k.basis[r] = r;
            k.in_basis[r] = true;
        }
        k.xb = xb.to_vec();
        k
    }

    /// **Chained-tie anchor regression (primal)**: four rows whose ratios
    /// step by 0.9e-9 — each *pairwise* within the 1e-9 tie window of its
    /// neighbor, but rows 2 and 3 are *not* ties of the true minimum.
    /// The pre-fix code re-anchored the window at each tie winner's own
    /// (larger) ratio, so the chain walked it out to row 3; the anchor
    /// must stay at the running minimum, admitting only row 1.
    #[test]
    fn chained_near_ties_do_not_walk_the_primal_tie_window() {
        let d = [1.0, 2.0, 3.0, 4.0];
        let xb: Vec<f64> = d
            .iter()
            .enumerate()
            .map(|(i, &dr)| dr * (1.0 + i as f64 * 0.9e-9))
            .collect();
        let defaults = SolverOptions::default(); // tie window 1e-9
        let k = ratio_probe_n(&xb, &defaults);
        let (t, row, _) = k.ratio_test(1.0, &d, false, &defaults);
        assert_eq!(
            row,
            Some(1),
            "tie window must stay anchored at the minimum ratio"
        );
        // The returned step is the running *minimum*, not the winner's
        // own slightly larger ratio.
        assert!((t - 1.0).abs() < 1e-12, "t = {t}");
    }

    /// A kernel whose dual ratio tests can be probed directly: one
    /// equality row `x/3 + 2y/3 + z = 1` (max coefficient 1.0, so row
    /// equilibration is the identity), all three structural columns
    /// nonbasic at lower bound, the artificial left basic. Costs are
    /// `alpha_j · (1 + j·0.9e-9)`, so with `ρ = e_0` the dual ratios
    /// `rc_j/|α_j|` step by 0.9e-9 with pivot magnitudes increasing.
    fn dual_tie_probe(opts: &SolverOptions) -> Revised {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        let z = m.add_continuous("z", 0.0, 10.0);
        let a = [1.0 / 3.0, 2.0 / 3.0, 1.0];
        m.set_objective(a[0] * x + (a[1] * (1.0 + 0.9e-9)) * y + (a[2] * (1.0 + 1.8e-9)) * z);
        m.add_constraint(a[0] * x + a[1] * y + a[2] * z, cmp::EQ, 1.0);
        let bf = BoxedForm::build(&m);
        Revised::new(&bf, opts)
    }

    /// **Chained-tie anchor regression (dual)**: same construction as the
    /// primal test, driven through `dual_enter_dantzig`. Column 1 ties
    /// the true minimum (column 0) and out-pivots it; column 2 is only a
    /// tie of the *winner*, not of the minimum, and must not enter.
    #[test]
    fn chained_near_ties_do_not_walk_the_dual_tie_window() {
        let opts = SolverOptions::default();
        let k = dual_tie_probe(&opts);
        let rho = vec![1.0];
        // Sanity: equilibration left the row untouched.
        for (j, want) in [(0usize, 1.0 / 3.0), (1, 2.0 / 3.0), (2, 1.0)] {
            assert!(
                (k.col_dot(j, &rho) - want).abs() < 1e-15,
                "row was rescaled; rebuild the probe"
            );
        }
        let y = vec![0.0];
        let choice = k
            .dual_enter_dantzig(&rho, &y, false, &opts)
            .expect("a candidate must be found");
        assert_eq!(
            choice.enter, 1,
            "tie window must stay anchored at the minimum ratio"
        );
        assert!(choice.flips.is_empty());
    }

    /// **Scale-hygiene regression for the dual leaving-row scan**: a
    /// basic variable 0.03 outside its bound on a 2e6-scale row is
    /// round-off, not infeasibility — while 0.01 outside a unit-scale
    /// box is genuine. Under the old absolute `feas_tol` cut both rows
    /// were eligible and the larger raw violation (the noise) won.
    #[test]
    fn dual_leaving_row_judges_violations_relative_to_row_scale() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 2e6);
        let y = m.add_continuous("y", 0.0, 1.0);
        m.add_constraint(LinExpr::var(x), cmp::EQ, 1e6);
        m.add_constraint(LinExpr::var(y), cmp::EQ, 0.5);
        let bf = BoxedForm::build(&m);
        let opts = SolverOptions::default();
        let mut k = Revised::new(&bf, &opts);
        k.basis[0] = 0;
        k.basis[1] = 1;
        k.in_basis[0] = true;
        k.in_basis[1] = true;
        k.xb = vec![2e6 + 0.03, 1.01];
        let scales = vec![2e6, 1.0];
        let noise_floor = 1e3 * f64::EPSILON * 2e6;
        for steepest in [false, true] {
            let (row, below, viol) = k
                .dual_leaving_row(&scales, noise_floor, steepest, opts.feas_tol)
                .expect("the unit-scale violation must be seen");
            assert_eq!(row, 1, "round-off on the 2e6-scale row out-scored it");
            assert!(!below);
            assert!((viol - 0.01).abs() < 1e-12);
        }
    }

    /// The long-step dual ratio test flips span-exhausted candidates and
    /// keeps scanning: with the row violated by 1.0, the best-ratio
    /// column (|α|·span = 0.6) cannot absorb the step alone, so it bound
    /// -flips and the next candidate enters. When *every* candidate is
    /// exhausted the dual ray is unbounded over the boxes: `None`, with
    /// no flips committed.
    #[test]
    fn long_step_dual_ratio_test_flips_exhausted_candidates() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 0.3);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constraint(0.2 * x + 0.1 * y, cmp::EQ, 1.0);
        let bf = BoxedForm::build(&m);
        let opts = SolverOptions::default();
        let k = Revised::new(&bf, &opts);
        let alphas = vec![2.0, 1.0];
        let rc = vec![0.1, 0.2]; // ratios 0.05 and 0.2
        let choice = k
            .dual_enter_steepest(&alphas, &rc, false, 1.0, &opts)
            .expect("the second candidate must absorb the step");
        assert_eq!(choice.flips, vec![0], "best-ratio column must bound-flip");
        assert_eq!(choice.enter, 1);
        assert!((choice.alpha - 1.0).abs() < 1e-15);
        // Violation beyond every candidate's combined reach: infeasible.
        assert!(
            k.dual_enter_steepest(&alphas, &rc, false, 20.0, &opts)
                .is_none(),
            "an inexhaustible violation is a dual ray"
        );
    }

    #[test]
    fn matches_dense_oracle_on_fixed_models() {
        // A couple of LPs solved by both kernels must agree to 1e-9.
        let build = |variant: usize| {
            let mut m = Model::new(Sense::Minimize);
            let x = m.add_continuous("x", 0.0, 10.0);
            let y = m.add_continuous("y", -5.0, 5.0);
            let z = m.add_free("z");
            m.set_objective(3.0 * x - 2.0 * y + 0.5 * z);
            m.add_constraint(x + y + z, cmp::GE, 2.0);
            m.add_constraint(x - y, cmp::LE, 4.0);
            if variant == 1 {
                m.add_constraint(2.0 * x + z, cmp::EQ, 3.0);
            }
            m
        };
        for variant in 0..2 {
            let m = build(variant);
            let dense = {
                let o = SolverOptions {
                    kernel: Kernel::DenseTableau,
                    ..Default::default()
                };
                m.solve_with(&o).unwrap().objective
            };
            let revised = m.solve().unwrap().objective;
            assert!(
                (dense - revised).abs() < 1e-9,
                "variant {variant}: dense {dense} vs revised {revised}"
            );
        }
    }
}
