//! Model builder: variables, constraints, objective, solver entry points.

use std::fmt;
use std::time::Duration;

use crate::branch_bound;
use crate::expr::{LinExpr, VarId};
use crate::simplex;
use crate::solution::{Solution, SolveError, Status};
use crate::standard::StandardForm;

/// Optimization direction of the objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    Minimize,
    Maximize,
}

/// Comparison operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
        })
    }
}

/// Short aliases so constraint sites read close to the paper's notation.
pub mod cmp {
    pub use super::CmpOp;
    /// `expr <= rhs`
    pub const LE: CmpOp = CmpOp::Le;
    /// `expr >= rhs`
    pub const GE: CmpOp = CmpOp::Ge;
    /// `expr == rhs`
    pub const EQ: CmpOp = CmpOp::Eq;
}

/// A decision variable.
#[derive(Debug, Clone)]
pub struct Variable {
    pub(crate) name: String,
    pub(crate) lower: f64,
    pub(crate) upper: f64,
    pub(crate) integer: bool,
    pub(crate) priority: i32,
}

impl Variable {
    /// Variable name as given at creation.
    pub fn name(&self) -> &str {
        &self.name
    }
    /// Lower bound (may be `-inf`).
    pub fn lower(&self) -> f64 {
        self.lower
    }
    /// Upper bound (may be `+inf`).
    pub fn upper(&self) -> f64 {
        self.upper
    }
    /// Whether the variable is required to be integral.
    pub fn is_integer(&self) -> bool {
        self.integer
    }
    /// Branching priority (higher branches first; default 0).
    pub fn priority(&self) -> i32 {
        self.priority
    }
}

/// A linear constraint `expr op rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    pub(crate) expr: LinExpr,
    pub(crate) op: CmpOp,
    pub(crate) rhs: f64,
}

impl Constraint {
    /// Left-hand-side expression.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }
    /// Comparison operator.
    pub fn op(&self) -> CmpOp {
        self.op
    }
    /// Right-hand-side constant.
    pub fn rhs(&self) -> f64 {
        self.rhs
    }

    /// Signed violation of the constraint under `values` (0 if satisfied).
    pub fn violation(&self, values: &[f64]) -> f64 {
        let lhs = self.expr.eval(values);
        match self.op {
            CmpOp::Le => (lhs - self.rhs).max(0.0),
            CmpOp::Ge => (self.rhs - lhs).max(0.0),
            CmpOp::Eq => (lhs - self.rhs).abs(),
        }
    }
}

/// Which simplex kernel solves the LP relaxations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Revised simplex: sparse columns, LU-factorized basis with
    /// product-form eta updates, dual-simplex warm starts in branch &
    /// bound. The production kernel.
    #[default]
    Revised,
    /// The original dense full-tableau two-phase simplex, kept as a
    /// cross-validation oracle (and for A/B benchmarking). Pure LP
    /// relaxations solve directly on the tableau. A branch & bound
    /// search requested with this kernel runs the unified warm revised
    /// backend in the oracle configuration ([`SolverOptions::resolve`]:
    /// dense factors, product-form updates, Dantzig pricing, cold node
    /// solves, one worker) and then cross-validates the incumbent's
    /// pinned integer assignment against the genuine dense tableau.
    DenseTableau,
}

/// Which basis factorization backs the revised kernel's eta file (see
/// the `factor` module docs). Under [`Kernel::DenseTableau`] this is
/// normalized to [`FactorKind::Dense`] by [`SolverOptions::resolve`]
/// (the pure-LP tableau itself carries no factorization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FactorKind {
    /// Sparse LU with Markowitz pivot ordering and threshold partial
    /// pivoting: `O(nnz(L+U))` storage and refactor cost proportional to
    /// fill. The production default.
    #[default]
    Sparse,
    /// Dense LU snapshot (`O(m²)` storage, `O(m³)` refactor), kept as
    /// the cross-validation oracle for the sparse scheme.
    Dense,
}

/// How the basis factorization absorbs a pivot (a one-column basis
/// change) between refactorizations. Only the [`FactorKind::Sparse`]
/// snapshot supports Forrest–Tomlin; the dense oracle always uses the
/// product form (see the `factor` module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateKind {
    /// Forrest–Tomlin: the leaving column of `U` is replaced by the
    /// entering column's spike, the spike row is eliminated with one row
    /// eta against `U`'s trailing submatrix, and the pivot is permuted
    /// to the end — FTRAN/BTRAN keep solving against an *updated*
    /// triangular `U` instead of replaying an unbounded eta file. The
    /// production default.
    #[default]
    ForrestTomlin,
    /// Product-form eta file: every pivot appends one eta transformation
    /// that each subsequent FTRAN/BTRAN replays. The historical scheme,
    /// kept as the cross-validation baseline (and the only scheme the
    /// dense-LU oracle supports).
    ProductForm,
}

/// Pricing rule of the revised simplex kernel — how the primal phase
/// picks its entering column and how the dual reoptimizer picks its
/// leaving row (see the crate-level "Pricing" docs). Under
/// [`Kernel::DenseTableau`] this is normalized to [`Pricing::Dantzig`]
/// by [`SolverOptions::resolve`] — the tableau oracle's one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pricing {
    /// Steepest-edge-style pricing in both simplex directions: the dual
    /// reoptimizer normalizes each row's box violation by a maintained
    /// reference weight `‖B⁻ᵀe_r‖²` (updated per pivot from the vectors
    /// the pivot already computed, with a drift check that resets the
    /// reference framework through the recovery ladder), the primal
    /// phase prices by Devex reference weights instead of the bare
    /// reduced cost, and the dual ratio test takes **long steps**:
    /// entering candidates whose box span is exhausted flip bounds and
    /// the scan continues, so one dual pivot can cross many
    /// breakpoints. The production default.
    #[default]
    SteepestEdge,
    /// The historical rule: Dantzig (most negative reduced cost /
    /// worst absolute violation) with the automatic Bland fallback,
    /// no reference weights, one breakpoint per dual pivot. The
    /// bit-exact trajectory goldens pin this mode so their numbers
    /// stay comparable across PRs.
    Dantzig,
}

/// Node selection strategy of the branch & bound search (see the
/// `branch_bound` module docs for the search-core architecture).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeOrder {
    /// Depth-first, exploring the nearer branching side first. Cheapest
    /// bookkeeping and the historical behaviour, but truncated runs can
    /// plateau on an early incumbent while better ones hide in unvisited
    /// subtrees.
    #[default]
    DfsNearerFirst,
    /// Best-bound first: a priority queue keyed on the parent LP bound
    /// (ties dive like DFS), with the parent basis handed off to each
    /// queued child so warm starts survive the jumps. Finds strong
    /// incumbents earlier under node caps and prunes the whole frontier
    /// the moment the best queued bound cannot beat the incumbent.
    BestBound,
}

/// Branching-variable selection rule of the branch & bound search (see
/// the crate-level "Branching and node scoring" docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Branching {
    /// Pseudo-cost (reliability) branching: per-variable up/down
    /// pseudo-costs are learned from the bound degradations the search
    /// observes; a variable whose direction has fewer than
    /// [`SolverOptions::reliability`] observations is strong-branched
    /// (both children dual-reoptimized under a small pivot budget)
    /// before its pseudo-cost is trusted. Candidates are scored by the
    /// product rule and, under [`NodeOrder::BestBound`], queued children
    /// are ordered by a best-estimate key instead of the raw parent
    /// bound. The production default.
    #[default]
    PseudoCost,
    /// Highest priority class first, most fractional within it, ties
    /// broken toward the lowest [`VarId`]. The historical rule; the
    /// bit-exact trajectory goldens pin this mode.
    MostFractional,
}

/// Resource limits and tolerances for the solver.
///
/// The defaults match what the reproduction harness needs; the paper used a
/// 20-minute CPLEX timeout, which callers can mirror with
/// [`SolverOptions::time_limit`].
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Maximum branch-and-bound nodes before returning the incumbent.
    pub max_nodes: usize,
    /// Wall-clock limit for the whole solve (LP phases included).
    pub time_limit: Option<Duration>,
    /// Absolute integrality tolerance.
    pub int_tol: f64,
    /// Feasibility tolerance of the simplex: how large a reduced-cost or
    /// bound violation must be to count as real. Also scales the ratio
    /// test's tie-break windows (ties within `0.01·feas_tol` of the
    /// minimum ratio are broken toward the larger pivot).
    pub feas_tol: f64,
    /// Minimum pivot magnitude the simplex accepts: ratio-test rows and
    /// dual entering columns whose pivot element is at most this size
    /// are skipped as numerically unusable.
    pub pivot_tol: f64,
    /// Maximum simplex iterations per LP solve.
    pub max_pivots: usize,
    /// Try the round-and-fix heuristic at the root node.
    pub rounding_heuristic: bool,
    /// Stop as soon as an incumbent is within `gap_tol` (relative) of the
    /// best LP bound.
    pub gap_tol: f64,
    /// LP kernel selection (see [`Kernel`]).
    pub kernel: Kernel,
    /// Warm-start branch & bound nodes from the parent basis via dual
    /// simplex (only the [`Kernel::Revised`] kernel supports this; with
    /// `false` every node is solved two-phase from scratch, which is the
    /// configuration the warm-start regression tests compare against).
    pub warm_start: bool,
    /// Basis factorization behind the revised kernel (see [`FactorKind`]).
    pub factor: FactorKind,
    /// How pivots update the factorization between refactorizations (see
    /// [`UpdateKind`]); [`FactorKind::Dense`] always uses the product
    /// form regardless of this setting.
    pub update: UpdateKind,
    /// Branch & bound node selection strategy (see [`NodeOrder`]).
    pub node_order: NodeOrder,
    /// Eta-file length that triggers a refactorization; `0` (the
    /// default) resolves to `max(64, 2m)` for a basis of `m` rows.
    pub refactor_eta_len: usize,
    /// Refactorize when the eta file's accumulated fill exceeds this
    /// multiple of the snapshot LU's nonzero count (dense etas make
    /// FTRAN/BTRAN pay their fill on every solve, so a heavy file is
    /// flushed before the length cap); `<= 0` or non-finite disables the
    /// fill trigger.
    pub refactor_fill_growth: f64,
    /// Deterministic fault-injection plan (see
    /// [`FaultPlan`](crate::FaultPlan) and the `recover` module docs).
    /// `None` — the default — injects nothing; the recovery ladder and
    /// residual health monitor stay armed either way.
    pub faults: Option<crate::FaultPlan>,
    /// Branch & bound worker threads. `1` (the default) runs the serial
    /// search core and is bit-exact with the historical trajectories;
    /// `>= 2` runs the work-stealing parallel search, where each worker
    /// owns its own kernel and factors and claims bounded DFS episodes
    /// from a shared frontier (see the crate-level "Concurrency model"
    /// docs). Every model parallelizes — there is no serial-only model
    /// class; [`SolverOptions::resolve`] normalizes `0` to `1` and pins
    /// the [`Kernel::DenseTableau`] oracle configuration to `1`.
    pub workers: usize,
    /// Branching-variable selection rule (see [`Branching`]).
    pub branching: Branching,
    /// Reliability threshold of pseudo-cost branching: a variable
    /// direction with fewer recorded observations than this is
    /// strong-branched instead of trusted (0 disables strong branching
    /// entirely — pseudo-costs then initialize from node observations
    /// only).
    pub reliability: usize,
    /// Dual-simplex pivot budget of one strong-branch probe.
    pub strong_branch_pivots: usize,
    /// At most this many unreliable candidates are strong-branched per
    /// node (the rest fall back to their pseudo-cost estimates).
    pub strong_branch_candidates: usize,
    /// Simplex pricing rule (see [`Pricing`]).
    pub pricing: Pricing,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_nodes: 20_000,
            time_limit: None,
            int_tol: 1e-6,
            feas_tol: 1e-7,
            pivot_tol: 1e-9,
            // Degenerate phase-1 bases of the retiming MILPs can stall
            // the Dantzig/Bland alternation for a long time; give each LP
            // a generous pivot budget (pivots are cheap, restarts are
            // not).
            max_pivots: 2_000_000,
            rounding_heuristic: true,
            gap_tol: 1e-9,
            kernel: Kernel::Revised,
            warm_start: true,
            factor: FactorKind::Sparse,
            update: UpdateKind::ForrestTomlin,
            node_order: NodeOrder::DfsNearerFirst,
            refactor_eta_len: 0,
            refactor_fill_growth: 8.0,
            faults: None,
            workers: 1,
            branching: Branching::PseudoCost,
            reliability: 4,
            strong_branch_pivots: 100,
            strong_branch_candidates: 8,
            pricing: Pricing::SteepestEdge,
        }
    }
}

impl SolverOptions {
    /// Options with a wall-clock budget, keeping other defaults.
    pub fn with_time_limit(limit: Duration) -> Self {
        SolverOptions {
            time_limit: Some(limit),
            ..Self::default()
        }
    }

    /// Resolves the requested options into the configuration the engine
    /// actually runs, normalizing — in this one place — every knob
    /// combination the engine cannot honor. Returns the effective
    /// options plus one human-readable note per normalized knob, so
    /// callers surface what changed instead of silently ignoring
    /// settings at scattered call sites.
    ///
    /// Normalizations:
    /// * `workers == 0` becomes `1` (a solve needs one worker).
    /// * [`Kernel::DenseTableau`] is an oracle request: the search runs
    ///   the unified warm revised backend pinned to the dense-oracle
    ///   setup — one worker, [`Pricing::Dantzig`],
    ///   [`UpdateKind::ProductForm`], [`FactorKind::Dense`], cold node
    ///   solves — and the incumbent is cross-validated against the
    ///   genuine dense tableau afterwards.
    ///
    /// Deliberately *not* normalized: [`FactorKind::Dense`] +
    /// [`UpdateKind::ForrestTomlin`] (the dense factor internally
    /// degrades to the product form; a documented, tested property of
    /// the factor layer rather than an option conflict).
    pub fn resolve(&self) -> (SolverOptions, Vec<String>) {
        let mut eff = self.clone();
        let mut notes = Vec::new();
        if eff.workers == 0 {
            notes.push("workers: 0 -> 1 (a solve needs one worker)".to_string());
            eff.workers = 1;
        }
        if eff.kernel == Kernel::DenseTableau {
            if eff.workers != 1 {
                notes.push(format!(
                    "workers: {} -> 1 (the DenseTableau oracle runs serially)",
                    eff.workers
                ));
                eff.workers = 1;
            }
            if eff.pricing != Pricing::Dantzig {
                notes.push(format!(
                    "pricing: {:?} -> Dantzig (the tableau oracle's one rule)",
                    eff.pricing
                ));
                eff.pricing = Pricing::Dantzig;
            }
            if eff.update != UpdateKind::ProductForm {
                notes.push(format!(
                    "update: {:?} -> ProductForm (the oracle configuration)",
                    eff.update
                ));
                eff.update = UpdateKind::ProductForm;
            }
            if eff.factor != FactorKind::Dense {
                notes.push(format!(
                    "factor: {:?} -> Dense (the oracle configuration)",
                    eff.factor
                ));
                eff.factor = FactorKind::Dense;
            }
            if eff.warm_start {
                notes.push(
                    "warm_start: true -> false (oracle nodes re-solve from scratch)".to_string(),
                );
                eff.warm_start = false;
            }
        }
        (eff, notes)
    }
}

/// A lazily-activated cutting plane: `expr >= rhs` is valid for every
/// integer-feasible point, while `expr >= weak_rhs` is already implied
/// by the LP relaxation.
///
/// Cut rows enter the standard form with the *weak* right-hand side, so
/// the relaxation (and any backend that ignores cuts) is unchanged; the
/// warm-started backend tightens a row to `rhs` the first time the node
/// relaxation violates it (separation).
#[derive(Debug, Clone)]
pub struct Cut {
    pub(crate) expr: LinExpr,
    /// LP-implied right-hand side the row is born with.
    pub(crate) weak_rhs: f64,
    /// Integer-valid right-hand side activated on separation.
    pub(crate) rhs: f64,
}

impl Cut {
    /// The cut expression (constant part already folded into the rhs).
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The LP-implied (inactive) right-hand side.
    pub fn weak_rhs(&self) -> f64 {
        self.weak_rhs
    }

    /// The integer-valid (activated) right-hand side.
    pub fn rhs(&self) -> f64 {
        self.rhs
    }
}

/// A mixed-integer linear program.
///
/// See the [crate-level docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) objective: LinExpr,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) cuts: Vec<Cut>,
}

impl Model {
    /// Creates an empty model with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            objective: LinExpr::new(),
            vars: Vec::new(),
            constraints: Vec::new(),
            cuts: Vec::new(),
        }
    }

    /// Adds a variable and returns its id.
    ///
    /// `lower`/`upper` may be infinite. `integer` requests integrality
    /// (enforced by branch & bound in [`Model::solve`]).
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        integer: bool,
    ) -> VarId {
        assert!(
            !lower.is_nan() && !upper.is_nan(),
            "variable bounds must not be NaN"
        );
        assert!(lower <= upper, "variable lower bound exceeds upper bound");
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            name: name.into(),
            lower,
            upper,
            integer,
            priority: 0,
        });
        id
    }

    /// Sets the branching priority of a variable (higher branches first).
    pub fn set_priority(&mut self, v: VarId, priority: i32) {
        self.vars[v.0].priority = priority;
    }

    /// Adds a continuous variable (shorthand for [`Model::add_var`]).
    pub fn add_continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.add_var(name, lower, upper, false)
    }

    /// Adds an integer variable (shorthand for [`Model::add_var`]).
    pub fn add_integer(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.add_var(name, lower, upper, true)
    }

    /// Adds a free continuous variable (`-inf, +inf`).
    pub fn add_free(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name, f64::NEG_INFINITY, f64::INFINITY, false)
    }

    /// Sets the objective expression (its constant part is carried through
    /// to [`Solution::objective`]).
    pub fn set_objective(&mut self, expr: impl Into<LinExpr>) {
        let mut e = expr.into();
        e.compact();
        self.objective = e;
    }

    /// Adds the constraint `expr op rhs` and returns its row index.
    pub fn add_constraint(&mut self, expr: impl Into<LinExpr>, op: CmpOp, rhs: f64) -> usize {
        let mut e = expr.into();
        // Fold the expression constant into the right-hand side so the
        // standard-form conversion only sees homogeneous rows.
        let rhs = rhs - e.constant_part();
        e.constant = 0.0;
        e.compact();
        debug_assert!(
            e.iter().all(|(v, _)| v.index() < self.vars.len()),
            "constraint references a variable from another model"
        );
        self.constraints.push(Constraint { expr: e, op, rhs });
        self.constraints.len() - 1
    }

    /// Adds a lazily-activated cutting plane `expr >= rhs` whose weak
    /// form `expr >= weak_rhs` is LP-implied, and returns its index.
    ///
    /// The expression constant is folded into both right-hand sides,
    /// mirroring [`Model::add_constraint`]. Only the warm-started
    /// revised backend separates cuts; every other backend solves the
    /// (equivalent) weak rows and remains correct.
    pub fn add_cut(&mut self, expr: impl Into<LinExpr>, weak_rhs: f64, rhs: f64) -> usize {
        let mut e = expr.into();
        let shift = e.constant_part();
        e.constant = 0.0;
        e.compact();
        debug_assert!(
            e.iter().all(|(v, _)| v.index() < self.vars.len()),
            "cut references a variable from another model"
        );
        debug_assert!(
            weak_rhs <= rhs,
            "cut weak rhs must not exceed the activated rhs"
        );
        self.cuts.push(Cut {
            expr: e,
            weak_rhs: weak_rhs - shift,
            rhs: rhs - shift,
        });
        self.cuts.len() - 1
    }

    /// Number of lazily-activated cuts.
    pub fn num_cuts(&self) -> usize {
        self.cuts.len()
    }

    /// The registered cuts, in insertion order.
    pub fn cuts(&self) -> &[Cut] {
        &self.cuts
    }

    /// Fixes a variable to a value by tightening both bounds.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this model.
    pub fn fix_var(&mut self, v: VarId, value: f64) {
        let var = &mut self.vars[v.0];
        var.lower = value;
        var.upper = value;
    }

    /// Tightens the lower bound of `v` to `max(current, bound)`.
    pub fn tighten_lower(&mut self, v: VarId, bound: f64) {
        let var = &mut self.vars[v.0];
        var.lower = var.lower.max(bound);
    }

    /// Tightens the upper bound of `v` to `min(current, bound)`.
    pub fn tighten_upper(&mut self, v: VarId, bound: f64) {
        let var = &mut self.vars[v.0];
        var.upper = var.upper.min(bound);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable metadata.
    pub fn var(&self, v: VarId) -> &Variable {
        &self.vars[v.0]
    }

    /// Iterates over all variables with their ids.
    pub fn vars(&self) -> impl Iterator<Item = (VarId, &Variable)> {
        self.vars.iter().enumerate().map(|(i, v)| (VarId(i), v))
    }

    /// Iterates over the constraints.
    pub fn constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter()
    }

    /// `true` if any variable is integer.
    pub fn has_integers(&self) -> bool {
        self.vars.iter().any(|v| v.integer)
    }

    /// Checks a candidate assignment against bounds, constraints and
    /// integrality, returning the largest violation found.
    pub fn max_violation(&self, values: &[f64], int_tol: f64) -> f64 {
        let mut worst: f64 = 0.0;
        for (i, var) in self.vars.iter().enumerate() {
            worst = worst.max(var.lower - values[i]).max(values[i] - var.upper);
            if var.integer {
                worst = worst.max((values[i] - values[i].round()).abs() - int_tol);
            }
        }
        for c in &self.constraints {
            worst = worst.max(c.violation(values));
        }
        worst
    }

    /// Solves the model with default [`SolverOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Infeasible`] / [`SolveError::Unbounded`] for
    /// the corresponding model pathologies and
    /// [`SolveError::IterationLimit`] if the pivot budget is exhausted
    /// without a usable answer.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with(&SolverOptions::default())
    }

    /// Solves the model with explicit options.
    ///
    /// For mixed-integer models the returned solution has status
    /// [`Status::Optimal`] when branch & bound proved optimality and
    /// [`Status::Feasible`] when a limit stopped the search with an
    /// incumbent.
    ///
    /// # Errors
    ///
    /// See [`Model::solve`].
    pub fn solve_with(&self, opts: &SolverOptions) -> Result<Solution, SolveError> {
        if self.has_integers() {
            branch_bound::solve(self, opts, &[])
        } else {
            self.solve_relaxation(opts)
        }
    }

    /// Like [`Model::solve_with`], seeding branch & bound with a warm
    /// start: the given integer assignments are fixed and the continuous
    /// part re-solved to form the first incumbent (ignored when
    /// infeasible). Pairs for non-integer variables are ignored.
    ///
    /// # Errors
    ///
    /// See [`Model::solve`].
    pub fn solve_with_hint(
        &self,
        opts: &SolverOptions,
        hint: &[(VarId, f64)],
    ) -> Result<Solution, SolveError> {
        if self.has_integers() {
            branch_bound::solve(self, opts, hint)
        } else {
            self.solve_relaxation(opts)
        }
    }

    /// Solves the LP relaxation (integrality dropped).
    ///
    /// # Errors
    ///
    /// See [`Model::solve`].
    pub fn solve_relaxation(&self, opts: &SolverOptions) -> Result<Solution, SolveError> {
        self.solve_relaxation_counted(opts).map(|(sol, _)| sol)
    }

    /// Like [`Model::solve_relaxation`], additionally reporting the
    /// number of simplex pivots the solve took (perf telemetry for the
    /// scaling benchmarks).
    ///
    /// # Errors
    ///
    /// See [`Model::solve`].
    pub fn solve_relaxation_counted(
        &self,
        opts: &SolverOptions,
    ) -> Result<(Solution, usize), SolveError> {
        // Both kernels run off the same resolved options — the one
        // normalization point for every unsupported-knob combination.
        let (opts, _notes) = opts.resolve();
        let (values, pivots) = match opts.kernel {
            Kernel::Revised => {
                let bf = crate::standard::BoxedForm::build(self);
                let (raw, pivots) = crate::revised::solve(&bf, &opts)?;
                (bf.sf.recover(&raw), pivots)
            }
            Kernel::DenseTableau => {
                let sf = StandardForm::build(self);
                let (raw, pivots) = simplex::solve(&sf, &opts)?;
                (sf.recover(&raw), pivots)
            }
        };
        let objective = self.objective.eval(&values);
        Ok((
            Solution {
                values,
                objective,
                status: Status::Optimal,
            },
            pivots,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_constant_is_reported() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 1.0, 10.0);
        m.set_objective(LinExpr::var(x) + 5.0);
        let sol = m.solve().unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-7);
    }

    #[test]
    fn constraint_constant_folds_into_rhs() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::var(x));
        // x + 3 <= 5  →  x <= 2
        m.add_constraint(LinExpr::var(x) + 3.0, cmp::LE, 5.0);
        let sol = m.solve().unwrap();
        assert!((sol[x] - 2.0).abs() < 1e-7);
    }

    /// `SolverOptions::resolve` is the one normalization point: the
    /// dense-oracle request pins its whole configuration loudly (one
    /// note per overridden knob), `workers: 0` becomes 1, and a
    /// production-default request passes through untouched.
    #[test]
    fn resolve_normalizes_unsupported_combinations_loudly() {
        let (eff, notes) = SolverOptions::default().resolve();
        assert!(notes.is_empty(), "defaults must pass through: {notes:?}");
        assert_eq!(eff.workers, 1);
        assert_eq!(eff.pricing, Pricing::SteepestEdge);

        let (eff, notes) = SolverOptions {
            workers: 0,
            ..Default::default()
        }
        .resolve();
        assert_eq!(eff.workers, 1);
        assert_eq!(notes.len(), 1, "{notes:?}");

        let (eff, notes) = SolverOptions {
            kernel: Kernel::DenseTableau,
            workers: 4,
            ..Default::default()
        }
        .resolve();
        assert_eq!(eff.kernel, Kernel::DenseTableau);
        assert_eq!(eff.workers, 1);
        assert_eq!(eff.pricing, Pricing::Dantzig);
        assert_eq!(eff.update, UpdateKind::ProductForm);
        assert_eq!(eff.factor, FactorKind::Dense);
        assert!(!eff.warm_start);
        // workers, pricing, update, factor, warm_start each noted.
        assert_eq!(notes.len(), 5, "{notes:?}");
        assert!(notes.iter().any(|n| n.contains("pricing")), "{notes:?}");

        // Dense factor + Forrest–Tomlin under the revised kernel is a
        // documented internal degradation, not an option conflict.
        let (eff, notes) = SolverOptions {
            factor: FactorKind::Dense,
            update: UpdateKind::ForrestTomlin,
            ..Default::default()
        }
        .resolve();
        assert_eq!(eff.update, UpdateKind::ForrestTomlin);
        assert!(notes.is_empty(), "{notes:?}");
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds upper")]
    fn rejects_crossed_bounds() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("x", 2.0, 1.0, false);
    }

    #[test]
    fn max_violation_detects_bound_and_row_violations() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", 0.0, 4.0);
        m.add_constraint(2.0 * x, cmp::LE, 3.0);
        // x = 2.5 violates integrality (0.5) and the row (2.0).
        let viol = m.max_violation(&[2.5], 1e-6);
        assert!(viol > 1.9, "violation was {viol}");
    }

    #[test]
    fn fix_var_pins_value() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 10.0);
        m.set_objective(LinExpr::var(x));
        m.fix_var(x, 3.5);
        let sol = m.solve().unwrap();
        assert!((sol[x] - 3.5).abs() < 1e-7);
    }
}
