//! Linear expressions over model variables.
//!
//! [`LinExpr`] is a small sum-of-terms representation with operator
//! overloads so that constraint code at the call site reads like the maths
//! in the paper, e.g. `tin(e) - tout(ep) >= beta` is written
//! `m.add_constraint(tin - tout, cmp::GE, beta)`.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Identifier of a variable inside one [`Model`](crate::Model).
///
/// `VarId`s are only meaningful for the model that created them; using an id
/// from another model is caught by the debug assertions in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in the owning model (construction order).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A linear expression `Σ coeff_i · var_i + constant`.
///
/// Terms are kept unsorted and possibly duplicated while building; they are
/// merged by [`LinExpr::compact`] (called by the model when the expression
/// is committed to a constraint or objective).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    pub(crate) terms: Vec<(VarId, f64)>,
    pub(crate) constant: f64,
}

impl LinExpr {
    /// The empty expression (`0`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Expression consisting of a bare constant.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// Expression consisting of a single variable with coefficient 1.
    pub fn var(v: VarId) -> Self {
        LinExpr {
            terms: vec![(v, 1.0)],
            constant: 0.0,
        }
    }

    /// Expression `coeff · v`.
    pub fn term(v: VarId, coeff: f64) -> Self {
        LinExpr {
            terms: vec![(v, coeff)],
            constant: 0.0,
        }
    }

    /// Adds `coeff · v` in place and returns `self` for chaining.
    pub fn add_term(&mut self, v: VarId, coeff: f64) -> &mut Self {
        self.terms.push((v, coeff));
        self
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// The additive constant of the expression.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// Iterates over `(variable, coefficient)` terms (possibly un-merged).
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().copied()
    }

    /// `true` if the expression has no variable terms (after compaction).
    pub fn is_constant(&self) -> bool {
        self.terms.iter().all(|&(_, c)| c == 0.0)
    }

    /// Merges duplicate variables and drops zero coefficients.
    pub fn compact(&mut self) {
        if self.terms.len() <= 1 {
            self.terms.retain(|&(_, c)| c != 0.0);
            return;
        }
        self.terms.sort_by_key(|&(v, _)| v);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(self.terms.len());
        for &(v, c) in &self.terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| c != 0.0);
        self.terms = out;
    }

    /// Evaluates the expression under an assignment (indexed by
    /// [`VarId::index`]).
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable index is out of range for `values`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(v, c)| c * values[v.0])
                .sum::<f64>()
    }

    /// Largest absolute coefficient (used for row scaling); 0 if constant.
    pub fn max_abs_coeff(&self) -> f64 {
        self.terms.iter().map(|&(_, c)| c.abs()).fold(0.0, f64::max)
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::var(v)
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant(c)
    }
}

impl FromIterator<(VarId, f64)> for LinExpr {
    fn from_iter<I: IntoIterator<Item = (VarId, f64)>>(iter: I) -> Self {
        LinExpr {
            terms: iter.into_iter().collect(),
            constant: 0.0,
        }
    }
}

// --- operator overloads -------------------------------------------------

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self.terms
            .extend(rhs.terms.into_iter().map(|(v, c)| (v, -c)));
        self.constant -= rhs.constant;
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        self.terms
            .extend(rhs.terms.into_iter().map(|(v, c)| (v, -c)));
        self.constant -= rhs.constant;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for t in &mut self.terms {
            t.1 = -t.1;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        for t in &mut self.terms {
            t.1 *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: LinExpr) -> LinExpr {
        rhs * self
    }
}

// Mixed VarId/LinExpr/f64 conveniences.

impl Add<VarId> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: VarId) -> LinExpr {
        self.terms.push((rhs, 1.0));
        self
    }
}

impl Sub<VarId> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: VarId) -> LinExpr {
        self.terms.push((rhs, -1.0));
        self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: f64) -> LinExpr {
        self.constant -= rhs;
        self
    }
}

impl Add<LinExpr> for VarId {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        LinExpr::var(self) + rhs
    }
}

impl Sub<LinExpr> for VarId {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        LinExpr::var(self) - rhs
    }
}

impl Add for VarId {
    type Output = LinExpr;
    fn add(self, rhs: VarId) -> LinExpr {
        LinExpr::var(self) + rhs
    }
}

impl Sub for VarId {
    type Output = LinExpr;
    fn sub(self, rhs: VarId) -> LinExpr {
        LinExpr::var(self) - rhs
    }
}

impl Mul<f64> for VarId {
    type Output = LinExpr;
    fn mul(self, rhs: f64) -> LinExpr {
        LinExpr::term(self, rhs)
    }
}

impl Add<f64> for VarId {
    type Output = LinExpr;
    fn add(self, rhs: f64) -> LinExpr {
        LinExpr::var(self) + rhs
    }
}

impl Sub<f64> for VarId {
    type Output = LinExpr;
    fn sub(self, rhs: f64) -> LinExpr {
        LinExpr::var(self) - rhs
    }
}

impl Mul<VarId> for f64 {
    type Output = LinExpr;
    fn mul(self, rhs: VarId) -> LinExpr {
        LinExpr::term(rhs, self)
    }
}

impl Neg for VarId {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        LinExpr::term(self, -1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId(i)
    }

    #[test]
    fn builds_and_compacts() {
        let mut e = 2.0 * v(0) + v(1) - v(0) + 3.0;
        e.compact();
        assert_eq!(e.terms, vec![(v(0), 1.0), (v(1), 1.0)]);
        assert_eq!(e.constant, 3.0);
    }

    #[test]
    fn compact_drops_zero_terms() {
        let mut e = v(2) - v(2) + 1.0 * v(1);
        e.compact();
        assert_eq!(e.terms, vec![(v(1), 1.0)]);
        assert!(!e.is_constant());
        let mut z = v(0) - v(0);
        z.compact();
        assert!(z.is_constant());
    }

    #[test]
    fn eval_matches_hand_computation() {
        let e = 2.0 * v(0) - 0.5 * v(1) + 7.0;
        assert_eq!(e.eval(&[3.0, 4.0]), 6.0 - 2.0 + 7.0);
    }

    #[test]
    fn neg_negates_everything() {
        let e = -(2.0 * v(0) + 1.0);
        assert_eq!(e.eval(&[1.0]), -3.0);
    }

    #[test]
    fn from_iterator_collects_terms() {
        let e: LinExpr = vec![(v(0), 1.0), (v(3), 2.0)].into_iter().collect();
        assert_eq!(e.eval(&[1.0, 0.0, 0.0, 2.0]), 5.0);
    }

    #[test]
    fn scalar_multiplication_scales_constant() {
        let e = (v(0) + 2.0) * 3.0;
        assert_eq!(e.constant_part(), 6.0);
        assert_eq!(e.eval(&[1.0]), 9.0);
    }
}
