//! Solve results and errors.

use std::error::Error;
use std::fmt;
use std::ops::Index;

use crate::expr::VarId;

/// Quality of a returned solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Proven optimal (within tolerances).
    Optimal,
    /// Feasible incumbent returned because a node/time limit was hit.
    Feasible,
}

/// A (mixed-integer) feasible assignment with its objective value.
#[derive(Debug, Clone)]
pub struct Solution {
    pub(crate) values: Vec<f64>,
    /// Objective value in the *original* sense of the model.
    pub objective: f64,
    /// Whether optimality was proven.
    pub status: Status,
}

impl Solution {
    /// Value assigned to a variable.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// Value of an integer variable rounded to the nearest integer.
    pub fn int_value(&self, v: VarId) -> i64 {
        self.values[v.index()].round() as i64
    }

    /// All variable values, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Index<VarId> for Solution {
    type Output = f64;
    fn index(&self, v: VarId) -> &f64 {
        &self.values[v.index()]
    }
}

/// Errors produced by the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// No assignment satisfies the constraints.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// The pivot or node budget was exhausted before any feasible point
    /// was found.
    IterationLimit,
    /// Numerical trouble made the result untrustworthy.
    Numerical(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => f.write_str("model is infeasible"),
            SolveError::Unbounded => f.write_str("model is unbounded"),
            SolveError::IterationLimit => {
                f.write_str("iteration limit reached before a feasible point was found")
            }
            SolveError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_lowercase_and_concise() {
        assert_eq!(SolveError::Infeasible.to_string(), "model is infeasible");
        assert!(SolveError::Numerical("pivot".into())
            .to_string()
            .contains("pivot"));
    }

    #[test]
    fn solution_indexing() {
        let s = Solution {
            values: vec![1.5, 2.0],
            objective: 0.0,
            status: Status::Optimal,
        };
        assert_eq!(s[VarId(0)], 1.5);
        assert_eq!(s.int_value(VarId(1)), 2);
    }
}
