//! Failure taxonomy, recovery ledger and deterministic fault injection.
//!
//! # Failure taxonomy and recovery ladder
//!
//! Every numerical failure the MILP engine can hit is classified as a
//! [`NumericalEvent`] and answered by one **escalation ladder**, in
//! order of increasing cost:
//!
//! 1. **Retry the Forrest–Tomlin update** from the entering column
//!    (recomputing the spike) when the spiked update is refused — heals
//!    a corrupted spike without touching the factors. At the same cost
//!    tier, a **pricing-weight reset** answers drifted steepest-edge
//!    reference weights (see the crate-level "Pricing" docs): the dual
//!    reoptimizer cross-checks the selected row's maintained weight
//!    against the exact `‖B⁻ᵀe_r‖²` it computes anyway, and when they
//!    disagree beyond a fixed factor the whole reference framework is
//!    reset to the unit framework — pricing quality degrades for a few
//!    pivots, correctness never does.
//! 2. **Forced refactorization** of the current basis — the classic
//!    answer to a refused update or to residual drift.
//! 3. **Product-form switch** for the node: re-solve under
//!    [`UpdateKind::ProductForm`](crate::UpdateKind), the conservative
//!    update scheme.
//! 4. **Cold basis rebuild**: a fresh kernel over the same form (column
//!    boxes carried over), discarding every piece of possibly corrupted
//!    state.
//! 5. **Bland-only pricing** for the node: escapes cycling that the
//!    automatic Dantzig→Bland switch did not catch.
//! 6. **Dense-oracle kernel** for the node: the dense-LU snapshot
//!    ([`FactorKind::Dense`](crate::FactorKind)) with product-form
//!    updates — slowest, most robust.
//!
//! Rungs 1–2 act per pivot inside the revised kernel; rungs 3–6 act per
//! branch & bound node (see `WarmBackend::solve_node`). Which events
//! occurred and which rungs fired is recorded in [`RecoveryStats`],
//! surfaced as [`BranchBoundStats::recovery`](crate::BranchBoundStats).
//!
//! A **residual health monitor** backs the ladder: every
//! [`RESIDUAL_CHECK_EVERY`] pivots, and before any node bound is
//! trusted, the kernel checks `‖B·x_B − b_eff‖∞` relative to
//! `feas_tol` and the per-row rhs scale; drift triggers a
//! refactorization and, if the state cannot be certified, the next
//! ladder rung. A corrupted factorization can therefore never produce a
//! wrong prune.
//!
//! # Fault injection
//!
//! [`FaultPlan`] (wired through `SolverOptions::faults`, default off and
//! compiled in always — no `cfg` forest) drives a deterministic
//! [`FaultInjector`]: per injection site, the first `skip` opportunities
//! pass clean, then the next `count` fire back-to-back. Consecutive
//! firing is what lets one seed walk the *entire* node ladder: a faked
//! iteration limit on a cold solve fails the product-form, rebuild and
//! Bland rungs too, leaving the dense oracle to complete the node. All
//! randomness comes from an inline SplitMix64 stream seeded by
//! [`FaultPlan::seed`], so every run of a plan is bit-reproducible.

/// Pivot interval of the in-loop residual health monitor.
pub(crate) const RESIDUAL_CHECK_EVERY: usize = 128;

/// Structured classification of a numerical failure (or a budget hit)
/// observed by the solver. Recording is one-way bookkeeping: reacting is
/// the recovery ladder's job (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericalEvent {
    /// A Forrest–Tomlin update was refused as unstable (or its spike was
    /// corrupted).
    UnstableUpdate,
    /// Refactorization found (or was injected to find) a singular basis.
    SingularRefactor,
    /// A long degenerate run tripped the Dantzig→Bland anti-cycling
    /// switch.
    CyclingSuspected,
    /// The residual health monitor found `‖B·x_B − b_eff‖∞` out of
    /// tolerance.
    ResidualDrift,
    /// The pivot budget ran out (genuine or injected).
    PivotBudget,
    /// The wall-clock budget ran out (genuine or injected).
    TimeBudget,
    /// A maintained steepest-edge reference weight disagreed with the
    /// exactly recomputed `‖B⁻ᵀe_r‖²` beyond the drift factor.
    WeightDrift,
}

/// Counters of observed [`NumericalEvent`]s and of recovery-ladder rungs
/// fired, accumulated per kernel and surfaced through
/// [`BranchBoundStats::recovery`](crate::BranchBoundStats).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// [`NumericalEvent::UnstableUpdate`] observations.
    pub unstable_updates: usize,
    /// [`NumericalEvent::SingularRefactor`] observations.
    pub singular_refactors: usize,
    /// [`NumericalEvent::CyclingSuspected`] observations.
    pub cycling_suspected: usize,
    /// [`NumericalEvent::ResidualDrift`] observations.
    pub residual_drift: usize,
    /// [`NumericalEvent::PivotBudget`] observations.
    pub pivot_budget: usize,
    /// [`NumericalEvent::TimeBudget`] observations.
    pub time_budget: usize,
    /// [`NumericalEvent::WeightDrift`] observations.
    pub weight_drift: usize,
    /// Rung 1: refused spiked FT updates healed by recomputing the spike
    /// from the entering column.
    pub ft_retries: usize,
    /// Rung 1 (pricing tier): steepest-edge reference frameworks reset
    /// to units after a drifted weight (routine Devex reference resets
    /// are *not* recovery events and are counted only in
    /// [`BranchBoundStats::weight_resets`](crate::BranchBoundStats)).
    pub weight_resets: usize,
    /// Rung 2: refactorizations forced by a refused update or by
    /// residual drift (scheduled policy refactors are not counted here).
    pub forced_refactors: usize,
    /// Rung 3: nodes re-solved under the product-form update scheme.
    pub product_form_switches: usize,
    /// Rung 4: nodes re-solved on a freshly rebuilt kernel.
    pub cold_rebuilds: usize,
    /// Rung 5: nodes re-solved under Bland-only pricing.
    pub bland_restarts: usize,
    /// Rung 6: nodes re-solved by the dense-oracle factorization.
    pub dense_oracle_solves: usize,
    /// Faults actually fired by the [`FaultInjector`] (0 on clean runs).
    pub faults_injected: usize,
}

impl RecoveryStats {
    /// Records one observed event.
    pub(crate) fn record(&mut self, ev: NumericalEvent) {
        match ev {
            NumericalEvent::UnstableUpdate => self.unstable_updates += 1,
            NumericalEvent::SingularRefactor => self.singular_refactors += 1,
            NumericalEvent::CyclingSuspected => self.cycling_suspected += 1,
            NumericalEvent::ResidualDrift => self.residual_drift += 1,
            NumericalEvent::PivotBudget => self.pivot_budget += 1,
            NumericalEvent::TimeBudget => self.time_budget += 1,
            NumericalEvent::WeightDrift => self.weight_drift += 1,
        }
    }

    /// Sum of all recovery-rung counters — `> 0` proves the ladder
    /// actually fired.
    pub fn rungs_fired(&self) -> usize {
        self.ft_retries
            + self.weight_resets
            + self.forced_refactors
            + self.product_form_switches
            + self.cold_rebuilds
            + self.bland_restarts
            + self.dense_oracle_solves
    }

    /// Sum of all event counters.
    pub fn events_observed(&self) -> usize {
        self.unstable_updates
            + self.singular_refactors
            + self.cycling_suspected
            + self.residual_drift
            + self.pivot_budget
            + self.time_budget
            + self.weight_drift
    }

    /// Accumulates `other` into `self` (used by test harnesses that
    /// union coverage across a suite of solves).
    pub fn absorb(&mut self, other: &RecoveryStats) {
        self.unstable_updates += other.unstable_updates;
        self.singular_refactors += other.singular_refactors;
        self.cycling_suspected += other.cycling_suspected;
        self.residual_drift += other.residual_drift;
        self.pivot_budget += other.pivot_budget;
        self.time_budget += other.time_budget;
        self.weight_drift += other.weight_drift;
        self.ft_retries += other.ft_retries;
        self.weight_resets += other.weight_resets;
        self.forced_refactors += other.forced_refactors;
        self.product_form_switches += other.product_form_switches;
        self.cold_rebuilds += other.cold_rebuilds;
        self.bland_restarts += other.bland_restarts;
        self.dense_oracle_solves += other.dense_oracle_solves;
        self.faults_injected += other.faults_injected;
    }
}

/// The injection sites of the revised kernel and its factorization
/// layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultSite {
    /// Corrupt the Forrest–Tomlin spike before the update (the update is
    /// refused; rung 1 recomputes the spike and heals).
    PerturbFtSpike,
    /// Force the factorization to refuse the next updates outright, as a
    /// near-singular pivot would (rung 2 refactorizes).
    RefuseFtUpdate,
    /// Make a refactorization report a singular basis.
    SingularRefactor,
    /// Corrupt the basic values accepted by the final ratio test — the
    /// residual monitor must catch this before the bound is trusted.
    PoisonRatioTest,
    /// Fake an exhausted pivot budget at a cold-solve entry.
    FakeIterationLimit,
    /// Pretend a degenerate run tripped the anti-cycling switch.
    InjectCycling,
    /// Fake an expired wall clock at a pivot-loop checkpoint.
    FakeTimeLimit,
}

const NUM_SITES: usize = 7;

/// A seeded, deterministic plan of faults to inject, carried by
/// `SolverOptions::faults` (default `None` — no injection, zero
/// overhead beyond one branch per site). Each field is the number of
/// times that site fires; *when* it fires is derived from [`seed`]
/// (see [`FaultInjector`]).
///
/// [`seed`]: FaultPlan::seed
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the SplitMix64 stream that spaces the injections.
    pub seed: u64,
    /// Fire count of [`FaultSite::PerturbFtSpike`].
    pub perturb_ft_spike: u32,
    /// Fire count of [`FaultSite::RefuseFtUpdate`].
    pub refuse_ft_update: u32,
    /// Fire count of [`FaultSite::SingularRefactor`].
    pub singular_refactor: u32,
    /// Fire count of [`FaultSite::PoisonRatioTest`].
    pub poison_ratio_test: u32,
    /// Fire count of [`FaultSite::FakeIterationLimit`].
    pub fake_iteration_limit: u32,
    /// Fire count of [`FaultSite::InjectCycling`].
    pub inject_cycling: u32,
    /// Fire count of [`FaultSite::FakeTimeLimit`].
    pub fake_time_limit: u32,
}

impl FaultPlan {
    /// The reference plan of the fault-injection gates: every site
    /// armed, with fire counts chosen so a solve survives them all.
    /// `fake_iteration_limit` is 4 on purpose: fired back-to-back from
    /// the first cold solve, it fails the cold attempt **and** the
    /// product-form, rebuild and Bland rungs, so the dense-oracle rung
    /// must complete the node — one seed exercises the whole ladder
    /// while never exhausting it (the dense attempt always runs clean).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            perturb_ft_spike: 2,
            refuse_ft_update: 2,
            singular_refactor: 1,
            poison_ratio_test: 1,
            fake_iteration_limit: 4,
            inject_cycling: 1,
            fake_time_limit: 1,
        }
    }
}

/// SplitMix64 — the classic 64-bit mixer; inlined because the vendored
/// `rand` is a stub and determinism is the whole point here.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Per-site runtime state: pass `skip` opportunities clean, then fire
/// `remaining` times back-to-back, then stay dormant.
#[derive(Debug, Clone, Copy)]
struct SiteState {
    skip: u32,
    remaining: u32,
}

/// Runtime driver of a [`FaultPlan`]; owned by the revised kernel and
/// consulted (one cheap branch) at each injection site.
#[derive(Debug, Clone)]
pub(crate) struct FaultInjector {
    sites: [SiteState; NUM_SITES],
}

impl FaultInjector {
    /// Builds the injector: fire counts from the plan, skips from the
    /// seed. Two sites keep a zero skip by construction:
    /// `FakeIterationLimit`, so its consecutive burst starts at the
    /// *first* cold solve (where the node ladder is guaranteed to wrap
    /// it), and `FakeTimeLimit`, whose opportunities (pivot-loop
    /// checkpoints) are plentiful on any instance.
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        let mut rng = SplitMix64(plan.seed);
        let skip_small = |rng: &mut SplitMix64| (rng.next() % 2) as u32;
        let sites = [
            // PerturbFtSpike: FT updates are a constant stream; a larger
            // skip moves the corruption past the root solve.
            SiteState {
                skip: 4 + (rng.next() % 4) as u32,
                remaining: plan.perturb_ft_spike,
            },
            // RefuseFtUpdate: offset further so it hits a different
            // pivot than the spike corruption.
            SiteState {
                skip: 9 + skip_small(&mut rng),
                remaining: plan.refuse_ft_update,
            },
            // SingularRefactor: past the refactors the node ladder
            // itself performs, so the dense rung is not sabotaged.
            SiteState {
                skip: 8 + skip_small(&mut rng),
                remaining: plan.singular_refactor,
            },
            // PoisonRatioTest: a later phase-2 optimum (a warm node).
            SiteState {
                skip: 3 + skip_small(&mut rng),
                remaining: plan.poison_ratio_test,
            },
            SiteState {
                skip: 0,
                remaining: plan.fake_iteration_limit,
            },
            // InjectCycling: a pivot run after the root ladder settles.
            SiteState {
                skip: 4 + skip_small(&mut rng),
                remaining: plan.inject_cycling,
            },
            SiteState {
                skip: 6,
                remaining: plan.fake_time_limit,
            },
        ];
        FaultInjector { sites }
    }

    /// One opportunity at `site`: `true` when the fault fires now.
    pub fn fire(&mut self, site: FaultSite) -> bool {
        let s = &mut self.sites[site as usize];
        if s.remaining == 0 {
            return false;
        }
        if s.skip > 0 {
            s.skip -= 1;
            return false;
        }
        s.remaining -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_deterministic_per_seed() {
        let plan = FaultPlan::seeded(0xDEADBEEF);
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        for _ in 0..64 {
            for site in [
                FaultSite::PerturbFtSpike,
                FaultSite::RefuseFtUpdate,
                FaultSite::SingularRefactor,
                FaultSite::PoisonRatioTest,
                FaultSite::FakeIterationLimit,
                FaultSite::InjectCycling,
                FaultSite::FakeTimeLimit,
            ] {
                assert_eq!(a.fire(site), b.fire(site));
            }
        }
    }

    #[test]
    fn fake_iteration_limit_fires_consecutively_from_the_first_opportunity() {
        let plan = FaultPlan::seeded(7);
        let mut inj = FaultInjector::new(&plan);
        // Skip 0, count 4: the first four opportunities fire, then done.
        for i in 0..8 {
            assert_eq!(inj.fire(FaultSite::FakeIterationLimit), i < 4, "at {i}");
        }
    }

    #[test]
    fn sites_exhaust_after_their_fire_count() {
        let plan = FaultPlan::seeded(42);
        let mut inj = FaultInjector::new(&plan);
        let mut fired = 0u32;
        for _ in 0..1000 {
            if inj.fire(FaultSite::PerturbFtSpike) {
                fired += 1;
            }
        }
        assert_eq!(fired, plan.perturb_ft_spike);
    }

    #[test]
    fn recovery_stats_record_and_absorb() {
        let mut a = RecoveryStats::default();
        a.record(NumericalEvent::UnstableUpdate);
        a.record(NumericalEvent::TimeBudget);
        a.ft_retries += 1;
        let mut b = RecoveryStats::default();
        b.record(NumericalEvent::ResidualDrift);
        b.dense_oracle_solves += 2;
        b.absorb(&a);
        assert_eq!(b.unstable_updates, 1);
        assert_eq!(b.time_budget, 1);
        assert_eq!(b.residual_drift, 1);
        assert_eq!(b.events_observed(), 3);
        assert_eq!(b.rungs_fired(), 3);
    }

    #[test]
    fn a_disarmed_plan_never_fires() {
        let plan = FaultPlan {
            seed: 1,
            perturb_ft_spike: 0,
            refuse_ft_update: 0,
            singular_refactor: 0,
            poison_ratio_test: 0,
            fake_iteration_limit: 0,
            inject_cycling: 0,
            fake_time_limit: 0,
        };
        let mut inj = FaultInjector::new(&plan);
        for _ in 0..100 {
            assert!(!inj.fire(FaultSite::FakeIterationLimit));
            assert!(!inj.fire(FaultSite::PerturbFtSpike));
        }
    }
}
