//! Branch & bound for mixed-integer models: one generic **search core**,
//! pluggable **node ordering**, two LP backends.
//!
//! # Architecture: `SearchCore` / `NodeOrder` / `LpBackend`
//!
//! A single [`SearchCore`] owns everything the search itself consists of:
//! the node/time budget, incumbent and gap bookkeeping, branching-variable
//! selection (highest priority class, most fractional within it), the
//! round-and-fix heuristic schedule, and the branch tree — an arena of
//! one-bound-tightening [`TreeNode`]s whose boxes are (de)applied by
//! walking the tree between consecutively expanded nodes (undo up to the
//! lowest common ancestor, re-apply down), so jumping anywhere in the
//! tree costs only the path difference. The core is parameterized twice:
//!
//! * **Node ordering** ([`NodeOrder`], selected by
//!   [`SolverOptions::node_order`]):
//!   [`NodeOrder::DfsNearerFirst`] is a LIFO stack exploring the nearer
//!   branching side first — bit-compatible with the historical recursive
//!   DFS (same node order, same kernel state at every solve, hence the
//!   same node/pivot counts; the `search_orders` regression pins this).
//!   [`NodeOrder::BestBound`] is a priority queue keyed on the **parent
//!   LP bound** (ties broken most-recently-pushed-first) interleaved
//!   with bounded depth-first **episodes**: each node popped from the
//!   queue is dived from (children bypass the queue, LIFO) until the
//!   dive dies or exceeds an episode cap scaled to the integer count,
//!   whereupon the leftovers are flushed back into the queue — dives
//!   find the integral leaves that weak LP bounds never would, while
//!   the queue keeps the *frontier* in proven-potential order. Queued
//!   entries whose bound cannot beat the incumbent are discarded
//!   unsolved, and because the queue is bound-sorted the first
//!   unprunable deficit proves optimality for the whole frontier. Every
//!   queued child carries an `Rc` of its parent's optimal basis, so
//!   best-first jumps still warm-start (**warm-basis handoff**) — the
//!   fix for DFS's plateau incumbents under small node caps (see
//!   ROADMAP / the 40-edge `MAX_THR` bench, where truncated DFS returns
//!   4.0 and best-bound finds 3.0).
//!
//! * **LP backend** ([`LpBackend`]): [`WarmBackend`] runs the revised
//!   kernel over a [`BoxedForm`] built once — branching rewrites a
//!   column's `[lo, hi]` box in place, and since rhs/bound changes leave
//!   reduced costs untouched, *any* optimal basis anywhere in the tree is
//!   dual feasible for every node: nodes are reoptimized by a bounded
//!   dual-simplex run from whatever basis the previous node left behind,
//!   falling back to the parent snapshot, then to a cold two-phase solve
//!   ([`SolverOptions::warm_start`]` = false` forces cold solves — the
//!   warm-start A/B baseline). [`LegacyBackend`] clones the model and
//!   rebuilds the standard form at every node — the dense-tableau oracle
//!   path, and the fallback for models whose integer variables cannot be
//!   boxed (mirrored or free integers). What used to be a separate
//!   `LegacySearch` with its own copy of the budget/gap/branching logic
//!   is now just this backend under the shared core.
//!
//! The round-and-fix heuristic (round all integer variables of a
//! relaxation, fix them, re-solve the continuous part) provides early
//! incumbents — this is what makes the near-integral retiming
//! relaxations solve in a handful of nodes. Node and wall-clock limits
//! return the best incumbent with [`Status::Feasible`] instead of
//! failing; [`Status::Optimal`] is reported only when the search
//! genuinely completed (or closed the [`SolverOptions::gap_tol`] gap).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use crate::expr::VarId;
use crate::model::{FactorKind, Kernel, Model, NodeOrder, Sense, SolverOptions, UpdateKind};
use crate::recover::RecoveryStats;
use crate::revised::{BasisState, Revised};
use crate::solution::{Solution, SolveError, Status};
use crate::standard::{BoxedForm, ColMap};

/// Search statistics of the last branch-and-bound run (diagnostics and
/// perf telemetry).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BranchBoundStats {
    /// LP relaxations solved (nodes explored).
    pub nodes: usize,
    /// Incumbents found.
    pub incumbents: usize,
    /// True when a limit (nodes or time) stopped the search.
    pub truncated: bool,
    /// Objective of the root LP relaxation.
    pub root_bound: f64,
    /// Total simplex pivots across every LP the search solved (node
    /// relaxations, warm reoptimizations, heuristic re-solves).
    pub simplex_iters: usize,
    /// Node LPs successfully reoptimized from the parent basis.
    pub warm_solves: usize,
    /// Node LPs solved two-phase from scratch (root, fallbacks, and all
    /// nodes when warm starts are disabled).
    pub cold_solves: usize,
    /// Basis refactorizations across the whole search (warm path only;
    /// the legacy per-node-rebuild path reports 0).
    pub refactors: usize,
    /// Successful Forrest–Tomlin factor updates (0 under
    /// [`crate::UpdateKind::ProductForm`]; warm path only).
    pub ft_updates: usize,
    /// Refactorizations forced by a refused (unstable) Forrest–Tomlin
    /// update rather than the scheduled length/fill policy (warm path
    /// only).
    pub forced_refactors: usize,
    /// Largest nonzero count the (updated) `U` factor reached — the fill
    /// price of absorbing pivots into the factors under Forrest–Tomlin;
    /// `m²` under [`crate::FactorKind::Dense`] (warm path only).
    pub peak_u_nnz: usize,
    /// Largest `nnz(L+U)` any basis snapshot reached — `m²` under
    /// [`crate::FactorKind::Dense`], the actual fill under
    /// [`crate::FactorKind::Sparse`] (warm path only).
    pub peak_lu_nnz: usize,
    /// Basis dimension (constraint rows) of the bounded-variable form
    /// (warm path only).
    pub basis_rows: usize,
    /// Node ordering the search ran with.
    pub order: NodeOrder,
    /// Peak number of open (queued but not yet expanded) nodes.
    pub queue_peak: usize,
    /// Node count at the moment the first incumbent was accepted (0 =
    /// seeded by the warm-start hint, before any node was solved).
    /// Meaningful only when `incumbents > 0`.
    pub first_incumbent_node: usize,
    /// `(node index, objective)` at every incumbent acceptance, in
    /// order — the improvement trajectory of the search.
    pub incumbent_trace: Vec<(usize, f64)>,
    /// LP relaxation objective of every solved node, in solve order
    /// (`NaN` for nodes whose LP failed or proved infeasible). Length
    /// equals `nodes`; best-bound entries discarded unsolved from the
    /// queue do not appear.
    pub node_bounds: Vec<f64>,
    /// Numerical-event and recovery-ladder counters (see
    /// [`crate::recover`]; warm path only — the legacy per-node-rebuild
    /// path reports the default).
    pub recovery: RecoveryStats,
}

// ---------------------------------------------------------------------------
// LP backends
// ---------------------------------------------------------------------------

/// What the search core needs from an LP layer: apply a variable box,
/// solve the node relaxation, snapshot warm-start state, and run the
/// round-and-fix / hint pinning protocols.
pub(crate) trait LpBackend {
    /// `true` when integral leaves are re-solved through
    /// [`LpBackend::round_and_fix`] to snap the stored point exactly
    /// (the legacy behaviour); the warm kernel accepts the relaxation
    /// point directly.
    const SNAP_LEAVES: bool;

    /// Whether the variable participates in pinning (branchable in the
    /// LP layer; variables fixed at the root are skipped by the warm
    /// backend).
    fn branchable(&self, vi: usize) -> bool;

    /// Pushes a model variable's current box into the LP.
    fn set_var_box(&mut self, vi: usize, lo: f64, hi: f64);

    /// Solves the current node LP and returns the relaxation optimum.
    fn solve_node(
        &mut self,
        opts: &SolverOptions,
        parent: Option<&BasisState>,
        stats: &mut BranchBoundStats,
    ) -> Result<Solution, SolveError>;

    /// Warm-start state children should resume from (`None` when the
    /// backend has none, or warm starts are disabled).
    fn snapshot(&self, opts: &SolverOptions) -> Option<BasisState>;

    /// Round-and-fix: pin `pins`, re-solve the continuous part, restore
    /// the boxes in `restore` (and any internal LP state), and return
    /// the polished candidate — `fallback` when the re-solve fails.
    fn round_and_fix(
        &mut self,
        opts: &SolverOptions,
        pins: &[(usize, f64)],
        restore: &[(usize, f64, f64)],
        fallback: &Solution,
        stats: &mut BranchBoundStats,
    ) -> Solution;

    /// Hint seeding: pin `pins`, solve from scratch, restore, and return
    /// the solution (`None` when the pinned LP fails).
    fn seed_hint(
        &mut self,
        opts: &SolverOptions,
        pins: &[(usize, f64)],
        restore: &[(usize, f64, f64)],
        stats: &mut BranchBoundStats,
    ) -> Option<Solution>;

    /// Final stats the backend owns (pivot totals, factorization
    /// telemetry).
    fn finish(&self, stats: &mut BranchBoundStats);
}

/// Revised-kernel backend over a [`BoxedForm`] built once; branching
/// mutates column boxes in place and nodes dual-reoptimize from the
/// previous basis. The form is behind an `Arc` — read-only after the
/// build — so the parallel search can hand one copy to every worker's
/// backend while each worker keeps exclusive ownership of its kernel.
pub(crate) struct WarmBackend<'a> {
    pub(crate) model: &'a Model,
    pub(crate) form: Arc<BoxedForm>,
    /// Per model variable: `(column, root lower bound)` of branchable
    /// integers; `None` for fixed or continuous variables.
    pub(crate) int_cols: Vec<Option<(usize, f64)>>,
    pub(crate) kernel: Revised,
}

impl WarmBackend<'_> {
    /// Dual-reoptimizes the kernel **in place** (no refactorization): any
    /// dual-feasible basis is a valid warm-start seed for any rhs, so the
    /// state the previous node left behind works directly. `Err` values
    /// are *soft* failures (fall back) except [`SolveError::Infeasible`],
    /// which is a genuine verdict.
    fn try_warm_in_place(&mut self, opts: &SolverOptions) -> Result<(), SolveError> {
        // Bounded reoptimization: a healthy warm start takes a handful of
        // pivots; if the dual run exceeds this budget a cold solve is
        // cheaper than fighting degeneracy.
        let (m, n) = self.kernel.dims();
        let mut dual_budget = (1_000 + m + n / 4).min(opts.max_pivots);
        self.kernel.dual_reopt(opts, &mut dual_budget)?;
        let mut budget = opts.max_pivots;
        self.kernel.primal_opt(opts, &mut budget)?;
        if self.kernel.has_active_artificial(1e-6) {
            return Err(SolveError::Numerical("artificial reactivated".into()));
        }
        Ok(())
    }

    /// Like [`WarmBackend::try_warm_in_place`] but re-installing an
    /// explicit (parent) basis first — the fallback when the in-place
    /// state is unusable.
    fn try_warm_install(
        &mut self,
        opts: &SolverOptions,
        state: &BasisState,
    ) -> Result<(), SolveError> {
        self.kernel.install_basis(state)?;
        self.try_warm_in_place(opts)
    }

    /// Reoptimizes after a bound change without node bookkeeping (used by
    /// the round-and-fix heuristic); cold fallback included.
    fn reopt_in_place(&mut self, opts: &SolverOptions) -> Result<(), SolveError> {
        let warm = if self.kernel.dual_ok() {
            self.try_warm_in_place(opts)
        } else {
            Err(SolveError::Numerical("kernel not dual feasible".into()))
        };
        match warm {
            Ok(()) => Ok(()),
            Err(SolveError::Infeasible) => Err(SolveError::Infeasible),
            Err(_) => {
                let mut budget = opts.max_pivots;
                self.kernel.solve_two_phase(opts, &mut budget)
            }
        }
    }

    /// The solution at the kernel's current optimum.
    fn node_solution(&self) -> Solution {
        let values = self.form.sf.recover(&self.kernel.values());
        let objective = self.model.objective.eval(&values);
        Solution {
            values,
            objective,
            status: Status::Optimal,
        }
    }

    /// The per-node recovery ladder, rungs 3–6 of [`crate::recover`]:
    /// product-form switch → cold rebuild → Bland-only pricing →
    /// dense-oracle kernel. Entered after a cold solve failed with a
    /// retryable error (budget/numerics) or produced a bound the
    /// residual trust gate refused. Every rung is counted before its
    /// attempt, re-solves from scratch on a fresh pivot budget, and must
    /// itself pass the trust gate; `Infeasible`/`Unbounded` from a rung
    /// is a genuine verdict. On success (or a verdict) the original
    /// configuration is restored — the next node then cold-starts
    /// through the ordinary warm-fallback path. Total failure returns
    /// the error that started the ladder.
    fn recover_node(
        &mut self,
        opts: &SolverOptions,
        first: SolveError,
    ) -> Result<Solution, SolveError> {
        for rung in 0..4u8 {
            // The ladder must not fight a spent wall clock: each failed
            // attempt would just re-pay the solve entry check.
            if self.kernel.out_of_time() {
                break;
            }
            match rung {
                0 => {
                    self.kernel.recovery.product_form_switches += 1;
                    self.kernel.set_update_kind(UpdateKind::ProductForm);
                }
                1 => {
                    self.kernel.recovery.cold_rebuilds += 1;
                    self.kernel = self.kernel.rebuilt(&self.form, opts);
                }
                2 => {
                    self.kernel.recovery.bland_restarts += 1;
                    self.kernel.set_force_bland(true);
                }
                _ => {
                    self.kernel.recovery.dense_oracle_solves += 1;
                    let dense = SolverOptions {
                        factor: FactorKind::Dense,
                        update: UpdateKind::ProductForm,
                        ..opts.clone()
                    };
                    self.kernel = self.kernel.rebuilt(&self.form, &dense);
                }
            }
            let mut budget = opts.max_pivots;
            match self.kernel.solve_two_phase(opts, &mut budget) {
                Ok(()) => {
                    if self.kernel.verify_residual(opts) {
                        // Extract before the restore discards the state.
                        let sol = self.node_solution();
                        self.restore_kernel(opts);
                        return Ok(sol);
                    }
                    // Untrustworthy bound: escalate to the next rung.
                }
                Err(e @ (SolveError::Infeasible | SolveError::Unbounded)) => {
                    self.restore_kernel(opts);
                    return Err(e);
                }
                Err(_) => {}
            }
        }
        // Exhausted (or out of time): leave a clean configuration behind
        // and report the failure that started the ladder.
        self.restore_kernel(opts);
        Err(first)
    }

    /// Restores the pre-ladder configuration: Bland forcing off, a fresh
    /// kernel under the original options. The fresh kernel has no basis
    /// yet — [`LpBackend::snapshot`] guards against handing that state
    /// to children, and the next node solve re-establishes one (warm
    /// from its parent snapshot, or cold).
    fn restore_kernel(&mut self, opts: &SolverOptions) {
        self.kernel.set_force_bland(false);
        self.kernel = self.kernel.rebuilt(&self.form, opts);
    }
}

impl LpBackend for WarmBackend<'_> {
    const SNAP_LEAVES: bool = false;

    fn branchable(&self, vi: usize) -> bool {
        self.int_cols[vi].is_some()
    }

    fn set_var_box(&mut self, vi: usize, lo: f64, hi: f64) {
        if let Some((col, lb0)) = self.int_cols[vi] {
            self.kernel.set_col_bounds(col, lo - lb0, hi - lb0);
        }
    }

    /// Solves the current node LP: in-place dual reoptimization when the
    /// kernel state allows it, else from the parent basis, else cold.
    fn solve_node(
        &mut self,
        opts: &SolverOptions,
        parent: Option<&BasisState>,
        stats: &mut BranchBoundStats,
    ) -> Result<Solution, SolveError> {
        if let Some(parent_state) = parent.filter(|_| opts.warm_start) {
            let outcome = if self.kernel.dual_ok() {
                self.try_warm_in_place(opts)
            } else {
                Err(SolveError::Numerical("kernel not dual feasible".into()))
            };
            let outcome = match outcome {
                // Soft failure: retry from the parent's optimal basis.
                Err(e) if e != SolveError::Infeasible => self.try_warm_install(opts, parent_state),
                other => other,
            };
            match outcome {
                Ok(()) => {
                    // Residual trust gate: a bound computed on drifting
                    // factors must not prune — fall through to the cold
                    // path instead (the gate already healed the factors).
                    if self.kernel.verify_residual(opts) {
                        stats.warm_solves += 1;
                        return Ok(self.node_solution());
                    }
                }
                Err(SolveError::Infeasible) => {
                    // A dual-simplex proof of infeasibility concluded
                    // the node — that is a successful warm solve.
                    stats.warm_solves += 1;
                    return Err(SolveError::Infeasible);
                }
                // Iteration limit, numerics, singular basis: retry cold.
                Err(_) => {}
            }
        }
        stats.cold_solves += 1;
        let mut budget = opts.max_pivots;
        match self.kernel.solve_two_phase(opts, &mut budget) {
            Ok(()) => {
                if self.kernel.verify_residual(opts) {
                    return Ok(self.node_solution());
                }
                self.recover_node(
                    opts,
                    SolveError::Numerical("residual drift at node bound".into()),
                )
            }
            // Genuine verdicts end the node; retryable failures (budget,
            // numerics) enter the recovery ladder.
            Err(e @ (SolveError::Infeasible | SolveError::Unbounded)) => Err(e),
            Err(first) => self.recover_node(opts, first),
        }
    }

    fn snapshot(&self, opts: &SolverOptions) -> Option<BasisState> {
        // Skipped entirely in the cold A/B configuration, which never
        // reads it; also skipped right after a ladder restore, whose
        // fresh kernel has no basis to hand to children yet.
        (opts.warm_start && self.kernel.has_basis()).then(|| self.kernel.basis_snapshot())
    }

    /// Pin every branchable integer's box to the rounded relaxation
    /// value, reoptimize the continuous part from the current basis, and
    /// return the result. The pre-heuristic basis is restored afterwards
    /// so the next node's in-place warm start resumes from the node
    /// optimum instead of re-navigating away from the heuristic's pinned
    /// vertex (a no-op when the polish took zero pivots).
    fn round_and_fix(
        &mut self,
        opts: &SolverOptions,
        pins: &[(usize, f64)],
        restore: &[(usize, f64, f64)],
        fallback: &Solution,
        _stats: &mut BranchBoundStats,
    ) -> Solution {
        // The basis restore below only matters when later solves warm
        // start in place; cold mode re-crashes every node anyway. A
        // kernel fresh off a ladder restore has no basis to save.
        let pre_basis =
            (opts.warm_start && self.kernel.has_basis()).then(|| self.kernel.basis_snapshot());
        for &(vi, val) in pins {
            self.set_var_box(vi, val, val);
        }
        let solved = self.reopt_in_place(opts);
        let candidate = if solved.is_ok() && self.kernel.verify_residual(opts) {
            self.node_solution()
        } else {
            // The polish re-solve failed (rare numerics) or its result
            // flunked the residual trust gate; fall back to the
            // relaxation point itself rather than dropping it.
            fallback.clone()
        };
        for &(vi, l, h) in restore {
            self.set_var_box(vi, l, h);
        }
        if let Some(pre_basis) = pre_basis {
            if self.kernel.install_basis(&pre_basis).is_ok() {
                // The restored basis is the node's phase-2 optimum, hence
                // dual feasible; a (normally zero-pivot) dual pass
                // re-certifies it so the next node can warm-start in place.
                let mut budget = opts.max_pivots;
                let _ = self.kernel.dual_reopt(opts, &mut budget);
            }
        }
        candidate
    }

    fn seed_hint(
        &mut self,
        opts: &SolverOptions,
        pins: &[(usize, f64)],
        restore: &[(usize, f64, f64)],
        _stats: &mut BranchBoundStats,
    ) -> Option<Solution> {
        for &(vi, val) in pins {
            self.set_var_box(vi, val, val);
        }
        let mut budget = opts.max_pivots;
        let sol = match self.kernel.solve_two_phase(opts, &mut budget) {
            // The hint becomes an incumbent, so it passes the same
            // residual trust gate as node bounds.
            Ok(()) if self.kernel.verify_residual(opts) => Some(self.node_solution()),
            _ => None,
        };
        for &(vi, l, h) in restore {
            self.set_var_box(vi, l, h);
        }
        sol
    }

    /// Folds this backend's kernel telemetry into `stats`
    /// **additively**: counters accumulate, peaks take the max, and the
    /// recovery ledger is absorbed rather than overwritten. The serial
    /// search calls this once on zeroed stats (where `+=` equals `=`);
    /// the parallel merge layer calls it once per worker into the same
    /// struct, so an assignment here would silently drop every worker's
    /// counters but the last — including recovery counters from
    /// fallback re-solves.
    fn finish(&self, stats: &mut BranchBoundStats) {
        stats.simplex_iters += self.kernel.iters;
        stats.refactors += self.kernel.factor_stats.refactors;
        stats.ft_updates += self.kernel.factor_stats.ft_updates;
        stats.forced_refactors += self.kernel.factor_stats.forced_refactors;
        stats.peak_lu_nnz = stats.peak_lu_nnz.max(self.kernel.factor_stats.peak_lu_nnz);
        stats.peak_u_nnz = stats.peak_u_nnz.max(self.kernel.factor_stats.peak_u_nnz);
        stats.basis_rows = self.kernel.dims().0;
        stats.recovery.absorb(self.kernel.recovery());
    }
}

/// Model-clone backend: rebuilds the standard form at every node. Used by
/// the dense-tableau oracle kernel and by models whose integer variables
/// cannot be boxed (lower bound −∞: mirrored or free integers).
struct LegacyBackend {
    model: Model,
    /// Integer variables, cached for the snap re-solve.
    int_vars: Vec<VarId>,
}

impl LpBackend for LegacyBackend {
    const SNAP_LEAVES: bool = true;

    fn branchable(&self, _vi: usize) -> bool {
        true
    }

    fn set_var_box(&mut self, vi: usize, lo: f64, hi: f64) {
        let v = &mut self.model.vars[vi];
        v.lower = lo;
        v.upper = hi;
    }

    fn solve_node(
        &mut self,
        opts: &SolverOptions,
        _parent: Option<&BasisState>,
        stats: &mut BranchBoundStats,
    ) -> Result<Solution, SolveError> {
        stats.cold_solves += 1;
        let (sol, pivots) = self.model.solve_relaxation_counted(opts)?;
        stats.simplex_iters += pivots;
        Ok(sol)
    }

    fn snapshot(&self, _opts: &SolverOptions) -> Option<BasisState> {
        None
    }

    /// Fixes **every** integer variable to its rounded value (clamped
    /// into the node box) on a model clone and re-solves, so the stored
    /// solution is exactly integral.
    fn round_and_fix(
        &mut self,
        opts: &SolverOptions,
        _pins: &[(usize, f64)],
        _restore: &[(usize, f64, f64)],
        fallback: &Solution,
        stats: &mut BranchBoundStats,
    ) -> Solution {
        let mut fixed = self.model.clone();
        for &v in &self.int_vars {
            let val = fallback.value(v).round();
            let var = fixed.var(v);
            let val = val.clamp(var.lower(), var.upper());
            fixed.fix_var(v, val);
        }
        match fixed.solve_relaxation_counted(opts) {
            Ok((clean, pivots)) => {
                stats.simplex_iters += pivots;
                clean
            }
            // Snap re-solve failed: keep the relaxation point itself so
            // an already-integral leaf is not discarded.
            Err(_) => fallback.clone(),
        }
    }

    fn seed_hint(
        &mut self,
        opts: &SolverOptions,
        pins: &[(usize, f64)],
        _restore: &[(usize, f64, f64)],
        stats: &mut BranchBoundStats,
    ) -> Option<Solution> {
        let mut fixed = self.model.clone();
        for &(vi, val) in pins {
            fixed.fix_var(VarId(vi), val);
        }
        let (sol, pivots) = fixed.solve_relaxation_counted(opts).ok()?;
        stats.simplex_iters += pivots;
        Some(sol)
    }

    fn finish(&self, _stats: &mut BranchBoundStats) {}
}

// ---------------------------------------------------------------------------
// Search core
// ---------------------------------------------------------------------------

/// One node of the branch tree: a single bound tightening of `vi` on top
/// of `parent`. Activating a node walks the tree from the previously
/// active one (undo to the lowest common ancestor, apply down), so the
/// stepwise box mutations — and hence the kernel state — are identical to
/// what the historical recursive DFS produced.
pub(crate) struct TreeNode {
    pub(crate) parent: usize,
    pub(crate) depth: usize,
    /// Model variable branched on (`usize::MAX` for the root).
    pub(crate) vi: usize,
    /// The tightened box of `vi` at this node.
    pub(crate) lo: f64,
    pub(crate) hi: f64,
    /// `vi`'s box at the parent (for the undo walk).
    pub(crate) parent_lo: f64,
    pub(crate) parent_hi: f64,
}

impl TreeNode {
    /// The root sentinel (no parent, no tightening).
    pub(crate) fn root() -> TreeNode {
        TreeNode {
            parent: usize::MAX,
            depth: 0,
            vi: usize::MAX,
            lo: 0.0,
            hi: 0.0,
            parent_lo: 0.0,
            parent_hi: 0.0,
        }
    }
}

/// The two children of branching `vi` at fractional value `val` inside
/// the box `[plo, phi]`, returned `[far, near]` (the nearer branching
/// side last, so LIFO consumers pop it first and equal-bound heap ties
/// resolve toward it). Children whose box would be empty are `None`.
/// Shared between the serial core's `expand` and the parallel workers so
/// both layers branch identically.
pub(crate) fn branch_children(
    parent: usize,
    depth: usize,
    vi: usize,
    val: f64,
    plo: f64,
    phi: f64,
) -> [Option<TreeNode>; 2] {
    let floor = val.floor();
    let ceil = val.ceil();
    let down_first = val - floor <= ceil - val;
    let down_child = (plo <= phi.min(floor)).then(|| TreeNode {
        parent,
        depth,
        vi,
        lo: plo,
        hi: phi.min(floor),
        parent_lo: plo,
        parent_hi: phi,
    });
    let up_child = (plo.max(ceil) <= phi).then(|| TreeNode {
        parent,
        depth,
        vi,
        lo: plo.max(ceil),
        hi: phi,
        parent_lo: plo,
        parent_hi: phi,
    });
    if down_first {
        [up_child, down_child]
    } else {
        [down_child, up_child]
    }
}

/// An open (queued) node: arena index, parent LP bound (signed, i.e.
/// minimization form), push sequence number, and the parent's basis for
/// warm-start handoff.
pub(crate) struct OpenNode {
    pub(crate) node: usize,
    pub(crate) key: f64,
    pub(crate) seq: usize,
    pub(crate) basis: Option<Arc<BasisState>>,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for OpenNode {}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenNode {
    /// "Greatest" (popped first by the max-heap) = smallest bound key;
    /// ties break toward the most recently pushed node, so equal-bound
    /// stretches still dive like DFS.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then(self.seq.cmp(&other.seq))
    }
}

/// The open-node container: LIFO stack for DFS, bound-keyed priority
/// queue for best-bound.
pub(crate) enum Frontier {
    Dfs(Vec<OpenNode>),
    Best(BinaryHeap<OpenNode>),
}

impl Frontier {
    pub(crate) fn new(order: NodeOrder) -> Frontier {
        match order {
            NodeOrder::DfsNearerFirst => Frontier::Dfs(Vec::new()),
            NodeOrder::BestBound => Frontier::Best(BinaryHeap::new()),
        }
    }
    pub(crate) fn push(&mut self, n: OpenNode) {
        match self {
            Frontier::Dfs(v) => v.push(n),
            Frontier::Best(h) => h.push(n),
        }
    }
    pub(crate) fn pop(&mut self) -> Option<OpenNode> {
        match self {
            Frontier::Dfs(v) => v.pop(),
            Frontier::Best(h) => h.pop(),
        }
    }
    pub(crate) fn len(&self) -> usize {
        match self {
            Frontier::Dfs(v) => v.len(),
            Frontier::Best(h) => h.len(),
        }
    }
}

/// The generic branch & bound driver; see the module docs.
struct SearchCore<'a, B: LpBackend> {
    backend: B,
    model: &'a Model,
    opts: &'a SolverOptions,
    sense_mul: f64,
    /// Wall-clock deadline, captured **once** at solve start
    /// ([`SolverOptions::time_limit`] past that instant) and shared with
    /// the backend's kernel — budget checks must measure one common
    /// clock, never restart it.
    deadline: Option<Instant>,
    best: Option<Solution>,
    stats: BranchBoundStats,
    int_vars: Vec<VarId>,
    /// Current branch bounds per model variable (model space), tracking
    /// the active tree node.
    lo: Vec<f64>,
    hi: Vec<f64>,
    arena: Vec<TreeNode>,
    /// Arena index of the node whose boxes are currently applied.
    cur: usize,
    frontier: Frontier,
    /// Best-bound dive stack: each node popped from the priority queue
    /// starts a bounded depth-first **episode** over its subtree
    /// (children go here, LIFO, bypassing the queue) — plunging is what
    /// finds integral leaves when the LP bound is weak, where pure
    /// best-first would wander the shallow frontier forever. When the
    /// episode exceeds [`SearchCore::episode_cap`] solved nodes, the
    /// remaining dive entries are flushed into the queue (each already
    /// carries its parent bound key and basis), and the globally best
    /// bound picks the next episode's root.
    dive: Vec<OpenNode>,
    /// Nodes solved in the current best-bound episode.
    episode: usize,
    /// Episode length cap: scales with the number of integer variables
    /// (an episode should be able to reach an integral leaf, which takes
    /// on the order of one branching level per fractional integer).
    episode_cap: usize,
    seq: usize,
}

impl<'a, B: LpBackend> SearchCore<'a, B> {
    fn new(
        model: &'a Model,
        opts: &'a SolverOptions,
        backend: B,
        deadline: Option<Instant>,
    ) -> Self {
        let int_vars: Vec<VarId> = model
            .vars()
            .filter(|(_, v)| v.is_integer())
            .map(|(id, _)| id)
            .collect();
        let int_count = int_vars.len();
        SearchCore {
            backend,
            model,
            opts,
            sense_mul: match model.sense {
                Sense::Minimize => 1.0,
                Sense::Maximize => -1.0,
            },
            deadline,
            best: None,
            stats: BranchBoundStats {
                order: opts.node_order,
                ..BranchBoundStats::default()
            },
            int_vars,
            lo: model.vars.iter().map(|v| v.lower).collect(),
            hi: model.vars.iter().map(|v| v.upper).collect(),
            arena: Vec::new(),
            cur: 0,
            frontier: Frontier::new(opts.node_order),
            dive: Vec::new(),
            episode: 0,
            episode_cap: 64.max(2 * int_count),
            seq: 0,
        }
    }

    fn out_of_budget(&self) -> bool {
        if self.stats.nodes >= self.opts.max_nodes {
            return true;
        }
        self.deadline.is_some_and(|dl| Instant::now() >= dl)
    }

    /// Signed objective for pruning comparisons (always "minimize").
    fn signed(&self, obj: f64) -> f64 {
        self.sense_mul * obj
    }

    /// Picks the branching variable: highest priority class first, most
    /// fractional within it; `None` when the point is integral.
    fn most_fractional(&self, sol: &Solution) -> Option<(VarId, f64)> {
        let mut best: Option<(VarId, f64)> = None;
        let mut best_key = (i32::MIN, self.opts.int_tol);
        for &v in &self.int_vars {
            let val = sol.value(v);
            let frac = (val - val.round()).abs();
            if frac <= self.opts.int_tol {
                continue;
            }
            let key = (self.model.var(v).priority(), frac);
            if key > best_key {
                best_key = key;
                best = Some((v, val));
            }
        }
        best
    }

    /// Relative gap of the incumbent against the root LP bound; once it
    /// is within `gap_tol` the search stops (the root bound is the
    /// weakest valid bound, so this is conservative).
    fn within_gap(&self) -> bool {
        let Some(best) = &self.best else { return false };
        if self.stats.nodes == 0 {
            return false;
        }
        let bound = self.signed(self.stats.root_bound);
        let inc = self.signed(best.objective);
        inc - bound <= self.opts.gap_tol * inc.abs().max(1.0)
    }

    /// Installs `candidate` as the incumbent when it is integral and
    /// improves on the current best.
    fn accept_incumbent(&mut self, candidate: Solution) {
        // Rounded values clamped into the current box can be fractional
        // when an integer variable carries fractional bounds — only
        // truly integral points may become incumbents.
        let integral = self.int_vars.iter().all(|&v| {
            let x = candidate.value(v);
            (x - x.round()).abs() <= self.opts.int_tol
        });
        let better = match &self.best {
            None => true,
            Some(b) => self.signed(candidate.objective) < self.signed(b.objective) - 1e-9,
        };
        if integral && better {
            if self.stats.incumbents == 0 {
                self.stats.first_incumbent_node = self.stats.nodes;
            }
            self.stats.incumbents += 1;
            self.stats
                .incumbent_trace
                .push((self.stats.nodes, candidate.objective));
            self.best = Some(candidate);
        }
    }

    /// Round-and-fix heuristic: pin every branchable integer's box to
    /// the rounded relaxation value, let the backend re-solve the
    /// continuous part, and offer the result as an incumbent.
    fn offer_incumbent(&mut self, sol: &Solution) {
        let mut pins: Vec<(usize, f64)> = Vec::with_capacity(self.int_vars.len());
        let mut restore: Vec<(usize, f64, f64)> = Vec::with_capacity(self.int_vars.len());
        for k in 0..self.int_vars.len() {
            let v = self.int_vars[k];
            let vi = v.index();
            if !self.backend.branchable(vi) {
                continue; // fixed at the root; already integral
            }
            let val = sol.value(v).round().clamp(self.lo[vi], self.hi[vi]);
            pins.push((vi, val));
            restore.push((vi, self.lo[vi], self.hi[vi]));
        }
        let candidate =
            self.backend
                .round_and_fix(self.opts, &pins, &restore, sol, &mut self.stats);
        self.accept_incumbent(candidate);
    }

    /// Warm-start hint: pin the hinted integers, solve the continuous
    /// part, and install the result as the first incumbent if integral.
    fn seed_hint(&mut self, hint: &[(VarId, f64)]) {
        if hint.is_empty() {
            return;
        }
        let mut pins: Vec<(usize, f64)> = Vec::with_capacity(hint.len());
        let mut restore: Vec<(usize, f64, f64)> = Vec::with_capacity(hint.len());
        for &(v, val) in hint {
            let vi = v.index();
            if !self.model.var(v).is_integer() || !self.backend.branchable(vi) {
                continue;
            }
            let val = val.round().clamp(self.lo[vi], self.hi[vi]);
            pins.push((vi, val));
            restore.push((vi, self.lo[vi], self.hi[vi]));
        }
        if let Some(sol) = self
            .backend
            .seed_hint(self.opts, &pins, &restore, &mut self.stats)
        {
            // Accepted only if truly integral on all integer vars
            // (hinted or not); recorded at node 0, before any search.
            self.accept_incumbent(sol);
        }
    }

    /// Undoes one node's tightening (restores the parent box of its
    /// branch variable).
    fn undo(&mut self, n: usize) {
        let (vi, plo, phi) = {
            let nd = &self.arena[n];
            (nd.vi, nd.parent_lo, nd.parent_hi)
        };
        self.lo[vi] = plo;
        self.hi[vi] = phi;
        self.backend.set_var_box(vi, plo, phi);
    }

    /// Applies one node's tightening.
    fn apply(&mut self, n: usize) {
        let (vi, lo, hi) = {
            let nd = &self.arena[n];
            (nd.vi, nd.lo, nd.hi)
        };
        self.lo[vi] = lo;
        self.hi[vi] = hi;
        self.backend.set_var_box(vi, lo, hi);
    }

    /// Switches the applied boxes from the currently active node to `t`
    /// by walking the tree: undo up to the lowest common ancestor, apply
    /// down to `t`. For DFS this performs exactly the unwind/descend
    /// sequence of the historical recursion; for best-bound it costs the
    /// path difference of the jump.
    fn activate(&mut self, t: usize) {
        let mut a = self.cur;
        let mut b = t;
        let mut down: Vec<usize> = Vec::new();
        while self.arena[a].depth > self.arena[b].depth {
            self.undo(a);
            a = self.arena[a].parent;
        }
        while self.arena[b].depth > self.arena[a].depth {
            down.push(b);
            b = self.arena[b].parent;
        }
        while a != b {
            self.undo(a);
            a = self.arena[a].parent;
            down.push(b);
            b = self.arena[b].parent;
        }
        for &n in down.iter().rev() {
            self.apply(n);
        }
        self.cur = t;
    }

    /// Queues the two children of an expanded node (far branching side
    /// first, so the LIFO stack pops — and equal-bound heap ties
    /// resolve — the nearer side first). Under best-bound the nearer
    /// existing child goes to the plunge slot instead of the queue.
    /// Children whose box would be empty are never queued.
    fn expand(
        &mut self,
        t: usize,
        var: VarId,
        val: f64,
        bound: f64,
        basis: Option<Arc<BasisState>>,
    ) {
        let vi = var.index();
        let depth = self.arena[t].depth + 1;
        let key = self.signed(bound);
        let children = branch_children(t, depth, vi, val, self.lo[vi], self.hi[vi]);
        let mut entries: Vec<OpenNode> = Vec::with_capacity(2);
        for child in children.into_iter().flatten() {
            let idx = self.arena.len();
            self.arena.push(child);
            self.seq += 1;
            entries.push(OpenNode {
                node: idx,
                key,
                seq: self.seq,
                basis: basis.clone(),
            });
        }
        match self.opts.node_order {
            NodeOrder::DfsNearerFirst => {
                for e in entries {
                    self.frontier.push(e);
                }
            }
            NodeOrder::BestBound => {
                // Children continue the current episode depth-first (the
                // nearer side, pushed last, pops first).
                self.dive.extend(entries);
            }
        }
        self.stats.queue_peak = self
            .stats
            .queue_peak
            .max(self.frontier.len() + self.dive.len());
    }

    /// The main loop: pop, activate, solve, bound, branch.
    fn run(&mut self) -> Result<(), SolveError> {
        self.arena.push(TreeNode::root());
        self.frontier.push(OpenNode {
            node: 0,
            key: f64::NEG_INFINITY,
            seq: 0,
            basis: None,
        });
        self.stats.queue_peak = 1;
        loop {
            // An over-long episode hands its remaining dive entries back
            // to the queue (each carries its own bound key and basis), so
            // the globally best bound picks the next episode's root.
            if self.episode >= self.episode_cap && !self.dive.is_empty() {
                for e in self.dive.drain(..) {
                    self.frontier.push(e);
                }
            }
            let open = match self.dive.pop() {
                Some(p) => {
                    // A dive node that cannot beat the incumbent is
                    // discarded unsolved; the episode continues with its
                    // pending siblings.
                    let prunable = self
                        .best
                        .as_ref()
                        .is_some_and(|best| p.key >= self.signed(best.objective) - 1e-9);
                    if prunable {
                        continue;
                    }
                    p
                }
                None => {
                    self.episode = 0;
                    let Some(o) = self.frontier.pop() else { break };
                    if self.opts.node_order == NodeOrder::BestBound {
                        if let Some(best) = &self.best {
                            if o.key >= self.signed(best.objective) - 1e-9 {
                                // The queue is bound-sorted: every
                                // remaining open node is at least as bad,
                                // so the incumbent is proven optimal.
                                // Discarded entries were never solved and
                                // are not counted as nodes.
                                return Ok(());
                            }
                        }
                    }
                    o
                }
            };
            if self.out_of_budget() {
                self.stats.truncated = true;
                return Ok(());
            }
            self.activate(open.node);
            self.stats.nodes += 1;
            self.episode += 1;
            let relax =
                match self
                    .backend
                    .solve_node(self.opts, open.basis.as_deref(), &mut self.stats)
                {
                    Ok(sol) => sol,
                    Err(SolveError::Infeasible) => {
                        self.stats.node_bounds.push(f64::NAN);
                        continue;
                    }
                    Err(SolveError::IterationLimit) | Err(SolveError::Numerical(_)) => {
                        // No usable bound for this subtree (budget or
                        // numerics): prune it and keep whatever incumbent
                        // exists — aborting would discard a feasible answer
                        // over one bad node.
                        self.stats.node_bounds.push(f64::NAN);
                        self.stats.truncated = true;
                        continue;
                    }
                    // Bound tightenings cannot make a bounded LP unbounded,
                    // but a free-integer model may genuinely be unbounded at
                    // the root.
                    Err(e) => return Err(e),
                };
            self.stats.node_bounds.push(relax.objective);
            let depth = self.arena[open.node].depth;
            if depth == 0 {
                self.stats.root_bound = relax.objective;
            }
            if let Some(best) = &self.best {
                if self.signed(relax.objective) >= self.signed(best.objective) - 1e-9 {
                    continue; // cannot beat the incumbent
                }
            }
            let Some((var, val)) = self.most_fractional(&relax) else {
                // Integral leaf: the relaxation point IS the optimal
                // incumbent for this box (the legacy backend re-solves it
                // once to snap the stored point exactly).
                if B::SNAP_LEAVES {
                    self.offer_incumbent(&relax);
                } else {
                    self.accept_incumbent(relax);
                }
                continue;
            };
            // Children warm-start from this node's optimal basis
            // (snapshot before the heuristic perturbs the kernel).
            let my_basis = self.backend.snapshot(self.opts).map(Arc::new);
            if self.opts.rounding_heuristic && (depth == 0 || depth.is_multiple_of(8)) {
                self.offer_incumbent(&relax);
            }
            if self.within_gap() {
                return Ok(());
            }
            self.expand(open.node, var, val, relax.objective, my_basis);
        }
        Ok(())
    }
}

/// Runs the search with the given backend and assembles the result.
fn run_search<B: LpBackend>(
    model: &Model,
    opts: &SolverOptions,
    hint: &[(VarId, f64)],
    backend: B,
    deadline: Option<Instant>,
) -> Result<(Solution, BranchBoundStats), SolveError> {
    let mut core = SearchCore::new(model, opts, backend, deadline);
    core.seed_hint(hint);
    core.run()?;
    core.backend.finish(&mut core.stats);
    finish(core.best, core.stats)
}

// ---------------------------------------------------------------------------
// Shared entry points
// ---------------------------------------------------------------------------

pub(crate) fn finish(
    best: Option<Solution>,
    stats: BranchBoundStats,
) -> Result<(Solution, BranchBoundStats), SolveError> {
    let truncated = stats.truncated;
    match best {
        Some(mut sol) => {
            sol.status = if truncated {
                Status::Feasible
            } else {
                Status::Optimal
            };
            Ok((sol, stats))
        }
        None if truncated => Err(SolveError::IterationLimit),
        None => Err(SolveError::Infeasible),
    }
}

/// Solves a mixed-integer model; see [`Model::solve_with`] and
/// [`Model::solve_with_hint`].
pub(crate) fn solve(
    model: &Model,
    opts: &SolverOptions,
    hint: &[(VarId, f64)],
) -> Result<Solution, SolveError> {
    let (sol, _stats) = solve_with_stats_hinted(model, opts, hint)?;
    Ok(sol)
}

/// Like [`Model::solve_with`] but also returns search statistics.
///
/// # Errors
///
/// [`SolveError::Infeasible`] when no integral point exists,
/// [`SolveError::Unbounded`] when the relaxation is unbounded, and
/// [`SolveError::IterationLimit`] when limits stopped the search before any
/// incumbent was found.
pub fn solve_with_stats(
    model: &Model,
    opts: &SolverOptions,
) -> Result<(Solution, BranchBoundStats), SolveError> {
    solve_with_stats_hinted(model, opts, &[])
}

/// [`solve_with_stats`] with a warm-start hint for the integer variables.
///
/// # Errors
///
/// See [`solve_with_stats`].
pub fn solve_with_stats_hinted(
    model: &Model,
    opts: &SolverOptions,
    hint: &[(VarId, f64)],
) -> Result<(Solution, BranchBoundStats), SolveError> {
    // One deadline for the whole solve, captured here and installed on
    // every kernel the search constructs: N workers (or ladder rebuilds)
    // share a single wall-clock budget instead of each starting a fresh
    // one.
    let deadline = opts.time_limit.map(|limit| Instant::now() + limit);
    // Cheap pre-check before paying for the standard-form build: every
    // integer variable must be boxable (fixed, or finite lower bound).
    let boxable = model
        .vars
        .iter()
        .all(|v| !v.integer || v.lower == v.upper || v.lower.is_finite());
    if opts.kernel == Kernel::Revised && boxable {
        let form = BoxedForm::build(model);
        // Every integer variable must be boxable: fixed, or shifted by a
        // finite lower bound (the upper bound may be infinite — branching
        // down installs one).
        let int_cols: Option<Vec<Option<(usize, f64)>>> = model
            .vars
            .iter()
            .enumerate()
            .map(|(vi, var)| {
                if !var.integer {
                    return Some(None);
                }
                match form.sf.map[vi] {
                    ColMap::Fixed { .. } => Some(None),
                    ColMap::Shifted { col, lb } => Some(Some((col, lb))),
                    _ => None, // mirrored/free integer: legacy path
                }
            })
            .collect();
        if let Some(int_cols) = int_cols {
            if !form.sf.proven_infeasible && !form.sf.rows.is_empty() {
                let form = Arc::new(form);
                if opts.workers >= 2 {
                    return crate::parallel::solve_parallel(
                        model, opts, hint, form, int_cols, deadline,
                    );
                }
                let mut kernel = Revised::new(&form, opts);
                kernel.set_deadline(deadline);
                let backend = WarmBackend {
                    model,
                    form,
                    int_cols,
                    kernel,
                };
                return run_search(model, opts, hint, backend, deadline);
            }
        }
    }
    // The legacy rebuild-per-node path (dense oracle, unboxable
    // integers) is always serial: `workers` applies to the warm revised
    // path only.
    let int_vars: Vec<VarId> = model
        .vars()
        .filter(|(_, v)| v.is_integer())
        .map(|(id, _)| id)
        .collect();
    let backend = LegacyBackend {
        model: model.clone(),
        int_vars,
    };
    run_search(model, opts, hint, backend, deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{cmp, Model, Sense};
    use crate::LinExpr;

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary → a=0,b=1,c=1 (20)
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_integer("a", 0.0, 1.0);
        let b = m.add_integer("b", 0.0, 1.0);
        let c = m.add_integer("c", 0.0, 1.0);
        m.set_objective(10.0 * a + 13.0 * b + 7.0 * c);
        m.add_constraint(3.0 * a + 4.0 * b + 2.0 * c, cmp::LE, 6.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 20.0).abs() < 1e-6, "obj {}", sol.objective);
        assert_eq!(sol.int_value(a), 0);
        assert_eq!(sol.int_value(b), 1);
        assert_eq!(sol.int_value(c), 1);
    }

    #[test]
    fn integer_rounding_is_not_assumed() {
        // LP optimum fractional; integer optimum differs from naive rounding.
        // max y s.t. -x + y <= 0.5, x + y <= 3.5, 0<=x<=3 int, y int
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer("x", 0.0, 3.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.set_objective(LinExpr::var(y));
        m.add_constraint(-1.0 * x + y, cmp::LE, 0.5);
        m.add_constraint(x + y, cmp::LE, 3.5);
        let sol = m.solve().unwrap();
        // y <= min(x + 0.5, 3.5 - x); best integer: x=1,y=1 or x=2,y=1 → y=1
        assert_eq!(sol.int_value(y), 1);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 2x + y s.t. x + y >= 3.3, x int >= 0, y cont >= 0 → x=0? no:
        // x=0 → y=3.3 cost 3.3; x=1 → y=2.3 cost 4.3. Optimal x=0.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", 0.0, 100.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(2.0 * x + y);
        m.add_constraint(x + y, cmp::GE, 3.3);
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(x), 0);
        assert!((sol[y] - 3.3).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integrality() {
        // 2x == 3 has no integer solution.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", 0.0, 10.0);
        m.set_objective(LinExpr::var(x));
        m.add_constraint(2.0 * x, cmp::EQ, 3.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn negative_integer_ranges() {
        // min x s.t. x >= -2.5, x integer in [-10, 10] → x = -2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", -10.0, 10.0);
        m.set_objective(LinExpr::var(x));
        m.add_constraint(LinExpr::var(x), cmp::GE, -2.5);
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(x), -2);
    }

    #[test]
    fn node_limit_reports_feasible_or_limit() {
        // A model where optimality needs some search; a 1-node budget must
        // either produce an incumbent (Feasible) or IterationLimit.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_integer(format!("x{i}"), 0.0, 1.0))
            .collect();
        let mut obj = LinExpr::new();
        let mut row = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj += ((i % 3 + 1) as f64) * v;
            row += ((i % 5 + 1) as f64) * v;
        }
        m.set_objective(obj);
        m.add_constraint(row, cmp::LE, 7.5);
        let opts = SolverOptions {
            max_nodes: 1,
            ..Default::default()
        };
        match m.solve_with(&opts) {
            Ok(sol) => assert_eq!(sol.status, Status::Feasible),
            Err(e) => assert_eq!(e, SolveError::IterationLimit),
        }
    }

    /// A node-cap-truncated search holding an incumbent must be
    /// distinguishable from a proven optimum everywhere: solution status,
    /// the `truncated` stats flag, and the incumbent trace.
    #[test]
    fn truncated_search_is_explicitly_feasible_not_optimal() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..10)
            .map(|i| m.add_integer(format!("x{i}"), 0.0, 1.0))
            .collect();
        let mut obj = LinExpr::new();
        let mut row = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj += (100.0 + (i % 7) as f64 * 0.01) * v;
            row += (100.0 + (i % 5) as f64 * 0.013) * v;
        }
        m.set_objective(obj);
        m.add_constraint(row, cmp::LE, 500.37);
        // A hint guarantees an incumbent exists even at a tiny node cap.
        let hint: Vec<_> = vars.iter().map(|&v| (v, 0.0)).collect();
        let truncated_opts = SolverOptions {
            max_nodes: 2,
            gap_tol: 0.0,
            rounding_heuristic: false,
            ..Default::default()
        };
        let (sol, stats) = solve_with_stats_hinted(&m, &truncated_opts, &hint).unwrap();
        assert_eq!(
            sol.status,
            Status::Feasible,
            "truncated search must not claim Optimal"
        );
        assert!(stats.truncated, "stats must record the truncation");
        // The same model run to completion is Optimal and not truncated.
        let (sol, stats) = solve_with_stats(&m, &SolverOptions::default()).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!(!stats.truncated);
    }

    #[test]
    fn stats_reported() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_integer("a", 0.0, 5.0);
        let b = m.add_integer("b", 0.0, 5.0);
        m.set_objective(3.0 * a + 2.0 * b);
        m.add_constraint(2.0 * a + 3.0 * b, cmp::LE, 11.5);
        let (sol, stats) = solve_with_stats(&m, &SolverOptions::default()).unwrap();
        assert!(stats.nodes >= 1);
        assert!(!stats.truncated);
        assert!(stats.simplex_iters >= 1, "no pivots counted");
        assert_eq!(stats.cold_solves + stats.warm_solves, stats.nodes);
        // Root LP bound is at least as good as the integer optimum.
        assert!(stats.root_bound >= sol.objective - 1e-9);
        // New telemetry: every solved node logged a bound, the incumbent
        // trace ends at the returned objective, and the queue peaked.
        assert_eq!(stats.node_bounds.len(), stats.nodes);
        assert!(stats.queue_peak >= 1);
        assert_eq!(stats.incumbent_trace.len(), stats.incumbents);
        let (last_node, last_obj) = *stats.incumbent_trace.last().unwrap();
        assert!(last_node <= stats.nodes);
        assert!((last_obj - sol.objective).abs() < 1e-9);
        assert!(stats.first_incumbent_node <= stats.nodes);
    }

    #[test]
    fn assignment_lp_is_integral_and_fast() {
        // 3x3 assignment problem: totally unimodular, so the relaxation is
        // already integral and B&B should finish at the root.
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut x = vec![];
        for i in 0..3 {
            let mut row = vec![];
            for j in 0..3 {
                row.push(m.add_integer(format!("x{i}{j}"), 0.0, 1.0));
            }
            x.push(row);
        }
        let mut obj = LinExpr::new();
        for i in 0..3 {
            for j in 0..3 {
                obj += cost[i][j] * x[i][j];
            }
        }
        m.set_objective(obj);
        for i in 0..3 {
            let mut r = LinExpr::new();
            let mut c = LinExpr::new();
            for j in 0..3 {
                r += LinExpr::var(x[i][j]);
                c += LinExpr::var(x[j][i]);
            }
            m.add_constraint(r, cmp::EQ, 1.0);
            m.add_constraint(c, cmp::EQ, 1.0);
        }
        let (sol, stats) = solve_with_stats(&m, &SolverOptions::default()).unwrap();
        // Optimal assignment cost: 2 + 4 + 6 = 12 (several optima).
        assert!((sol.objective - 12.0).abs() < 1e-6, "obj {}", sol.objective);
        assert!(stats.nodes <= 3, "took {} nodes", stats.nodes);
    }

    /// A multi-row knapsack family needing real search, solved at every
    /// kernel / warm-start combination; objectives must agree.
    #[test]
    fn warm_cold_and_oracle_agree() {
        let mut m = Model::new(Sense::Maximize);
        let n = 12;
        let mut obj = LinExpr::new();
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_integer(format!("x{i}"), 0.0, 3.0))
            .collect();
        for (i, &v) in vars.iter().enumerate() {
            obj += ((i % 5 + 2) as f64) * v;
        }
        m.set_objective(obj);
        for r in 0..5 {
            let mut row = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                row += (((i + r) % 3 + 1) as f64) * v;
            }
            m.add_constraint(row, cmp::LE, 17.5 + r as f64);
        }

        let warm = SolverOptions::default();
        let cold = SolverOptions {
            warm_start: false,
            ..Default::default()
        };
        let oracle = SolverOptions {
            kernel: Kernel::DenseTableau,
            ..Default::default()
        };
        let (s_warm, st_warm) = solve_with_stats(&m, &warm).unwrap();
        let (s_cold, st_cold) = solve_with_stats(&m, &cold).unwrap();
        let (s_oracle, _) = solve_with_stats(&m, &oracle).unwrap();
        assert!((s_warm.objective - s_cold.objective).abs() < 1e-6);
        assert!((s_warm.objective - s_oracle.objective).abs() < 1e-6);
        // Warm starts actually engage and save pivots on this family.
        assert!(st_warm.warm_solves > 0, "no warm solves recorded");
        assert!(
            st_warm.simplex_iters <= st_cold.simplex_iters,
            "warm {} pivots vs cold {}",
            st_warm.simplex_iters,
            st_cold.simplex_iters
        );
    }

    /// Both node orderings, on both backends, agree with each other and
    /// with the oracle kernel on a family needing real search.
    #[test]
    fn node_orders_agree_on_both_backends() {
        let mut m = Model::new(Sense::Maximize);
        let n = 12;
        let mut obj = LinExpr::new();
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_integer(format!("x{i}"), 0.0, 3.0))
            .collect();
        for (i, &v) in vars.iter().enumerate() {
            obj += ((i % 5 + 2) as f64) * v;
        }
        m.set_objective(obj);
        for r in 0..5 {
            let mut row = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                row += (((i + r) % 3 + 1) as f64) * v;
            }
            m.add_constraint(row, cmp::LE, 17.5 + r as f64);
        }
        let mut objectives = Vec::new();
        for order in [NodeOrder::DfsNearerFirst, NodeOrder::BestBound] {
            for kernel in [Kernel::Revised, Kernel::DenseTableau] {
                let opts = SolverOptions {
                    node_order: order,
                    kernel,
                    ..Default::default()
                };
                let (sol, stats) = solve_with_stats(&m, &opts).unwrap();
                assert!(!stats.truncated, "{order:?}/{kernel:?} truncated");
                assert_eq!(stats.order, order);
                objectives.push(((order, kernel), sol.objective));
            }
        }
        let (_, reference) = objectives[0];
        for &(cfg, obj) in &objectives {
            assert!(
                (obj - reference).abs() < 1e-6,
                "{cfg:?}: {obj} vs reference {reference}"
            );
        }
    }

    /// An integer variable with *fractional* bounds must still get an
    /// integral value: the rounding heuristic clamps into the box, which
    /// used to re-fractionalize the incumbent (x = 2.5 reported as an
    /// "optimal" integer).
    #[test]
    fn fractional_bounds_still_yield_integral_solutions() {
        for kernel in [Kernel::Revised, Kernel::DenseTableau] {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_integer("x", 0.0, 2.5);
            m.set_objective(LinExpr::var(x));
            m.add_constraint(LinExpr::var(x), cmp::LE, 10.0);
            let opts = SolverOptions {
                kernel,
                ..Default::default()
            };
            let sol = m.solve_with(&opts).unwrap();
            assert!(
                (sol[x] - 2.0).abs() < 1e-6,
                "{kernel:?}: expected x = 2, got {}",
                sol[x]
            );
        }
    }

    /// Free integers cannot use bound rows; the legacy path must engage
    /// and still answer correctly — under both node orderings.
    #[test]
    fn free_integer_falls_back_to_legacy() {
        for order in [NodeOrder::DfsNearerFirst, NodeOrder::BestBound] {
            let mut m = Model::new(Sense::Minimize);
            let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, true);
            m.set_objective(LinExpr::var(x));
            m.add_constraint(LinExpr::var(x), cmp::GE, -2.5);
            let opts = SolverOptions {
                node_order: order,
                ..Default::default()
            };
            let (sol, stats) = solve_with_stats(&m, &opts).unwrap();
            assert_eq!(sol.int_value(x), -2);
            assert_eq!(stats.warm_solves, 0, "legacy path must not warm-start");
        }
    }
}
