//! Branch & bound for mixed-integer models, with **warm-started nodes**.
//!
//! Depth-first search over bound tightenings with:
//!
//! * LP-relaxation pruning (a node whose relaxation cannot beat the
//!   incumbent is cut),
//! * most-fractional branching, exploring the nearer side first,
//! * a **round-and-fix heuristic** (round all integer variables of a
//!   relaxation, fix them, re-solve the LP for the continuous variables) to
//!   obtain early incumbents — this is what makes the near-integral
//!   retiming relaxations solve in a handful of nodes,
//! * node and wall-clock limits that return the best incumbent with
//!   [`Status::Feasible`] instead of failing.
//!
//! # Warm starts
//!
//! With the revised kernel ([`Kernel::Revised`]) the search builds the
//! **bounded-variable** form once ([`BoxedForm::build`]): every
//! branchable integer variable is a boxed column, and branching rewrites
//! that column's `[lo, hi]` box in place. Rhs and bound changes leave
//! reduced costs untouched, so *any* optimal basis anywhere in the tree
//! stays dual feasible for every node: the search runs as one continuous
//! simplex process, each node reoptimized by a **bounded dual-simplex
//! run** ([`Revised::dual_reopt`]) from whatever basis the previous node
//! left behind — typically a handful of pivots and no refactorization.
//! The round-and-fix heuristic reuses the same mechanism (pin every
//! integer's box, dual-reoptimize, unpin). Fallbacks stay layered: a
//! failed in-place reopt retries from the parent's snapshot
//! ([`Revised::install_basis`]), then cold two-phase; and
//! [`SolverOptions::warm_start`]` = false` forces cold node solves
//! everywhere (the configuration the warm-start regression tests compare
//! against).
//!
//! Models whose integer variables cannot be boxed (lower bound −∞:
//! mirrored or free integers) and the dense-tableau oracle kernel take
//! the legacy path: clone the model, tighten variable bounds, rebuild
//! the standard form at every node.

use std::time::Instant;

use crate::expr::VarId;
use crate::model::{Kernel, Model, Sense, SolverOptions};
use crate::revised::{BasisState, Revised};
use crate::solution::{Solution, SolveError, Status};
use crate::standard::{BoxedForm, ColMap};

/// Search statistics of the last branch-and-bound run (diagnostics and
/// perf telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BranchBoundStats {
    /// LP relaxations solved (nodes explored).
    pub nodes: usize,
    /// Incumbents found.
    pub incumbents: usize,
    /// True when a limit (nodes or time) stopped the search.
    pub truncated: bool,
    /// Objective of the root LP relaxation.
    pub root_bound: f64,
    /// Total simplex pivots across every LP the search solved (node
    /// relaxations, warm reoptimizations, heuristic re-solves).
    pub simplex_iters: usize,
    /// Node LPs successfully reoptimized from the parent basis.
    pub warm_solves: usize,
    /// Node LPs solved two-phase from scratch (root, fallbacks, and all
    /// nodes when warm starts are disabled).
    pub cold_solves: usize,
    /// Basis refactorizations across the whole search (warm path only;
    /// the legacy per-node-rebuild path reports 0).
    pub refactors: usize,
    /// Largest `nnz(L+U)` any basis snapshot reached — `m²` under
    /// [`crate::FactorKind::Dense`], the actual fill under
    /// [`crate::FactorKind::Sparse`] (warm path only).
    pub peak_lu_nnz: usize,
    /// Basis dimension (constraint rows) of the bounded-variable form
    /// (warm path only).
    pub basis_rows: usize,
}

// ---------------------------------------------------------------------------
// Warm-started search (revised kernel, mutable bound rows)
// ---------------------------------------------------------------------------

struct WarmSearch<'a> {
    model: &'a Model,
    form: BoxedForm,
    /// Per model variable: `(column, root lower bound)` of branchable
    /// integers; `None` for fixed or continuous variables.
    int_cols: Vec<Option<(usize, f64)>>,
    kernel: Revised,
    opts: &'a SolverOptions,
    sense_mul: f64,
    start: Instant,
    best: Option<Solution>,
    stats: BranchBoundStats,
    int_vars: Vec<VarId>,
    /// Current branch bounds per model variable (model space).
    lo: Vec<f64>,
    hi: Vec<f64>,
    stopped: bool,
}

impl WarmSearch<'_> {
    fn out_of_budget(&self) -> bool {
        if self.stats.nodes >= self.opts.max_nodes {
            return true;
        }
        if let Some(limit) = self.opts.time_limit {
            if self.start.elapsed() >= limit {
                return true;
            }
        }
        false
    }

    /// Signed objective for pruning comparisons (always "minimize").
    fn signed(&self, obj: f64) -> f64 {
        self.sense_mul * obj
    }

    /// Pushes the current `lo`/`hi` of a variable into its column box.
    fn apply_var_bounds(&mut self, vi: usize) {
        if let Some((col, lb0)) = self.int_cols[vi] {
            self.kernel
                .set_col_bounds(col, self.lo[vi] - lb0, self.hi[vi] - lb0);
        }
    }

    /// Dual-reoptimizes the kernel **in place** (no refactorization): any
    /// dual-feasible basis is a valid warm-start seed for any rhs, so the
    /// state the previous node left behind works directly. `Err` values
    /// are *soft* failures (fall back) except [`SolveError::Infeasible`],
    /// which is a genuine verdict.
    fn try_warm_in_place(&mut self) -> Result<(), SolveError> {
        // Bounded reoptimization: a healthy warm start takes a handful of
        // pivots; if the dual run exceeds this budget a cold solve is
        // cheaper than fighting degeneracy.
        let (m, n) = self.kernel.dims();
        let mut dual_budget = (1_000 + m + n / 4).min(self.opts.max_pivots);
        self.kernel.dual_reopt(self.opts, &mut dual_budget)?;
        let mut budget = self.opts.max_pivots;
        self.kernel.primal_opt(self.opts, &mut budget)?;
        if self.kernel.has_active_artificial(1e-6) {
            return Err(SolveError::Numerical("artificial reactivated".into()));
        }
        Ok(())
    }

    /// Like [`WarmSearch::try_warm_in_place`] but re-installing an
    /// explicit (parent) basis first — the fallback when the in-place
    /// state is unusable.
    fn try_warm_install(&mut self, state: &BasisState) -> Result<(), SolveError> {
        self.kernel.install_basis(state)?;
        self.try_warm_in_place()
    }

    /// Solves the current node LP: in-place dual reoptimization when the
    /// kernel state allows it, else from the parent basis, else cold.
    fn solve_node(&mut self, parent: Option<&BasisState>) -> Result<(), SolveError> {
        if let Some(parent_state) = parent.filter(|_| self.opts.warm_start) {
            let outcome = if self.kernel.dual_ok() {
                self.try_warm_in_place()
            } else {
                Err(SolveError::Numerical("kernel not dual feasible".into()))
            };
            let outcome = match outcome {
                // Soft failure: retry from the parent's optimal basis.
                Err(e) if e != SolveError::Infeasible => self.try_warm_install(parent_state),
                other => other,
            };
            match outcome {
                Ok(()) => {
                    self.stats.warm_solves += 1;
                    return Ok(());
                }
                Err(SolveError::Infeasible) => {
                    // A dual-simplex proof of infeasibility concluded
                    // the node — that is a successful warm solve.
                    self.stats.warm_solves += 1;
                    return Err(SolveError::Infeasible);
                }
                // Iteration limit, numerics, singular basis: retry cold.
                Err(_) => {}
            }
        }
        self.stats.cold_solves += 1;
        let mut budget = self.opts.max_pivots;
        self.kernel.solve_two_phase(self.opts, &mut budget)
    }

    /// Reoptimizes after a bound change without node bookkeeping (used by
    /// the round-and-fix heuristic); cold fallback included.
    fn reopt_in_place(&mut self) -> Result<(), SolveError> {
        let warm = if self.kernel.dual_ok() {
            self.try_warm_in_place()
        } else {
            Err(SolveError::Numerical("kernel not dual feasible".into()))
        };
        match warm {
            Ok(()) => Ok(()),
            Err(SolveError::Infeasible) => Err(SolveError::Infeasible),
            Err(_) => {
                let mut budget = self.opts.max_pivots;
                self.kernel.solve_two_phase(self.opts, &mut budget)
            }
        }
    }

    /// The solution at the kernel's current optimum.
    fn node_solution(&self) -> Solution {
        let values = self.form.sf.recover(&self.kernel.values());
        let objective = self.model.objective.eval(&values);
        Solution {
            values,
            objective,
            status: Status::Optimal,
        }
    }

    /// Picks the branching variable: highest priority class first, most
    /// fractional within it; `None` when the point is integral.
    fn most_fractional(&self, sol: &Solution) -> Option<(VarId, f64)> {
        let mut best: Option<(VarId, f64)> = None;
        let mut best_key = (i32::MIN, self.opts.int_tol);
        for &v in &self.int_vars {
            let val = sol.value(v);
            let frac = (val - val.round()).abs();
            if frac <= self.opts.int_tol {
                continue;
            }
            let key = (self.model.var(v).priority(), frac);
            if key > best_key {
                best_key = key;
                best = Some((v, val));
            }
        }
        best
    }

    /// Relative gap of the incumbent against the root LP bound.
    fn within_gap(&self) -> bool {
        let Some(best) = &self.best else { return false };
        if self.stats.nodes == 0 {
            return false;
        }
        let bound = self.signed(self.stats.root_bound);
        let inc = self.signed(best.objective);
        inc - bound <= self.opts.gap_tol * inc.abs().max(1.0)
    }

    /// Installs `candidate` as the incumbent when it is integral and
    /// improves on the current best.
    fn accept_incumbent(&mut self, candidate: Solution) {
        // Rounded values clamped into the current box can be fractional
        // when an integer variable carries fractional bounds — only
        // truly integral points may become incumbents.
        let integral = self.int_vars.iter().all(|&v| {
            let x = candidate.value(v);
            (x - x.round()).abs() <= self.opts.int_tol
        });
        let better = match &self.best {
            None => true,
            Some(b) => self.signed(candidate.objective) < self.signed(b.objective) - 1e-9,
        };
        if integral && better {
            self.stats.incumbents += 1;
            self.best = Some(candidate);
        }
    }

    /// Round-and-fix: pin every integer variable's box to the rounded
    /// relaxation value, reoptimize the continuous part from the current
    /// basis, and offer the result as an incumbent. The pre-heuristic
    /// basis is restored afterwards so the next node's in-place warm
    /// start resumes from the node optimum instead of re-navigating away
    /// from the heuristic's pinned vertex (a no-op when the polish took
    /// zero pivots).
    fn offer_incumbent(&mut self, sol: &Solution) {
        // The basis restore below only matters when later solves warm
        // start in place; cold mode re-crashes every node anyway.
        let pre_basis = if self.opts.warm_start {
            Some(self.kernel.basis_snapshot())
        } else {
            None
        };
        let mut saved: Vec<(usize, f64, f64)> = Vec::with_capacity(self.int_vars.len());
        for k in 0..self.int_vars.len() {
            let v = self.int_vars[k];
            let vi = v.index();
            if self.int_cols[vi].is_none() {
                continue; // fixed at the root; already integral
            }
            let val = sol.value(v).round().clamp(self.lo[vi], self.hi[vi]);
            saved.push((vi, self.lo[vi], self.hi[vi]));
            self.lo[vi] = val;
            self.hi[vi] = val;
            self.apply_var_bounds(vi);
        }
        let solved = self.reopt_in_place();
        let candidate = if solved.is_ok() {
            self.node_solution()
        } else {
            // The polish re-solve failed (rare numerics); fall back to
            // the relaxation point itself rather than dropping it.
            sol.clone()
        };
        self.accept_incumbent(candidate);
        for (vi, l, h) in saved {
            self.lo[vi] = l;
            self.hi[vi] = h;
            self.apply_var_bounds(vi);
        }
        if let Some(pre_basis) = pre_basis {
            if self.kernel.install_basis(&pre_basis).is_ok() {
                // The restored basis is the node's phase-2 optimum, hence
                // dual feasible; a (normally zero-pivot) dual pass
                // re-certifies it so the next node can warm-start in place.
                let mut budget = self.opts.max_pivots;
                let _ = self.kernel.dual_reopt(self.opts, &mut budget);
            }
        }
    }

    fn dfs(&mut self, depth: usize, parent: Option<&BasisState>) -> Result<(), SolveError> {
        if self.stopped {
            return Ok(());
        }
        if self.out_of_budget() {
            self.stopped = true;
            self.stats.truncated = true;
            return Ok(());
        }
        self.stats.nodes += 1;
        match self.solve_node(parent) {
            Ok(()) => {}
            Err(SolveError::Infeasible) => return Ok(()),
            Err(SolveError::IterationLimit) | Err(SolveError::Numerical(_)) => {
                // No usable bound for this subtree (budget or numerics):
                // prune it and keep whatever incumbent exists — aborting
                // would discard a feasible answer over one bad node.
                self.stats.truncated = true;
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let relax = self.node_solution();
        if depth == 0 {
            self.stats.root_bound = relax.objective;
        }
        if let Some(best) = &self.best {
            if self.signed(relax.objective) >= self.signed(best.objective) - 1e-9 {
                return Ok(()); // cannot beat the incumbent
            }
        }
        let Some((var, val)) = self.most_fractional(&relax) else {
            // Integral leaf: the relaxation point IS the optimal
            // incumbent for this box — no pin/reopt round trip needed.
            self.accept_incumbent(relax);
            return Ok(());
        };
        // Children warm-start from this node's optimal basis (snapshot
        // before the heuristic perturbs the kernel); skipped entirely in
        // the cold A/B configuration, which never reads it.
        let my_basis = if self.opts.warm_start {
            Some(self.kernel.basis_snapshot())
        } else {
            None
        };

        if self.opts.rounding_heuristic && (depth == 0 || depth.is_multiple_of(8)) {
            self.offer_incumbent(&relax);
        }
        if self.within_gap() {
            self.stopped = true;
            return Ok(());
        }

        let floor = val.floor();
        let ceil = val.ceil();
        // Nearer side first.
        let down_first = val - floor <= ceil - val;
        let sides: [(f64, bool); 2] = if down_first {
            [(floor, true), (ceil, false)]
        } else {
            [(ceil, false), (floor, true)]
        };
        let vi = var.index();
        for (bound, is_upper) in sides {
            let saved = (self.lo[vi], self.hi[vi]);
            if is_upper {
                self.hi[vi] = self.hi[vi].min(bound);
            } else {
                self.lo[vi] = self.lo[vi].max(bound);
            }
            if self.lo[vi] <= self.hi[vi] {
                self.apply_var_bounds(vi);
                self.dfs(depth + 1, my_basis.as_ref())?;
            }
            self.lo[vi] = saved.0;
            self.hi[vi] = saved.1;
            self.apply_var_bounds(vi);
            if self.stopped {
                return Ok(());
            }
        }
        Ok(())
    }
}

/// Runs the warm-started search; every integer variable of `model` must
/// be boxable (`Fixed` or `Shifted`).
fn solve_warm(
    model: &Model,
    opts: &SolverOptions,
    hint: &[(VarId, f64)],
    form: BoxedForm,
    int_cols: Vec<Option<(usize, f64)>>,
) -> Result<(Solution, BranchBoundStats), SolveError> {
    let int_vars: Vec<VarId> = model
        .vars()
        .filter(|(_, v)| v.is_integer())
        .map(|(id, _)| id)
        .collect();
    let kernel = Revised::new(&form, opts);
    let mut search = WarmSearch {
        model,
        kernel,
        form,
        int_cols,
        opts,
        sense_mul: match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        },
        start: Instant::now(),
        best: None,
        stats: BranchBoundStats::default(),
        int_vars,
        lo: model.vars.iter().map(|v| v.lower).collect(),
        hi: model.vars.iter().map(|v| v.upper).collect(),
        stopped: false,
    };

    // Warm start hint: pin the hinted integers, solve the continuous
    // part, and install the result as the first incumbent if integral.
    if !hint.is_empty() {
        let mut saved: Vec<(usize, f64, f64)> = Vec::new();
        for &(v, val) in hint {
            let vi = v.index();
            if !search.model.var(v).is_integer() || search.int_cols[vi].is_none() {
                continue;
            }
            let val = val.round().clamp(search.lo[vi], search.hi[vi]);
            saved.push((vi, search.lo[vi], search.hi[vi]));
            search.lo[vi] = val;
            search.hi[vi] = val;
            search.apply_var_bounds(vi);
        }
        let mut budget = opts.max_pivots;
        if search.kernel.solve_two_phase(opts, &mut budget).is_ok() {
            let sol = search.node_solution();
            let integral = search.int_vars.iter().all(|&v| {
                let x = sol.value(v);
                (x - x.round()).abs() <= opts.int_tol
            });
            if integral {
                search.stats.incumbents += 1;
                search.best = Some(sol);
            }
        }
        for (vi, l, h) in saved {
            search.lo[vi] = l;
            search.hi[vi] = h;
            search.apply_var_bounds(vi);
        }
    }

    search.dfs(0, None)?;
    search.stats.simplex_iters = search.kernel.iters;
    search.stats.refactors = search.kernel.factor_stats.refactors;
    search.stats.peak_lu_nnz = search.kernel.factor_stats.peak_lu_nnz;
    search.stats.basis_rows = search.kernel.dims().0;
    finish(search.best, search.stats)
}

// ---------------------------------------------------------------------------
// Legacy search (model clone + rebuild per node): dense-tableau oracle and
// models with free/half-bounded integers.
// ---------------------------------------------------------------------------

struct LegacySearch<'a> {
    model: Model,
    opts: &'a SolverOptions,
    sense_mul: f64,
    start: Instant,
    best: Option<Solution>,
    stats: BranchBoundStats,
    int_vars: Vec<VarId>,
    stopped: bool,
}

impl LegacySearch<'_> {
    fn out_of_budget(&self) -> bool {
        if self.stats.nodes >= self.opts.max_nodes {
            return true;
        }
        if let Some(limit) = self.opts.time_limit {
            if self.start.elapsed() >= limit {
                return true;
            }
        }
        false
    }

    /// Signed objective for pruning comparisons (always "minimize").
    fn signed(&self, obj: f64) -> f64 {
        self.sense_mul * obj
    }

    /// Picks the branching variable: highest priority class first, most
    /// fractional within it; `None` when the point is integral.
    fn most_fractional(&self, sol: &Solution) -> Option<(VarId, f64)> {
        let mut best: Option<(VarId, f64)> = None;
        let mut best_key = (i32::MIN, self.opts.int_tol);
        for &v in &self.int_vars {
            let val = sol.value(v);
            let frac = (val - val.round()).abs();
            if frac <= self.opts.int_tol {
                continue;
            }
            let key = (self.model.var(v).priority(), frac);
            if key > best_key {
                best_key = key;
                best = Some((v, val));
            }
        }
        best
    }

    /// Relative gap of the incumbent against the root LP bound; once it
    /// is within `gap_tol` the search stops (the root bound is the
    /// weakest valid bound, so this is conservative).
    fn within_gap(&self) -> bool {
        let Some(best) = &self.best else { return false };
        if self.stats.nodes == 0 {
            return false;
        }
        let bound = self.signed(self.stats.root_bound);
        let inc = self.signed(best.objective);
        inc - bound <= self.opts.gap_tol * inc.abs().max(1.0)
    }

    /// Accepts `sol` as an incumbent if it improves on the current best.
    /// Integer values are snapped and the continuous part re-solved so the
    /// stored solution is exactly integral.
    fn offer_incumbent(&mut self, sol: &Solution) {
        let mut fixed = self.model.clone();
        for &v in &self.int_vars {
            let val = sol.value(v).round();
            let var = fixed.var(v);
            let val = val.clamp(var.lower(), var.upper());
            fixed.fix_var(v, val);
        }
        let clean = match fixed.solve_relaxation_counted(self.opts) {
            Ok((clean, pivots)) => {
                self.stats.simplex_iters += pivots;
                clean
            }
            // Snap re-solve failed: keep the relaxation point itself so
            // an already-integral leaf is not discarded.
            Err(_) => sol.clone(),
        };
        // See WarmSearch::offer_incumbent: clamping can re-fractionalize
        // integers with fractional bounds.
        let integral = self.int_vars.iter().all(|&v| {
            let x = clean.value(v);
            (x - x.round()).abs() <= self.opts.int_tol
        });
        let better = match &self.best {
            None => true,
            Some(b) => self.signed(clean.objective) < self.signed(b.objective) - 1e-9,
        };
        if integral && better {
            self.stats.incumbents += 1;
            self.best = Some(clean);
        }
    }

    fn dfs(&mut self, depth: usize) -> Result<(), SolveError> {
        if self.stopped {
            return Ok(());
        }
        if self.out_of_budget() {
            self.stopped = true;
            self.stats.truncated = true;
            return Ok(());
        }
        self.stats.nodes += 1;
        self.stats.cold_solves += 1;
        let relax = match self.model.solve_relaxation_counted(self.opts) {
            Ok((sol, pivots)) => {
                self.stats.simplex_iters += pivots;
                sol
            }
            Err(SolveError::Infeasible) => return Ok(()),
            Err(SolveError::IterationLimit) | Err(SolveError::Numerical(_)) => {
                // The node LP ran out of pivots or hit numerical trouble;
                // we cannot bound this subtree, so prune it and mark the
                // search truncated (the incumbent — possibly the warm
                // start — survives).
                self.stats.truncated = true;
                return Ok(());
            }
            // Bound tightenings cannot make a bounded LP unbounded, but a
            // free-integer model may genuinely be unbounded at the root.
            Err(e) => return Err(e),
        };
        if depth == 0 {
            self.stats.root_bound = relax.objective;
        }
        if let Some(best) = &self.best {
            if self.signed(relax.objective) >= self.signed(best.objective) - 1e-9 {
                return Ok(()); // cannot beat the incumbent
            }
        }
        let Some((var, val)) = self.most_fractional(&relax) else {
            self.offer_incumbent(&relax);
            return Ok(());
        };

        if self.opts.rounding_heuristic && (depth == 0 || depth.is_multiple_of(8)) {
            self.offer_incumbent(&relax);
        }
        if self.within_gap() {
            self.stopped = true;
            return Ok(());
        }

        let floor = val.floor();
        let ceil = val.ceil();
        // Nearer side first.
        let down_first = val - floor <= ceil - val;
        let sides: [(f64, bool); 2] = if down_first {
            [(floor, true), (ceil, false)]
        } else {
            [(ceil, false), (floor, true)]
        };
        for (bound, is_upper) in sides {
            let saved = (self.model.var(var).lower(), self.model.var(var).upper());
            if is_upper {
                self.model.tighten_upper(var, bound);
            } else {
                self.model.tighten_lower(var, bound);
            }
            if self.model.var(var).lower() <= self.model.var(var).upper() {
                self.dfs(depth + 1)?;
            }
            let v = &mut self.model.vars[var.index()];
            v.lower = saved.0;
            v.upper = saved.1;
            if self.stopped {
                return Ok(());
            }
        }
        Ok(())
    }
}

fn solve_legacy(
    model: &Model,
    opts: &SolverOptions,
    hint: &[(VarId, f64)],
) -> Result<(Solution, BranchBoundStats), SolveError> {
    let int_vars: Vec<VarId> = model
        .vars()
        .filter(|(_, v)| v.is_integer())
        .map(|(id, _)| id)
        .collect();
    let mut search = LegacySearch {
        model: model.clone(),
        opts,
        sense_mul: match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        },
        start: Instant::now(),
        best: None,
        stats: BranchBoundStats::default(),
        int_vars,
        stopped: false,
    };
    // Warm start: fix the hinted integers, re-solve the continuous part,
    // and install the result as the first incumbent if feasible.
    if !hint.is_empty() {
        let mut fixed = search.model.clone();
        for &(v, val) in hint {
            if fixed.var(v).is_integer() {
                let val = val.round().clamp(fixed.var(v).lower(), fixed.var(v).upper());
                fixed.fix_var(v, val);
            }
        }
        if let Ok((sol, pivots)) = fixed.solve_relaxation_counted(opts) {
            search.stats.simplex_iters += pivots;
            // Only accept if truly integral on all integer vars (hinted
            // or not).
            let integral = search.int_vars.iter().all(|&v| {
                let x = sol.value(v);
                (x - x.round()).abs() <= opts.int_tol
            });
            if integral {
                search.stats.incumbents += 1;
                search.best = Some(sol);
            }
        }
    }
    search.dfs(0)?;
    finish(search.best, search.stats)
}

// ---------------------------------------------------------------------------
// Shared entry points
// ---------------------------------------------------------------------------

fn finish(
    best: Option<Solution>,
    stats: BranchBoundStats,
) -> Result<(Solution, BranchBoundStats), SolveError> {
    let truncated = stats.truncated;
    match best {
        Some(mut sol) => {
            sol.status = if truncated {
                Status::Feasible
            } else {
                Status::Optimal
            };
            Ok((sol, stats))
        }
        None if truncated => Err(SolveError::IterationLimit),
        None => Err(SolveError::Infeasible),
    }
}

/// Solves a mixed-integer model; see [`Model::solve_with`] and
/// [`Model::solve_with_hint`].
pub(crate) fn solve(
    model: &Model,
    opts: &SolverOptions,
    hint: &[(VarId, f64)],
) -> Result<Solution, SolveError> {
    let (sol, _stats) = solve_with_stats_hinted(model, opts, hint)?;
    Ok(sol)
}

/// Like [`Model::solve_with`] but also returns search statistics.
///
/// # Errors
///
/// [`SolveError::Infeasible`] when no integral point exists,
/// [`SolveError::Unbounded`] when the relaxation is unbounded, and
/// [`SolveError::IterationLimit`] when limits stopped the search before any
/// incumbent was found.
pub fn solve_with_stats(
    model: &Model,
    opts: &SolverOptions,
) -> Result<(Solution, BranchBoundStats), SolveError> {
    solve_with_stats_hinted(model, opts, &[])
}

/// [`solve_with_stats`] with a warm-start hint for the integer variables.
///
/// # Errors
///
/// See [`solve_with_stats`].
pub fn solve_with_stats_hinted(
    model: &Model,
    opts: &SolverOptions,
    hint: &[(VarId, f64)],
) -> Result<(Solution, BranchBoundStats), SolveError> {
    // Cheap pre-check before paying for the standard-form build: every
    // integer variable must be boxable (fixed, or finite lower bound).
    let boxable = model
        .vars
        .iter()
        .all(|v| !v.integer || v.lower == v.upper || v.lower.is_finite());
    if opts.kernel == Kernel::Revised && boxable {
        let form = BoxedForm::build(model);
        // Every integer variable must be boxable: fixed, or shifted by a
        // finite lower bound (the upper bound may be infinite — branching
        // down installs one).
        let int_cols: Option<Vec<Option<(usize, f64)>>> = model
            .vars
            .iter()
            .enumerate()
            .map(|(vi, var)| {
                if !var.integer {
                    return Some(None);
                }
                match form.sf.map[vi] {
                    ColMap::Fixed { .. } => Some(None),
                    ColMap::Shifted { col, lb } => Some(Some((col, lb))),
                    _ => None, // mirrored/free integer: legacy path
                }
            })
            .collect();
        if let Some(int_cols) = int_cols {
            if !form.sf.proven_infeasible && !form.sf.rows.is_empty() {
                return solve_warm(model, opts, hint, form, int_cols);
            }
        }
    }
    solve_legacy(model, opts, hint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{cmp, Model, Sense};
    use crate::LinExpr;

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary → a=0,b=1,c=1 (20)
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_integer("a", 0.0, 1.0);
        let b = m.add_integer("b", 0.0, 1.0);
        let c = m.add_integer("c", 0.0, 1.0);
        m.set_objective(10.0 * a + 13.0 * b + 7.0 * c);
        m.add_constraint(3.0 * a + 4.0 * b + 2.0 * c, cmp::LE, 6.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 20.0).abs() < 1e-6, "obj {}", sol.objective);
        assert_eq!(sol.int_value(a), 0);
        assert_eq!(sol.int_value(b), 1);
        assert_eq!(sol.int_value(c), 1);
    }

    #[test]
    fn integer_rounding_is_not_assumed() {
        // LP optimum fractional; integer optimum differs from naive rounding.
        // max y s.t. -x + y <= 0.5, x + y <= 3.5, 0<=x<=3 int, y int
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer("x", 0.0, 3.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.set_objective(LinExpr::var(y));
        m.add_constraint(-1.0 * x + y, cmp::LE, 0.5);
        m.add_constraint(x + y, cmp::LE, 3.5);
        let sol = m.solve().unwrap();
        // y <= min(x + 0.5, 3.5 - x); best integer: x=1,y=1 or x=2,y=1 → y=1
        assert_eq!(sol.int_value(y), 1);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 2x + y s.t. x + y >= 3.3, x int >= 0, y cont >= 0 → x=0? no:
        // x=0 → y=3.3 cost 3.3; x=1 → y=2.3 cost 4.3. Optimal x=0.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", 0.0, 100.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(2.0 * x + y);
        m.add_constraint(x + y, cmp::GE, 3.3);
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(x), 0);
        assert!((sol[y] - 3.3).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integrality() {
        // 2x == 3 has no integer solution.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", 0.0, 10.0);
        m.set_objective(LinExpr::var(x));
        m.add_constraint(2.0 * x, cmp::EQ, 3.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn negative_integer_ranges() {
        // min x s.t. x >= -2.5, x integer in [-10, 10] → x = -2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", -10.0, 10.0);
        m.set_objective(LinExpr::var(x));
        m.add_constraint(LinExpr::var(x), cmp::GE, -2.5);
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(x), -2);
    }

    #[test]
    fn node_limit_reports_feasible_or_limit() {
        // A model where optimality needs some search; a 1-node budget must
        // either produce an incumbent (Feasible) or IterationLimit.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8).map(|i| m.add_integer(format!("x{i}"), 0.0, 1.0)).collect();
        let mut obj = LinExpr::new();
        let mut row = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj += ((i % 3 + 1) as f64) * v;
            row += ((i % 5 + 1) as f64) * v;
        }
        m.set_objective(obj);
        m.add_constraint(row, cmp::LE, 7.5);
        let opts = SolverOptions {
            max_nodes: 1,
            ..Default::default()
        };
        match m.solve_with(&opts) {
            Ok(sol) => assert_eq!(sol.status, Status::Feasible),
            Err(e) => assert_eq!(e, SolveError::IterationLimit),
        }
    }

    #[test]
    fn stats_reported() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_integer("a", 0.0, 5.0);
        let b = m.add_integer("b", 0.0, 5.0);
        m.set_objective(3.0 * a + 2.0 * b);
        m.add_constraint(2.0 * a + 3.0 * b, cmp::LE, 11.5);
        let (sol, stats) = solve_with_stats(&m, &SolverOptions::default()).unwrap();
        assert!(stats.nodes >= 1);
        assert!(!stats.truncated);
        assert!(stats.simplex_iters >= 1, "no pivots counted");
        assert_eq!(stats.cold_solves + stats.warm_solves, stats.nodes);
        // Root LP bound is at least as good as the integer optimum.
        assert!(stats.root_bound >= sol.objective - 1e-9);
    }

    #[test]
    fn assignment_lp_is_integral_and_fast() {
        // 3x3 assignment problem: totally unimodular, so the relaxation is
        // already integral and B&B should finish at the root.
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut x = vec![];
        for i in 0..3 {
            let mut row = vec![];
            for j in 0..3 {
                row.push(m.add_integer(format!("x{i}{j}"), 0.0, 1.0));
            }
            x.push(row);
        }
        let mut obj = LinExpr::new();
        for i in 0..3 {
            for j in 0..3 {
                obj += cost[i][j] * x[i][j];
            }
        }
        m.set_objective(obj);
        for i in 0..3 {
            let mut r = LinExpr::new();
            let mut c = LinExpr::new();
            for j in 0..3 {
                r += LinExpr::var(x[i][j]);
                c += LinExpr::var(x[j][i]);
            }
            m.add_constraint(r, cmp::EQ, 1.0);
            m.add_constraint(c, cmp::EQ, 1.0);
        }
        let (sol, stats) = solve_with_stats(&m, &SolverOptions::default()).unwrap();
        // Optimal assignment cost: 2 + 4 + 6 = 12 (several optima).
        assert!((sol.objective - 12.0).abs() < 1e-6, "obj {}", sol.objective);
        assert!(stats.nodes <= 3, "took {} nodes", stats.nodes);
    }

    /// A multi-row knapsack family needing real search, solved at every
    /// kernel / warm-start combination; objectives must agree.
    #[test]
    fn warm_cold_and_oracle_agree() {
        let mut m = Model::new(Sense::Maximize);
        let n = 12;
        let mut obj = LinExpr::new();
        let vars: Vec<_> = (0..n).map(|i| m.add_integer(format!("x{i}"), 0.0, 3.0)).collect();
        for (i, &v) in vars.iter().enumerate() {
            obj += ((i % 5 + 2) as f64) * v;
        }
        m.set_objective(obj);
        for r in 0..5 {
            let mut row = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                row += (((i + r) % 3 + 1) as f64) * v;
            }
            m.add_constraint(row, cmp::LE, 17.5 + r as f64);
        }

        let warm = SolverOptions::default();
        let cold = SolverOptions {
            warm_start: false,
            ..Default::default()
        };
        let oracle = SolverOptions {
            kernel: Kernel::DenseTableau,
            ..Default::default()
        };
        let (s_warm, st_warm) = solve_with_stats(&m, &warm).unwrap();
        let (s_cold, st_cold) = solve_with_stats(&m, &cold).unwrap();
        let (s_oracle, _) = solve_with_stats(&m, &oracle).unwrap();
        assert!((s_warm.objective - s_cold.objective).abs() < 1e-6);
        assert!((s_warm.objective - s_oracle.objective).abs() < 1e-6);
        // Warm starts actually engage and save pivots on this family.
        assert!(st_warm.warm_solves > 0, "no warm solves recorded");
        assert!(
            st_warm.simplex_iters <= st_cold.simplex_iters,
            "warm {} pivots vs cold {}",
            st_warm.simplex_iters,
            st_cold.simplex_iters
        );
    }

    /// An integer variable with *fractional* bounds must still get an
    /// integral value: the rounding heuristic clamps into the box, which
    /// used to re-fractionalize the incumbent (x = 2.5 reported as an
    /// "optimal" integer).
    #[test]
    fn fractional_bounds_still_yield_integral_solutions() {
        for kernel in [Kernel::Revised, Kernel::DenseTableau] {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_integer("x", 0.0, 2.5);
            m.set_objective(LinExpr::var(x));
            m.add_constraint(LinExpr::var(x), cmp::LE, 10.0);
            let opts = SolverOptions {
                kernel,
                ..Default::default()
            };
            let sol = m.solve_with(&opts).unwrap();
            assert!(
                (sol[x] - 2.0).abs() < 1e-6,
                "{kernel:?}: expected x = 2, got {}",
                sol[x]
            );
        }
    }

    /// Free integers cannot use bound rows; the legacy path must engage
    /// and still answer correctly.
    #[test]
    fn free_integer_falls_back_to_legacy() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, true);
        m.set_objective(LinExpr::var(x));
        m.add_constraint(LinExpr::var(x), cmp::GE, -2.5);
        let (sol, stats) = solve_with_stats(&m, &SolverOptions::default()).unwrap();
        assert_eq!(sol.int_value(x), -2);
        assert_eq!(stats.warm_solves, 0, "legacy path must not warm-start");
    }
}
