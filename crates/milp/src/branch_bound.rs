//! Branch & bound for mixed-integer models.
//!
//! Depth-first search over bound tightenings with:
//!
//! * LP-relaxation pruning (a node whose relaxation cannot beat the
//!   incumbent is cut),
//! * most-fractional branching, exploring the nearer side first,
//! * a **round-and-fix heuristic** (round all integer variables of a
//!   relaxation, fix them, re-solve the LP for the continuous variables) to
//!   obtain early incumbents — this is what makes the near-integral
//!   retiming relaxations solve in a handful of nodes,
//! * node and wall-clock limits that return the best incumbent with
//!   [`Status::Feasible`] instead of failing.

use std::time::Instant;

use crate::expr::VarId;
use crate::model::{Model, Sense, SolverOptions};
use crate::solution::{Solution, SolveError, Status};

/// Search statistics of the last branch-and-bound run (diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BranchBoundStats {
    /// LP relaxations solved (nodes explored).
    pub nodes: usize,
    /// Incumbents found.
    pub incumbents: usize,
    /// True when a limit (nodes or time) stopped the search.
    pub truncated: bool,
    /// Objective of the root LP relaxation.
    pub root_bound: f64,
}

struct Search<'a> {
    model: Model,
    opts: &'a SolverOptions,
    sense_mul: f64,
    start: Instant,
    best: Option<Solution>,
    stats: BranchBoundStats,
    int_vars: Vec<VarId>,
    stopped: bool,
}

impl Search<'_> {
    fn out_of_budget(&self) -> bool {
        if self.stats.nodes >= self.opts.max_nodes {
            return true;
        }
        if let Some(limit) = self.opts.time_limit {
            if self.start.elapsed() >= limit {
                return true;
            }
        }
        false
    }

    /// Signed objective for pruning comparisons (always "minimize").
    fn signed(&self, obj: f64) -> f64 {
        self.sense_mul * obj
    }

    /// Picks the branching variable: highest priority class first, most
    /// fractional within it; `None` when the point is integral.
    fn most_fractional(&self, sol: &Solution) -> Option<(VarId, f64)> {
        let mut best: Option<(VarId, f64)> = None;
        let mut best_key = (i32::MIN, self.opts.int_tol);
        for &v in &self.int_vars {
            let val = sol.value(v);
            let frac = (val - val.round()).abs();
            if frac <= self.opts.int_tol {
                continue;
            }
            let key = (self.model.var(v).priority(), frac);
            if key > best_key {
                best_key = key;
                best = Some((v, val));
            }
        }
        best
    }

    /// Relative gap of the incumbent against the root LP bound; once it
    /// is within `gap_tol` the search stops (the root bound is the
    /// weakest valid bound, so this is conservative).
    fn within_gap(&self) -> bool {
        let Some(best) = &self.best else { return false };
        if self.stats.nodes == 0 {
            return false;
        }
        let bound = self.signed(self.stats.root_bound);
        let inc = self.signed(best.objective);
        inc - bound <= self.opts.gap_tol * inc.abs().max(1.0)
    }

    /// Accepts `sol` as an incumbent if it improves on the current best.
    /// Integer values are snapped and the continuous part re-solved so the
    /// stored solution is exactly integral.
    fn offer_incumbent(&mut self, sol: &Solution) {
        let mut fixed = self.model.clone();
        for &v in &self.int_vars {
            let val = sol.value(v).round();
            let var = fixed.var(v);
            let val = val.clamp(var.lower(), var.upper());
            fixed.fix_var(v, val);
        }
        let Ok(clean) = fixed.solve_relaxation(self.opts) else {
            return;
        };
        let better = match &self.best {
            None => true,
            Some(b) => self.signed(clean.objective) < self.signed(b.objective) - 1e-9,
        };
        if better {
            self.stats.incumbents += 1;
            self.best = Some(clean);
        }
    }

    /// Round-and-fix heuristic from a fractional relaxation.
    fn rounding_heuristic(&mut self, sol: &Solution) {
        self.offer_incumbent(sol);
    }

    fn dfs(&mut self, depth: usize) -> Result<(), SolveError> {
        if self.stopped {
            return Ok(());
        }
        if self.out_of_budget() {
            self.stopped = true;
            self.stats.truncated = true;
            return Ok(());
        }
        self.stats.nodes += 1;
        let relax = match self.model.solve_relaxation(self.opts) {
            Ok(sol) => sol,
            Err(SolveError::Infeasible) => return Ok(()),
            Err(SolveError::IterationLimit) => {
                // The node LP ran out of pivots; we cannot bound this
                // subtree, so prune it and mark the search truncated (the
                // incumbent — possibly the warm start — survives).
                self.stats.truncated = true;
                return Ok(());
            }
            // Bound tightenings cannot make a bounded LP unbounded, but a
            // free-integer model may genuinely be unbounded at the root.
            Err(e) => return Err(e),
        };
        if depth == 0 {
            self.stats.root_bound = relax.objective;
        }
        if let Some(best) = &self.best {
            if self.signed(relax.objective) >= self.signed(best.objective) - 1e-9 {
                return Ok(()); // cannot beat the incumbent
            }
        }
        let Some((var, val)) = self.most_fractional(&relax) else {
            self.offer_incumbent(&relax);
            return Ok(());
        };

        if self.opts.rounding_heuristic && (depth == 0 || depth % 8 == 0) {
            self.rounding_heuristic(&relax);
        }
        if self.within_gap() {
            self.stopped = true;
            return Ok(());
        }

        let floor = val.floor();
        let ceil = val.ceil();
        // Nearer side first.
        let down_first = val - floor <= ceil - val;
        let sides: [(f64, bool); 2] = if down_first {
            [(floor, true), (ceil, false)]
        } else {
            [(ceil, false), (floor, true)]
        };
        for (bound, is_upper) in sides {
            let saved = (self.model.var(var).lower(), self.model.var(var).upper());
            if is_upper {
                self.model.tighten_upper(var, bound);
            } else {
                self.model.tighten_lower(var, bound);
            }
            if self.model.var(var).lower() <= self.model.var(var).upper() {
                self.dfs(depth + 1)?;
            }
            let v = &mut self.model.vars[var.index()];
            v.lower = saved.0;
            v.upper = saved.1;
            if self.stopped {
                return Ok(());
            }
        }
        Ok(())
    }
}

/// Solves a mixed-integer model; see [`Model::solve_with`] and
/// [`Model::solve_with_hint`].
pub(crate) fn solve(
    model: &Model,
    opts: &SolverOptions,
    hint: &[(VarId, f64)],
) -> Result<Solution, SolveError> {
    let (sol, _stats) = solve_with_stats_hinted(model, opts, hint)?;
    Ok(sol)
}

/// Like [`Model::solve_with`] but also returns search statistics.
///
/// # Errors
///
/// [`SolveError::Infeasible`] when no integral point exists,
/// [`SolveError::Unbounded`] when the relaxation is unbounded, and
/// [`SolveError::IterationLimit`] when limits stopped the search before any
/// incumbent was found.
pub fn solve_with_stats(
    model: &Model,
    opts: &SolverOptions,
) -> Result<(Solution, BranchBoundStats), SolveError> {
    solve_with_stats_hinted(model, opts, &[])
}

/// [`solve_with_stats`] with a warm-start hint for the integer variables.
///
/// # Errors
///
/// See [`solve_with_stats`].
pub fn solve_with_stats_hinted(
    model: &Model,
    opts: &SolverOptions,
    hint: &[(VarId, f64)],
) -> Result<(Solution, BranchBoundStats), SolveError> {
    let int_vars: Vec<VarId> = model
        .vars()
        .filter(|(_, v)| v.is_integer())
        .map(|(id, _)| id)
        .collect();
    let mut search = Search {
        model: model.clone(),
        opts,
        sense_mul: match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        },
        start: Instant::now(),
        best: None,
        stats: BranchBoundStats::default(),
        int_vars,
        stopped: false,
    };
    // Warm start: fix the hinted integers, re-solve the continuous part,
    // and install the result as the first incumbent if feasible.
    if !hint.is_empty() {
        let mut fixed = search.model.clone();
        for &(v, val) in hint {
            if fixed.var(v).is_integer() {
                let val = val.round().clamp(fixed.var(v).lower(), fixed.var(v).upper());
                fixed.fix_var(v, val);
            }
        }
        if let Ok(sol) = fixed.solve_relaxation(opts) {
            // Only accept if truly integral on all integer vars (hinted
            // or not).
            let integral = search.int_vars.iter().all(|&v| {
                let x = sol.value(v);
                (x - x.round()).abs() <= opts.int_tol
            });
            if integral {
                search.stats.incumbents += 1;
                search.best = Some(sol);
            }
        }
    }
    search.dfs(0)?;
    let truncated = search.stats.truncated;
    let stats = search.stats;
    match search.best {
        Some(mut sol) => {
            sol.status = if truncated {
                Status::Feasible
            } else {
                Status::Optimal
            };
            Ok((sol, stats))
        }
        None if truncated => Err(SolveError::IterationLimit),
        None => Err(SolveError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{cmp, Model, Sense};
    use crate::LinExpr;

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary → a=0,b=1,c=1 (20)
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_integer("a", 0.0, 1.0);
        let b = m.add_integer("b", 0.0, 1.0);
        let c = m.add_integer("c", 0.0, 1.0);
        m.set_objective(10.0 * a + 13.0 * b + 7.0 * c);
        m.add_constraint(3.0 * a + 4.0 * b + 2.0 * c, cmp::LE, 6.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 20.0).abs() < 1e-6, "obj {}", sol.objective);
        assert_eq!(sol.int_value(a), 0);
        assert_eq!(sol.int_value(b), 1);
        assert_eq!(sol.int_value(c), 1);
    }

    #[test]
    fn integer_rounding_is_not_assumed() {
        // LP optimum fractional; integer optimum differs from naive rounding.
        // max y s.t. -x + y <= 0.5, x + y <= 3.5, 0<=x<=3 int, y int
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer("x", 0.0, 3.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.set_objective(LinExpr::var(y));
        m.add_constraint(-1.0 * x + y, cmp::LE, 0.5);
        m.add_constraint(x + y, cmp::LE, 3.5);
        let sol = m.solve().unwrap();
        // y <= min(x + 0.5, 3.5 - x); best integer: x=1,y=1 or x=2,y=1 → y=1
        assert_eq!(sol.int_value(y), 1);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 2x + y s.t. x + y >= 3.3, x int >= 0, y cont >= 0 → x=0? no:
        // x=0 → y=3.3 cost 3.3; x=1 → y=2.3 cost 4.3. Optimal x=0.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", 0.0, 100.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(2.0 * x + y);
        m.add_constraint(x + y, cmp::GE, 3.3);
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(x), 0);
        assert!((sol[y] - 3.3).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integrality() {
        // 2x == 3 has no integer solution.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", 0.0, 10.0);
        m.set_objective(LinExpr::var(x));
        m.add_constraint(2.0 * x, cmp::EQ, 3.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn negative_integer_ranges() {
        // min x s.t. x >= -2.5, x integer in [-10, 10] → x = -2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", -10.0, 10.0);
        m.set_objective(LinExpr::var(x));
        m.add_constraint(LinExpr::var(x), cmp::GE, -2.5);
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(x), -2);
    }

    #[test]
    fn node_limit_reports_feasible_or_limit() {
        // A model where optimality needs some search; a 1-node budget must
        // either produce an incumbent (Feasible) or IterationLimit.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8).map(|i| m.add_integer(format!("x{i}"), 0.0, 1.0)).collect();
        let mut obj = LinExpr::new();
        let mut row = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj += ((i % 3 + 1) as f64) * v;
            row += ((i % 5 + 1) as f64) * v;
        }
        m.set_objective(obj);
        m.add_constraint(row, cmp::LE, 7.5);
        let opts = SolverOptions {
            max_nodes: 1,
            ..Default::default()
        };
        match m.solve_with(&opts) {
            Ok(sol) => assert_eq!(sol.status, Status::Feasible),
            Err(e) => assert_eq!(e, SolveError::IterationLimit),
        }
    }

    #[test]
    fn stats_reported() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_integer("a", 0.0, 5.0);
        let b = m.add_integer("b", 0.0, 5.0);
        m.set_objective(3.0 * a + 2.0 * b);
        m.add_constraint(2.0 * a + 3.0 * b, cmp::LE, 11.5);
        let (sol, stats) = solve_with_stats(&m, &SolverOptions::default()).unwrap();
        assert!(stats.nodes >= 1);
        assert!(!stats.truncated);
        // Root LP bound is at least as good as the integer optimum.
        assert!(stats.root_bound >= sol.objective - 1e-9);
    }

    #[test]
    fn assignment_lp_is_integral_and_fast() {
        // 3x3 assignment problem: totally unimodular, so the relaxation is
        // already integral and B&B should finish at the root.
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut x = vec![];
        for i in 0..3 {
            let mut row = vec![];
            for j in 0..3 {
                row.push(m.add_integer(format!("x{i}{j}"), 0.0, 1.0));
            }
            x.push(row);
        }
        let mut obj = LinExpr::new();
        for i in 0..3 {
            for j in 0..3 {
                obj += cost[i][j] * x[i][j];
            }
        }
        m.set_objective(obj);
        for i in 0..3 {
            let mut r = LinExpr::new();
            let mut c = LinExpr::new();
            for j in 0..3 {
                r += LinExpr::var(x[i][j]);
                c += LinExpr::var(x[j][i]);
            }
            m.add_constraint(r, cmp::EQ, 1.0);
            m.add_constraint(c, cmp::EQ, 1.0);
        }
        let (sol, stats) = solve_with_stats(&m, &SolverOptions::default()).unwrap();
        // Optimal assignment cost: 2 + 4 + 6 = 12 (several optima).
        assert!((sol.objective - 12.0).abs() < 1e-6, "obj {}", sol.objective);
        assert!(stats.nodes <= 3, "took {} nodes", stats.nodes);
    }
}
