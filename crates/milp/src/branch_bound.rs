//! Branch & bound for mixed-integer models: one generic **search core**,
//! pluggable **node ordering**, one LP backend.
//!
//! # Architecture: `SearchCore` / `NodeOrder` / `LpBackend`
//!
//! A single [`SearchCore`] owns everything the search itself consists of:
//! the node/time budget, incumbent and gap bookkeeping, branching-variable
//! selection (highest priority class, most fractional within it), the
//! round-and-fix heuristic schedule, and the branch tree — an arena of
//! one-bound-tightening [`TreeNode`]s whose boxes are (de)applied by
//! walking the tree between consecutively expanded nodes (undo up to the
//! lowest common ancestor, re-apply down), so jumping anywhere in the
//! tree costs only the path difference. The core is parameterized twice:
//!
//! * **Node ordering** ([`NodeOrder`], selected by
//!   [`SolverOptions::node_order`]):
//!   [`NodeOrder::DfsNearerFirst`] is a LIFO stack exploring the nearer
//!   branching side first — bit-compatible with the historical recursive
//!   DFS (same node order, same kernel state at every solve, hence the
//!   same node/pivot counts; the `search_orders` regression pins this).
//!   [`NodeOrder::BestBound`] is a priority queue keyed on the **parent
//!   LP bound** (ties broken most-recently-pushed-first) interleaved
//!   with bounded depth-first **episodes**: each node popped from the
//!   queue is dived from (children bypass the queue, LIFO) until the
//!   dive dies or exceeds an episode cap scaled to the integer count,
//!   whereupon the leftovers are flushed back into the queue — dives
//!   find the integral leaves that weak LP bounds never would, while
//!   the queue keeps the *frontier* in proven-potential order. Queued
//!   entries whose bound cannot beat the incumbent are discarded
//!   unsolved, and because the queue is bound-sorted the first
//!   unprunable deficit proves optimality for the whole frontier. Every
//!   queued child carries an `Rc` of its parent's optimal basis, so
//!   best-first jumps still warm-start (**warm-basis handoff**) — the
//!   fix for DFS's plateau incumbents under small node caps (see
//!   ROADMAP / the 40-edge `MAX_THR` bench, where truncated DFS returns
//!   4.0 and best-bound finds 3.0).
//!
//! * **LP backend** ([`LpBackend`]): [`WarmBackend`] — the only
//!   backend — runs the revised kernel over a [`BoxedForm`] built once.
//!   Branching rewrites a column's `[lo, hi]` box in place, and since
//!   rhs/bound changes leave reduced costs untouched, *any* optimal
//!   basis anywhere in the tree is dual feasible for every node: nodes
//!   are reoptimized by a bounded dual-simplex run from whatever basis
//!   the previous node left behind, falling back to the parent snapshot,
//!   then to a cold two-phase solve ([`SolverOptions::warm_start`]` =
//!   false` forces cold solves — the warm-start A/B baseline). Every
//!   variable shape branches natively: a box `[lo, hi]` on a shifted,
//!   mirrored, or free (split-pair) integer translates to standard-form
//!   column-bound updates via [`ColMap::box_updates`], so warm starts,
//!   steepest-edge weights, and pseudo-costs survive across nodes for
//!   all of them. The historical `LegacyBackend` (a model clone
//!   re-solved from scratch at every node, mandatory for mirrored/free
//!   integers and the dense-tableau kernel) is gone: the dense tableau
//!   survives as a kernel-level oracle only — rung 6 of the per-node
//!   recovery ladder, plus a whole-solve cross-validation pass when
//!   [`Kernel::DenseTableau`] is requested for a MILP (the search runs
//!   the warm backend in the oracle configuration from
//!   [`SolverOptions::resolve`], then the incumbent's integer assignment
//!   is pinned and re-solved by the genuine dense tableau, which must
//!   reproduce the objective).
//!
//! The round-and-fix heuristic (round all integer variables of a
//! relaxation, fix them, re-solve the continuous part) provides early
//! incumbents — this is what makes the near-integral retiming
//! relaxations solve in a handful of nodes. Node and wall-clock limits
//! return the best incumbent with [`Status::Feasible`] instead of
//! failing; [`Status::Optimal`] is reported only when the search
//! genuinely completed (or closed the [`SolverOptions::gap_tol`] gap).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as MemOrdering};
use std::sync::Arc;
use std::time::Instant;

use crate::expr::VarId;
use crate::model::{
    Branching, FactorKind, Kernel, Model, NodeOrder, Sense, SolverOptions, UpdateKind,
};
use crate::recover::RecoveryStats;
use crate::revised::{BasisState, Revised};
use crate::solution::{Solution, SolveError, Status};
use crate::standard::{BoxedForm, ColMap};

/// Search statistics of the last branch-and-bound run (diagnostics and
/// perf telemetry).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BranchBoundStats {
    /// LP relaxations solved (nodes explored).
    pub nodes: usize,
    /// Incumbents found.
    pub incumbents: usize,
    /// True when a limit (nodes or time) stopped the search.
    pub truncated: bool,
    /// Objective of the root LP relaxation.
    pub root_bound: f64,
    /// Total simplex pivots across every LP the search solved (node
    /// relaxations, warm reoptimizations, heuristic re-solves).
    pub simplex_iters: usize,
    /// Node LPs successfully reoptimized from the parent basis.
    pub warm_solves: usize,
    /// Node LPs solved two-phase from scratch (root, fallbacks, and all
    /// nodes when warm starts are disabled).
    pub cold_solves: usize,
    /// Basis refactorizations across the whole search.
    pub refactors: usize,
    /// Successful Forrest–Tomlin factor updates (0 under
    /// [`crate::UpdateKind::ProductForm`]).
    pub ft_updates: usize,
    /// Refactorizations forced by a refused (unstable) Forrest–Tomlin
    /// update rather than the scheduled length/fill policy.
    pub forced_refactors: usize,
    /// Largest nonzero count the (updated) `U` factor reached — the fill
    /// price of absorbing pivots into the factors under Forrest–Tomlin;
    /// `m²` under [`crate::FactorKind::Dense`].
    pub peak_u_nnz: usize,
    /// Largest `nnz(L+U)` any basis snapshot reached — `m²` under
    /// [`crate::FactorKind::Dense`], the actual fill under
    /// [`crate::FactorKind::Sparse`].
    pub peak_lu_nnz: usize,
    /// Basis dimension (constraint rows) of the bounded-variable form
    /// (0 for rowless models, which solve in closed form).
    pub basis_rows: usize,
    /// Node ordering the search ran with.
    pub order: NodeOrder,
    /// Peak number of open (queued but not yet expanded) nodes.
    pub queue_peak: usize,
    /// Node count at the moment the first incumbent was accepted (0 =
    /// seeded by the warm-start hint, before any node was solved).
    /// Meaningful only when `incumbents > 0`.
    pub first_incumbent_node: usize,
    /// `(node index, objective)` at every incumbent acceptance, in
    /// order — the improvement trajectory of the search.
    pub incumbent_trace: Vec<(usize, f64)>,
    /// LP relaxation objective of every solved node, in solve order
    /// (`NaN` for nodes whose LP failed or proved infeasible). Length
    /// equals `nodes`; best-bound entries discarded unsolved from the
    /// queue do not appear.
    pub node_bounds: Vec<f64>,
    /// Candidates strong-branched by the reliability rule (each counts
    /// one probed candidate, i.e. up to two child dual-simplex probes;
    /// pseudo-cost branching only).
    pub strong_branches: usize,
    /// Pseudo-cost observations recorded: node bound degradations plus
    /// strong-branch probe results (pseudo-cost branching only).
    pub pseudo_updates: usize,
    /// Lazily-activatable cut rows carried by the standard form.
    pub cuts_added: usize,
    /// Cut activations across the whole search (a violated cut row
    /// tightened in place to its integer-valid rhs).
    pub cuts_activated: usize,
    /// Tightest proven dual bound at termination, in the model's sense:
    /// the frontier minimum joined with the incumbent. Equals the
    /// incumbent objective when the search completed; falls back to the
    /// root bound when nothing tighter was proven.
    pub dual_bound: f64,
    /// Numerical-event and recovery-ladder counters (see
    /// [`crate::recover`]).
    pub recovery: RecoveryStats,
    /// Basis-change pivots performed by the dual reoptimizer — the warm
    /// B&B hot path (a subset of `simplex_iters`).
    pub dual_pivots: usize,
    /// Basis-change pivots performed by the primal phases, including
    /// artificial drive-out swaps.
    pub primal_pivots: usize,
    /// Bound flips: primal span-exhausted entering columns plus the
    /// long-step dual ratio test's flipped candidates
    /// (`dual_pivots + primal_pivots + bound_flips = simplex_iters`).
    pub bound_flips: usize,
    /// Pricing reference frameworks reset to units: drifted dual
    /// steepest-edge weights (also recorded in `recovery`) plus routine
    /// Devex reference resets (see [`crate::Pricing`]).
    pub weight_resets: usize,
}

/// Outcome of one strong-branch child probe (see
/// [`LpBackend::probe_branch`]). Probe results only *bias* branching —
/// an `Infeasible` verdict steers selection toward the variable but
/// never prunes, so an unverified probe cannot break correctness.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ProbeOutcome {
    /// The backend could not probe (cold mode, kernel not dual feasible,
    /// probe budget exhausted): use the estimate.
    Skipped,
    /// The child LP solved to optimality within the probe budget.
    Bound(f64),
    /// The child box is dual-simplex infeasible.
    Infeasible,
}

/// Shared pseudo-cost table: per variable × direction mean bound
/// degradation per unit of fractionality, learned from node solves and
/// strong-branch probes. All cells are atomics so the parallel search
/// reads estimates lock-free; in the serial search the relaxed atomics
/// are exactly as deterministic as plain fields.
pub(crate) struct PseudoCosts {
    /// `cells[vi][dir]`, `dir` 0 = down (floor) and 1 = up (ceil).
    cells: Vec<[PseudoCell; 2]>,
    /// Global running mean — the initialization estimate for variables
    /// without observations of their own.
    global: PseudoCell,
}

#[derive(Default)]
struct PseudoCell {
    /// Sum of observed degradations, stored as `f64` bits.
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl PseudoCosts {
    pub(crate) fn new(nvars: usize) -> PseudoCosts {
        PseudoCosts {
            cells: (0..nvars).map(|_| Default::default()).collect(),
            global: PseudoCell::default(),
        }
    }

    /// Lock-free `sum += degrade` (CAS loop over the f64 bits).
    fn add(cell: &PseudoCell, degrade: f64) {
        let mut cur = cell.sum_bits.load(MemOrdering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + degrade).to_bits();
            match cell.sum_bits.compare_exchange_weak(
                cur,
                next,
                MemOrdering::Relaxed,
                MemOrdering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        cell.count.fetch_add(1, MemOrdering::Relaxed);
    }

    /// Records one observed degradation per unit fractionality.
    pub(crate) fn record(&self, vi: usize, up: bool, degrade_per_frac: f64) {
        Self::add(&self.cells[vi][up as usize], degrade_per_frac);
        Self::add(&self.global, degrade_per_frac);
    }

    /// Observation count of one direction (the reliability test).
    pub(crate) fn observations(&self, vi: usize, up: bool) -> u64 {
        self.cells[vi][up as usize].count.load(MemOrdering::Relaxed)
    }

    /// Mean observed degradation per unit fractionality; variables with
    /// no observations inherit the global mean (0 before any
    /// observation anywhere, which makes scoring fall back to pure
    /// fractionality ordering).
    pub(crate) fn estimate(&self, vi: usize, up: bool) -> f64 {
        let cell = &self.cells[vi][up as usize];
        let n = cell.count.load(MemOrdering::Relaxed);
        let (sum, n) = if n > 0 {
            (cell.sum_bits.load(MemOrdering::Relaxed), n)
        } else {
            let gn = self.global.count.load(MemOrdering::Relaxed);
            if gn == 0 {
                return 0.0;
            }
            (self.global.sum_bits.load(MemOrdering::Relaxed), gn)
        };
        f64::from_bits(sum) / n as f64
    }
}

// ---------------------------------------------------------------------------
// LP backends
// ---------------------------------------------------------------------------

/// What the search core needs from an LP layer: apply a variable box,
/// solve the node relaxation, snapshot warm-start state, and run the
/// round-and-fix / hint pinning protocols.
pub(crate) trait LpBackend {
    /// Pushes a model variable's current box into the LP (a no-op for
    /// variables without standard-form columns, i.e. fixed at the root).
    fn set_var_box(&mut self, vi: usize, lo: f64, hi: f64);

    /// Solves the current node LP and returns the relaxation optimum.
    fn solve_node(
        &mut self,
        opts: &SolverOptions,
        parent: Option<&BasisState>,
        stats: &mut BranchBoundStats,
    ) -> Result<Solution, SolveError>;

    /// Warm-start state children should resume from (`None` when the
    /// backend has none, or warm starts are disabled).
    fn snapshot(&self, opts: &SolverOptions) -> Option<BasisState>;

    /// Round-and-fix: pin `pins`, re-solve the continuous part, restore
    /// the boxes in `restore` (and any internal LP state), and return
    /// the polished candidate — `fallback` when the re-solve fails.
    fn round_and_fix(
        &mut self,
        opts: &SolverOptions,
        pins: &[(usize, f64)],
        restore: &[(usize, f64, f64)],
        fallback: &Solution,
        stats: &mut BranchBoundStats,
    ) -> Solution;

    /// Hint seeding: pin `pins`, solve from scratch, restore, and return
    /// the solution (`None` when the pinned LP fails).
    fn seed_hint(
        &mut self,
        opts: &SolverOptions,
        pins: &[(usize, f64)],
        restore: &[(usize, f64, f64)],
        stats: &mut BranchBoundStats,
    ) -> Option<Solution>;

    /// Final stats the backend owns (pivot totals, factorization
    /// telemetry).
    fn finish(&self, stats: &mut BranchBoundStats);

    /// Lazily-activatable cut rows this backend carries (warm backend
    /// only; 0 everywhere else).
    fn cut_count(&self) -> usize {
        0
    }

    /// Checks every inactive cut against `sol`, activates the violated
    /// ones (tightening their row rhs to the integer-valid value in
    /// place), and returns how many fired — the caller must then
    /// re-solve the node LP.
    fn separate_cuts(&mut self, sol: &Solution) -> usize {
        let _ = sol;
        0
    }

    /// Strong-branch probe: a bounded dual reoptimization of the child
    /// box `[lo, hi]` of `vi` from the current node optimum, restoring
    /// the box `[restore_lo, restore_hi]` (but not the basis — any
    /// dual-feasible basis warm-starts any node) afterwards.
    fn probe_branch(
        &mut self,
        opts: &SolverOptions,
        vi: usize,
        lo: f64,
        hi: f64,
        restore_lo: f64,
        restore_hi: f64,
    ) -> ProbeOutcome {
        let _ = (opts, vi, lo, hi, restore_lo, restore_hi);
        ProbeOutcome::Skipped
    }
}

/// Revised-kernel backend over a [`BoxedForm`] built once; branching
/// mutates column boxes in place and nodes dual-reoptimize from the
/// previous basis. The form is behind an `Arc` — read-only after the
/// build — so the parallel search can hand one copy to every worker's
/// backend while each worker keeps exclusive ownership of its kernel.
pub(crate) struct WarmBackend<'a> {
    pub(crate) model: &'a Model,
    pub(crate) form: Arc<BoxedForm>,
    /// Per model variable: the standard-form substitution of every
    /// branchable integer (shifted, mirrored, or split); `None` for
    /// continuous variables and integers fixed at the root. Branch boxes
    /// translate through [`ColMap::box_updates`].
    pub(crate) int_maps: Vec<Option<ColMap>>,
    pub(crate) kernel: Revised,
    /// Which cut rows have been activated (tightened to their
    /// integer-valid rhs). Activated rhs values live in `kernel.b`, and
    /// [`crate::revised::Revised::rebuilt`] copies `b` forward — so
    /// activations survive every recovery-ladder rebuild without
    /// re-application.
    pub(crate) active_cuts: Vec<bool>,
}

impl WarmBackend<'_> {
    /// Dual-reoptimizes the kernel **in place** (no refactorization): any
    /// dual-feasible basis is a valid warm-start seed for any rhs, so the
    /// state the previous node left behind works directly. `Err` values
    /// are *soft* failures (fall back) except [`SolveError::Infeasible`],
    /// which is a genuine verdict.
    fn try_warm_in_place(&mut self, opts: &SolverOptions) -> Result<(), SolveError> {
        // Bounded reoptimization: a healthy warm start takes a handful of
        // pivots; if the dual run exceeds this budget a cold solve is
        // cheaper than fighting degeneracy.
        let (m, n) = self.kernel.dims();
        let mut dual_budget = (1_000 + m + n / 4).min(opts.max_pivots);
        self.kernel.dual_reopt(opts, &mut dual_budget)?;
        let mut budget = opts.max_pivots;
        self.kernel.primal_opt(opts, &mut budget)?;
        if self.kernel.has_active_artificial(1e-6) {
            return Err(SolveError::Numerical("artificial reactivated".into()));
        }
        Ok(())
    }

    /// Like [`WarmBackend::try_warm_in_place`] but re-installing an
    /// explicit (parent) basis first — the fallback when the in-place
    /// state is unusable.
    fn try_warm_install(
        &mut self,
        opts: &SolverOptions,
        state: &BasisState,
    ) -> Result<(), SolveError> {
        self.kernel.install_basis(state)?;
        self.try_warm_in_place(opts)
    }

    /// Reoptimizes after a bound change without node bookkeeping (used by
    /// the round-and-fix heuristic); cold fallback included.
    fn reopt_in_place(&mut self, opts: &SolverOptions) -> Result<(), SolveError> {
        let warm = if self.kernel.dual_ok() {
            self.try_warm_in_place(opts)
        } else {
            Err(SolveError::Numerical("kernel not dual feasible".into()))
        };
        match warm {
            Ok(()) => Ok(()),
            Err(SolveError::Infeasible) => Err(SolveError::Infeasible),
            Err(_) => {
                let mut budget = opts.max_pivots;
                self.kernel.solve_two_phase(opts, &mut budget)
            }
        }
    }

    /// The solution at the kernel's current optimum.
    fn node_solution(&self) -> Solution {
        let values = self.form.sf.recover(&self.kernel.values());
        let objective = self.model.objective.eval(&values);
        Solution {
            values,
            objective,
            status: Status::Optimal,
        }
    }

    /// The per-node recovery ladder, rungs 3–6 of [`crate::recover`]:
    /// product-form switch → cold rebuild → Bland-only pricing →
    /// dense-oracle kernel. Entered after a cold solve failed with a
    /// retryable error (budget/numerics) or produced a bound the
    /// residual trust gate refused. Every rung is counted before its
    /// attempt, re-solves from scratch on a fresh pivot budget, and must
    /// itself pass the trust gate; `Infeasible`/`Unbounded` from a rung
    /// is a genuine verdict. On success (or a verdict) the original
    /// configuration is restored — the next node then cold-starts
    /// through the ordinary warm-fallback path. Total failure returns
    /// the error that started the ladder.
    fn recover_node(
        &mut self,
        opts: &SolverOptions,
        first: SolveError,
    ) -> Result<Solution, SolveError> {
        for rung in 0..4u8 {
            // The ladder must not fight a spent wall clock: each failed
            // attempt would just re-pay the solve entry check.
            if self.kernel.out_of_time() {
                break;
            }
            match rung {
                0 => {
                    self.kernel.recovery.product_form_switches += 1;
                    self.kernel.set_update_kind(UpdateKind::ProductForm);
                }
                1 => {
                    self.kernel.recovery.cold_rebuilds += 1;
                    self.kernel = self.kernel.rebuilt(&self.form, opts);
                }
                2 => {
                    self.kernel.recovery.bland_restarts += 1;
                    self.kernel.set_force_bland(true);
                }
                _ => {
                    self.kernel.recovery.dense_oracle_solves += 1;
                    let dense = SolverOptions {
                        factor: FactorKind::Dense,
                        update: UpdateKind::ProductForm,
                        ..opts.clone()
                    };
                    self.kernel = self.kernel.rebuilt(&self.form, &dense);
                }
            }
            let mut budget = opts.max_pivots;
            match self.kernel.solve_two_phase(opts, &mut budget) {
                Ok(()) => {
                    if self.kernel.verify_residual(opts) {
                        // Extract before the restore discards the state.
                        let sol = self.node_solution();
                        self.restore_kernel(opts);
                        return Ok(sol);
                    }
                    // Untrustworthy bound: escalate to the next rung.
                }
                Err(e @ (SolveError::Infeasible | SolveError::Unbounded)) => {
                    self.restore_kernel(opts);
                    return Err(e);
                }
                Err(_) => {}
            }
        }
        // Exhausted (or out of time): leave a clean configuration behind
        // and report the failure that started the ladder.
        self.restore_kernel(opts);
        Err(first)
    }

    /// Restores the pre-ladder configuration: Bland forcing off, a fresh
    /// kernel under the original options. The fresh kernel has no basis
    /// yet — [`LpBackend::snapshot`] guards against handing that state
    /// to children, and the next node solve re-establishes one (warm
    /// from its parent snapshot, or cold).
    fn restore_kernel(&mut self, opts: &SolverOptions) {
        self.kernel.set_force_bland(false);
        self.kernel = self.kernel.rebuilt(&self.form, opts);
    }

    /// Activates cut `i` (tightens its row to the integer-valid rhs) if
    /// this backend has not already — the parallel workers use this to
    /// mirror activations other workers published.
    pub(crate) fn apply_cut(&mut self, i: usize) {
        if !self.active_cuts[i] {
            let cr = self.form.cut_rows[i];
            self.kernel.set_rhs(cr.row, cr.strong_b);
            self.active_cuts[i] = true;
        }
    }
}

impl LpBackend for WarmBackend<'_> {
    fn set_var_box(&mut self, vi: usize, lo: f64, hi: f64) {
        if let Some(map) = self.int_maps[vi] {
            for (col, l, u) in map.box_updates(lo, hi).into_iter().flatten() {
                self.kernel.set_col_bounds(col, l, u);
            }
        }
    }

    /// Solves the current node LP: in-place dual reoptimization when the
    /// kernel state allows it, else from the parent basis, else cold.
    fn solve_node(
        &mut self,
        opts: &SolverOptions,
        parent: Option<&BasisState>,
        stats: &mut BranchBoundStats,
    ) -> Result<Solution, SolveError> {
        if let Some(parent_state) = parent.filter(|_| opts.warm_start) {
            let outcome = if self.kernel.dual_ok() {
                self.try_warm_in_place(opts)
            } else {
                Err(SolveError::Numerical("kernel not dual feasible".into()))
            };
            let outcome = match outcome {
                // Soft failure: retry from the parent's optimal basis.
                Err(e) if e != SolveError::Infeasible => self.try_warm_install(opts, parent_state),
                other => other,
            };
            match outcome {
                Ok(()) => {
                    // Residual trust gate: a bound computed on drifting
                    // factors must not prune — fall through to the cold
                    // path instead (the gate already healed the factors).
                    if self.kernel.verify_residual(opts) {
                        stats.warm_solves += 1;
                        return Ok(self.node_solution());
                    }
                }
                Err(SolveError::Infeasible) => {
                    // A dual-simplex proof of infeasibility concluded
                    // the node — that is a successful warm solve.
                    stats.warm_solves += 1;
                    return Err(SolveError::Infeasible);
                }
                // Iteration limit, numerics, singular basis: retry cold.
                Err(_) => {}
            }
        }
        stats.cold_solves += 1;
        let mut budget = opts.max_pivots;
        match self.kernel.solve_two_phase(opts, &mut budget) {
            Ok(()) => {
                if self.kernel.verify_residual(opts) {
                    return Ok(self.node_solution());
                }
                self.recover_node(
                    opts,
                    SolveError::Numerical("residual drift at node bound".into()),
                )
            }
            // Genuine verdicts end the node; retryable failures (budget,
            // numerics) enter the recovery ladder.
            Err(e @ (SolveError::Infeasible | SolveError::Unbounded)) => Err(e),
            Err(first) => self.recover_node(opts, first),
        }
    }

    fn snapshot(&self, opts: &SolverOptions) -> Option<BasisState> {
        // Skipped entirely in the cold A/B configuration, which never
        // reads it; also skipped right after a ladder restore, whose
        // fresh kernel has no basis to hand to children yet.
        (opts.warm_start && self.kernel.has_basis()).then(|| self.kernel.basis_snapshot())
    }

    /// Pin every branchable integer's box to the rounded relaxation
    /// value, reoptimize the continuous part from the current basis, and
    /// return the result. The pre-heuristic basis is restored afterwards
    /// so the next node's in-place warm start resumes from the node
    /// optimum instead of re-navigating away from the heuristic's pinned
    /// vertex (a no-op when the polish took zero pivots).
    fn round_and_fix(
        &mut self,
        opts: &SolverOptions,
        pins: &[(usize, f64)],
        restore: &[(usize, f64, f64)],
        fallback: &Solution,
        _stats: &mut BranchBoundStats,
    ) -> Solution {
        // The basis restore below only matters when later solves warm
        // start in place; cold mode re-crashes every node anyway. A
        // kernel fresh off a ladder restore has no basis to save.
        let pre_basis =
            (opts.warm_start && self.kernel.has_basis()).then(|| self.kernel.basis_snapshot());
        for &(vi, val) in pins {
            self.set_var_box(vi, val, val);
        }
        let solved = self.reopt_in_place(opts);
        let candidate = if solved.is_ok() && self.kernel.verify_residual(opts) {
            self.node_solution()
        } else {
            // The polish re-solve failed (rare numerics) or its result
            // flunked the residual trust gate; fall back to the
            // relaxation point itself rather than dropping it.
            fallback.clone()
        };
        for &(vi, l, h) in restore {
            self.set_var_box(vi, l, h);
        }
        if let Some(pre_basis) = pre_basis {
            if self.kernel.install_basis(&pre_basis).is_ok() {
                // The restored basis is the node's phase-2 optimum, hence
                // dual feasible; a (normally zero-pivot) dual pass
                // re-certifies it so the next node can warm-start in place.
                let mut budget = opts.max_pivots;
                let _ = self.kernel.dual_reopt(opts, &mut budget);
            }
        }
        candidate
    }

    fn seed_hint(
        &mut self,
        opts: &SolverOptions,
        pins: &[(usize, f64)],
        restore: &[(usize, f64, f64)],
        _stats: &mut BranchBoundStats,
    ) -> Option<Solution> {
        for &(vi, val) in pins {
            self.set_var_box(vi, val, val);
        }
        let mut budget = opts.max_pivots;
        let sol = match self.kernel.solve_two_phase(opts, &mut budget) {
            // The hint becomes an incumbent, so it passes the same
            // residual trust gate as node bounds.
            Ok(()) if self.kernel.verify_residual(opts) => Some(self.node_solution()),
            _ => None,
        };
        for &(vi, l, h) in restore {
            self.set_var_box(vi, l, h);
        }
        sol
    }

    /// Folds this backend's kernel telemetry into `stats`
    /// **additively**: counters accumulate, peaks take the max, and the
    /// recovery ledger is absorbed rather than overwritten. The serial
    /// search calls this once on zeroed stats (where `+=` equals `=`);
    /// the parallel merge layer calls it once per worker into the same
    /// struct, so an assignment here would silently drop every worker's
    /// counters but the last — including recovery counters from
    /// fallback re-solves.
    fn finish(&self, stats: &mut BranchBoundStats) {
        stats.simplex_iters += self.kernel.iters;
        stats.refactors += self.kernel.factor_stats.refactors;
        stats.ft_updates += self.kernel.factor_stats.ft_updates;
        stats.forced_refactors += self.kernel.factor_stats.forced_refactors;
        stats.peak_lu_nnz = stats.peak_lu_nnz.max(self.kernel.factor_stats.peak_lu_nnz);
        stats.peak_u_nnz = stats.peak_u_nnz.max(self.kernel.factor_stats.peak_u_nnz);
        stats.basis_rows = self.kernel.dims().0;
        stats.recovery.absorb(self.kernel.recovery());
        stats.dual_pivots += self.kernel.pricing_stats.dual_pivots;
        stats.primal_pivots += self.kernel.pricing_stats.primal_pivots;
        stats.bound_flips += self.kernel.pricing_stats.bound_flips;
        stats.weight_resets += self.kernel.pricing_stats.weight_resets;
    }

    fn cut_count(&self) -> usize {
        self.form.cut_rows.len()
    }

    fn separate_cuts(&mut self, sol: &Solution) -> usize {
        let mut activated = 0;
        for (i, cr) in self.form.cut_rows.iter().enumerate() {
            if self.active_cuts[i] {
                continue;
            }
            let cut = &self.model.cuts[cr.cut];
            if cut.expr.eval(&sol.values) < cut.rhs - 1e-6 {
                // Tighten the row in place: an rhs change leaves reduced
                // costs (dual feasibility) untouched, so the next dual
                // reoptimization re-solves from the current basis.
                self.kernel.set_rhs(cr.row, cr.strong_b);
                self.active_cuts[i] = true;
                activated += 1;
            }
        }
        activated
    }

    fn probe_branch(
        &mut self,
        opts: &SolverOptions,
        vi: usize,
        lo: f64,
        hi: f64,
        restore_lo: f64,
        restore_hi: f64,
    ) -> ProbeOutcome {
        if self.int_maps[vi].is_none() || !opts.warm_start || !self.kernel.dual_ok() {
            return ProbeOutcome::Skipped;
        }
        self.set_var_box(vi, lo, hi);
        let mut budget = opts.strong_branch_pivots;
        let out = match self.kernel.dual_reopt(opts, &mut budget) {
            Ok(()) if !self.kernel.has_active_artificial(1e-6) => ProbeOutcome::Bound(
                self.model
                    .objective
                    .eval(&self.form.sf.recover(&self.kernel.values())),
            ),
            Ok(()) => ProbeOutcome::Skipped,
            Err(SolveError::Infeasible) => ProbeOutcome::Infeasible,
            // Budget exhausted or numerics: no usable probe bound.
            Err(_) => ProbeOutcome::Skipped,
        };
        self.set_var_box(vi, restore_lo, restore_hi);
        out
    }
}

// ---------------------------------------------------------------------------
// Search core
// ---------------------------------------------------------------------------

/// One node of the branch tree: a single bound tightening of `vi` on top
/// of `parent`. Activating a node walks the tree from the previously
/// active one (undo to the lowest common ancestor, apply down), so the
/// stepwise box mutations — and hence the kernel state — are identical to
/// what the historical recursive DFS produced.
pub(crate) struct TreeNode {
    pub(crate) parent: usize,
    pub(crate) depth: usize,
    /// Model variable branched on (`usize::MAX` for the root).
    pub(crate) vi: usize,
    /// The tightened box of `vi` at this node.
    pub(crate) lo: f64,
    pub(crate) hi: f64,
    /// `vi`'s box at the parent (for the undo walk).
    pub(crate) parent_lo: f64,
    pub(crate) parent_hi: f64,
    /// `true` when this is the up (ceil) child of its branching.
    pub(crate) up: bool,
    /// Fractionality of the parent relaxation value toward this side
    /// (`val - ⌊val⌋` down, `⌈val⌉ - val` up); 0 at the root.
    pub(crate) frac: f64,
    /// Parent relaxation objective (model sense) — the baseline a
    /// pseudo-cost observation measures this node's bound degradation
    /// against. NaN at the root.
    pub(crate) parent_obj: f64,
}

impl TreeNode {
    /// The root sentinel (no parent, no tightening).
    pub(crate) fn root() -> TreeNode {
        TreeNode {
            parent: usize::MAX,
            depth: 0,
            vi: usize::MAX,
            lo: 0.0,
            hi: 0.0,
            parent_lo: 0.0,
            parent_hi: 0.0,
            up: false,
            frac: 0.0,
            parent_obj: f64::NAN,
        }
    }
}

/// The two children of branching `vi` at fractional value `val` inside
/// the box `[plo, phi]`, returned `[far, near]` (the nearer branching
/// side last, so LIFO consumers pop it first and equal-bound heap ties
/// resolve toward it). Children whose box would be empty are `None`.
/// Shared between the serial core's `expand` and the parallel workers so
/// both layers branch identically.
pub(crate) fn branch_children(
    parent: usize,
    depth: usize,
    vi: usize,
    val: f64,
    plo: f64,
    phi: f64,
    parent_obj: f64,
) -> [Option<TreeNode>; 2] {
    let floor = val.floor();
    let ceil = val.ceil();
    let down_first = val - floor <= ceil - val;
    let down_child = (plo <= phi.min(floor)).then(|| TreeNode {
        parent,
        depth,
        vi,
        lo: plo,
        hi: phi.min(floor),
        parent_lo: plo,
        parent_hi: phi,
        up: false,
        frac: val - floor,
        parent_obj,
    });
    let up_child = (plo.max(ceil) <= phi).then(|| TreeNode {
        parent,
        depth,
        vi,
        lo: plo.max(ceil),
        hi: phi,
        parent_lo: plo,
        parent_hi: phi,
        up: true,
        frac: ceil - val,
        parent_obj,
    });
    if down_first {
        [up_child, down_child]
    } else {
        [down_child, up_child]
    }
}

/// Most-fractional branching: highest priority class first, most
/// fractional within it, **ties broken toward the lowest `VarId`** —
/// explicit, so selection never depends on the iteration order of
/// `int_vars` (the workers=1 bit-exactness contract). Returns `None`
/// when the point is integral. Shared between the serial core and the
/// parallel workers.
pub(crate) fn most_fractional_of(
    model: &Model,
    int_vars: &[VarId],
    int_tol: f64,
    sol: &Solution,
) -> Option<(VarId, f64)> {
    let mut best: Option<(VarId, f64)> = None;
    let mut best_key = (i32::MIN, int_tol);
    for &v in int_vars {
        let val = sol.value(v);
        let frac = (val - val.round()).abs();
        if frac <= int_tol {
            continue;
        }
        let key = (model.var(v).priority(), frac);
        let wins = key > best_key || (key == best_key && best.is_some_and(|(bv, _)| v < bv));
        if wins {
            best_key = key;
            best = Some((v, val));
        }
    }
    best
}

/// Pseudo-cost branching with reliability probes: among the fractional
/// candidates of the highest priority class, strong-branch (bounded
/// dual-simplex probe of both children) the most fractional candidates
/// whose pseudo-costs are not yet reliable, record the observed
/// degradations, and pick the candidate maximizing the product score
/// `max(down·f⁻, ε) · max(up·f⁺, ε)`. A probe that proves a child
/// infeasible scores `+∞` (branching there closes one side for free)
/// but never prunes. Ties break toward higher fractionality, then lower
/// `VarId`. Returns `None` when the point is integral. Shared between
/// the serial core and the parallel workers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn select_branch_var<B: LpBackend>(
    backend: &mut B,
    model: &Model,
    opts: &SolverOptions,
    int_vars: &[VarId],
    sol: &Solution,
    lo: &[f64],
    hi: &[f64],
    sense_mul: f64,
    pseudo: &PseudoCosts,
    stats: &mut BranchBoundStats,
) -> Option<(VarId, f64)> {
    struct Cand {
        v: VarId,
        val: f64,
        frac: f64,
        fd: f64,
        fu: f64,
        /// Probed degradations (NaN = not probed → use the estimate).
        down: f64,
        up: f64,
    }
    let mut cands: Vec<Cand> = Vec::new();
    let mut top = i32::MIN;
    for &v in int_vars {
        let val = sol.value(v);
        let frac = (val - val.round()).abs();
        if frac <= opts.int_tol {
            continue;
        }
        let p = model.var(v).priority();
        if p > top {
            top = p;
            cands.clear();
        }
        if p == top {
            cands.push(Cand {
                v,
                val,
                frac,
                fd: val - val.floor(),
                fu: val.ceil() - val,
                down: f64::NAN,
                up: f64::NAN,
            });
        }
    }
    if cands.is_empty() {
        return None;
    }
    if cands.len() == 1 {
        return Some((cands[0].v, cands[0].val));
    }
    // Reliability rule: strong-branch the most fractional candidates
    // whose weaker direction has fewer than `reliability` observations.
    if opts.reliability > 0 && opts.strong_branch_candidates > 0 {
        let mut unreliable: Vec<usize> = (0..cands.len())
            .filter(|&i| {
                let vi = cands[i].v.index();
                let seen = pseudo
                    .observations(vi, false)
                    .min(pseudo.observations(vi, true));
                (seen as usize) < opts.reliability
            })
            .collect();
        unreliable.sort_by(|&a, &b| {
            cands[b]
                .frac
                .total_cmp(&cands[a].frac)
                .then(cands[a].v.index().cmp(&cands[b].v.index()))
        });
        unreliable.truncate(opts.strong_branch_candidates);
        for i in unreliable {
            let (vi, val, fd, fu) = {
                let c = &cands[i];
                (c.v.index(), c.val, c.fd, c.fu)
            };
            let (l, h) = (lo[vi], hi[vi]);
            let node_obj = sense_mul * sol.objective;
            let (floor, ceil) = (val.floor(), val.ceil());
            // An empty child box is an infeasible side by construction.
            let down = if l <= h.min(floor) {
                backend.probe_branch(opts, vi, l, h.min(floor), l, h)
            } else {
                ProbeOutcome::Infeasible
            };
            let up = if l.max(ceil) <= h {
                backend.probe_branch(opts, vi, l.max(ceil), h, l, h)
            } else {
                ProbeOutcome::Infeasible
            };
            let mut probed = false;
            for (out, is_up, f) in [(down, false, fd), (up, true, fu)] {
                match out {
                    ProbeOutcome::Bound(obj) => {
                        probed = true;
                        let degrade = (sense_mul * obj - node_obj).max(0.0);
                        if f > opts.int_tol {
                            pseudo.record(vi, is_up, degrade / f);
                            stats.pseudo_updates += 1;
                        }
                        let slot = if is_up {
                            &mut cands[i].up
                        } else {
                            &mut cands[i].down
                        };
                        *slot = degrade;
                    }
                    ProbeOutcome::Infeasible => {
                        probed = true;
                        let slot = if is_up {
                            &mut cands[i].up
                        } else {
                            &mut cands[i].down
                        };
                        *slot = f64::INFINITY;
                    }
                    ProbeOutcome::Skipped => {}
                }
            }
            if probed {
                stats.strong_branches += 1;
            }
        }
    }
    // Product-rule scoring, probe results overriding estimates.
    let mut best_i = 0;
    let mut best_score = f64::NEG_INFINITY;
    for (i, c) in cands.iter().enumerate() {
        let vi = c.v.index();
        let d = if c.down.is_nan() {
            pseudo.estimate(vi, false) * c.fd
        } else {
            c.down
        };
        let u = if c.up.is_nan() {
            pseudo.estimate(vi, true) * c.fu
        } else {
            c.up
        };
        let score = d.max(1e-6) * u.max(1e-6);
        let wins = score > best_score
            || (score == best_score && {
                let b = &cands[best_i];
                c.frac > b.frac || (c.frac == b.frac && c.v < b.v)
            });
        if wins {
            best_score = score;
            best_i = i;
        }
    }
    Some((cands[best_i].v, cands[best_i].val))
}

/// An open (queued) node: arena index, parent LP bound, ordering key,
/// push sequence number, and the parent's basis for warm-start handoff.
pub(crate) struct OpenNode {
    pub(crate) node: usize,
    /// Valid (parent) LP bound, signed (minimization form) — what
    /// pruning and discard tests compare against the incumbent.
    pub(crate) bound: f64,
    /// Heap-ordering key, signed. Equals `bound` except under
    /// pseudo-cost best-bound, where it is the best-estimate score
    /// `bound + Σ pseudo-cost·fractionality` — a prediction, never used
    /// to prune.
    pub(crate) key: f64,
    pub(crate) seq: usize,
    pub(crate) basis: Option<Arc<BasisState>>,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for OpenNode {}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenNode {
    /// "Greatest" (popped first by the max-heap) = smallest bound key;
    /// ties break toward the most recently pushed node, so equal-bound
    /// stretches still dive like DFS.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then(self.seq.cmp(&other.seq))
    }
}

/// The open-node container: LIFO stack for DFS, bound-keyed priority
/// queue for best-bound.
pub(crate) enum Frontier {
    Dfs(Vec<OpenNode>),
    Best(BinaryHeap<OpenNode>),
}

impl Frontier {
    pub(crate) fn new(order: NodeOrder) -> Frontier {
        match order {
            NodeOrder::DfsNearerFirst => Frontier::Dfs(Vec::new()),
            NodeOrder::BestBound => Frontier::Best(BinaryHeap::new()),
        }
    }
    pub(crate) fn push(&mut self, n: OpenNode) {
        match self {
            Frontier::Dfs(v) => v.push(n),
            Frontier::Best(h) => h.push(n),
        }
    }
    pub(crate) fn pop(&mut self) -> Option<OpenNode> {
        match self {
            Frontier::Dfs(v) => v.pop(),
            Frontier::Best(h) => h.pop(),
        }
    }
    pub(crate) fn len(&self) -> usize {
        match self {
            Frontier::Dfs(v) => v.len(),
            Frontier::Best(h) => h.len(),
        }
    }
    /// Minimum valid LP bound over the open nodes (`+∞` when empty).
    /// Under pseudo-cost scoring the heap is estimate-ordered, so the
    /// minimum genuinely requires the scan.
    pub(crate) fn min_bound(&self) -> f64 {
        let fold = |it: &mut dyn Iterator<Item = f64>| it.fold(f64::INFINITY, f64::min);
        match self {
            Frontier::Dfs(v) => fold(&mut v.iter().map(|o| o.bound)),
            Frontier::Best(h) => fold(&mut h.iter().map(|o| o.bound)),
        }
    }
}

/// The generic branch & bound driver; see the module docs.
struct SearchCore<'a, B: LpBackend> {
    backend: B,
    model: &'a Model,
    opts: &'a SolverOptions,
    sense_mul: f64,
    /// Wall-clock deadline, captured **once** at solve start
    /// ([`SolverOptions::time_limit`] past that instant) and shared with
    /// the backend's kernel — budget checks must measure one common
    /// clock, never restart it.
    deadline: Option<Instant>,
    best: Option<Solution>,
    stats: BranchBoundStats,
    int_vars: Vec<VarId>,
    /// Current branch bounds per model variable (model space), tracking
    /// the active tree node.
    lo: Vec<f64>,
    hi: Vec<f64>,
    arena: Vec<TreeNode>,
    /// Arena index of the node whose boxes are currently applied.
    cur: usize,
    frontier: Frontier,
    /// Best-bound dive stack: each node popped from the priority queue
    /// starts a bounded depth-first **episode** over its subtree
    /// (children go here, LIFO, bypassing the queue) — plunging is what
    /// finds integral leaves when the LP bound is weak, where pure
    /// best-first would wander the shallow frontier forever. When the
    /// episode exceeds [`SearchCore::episode_cap`] solved nodes, the
    /// remaining dive entries are flushed into the queue (each already
    /// carries its parent bound key and basis), and the globally best
    /// bound picks the next episode's root.
    dive: Vec<OpenNode>,
    /// Nodes solved in the current best-bound episode.
    episode: usize,
    /// Episode length cap: scales with the number of integer variables
    /// (an episode should be able to reach an integral leaf, which takes
    /// on the order of one branching level per fractional integer).
    episode_cap: usize,
    seq: usize,
    /// Learned pseudo-cost table (unused under
    /// [`Branching::MostFractional`]).
    pseudo: PseudoCosts,
}

impl<'a, B: LpBackend> SearchCore<'a, B> {
    fn new(
        model: &'a Model,
        opts: &'a SolverOptions,
        backend: B,
        deadline: Option<Instant>,
    ) -> Self {
        let int_vars: Vec<VarId> = model
            .vars()
            .filter(|(_, v)| v.is_integer())
            .map(|(id, _)| id)
            .collect();
        let int_count = int_vars.len();
        SearchCore {
            backend,
            model,
            opts,
            sense_mul: match model.sense {
                Sense::Minimize => 1.0,
                Sense::Maximize => -1.0,
            },
            deadline,
            best: None,
            stats: BranchBoundStats {
                order: opts.node_order,
                ..BranchBoundStats::default()
            },
            int_vars,
            lo: model.vars.iter().map(|v| v.lower).collect(),
            hi: model.vars.iter().map(|v| v.upper).collect(),
            arena: Vec::new(),
            cur: 0,
            frontier: Frontier::new(opts.node_order),
            dive: Vec::new(),
            episode: 0,
            episode_cap: 64.max(2 * int_count),
            seq: 0,
            pseudo: PseudoCosts::new(model.vars.len()),
        }
    }

    fn out_of_budget(&self) -> bool {
        if self.stats.nodes >= self.opts.max_nodes {
            return true;
        }
        self.deadline.is_some_and(|dl| Instant::now() >= dl)
    }

    /// Signed objective for pruning comparisons (always "minimize").
    fn signed(&self, obj: f64) -> f64 {
        self.sense_mul * obj
    }

    /// Picks the branching variable according to
    /// [`SolverOptions::branching`]; `None` when the point is integral.
    fn pick_branch_var(&mut self, sol: &Solution) -> Option<(VarId, f64)> {
        match self.opts.branching {
            Branching::MostFractional => {
                most_fractional_of(self.model, &self.int_vars, self.opts.int_tol, sol)
            }
            Branching::PseudoCost => select_branch_var(
                &mut self.backend,
                self.model,
                self.opts,
                &self.int_vars,
                sol,
                &self.lo,
                &self.hi,
                self.sense_mul,
                &self.pseudo,
                &mut self.stats,
            ),
        }
    }

    /// Minimum valid LP bound over every open node (frontier plus the
    /// pending dive entries), signed; `+∞` when nothing is open.
    fn open_bound_min(&self) -> f64 {
        self.dive
            .iter()
            .map(|o| o.bound)
            .fold(self.frontier.min_bound(), f64::min)
    }

    /// Gap termination test against the incumbent. `node_bound` is the
    /// signed bound of the node currently being expanded (still open
    /// from the dual-bound perspective).
    ///
    /// Historically the gap was measured against the **root** LP bound —
    /// the weakest valid bound, so `gap_tol` fired late and the reported
    /// gap over-stated reality on solved instances. Under pseudo-cost
    /// branching the minimum over the open set (which is the valid
    /// global dual bound) is used instead; most-fractional mode keeps
    /// the historical rule so the pinned goldens replay bit-exact.
    fn within_gap(&self, node_bound: f64) -> bool {
        let Some(best) = &self.best else { return false };
        if self.stats.nodes == 0 {
            return false;
        }
        let bound = match self.opts.branching {
            Branching::MostFractional => self.signed(self.stats.root_bound),
            Branching::PseudoCost => node_bound.min(self.open_bound_min()),
        };
        let inc = self.signed(best.objective);
        inc - bound <= self.opts.gap_tol * inc.abs().max(1.0)
    }

    /// Tightest proven dual bound at this point of the search (signed):
    /// open-node minimum joined with the incumbent, falling back to the
    /// root bound when nothing tighter exists.
    fn proven_dual_bound(&self) -> f64 {
        let inc = self
            .best
            .as_ref()
            .map_or(f64::INFINITY, |b| self.signed(b.objective));
        let bound = self.open_bound_min().min(inc);
        if bound.is_finite() {
            bound
        } else {
            self.signed(self.stats.root_bound)
        }
    }

    /// Installs `candidate` as the incumbent when it is integral and
    /// improves on the current best.
    fn accept_incumbent(&mut self, candidate: Solution) {
        // Rounded values clamped into the current box can be fractional
        // when an integer variable carries fractional bounds — only
        // truly integral points may become incumbents.
        let integral = self.int_vars.iter().all(|&v| {
            let x = candidate.value(v);
            (x - x.round()).abs() <= self.opts.int_tol
        });
        let better = match &self.best {
            None => true,
            Some(b) => self.signed(candidate.objective) < self.signed(b.objective) - 1e-9,
        };
        if integral && better {
            if self.stats.incumbents == 0 {
                self.stats.first_incumbent_node = self.stats.nodes;
            }
            self.stats.incumbents += 1;
            self.stats
                .incumbent_trace
                .push((self.stats.nodes, candidate.objective));
            self.best = Some(candidate);
        }
    }

    /// Round-and-fix heuristic: pin every integer's box to the rounded
    /// relaxation value, let the backend re-solve the continuous part,
    /// and offer the result as an incumbent. Integers fixed at the root
    /// have no standard-form column — their pin/restore is a no-op in
    /// the backend, so they are harmless to include.
    fn offer_incumbent(&mut self, sol: &Solution) {
        let mut pins: Vec<(usize, f64)> = Vec::with_capacity(self.int_vars.len());
        let mut restore: Vec<(usize, f64, f64)> = Vec::with_capacity(self.int_vars.len());
        for k in 0..self.int_vars.len() {
            let v = self.int_vars[k];
            let vi = v.index();
            let val = sol.value(v).round().clamp(self.lo[vi], self.hi[vi]);
            pins.push((vi, val));
            restore.push((vi, self.lo[vi], self.hi[vi]));
        }
        let candidate =
            self.backend
                .round_and_fix(self.opts, &pins, &restore, sol, &mut self.stats);
        self.accept_incumbent(candidate);
    }

    /// Warm-start hint: pin the hinted integers, solve the continuous
    /// part, and install the result as the first incumbent if integral.
    fn seed_hint(&mut self, hint: &[(VarId, f64)]) {
        if hint.is_empty() {
            return;
        }
        let mut pins: Vec<(usize, f64)> = Vec::with_capacity(hint.len());
        let mut restore: Vec<(usize, f64, f64)> = Vec::with_capacity(hint.len());
        for &(v, val) in hint {
            let vi = v.index();
            if !self.model.var(v).is_integer() {
                continue;
            }
            let val = val.round().clamp(self.lo[vi], self.hi[vi]);
            pins.push((vi, val));
            restore.push((vi, self.lo[vi], self.hi[vi]));
        }
        if let Some(sol) = self
            .backend
            .seed_hint(self.opts, &pins, &restore, &mut self.stats)
        {
            // Accepted only if truly integral on all integer vars
            // (hinted or not); recorded at node 0, before any search.
            self.accept_incumbent(sol);
        }
    }

    /// Undoes one node's tightening (restores the parent box of its
    /// branch variable).
    fn undo(&mut self, n: usize) {
        let (vi, plo, phi) = {
            let nd = &self.arena[n];
            (nd.vi, nd.parent_lo, nd.parent_hi)
        };
        self.lo[vi] = plo;
        self.hi[vi] = phi;
        self.backend.set_var_box(vi, plo, phi);
    }

    /// Applies one node's tightening.
    fn apply(&mut self, n: usize) {
        let (vi, lo, hi) = {
            let nd = &self.arena[n];
            (nd.vi, nd.lo, nd.hi)
        };
        self.lo[vi] = lo;
        self.hi[vi] = hi;
        self.backend.set_var_box(vi, lo, hi);
    }

    /// Switches the applied boxes from the currently active node to `t`
    /// by walking the tree: undo up to the lowest common ancestor, apply
    /// down to `t`. For DFS this performs exactly the unwind/descend
    /// sequence of the historical recursion; for best-bound it costs the
    /// path difference of the jump.
    fn activate(&mut self, t: usize) {
        let mut a = self.cur;
        let mut b = t;
        let mut down: Vec<usize> = Vec::new();
        while self.arena[a].depth > self.arena[b].depth {
            self.undo(a);
            a = self.arena[a].parent;
        }
        while self.arena[b].depth > self.arena[a].depth {
            down.push(b);
            b = self.arena[b].parent;
        }
        while a != b {
            self.undo(a);
            a = self.arena[a].parent;
            down.push(b);
            b = self.arena[b].parent;
        }
        for &n in down.iter().rev() {
            self.apply(n);
        }
        self.cur = t;
    }

    /// Queues the two children of an expanded node (far branching side
    /// first, so the LIFO stack pops — and equal-bound heap ties
    /// resolve — the nearer side first). Under best-bound the nearer
    /// existing child goes to the plunge slot instead of the queue.
    /// Children whose box would be empty are never queued.
    fn expand(
        &mut self,
        t: usize,
        var: VarId,
        val: f64,
        bound: f64,
        basis: Option<Arc<BasisState>>,
        sol: &Solution,
    ) {
        let vi = var.index();
        let depth = self.arena[t].depth + 1;
        let signed_bound = self.signed(bound);
        // Best-estimate scoring (pseudo-cost best-bound only): the
        // shared completion term Σ_j min(down_j·f⁻_j, up_j·f⁺_j) over
        // the *other* fractional variables, plus the per-child cost of
        // rounding `vi` itself. Estimates are predictions — they order
        // the queue but never prune (pruning reads `OpenNode::bound`).
        let estimate = self.opts.branching == Branching::PseudoCost
            && self.opts.node_order == NodeOrder::BestBound;
        let common = if estimate {
            let mut sum = 0.0;
            for &v in &self.int_vars {
                if v.index() == vi {
                    continue;
                }
                let x = sol.value(v);
                let fd = x - x.floor();
                let fu = x.ceil() - x;
                if fd.min(fu) <= self.opts.int_tol {
                    continue;
                }
                let down = self.pseudo.estimate(v.index(), false) * fd;
                let up = self.pseudo.estimate(v.index(), true) * fu;
                sum += down.min(up).max(0.0);
            }
            sum
        } else {
            0.0
        };
        let children = branch_children(t, depth, vi, val, self.lo[vi], self.hi[vi], bound);
        let mut entries: Vec<OpenNode> = Vec::with_capacity(2);
        for child in children.into_iter().flatten() {
            let key = if estimate {
                signed_bound + common + self.pseudo.estimate(vi, child.up) * child.frac
            } else {
                signed_bound
            };
            let idx = self.arena.len();
            self.arena.push(child);
            self.seq += 1;
            entries.push(OpenNode {
                node: idx,
                bound: signed_bound,
                key,
                seq: self.seq,
                basis: basis.clone(),
            });
        }
        match self.opts.node_order {
            NodeOrder::DfsNearerFirst => {
                for e in entries {
                    self.frontier.push(e);
                }
            }
            NodeOrder::BestBound => {
                // Children continue the current episode depth-first (the
                // nearer side, pushed last, pops first).
                self.dive.extend(entries);
            }
        }
        self.stats.queue_peak = self
            .stats
            .queue_peak
            .max(self.frontier.len() + self.dive.len());
    }

    /// The main loop: pop, activate, solve, bound, branch.
    fn run(&mut self) -> Result<(), SolveError> {
        self.arena.push(TreeNode::root());
        self.frontier.push(OpenNode {
            node: 0,
            bound: f64::NEG_INFINITY,
            key: f64::NEG_INFINITY,
            seq: 0,
            basis: None,
        });
        self.stats.queue_peak = 1;
        loop {
            // An over-long episode hands its remaining dive entries back
            // to the queue (each carries its own bound key and basis), so
            // the globally best bound picks the next episode's root.
            if self.episode >= self.episode_cap && !self.dive.is_empty() {
                for e in self.dive.drain(..) {
                    self.frontier.push(e);
                }
            }
            let open = match self.dive.pop() {
                Some(p) => {
                    // A dive node that cannot beat the incumbent is
                    // discarded unsolved; the episode continues with its
                    // pending siblings.
                    let prunable = self
                        .best
                        .as_ref()
                        .is_some_and(|best| p.bound >= self.signed(best.objective) - 1e-9);
                    if prunable {
                        continue;
                    }
                    p
                }
                None => {
                    self.episode = 0;
                    let Some(o) = self.frontier.pop() else { break };
                    if self.opts.node_order == NodeOrder::BestBound {
                        if let Some(best) = &self.best {
                            if o.bound >= self.signed(best.objective) - 1e-9 {
                                match self.opts.branching {
                                    // Most-fractional keys equal bounds,
                                    // so the queue is bound-sorted: every
                                    // remaining open node is at least as
                                    // bad and the incumbent is proven
                                    // optimal. Discarded entries were
                                    // never solved and are not counted
                                    // as nodes.
                                    Branching::MostFractional => return Ok(()),
                                    // Estimate-sorted queue: only this
                                    // entry is proven prunable; keep
                                    // draining.
                                    Branching::PseudoCost => continue,
                                }
                            }
                        }
                    }
                    o
                }
            };
            if self.out_of_budget() {
                self.stats.truncated = true;
                return Ok(());
            }
            self.activate(open.node);
            self.stats.nodes += 1;
            self.episode += 1;
            let mut relax =
                match self
                    .backend
                    .solve_node(self.opts, open.basis.as_deref(), &mut self.stats)
                {
                    Ok(sol) => sol,
                    Err(SolveError::Infeasible) => {
                        self.stats.node_bounds.push(f64::NAN);
                        continue;
                    }
                    Err(SolveError::IterationLimit) | Err(SolveError::Numerical(_)) => {
                        // No usable bound for this subtree (budget or
                        // numerics): prune it and keep whatever incumbent
                        // exists — aborting would discard a feasible answer
                        // over one bad node.
                        self.stats.node_bounds.push(f64::NAN);
                        self.stats.truncated = true;
                        continue;
                    }
                    // Bound tightenings cannot make a bounded LP unbounded,
                    // but a free-integer model may genuinely be unbounded at
                    // the root.
                    Err(e) => return Err(e),
                };
            // Lazy cut separation: tighten violated cut rows to their
            // integer-valid rhs and re-solve until the point is clean.
            // The weaker pre-activation bound stays valid, so a failed
            // re-solve simply keeps it; an Infeasible verdict closes the
            // node (cuts hold for every integer point in this box).
            let mut cut_closed = false;
            if self.backend.cut_count() > 0 {
                for _ in 0..8 {
                    let fired = self.backend.separate_cuts(&relax);
                    if fired == 0 {
                        break;
                    }
                    self.stats.cuts_activated += fired;
                    match self
                        .backend
                        .solve_node(self.opts, open.basis.as_deref(), &mut self.stats)
                    {
                        Ok(sol) => relax = sol,
                        Err(SolveError::Infeasible) => {
                            cut_closed = true;
                            break;
                        }
                        Err(_) => break,
                    }
                }
            }
            self.stats.node_bounds.push(relax.objective);
            let depth = self.arena[open.node].depth;
            if depth == 0 {
                self.stats.root_bound = relax.objective;
            }
            // Pseudo-cost learning: this node's bound degradation
            // against its parent, normalized by the branch
            // fractionality.
            if self.opts.branching == Branching::PseudoCost {
                let nd = &self.arena[open.node];
                if nd.vi != usize::MAX && nd.frac > self.opts.int_tol && nd.parent_obj.is_finite() {
                    let degrade =
                        (self.signed(relax.objective) - self.signed(nd.parent_obj)).max(0.0);
                    self.pseudo.record(nd.vi, nd.up, degrade / nd.frac);
                    self.stats.pseudo_updates += 1;
                }
            }
            if cut_closed {
                continue;
            }
            if let Some(best) = &self.best {
                if self.signed(relax.objective) >= self.signed(best.objective) - 1e-9 {
                    continue; // cannot beat the incumbent
                }
            }
            // Children warm-start from this node's optimal basis —
            // snapshot before strong-branch probes or the heuristic
            // perturb the kernel. (Taking it before branching selection
            // is a pure reorder for most-fractional mode: selection
            // there never touches the kernel.)
            let my_basis = self.backend.snapshot(self.opts).map(Arc::new);
            let Some((var, val)) = self.pick_branch_var(&relax) else {
                // Integral leaf: the relaxation point IS the optimal
                // incumbent for this box.
                self.accept_incumbent(relax);
                continue;
            };
            if self.opts.rounding_heuristic && (depth == 0 || depth.is_multiple_of(8)) {
                self.offer_incumbent(&relax);
            }
            if self.within_gap(self.signed(relax.objective)) {
                return Ok(());
            }
            self.expand(open.node, var, val, relax.objective, my_basis, &relax);
        }
        Ok(())
    }
}

/// Runs the search with the given backend and assembles the result.
fn run_search<B: LpBackend>(
    model: &Model,
    opts: &SolverOptions,
    hint: &[(VarId, f64)],
    backend: B,
    deadline: Option<Instant>,
) -> Result<(Solution, BranchBoundStats), SolveError> {
    let mut core = SearchCore::new(model, opts, backend, deadline);
    core.stats.cuts_added = core.backend.cut_count();
    core.seed_hint(hint);
    core.run()?;
    // Report the proven dual bound in the model's sense (never NaN, so
    // bit-exact stats comparisons keep working).
    core.stats.dual_bound = core.sense_mul * core.proven_dual_bound();
    core.backend.finish(&mut core.stats);
    finish(core.best, core.stats)
}

// ---------------------------------------------------------------------------
// Shared entry points
// ---------------------------------------------------------------------------

pub(crate) fn finish(
    best: Option<Solution>,
    stats: BranchBoundStats,
) -> Result<(Solution, BranchBoundStats), SolveError> {
    let truncated = stats.truncated;
    match best {
        Some(mut sol) => {
            sol.status = if truncated {
                Status::Feasible
            } else {
                Status::Optimal
            };
            Ok((sol, stats))
        }
        None if truncated => Err(SolveError::IterationLimit),
        None => Err(SolveError::Infeasible),
    }
}

/// Solves a mixed-integer model; see [`Model::solve_with`] and
/// [`Model::solve_with_hint`].
pub(crate) fn solve(
    model: &Model,
    opts: &SolverOptions,
    hint: &[(VarId, f64)],
) -> Result<Solution, SolveError> {
    let (sol, _stats) = solve_with_stats_hinted(model, opts, hint)?;
    Ok(sol)
}

/// Like [`Model::solve_with`] but also returns search statistics.
///
/// # Errors
///
/// [`SolveError::Infeasible`] when no integral point exists,
/// [`SolveError::Unbounded`] when the relaxation is unbounded, and
/// [`SolveError::IterationLimit`] when limits stopped the search before any
/// incumbent was found.
pub fn solve_with_stats(
    model: &Model,
    opts: &SolverOptions,
) -> Result<(Solution, BranchBoundStats), SolveError> {
    solve_with_stats_hinted(model, opts, &[])
}

/// [`solve_with_stats`] with a warm-start hint for the integer variables.
///
/// # Errors
///
/// See [`solve_with_stats`].
pub fn solve_with_stats_hinted(
    model: &Model,
    opts: &SolverOptions,
    hint: &[(VarId, f64)],
) -> Result<(Solution, BranchBoundStats), SolveError> {
    // One deadline for the whole solve, captured here and installed on
    // every kernel the search constructs: N workers (or ladder rebuilds)
    // share a single wall-clock budget instead of each starting a fresh
    // one.
    let deadline = opts.time_limit.map(|limit| Instant::now() + limit);
    // All option normalization happens in one place; the original
    // kernel request is only remembered to arm the whole-solve oracle
    // cross-validation below.
    let want_oracle = opts.kernel == Kernel::DenseTableau;
    let (eff, _notes) = opts.resolve();
    let opts = &eff;
    let form = BoxedForm::build(model);
    if form.sf.proven_infeasible {
        // A constant row is violated: no point of any kind exists.
        return Err(SolveError::Infeasible);
    }
    // Every non-fixed integer — shifted, mirrored, or free (split) —
    // branches natively through its standard-form substitution.
    let int_maps: Vec<Option<ColMap>> = model
        .vars
        .iter()
        .enumerate()
        .map(|(vi, var)| {
            if !var.integer {
                return None;
            }
            match form.sf.map[vi] {
                ColMap::Fixed { .. } => None,
                map => Some(map),
            }
        })
        .collect();
    if form.sf.rows.is_empty() {
        // Every constraint was constant (and satisfied): the model
        // separates per variable and solves in closed form.
        let result = solve_rowless(model, opts);
        if want_oracle {
            if let Ok((sol, _)) = &result {
                cross_validate_dense(model, opts, sol)?;
            }
        }
        return result;
    }
    let form = Arc::new(form);
    let result = if opts.workers >= 2 {
        crate::parallel::solve_parallel(model, opts, hint, form, int_maps, deadline)
    } else {
        let mut kernel = Revised::new(&form, opts);
        kernel.set_deadline(deadline);
        let active_cuts = vec![false; form.cut_rows.len()];
        let backend = WarmBackend {
            model,
            form,
            int_maps,
            kernel,
            active_cuts,
        };
        run_search(model, opts, hint, backend, deadline)
    };
    if want_oracle {
        if let Ok((sol, _)) = &result {
            cross_validate_dense(model, opts, sol)?;
        }
    }
    result
}

/// Closed-form solve of a rowless model (every constraint folded to a
/// satisfied constant): the objective separates per variable, so each
/// one independently takes the best value in its (integer-tightened)
/// box. Mirrors the rowless short-circuit of the standalone LP path but
/// over the integer lattice.
fn solve_rowless(
    model: &Model,
    opts: &SolverOptions,
) -> Result<(Solution, BranchBoundStats), SolveError> {
    let sense_mul = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut cost = vec![0.0; model.vars.len()];
    for (v, c) in model.objective.iter() {
        cost[v.index()] += c * sense_mul;
    }
    let mut values = Vec::with_capacity(model.vars.len());
    for (vi, var) in model.vars.iter().enumerate() {
        let (mut l, mut u) = (var.lower, var.upper);
        if var.integer {
            if l.is_finite() {
                l = (l - opts.int_tol).ceil();
            }
            if u.is_finite() {
                u = (u + opts.int_tol).floor();
            }
            if l > u {
                // No integer fits the box (e.g. fixed at a fraction).
                return Err(SolveError::Infeasible);
            }
        }
        let c = cost[vi];
        let x = if c > opts.feas_tol {
            if !l.is_finite() {
                return Err(SolveError::Unbounded);
            }
            l
        } else if c < -opts.feas_tol {
            if !u.is_finite() {
                return Err(SolveError::Unbounded);
            }
            u
        } else if l.is_finite() {
            // Costless variables rest at a bound (matching the LP
            // relaxation's shifted/mirrored origin), at 0 when free.
            l
        } else if u.is_finite() {
            u
        } else {
            0.0
        };
        values.push(x);
    }
    let objective = model.objective.eval(&values);
    let sol = Solution {
        values,
        objective,
        status: Status::Optimal,
    };
    let stats = BranchBoundStats {
        nodes: 1,
        incumbents: 1,
        root_bound: objective,
        dual_bound: objective,
        cold_solves: 1,
        first_incumbent_node: 1,
        incumbent_trace: vec![(1, objective)],
        node_bounds: vec![objective],
        queue_peak: 1,
        order: opts.node_order,
        ..BranchBoundStats::default()
    };
    Ok((sol, stats))
}

/// Whole-solve oracle cross-validation, armed when the caller requested
/// [`Kernel::DenseTableau`] for a MILP: the search itself ran on the
/// unified warm backend (in the oracle configuration from
/// [`SolverOptions::resolve`]); here the incumbent's integer assignment
/// is pinned on a model clone and re-solved by the genuine dense
/// tableau, which must reproduce the objective. The incumbent point is
/// feasible for the pinned model and every point of the pinned model
/// lies in the incumbent's node box, so the two objectives tie at an
/// exact optimum — any disagreement is a numerical verdict, not noise.
fn cross_validate_dense(
    model: &Model,
    opts: &SolverOptions,
    sol: &Solution,
) -> Result<(), SolveError> {
    let mut pinned = model.clone();
    for (v, var) in model.vars() {
        if var.is_integer() {
            let val = sol.value(v).round().clamp(var.lower(), var.upper());
            pinned.fix_var(v, val);
        }
    }
    let oracle = SolverOptions {
        kernel: Kernel::DenseTableau,
        ..opts.clone()
    };
    let check = match pinned.solve_relaxation_counted(&oracle) {
        Ok((check, _pivots)) => check,
        Err(e) => {
            return Err(SolveError::Numerical(format!(
                "dense-oracle cross-validation failed on the pinned incumbent: {e:?}"
            )))
        }
    };
    let tol = 1e-6 * sol.objective.abs().max(1.0);
    if (check.objective - sol.objective).abs() > tol {
        return Err(SolveError::Numerical(format!(
            "dense-oracle cross-validation disagrees: search {} vs tableau {}",
            sol.objective, check.objective
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{cmp, Model, Sense};
    use crate::LinExpr;

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary → a=0,b=1,c=1 (20)
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_integer("a", 0.0, 1.0);
        let b = m.add_integer("b", 0.0, 1.0);
        let c = m.add_integer("c", 0.0, 1.0);
        m.set_objective(10.0 * a + 13.0 * b + 7.0 * c);
        m.add_constraint(3.0 * a + 4.0 * b + 2.0 * c, cmp::LE, 6.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 20.0).abs() < 1e-6, "obj {}", sol.objective);
        assert_eq!(sol.int_value(a), 0);
        assert_eq!(sol.int_value(b), 1);
        assert_eq!(sol.int_value(c), 1);
    }

    #[test]
    fn integer_rounding_is_not_assumed() {
        // LP optimum fractional; integer optimum differs from naive rounding.
        // max y s.t. -x + y <= 0.5, x + y <= 3.5, 0<=x<=3 int, y int
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer("x", 0.0, 3.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.set_objective(LinExpr::var(y));
        m.add_constraint(-1.0 * x + y, cmp::LE, 0.5);
        m.add_constraint(x + y, cmp::LE, 3.5);
        let sol = m.solve().unwrap();
        // y <= min(x + 0.5, 3.5 - x); best integer: x=1,y=1 or x=2,y=1 → y=1
        assert_eq!(sol.int_value(y), 1);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 2x + y s.t. x + y >= 3.3, x int >= 0, y cont >= 0 → x=0? no:
        // x=0 → y=3.3 cost 3.3; x=1 → y=2.3 cost 4.3. Optimal x=0.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", 0.0, 100.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(2.0 * x + y);
        m.add_constraint(x + y, cmp::GE, 3.3);
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(x), 0);
        assert!((sol[y] - 3.3).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integrality() {
        // 2x == 3 has no integer solution.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", 0.0, 10.0);
        m.set_objective(LinExpr::var(x));
        m.add_constraint(2.0 * x, cmp::EQ, 3.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn negative_integer_ranges() {
        // min x s.t. x >= -2.5, x integer in [-10, 10] → x = -2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", -10.0, 10.0);
        m.set_objective(LinExpr::var(x));
        m.add_constraint(LinExpr::var(x), cmp::GE, -2.5);
        let sol = m.solve().unwrap();
        assert_eq!(sol.int_value(x), -2);
    }

    /// Most-fractional selection golden: when two variables tie on both
    /// priority and fractionality, the lowest `VarId` wins — a pinned
    /// tie-break, not an iteration-order accident. Priority still
    /// dominates fractionality.
    #[test]
    fn most_fractional_ties_break_to_lowest_var_id() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_integer("a", 0.0, 10.0);
        let b = m.add_integer("b", 0.0, 10.0);
        let c = m.add_integer("c", 0.0, 10.0);
        let int_vars = vec![a, b, c];
        let frac = |m: &Model, values: Vec<f64>| {
            let sol = Solution {
                values,
                objective: 0.0,
                status: Status::Feasible,
            };
            most_fractional_of(m, &int_vars, 1e-6, &sol)
        };
        // b and c tie at fractionality 0.5 (a is less fractional):
        // the lower VarId b wins.
        assert_eq!(frac(&m, vec![1.25, 2.5, 3.5]), Some((b, 2.5)));
        // All three tie: the lowest VarId a wins.
        assert_eq!(frac(&m, vec![1.5, 2.5, 3.5]), Some((a, 1.5)));
        // An integral point yields no branching candidate.
        assert_eq!(frac(&m, vec![1.0, 2.0, 3.0]), None);
        // Priority dominates fractionality; within the top priority
        // class the VarId tie-break still applies.
        m.set_priority(b, 5);
        m.set_priority(c, 5);
        assert_eq!(frac(&m, vec![1.5, 2.25, 3.25]), Some((b, 2.25)));
        assert_eq!(frac(&m, vec![1.5, 2.25, 3.75]), Some((b, 2.25)));
    }

    #[test]
    fn node_limit_reports_feasible_or_limit() {
        // A model where optimality needs some search; a 1-node budget must
        // either produce an incumbent (Feasible) or IterationLimit.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_integer(format!("x{i}"), 0.0, 1.0))
            .collect();
        let mut obj = LinExpr::new();
        let mut row = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj += ((i % 3 + 1) as f64) * v;
            row += ((i % 5 + 1) as f64) * v;
        }
        m.set_objective(obj);
        m.add_constraint(row, cmp::LE, 7.5);
        let opts = SolverOptions {
            max_nodes: 1,
            ..Default::default()
        };
        match m.solve_with(&opts) {
            Ok(sol) => assert_eq!(sol.status, Status::Feasible),
            Err(e) => assert_eq!(e, SolveError::IterationLimit),
        }
    }

    /// A node-cap-truncated search holding an incumbent must be
    /// distinguishable from a proven optimum everywhere: solution status,
    /// the `truncated` stats flag, and the incumbent trace.
    #[test]
    fn truncated_search_is_explicitly_feasible_not_optimal() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..10)
            .map(|i| m.add_integer(format!("x{i}"), 0.0, 1.0))
            .collect();
        let mut obj = LinExpr::new();
        let mut row = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj += (100.0 + (i % 7) as f64 * 0.01) * v;
            row += (100.0 + (i % 5) as f64 * 0.013) * v;
        }
        m.set_objective(obj);
        m.add_constraint(row, cmp::LE, 500.37);
        // A hint guarantees an incumbent exists even at a tiny node cap.
        let hint: Vec<_> = vars.iter().map(|&v| (v, 0.0)).collect();
        let truncated_opts = SolverOptions {
            max_nodes: 2,
            gap_tol: 0.0,
            rounding_heuristic: false,
            ..Default::default()
        };
        let (sol, stats) = solve_with_stats_hinted(&m, &truncated_opts, &hint).unwrap();
        assert_eq!(
            sol.status,
            Status::Feasible,
            "truncated search must not claim Optimal"
        );
        assert!(stats.truncated, "stats must record the truncation");
        // The same model run to completion is Optimal and not truncated.
        let (sol, stats) = solve_with_stats(&m, &SolverOptions::default()).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!(!stats.truncated);
    }

    #[test]
    fn stats_reported() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_integer("a", 0.0, 5.0);
        let b = m.add_integer("b", 0.0, 5.0);
        m.set_objective(3.0 * a + 2.0 * b);
        m.add_constraint(2.0 * a + 3.0 * b, cmp::LE, 11.5);
        let (sol, stats) = solve_with_stats(&m, &SolverOptions::default()).unwrap();
        assert!(stats.nodes >= 1);
        assert!(!stats.truncated);
        assert!(stats.simplex_iters >= 1, "no pivots counted");
        assert_eq!(stats.cold_solves + stats.warm_solves, stats.nodes);
        // Root LP bound is at least as good as the integer optimum.
        assert!(stats.root_bound >= sol.objective - 1e-9);
        // New telemetry: every solved node logged a bound, the incumbent
        // trace ends at the returned objective, and the queue peaked.
        assert_eq!(stats.node_bounds.len(), stats.nodes);
        assert!(stats.queue_peak >= 1);
        assert_eq!(stats.incumbent_trace.len(), stats.incumbents);
        let (last_node, last_obj) = *stats.incumbent_trace.last().unwrap();
        assert!(last_node <= stats.nodes);
        assert!((last_obj - sol.objective).abs() < 1e-9);
        assert!(stats.first_incumbent_node <= stats.nodes);
    }

    #[test]
    fn assignment_lp_is_integral_and_fast() {
        // 3x3 assignment problem: totally unimodular, so the relaxation is
        // already integral and B&B should finish at the root.
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut x = vec![];
        for i in 0..3 {
            let mut row = vec![];
            for j in 0..3 {
                row.push(m.add_integer(format!("x{i}{j}"), 0.0, 1.0));
            }
            x.push(row);
        }
        let mut obj = LinExpr::new();
        for i in 0..3 {
            for j in 0..3 {
                obj += cost[i][j] * x[i][j];
            }
        }
        m.set_objective(obj);
        for i in 0..3 {
            let mut r = LinExpr::new();
            let mut c = LinExpr::new();
            for j in 0..3 {
                r += LinExpr::var(x[i][j]);
                c += LinExpr::var(x[j][i]);
            }
            m.add_constraint(r, cmp::EQ, 1.0);
            m.add_constraint(c, cmp::EQ, 1.0);
        }
        let (sol, stats) = solve_with_stats(&m, &SolverOptions::default()).unwrap();
        // Optimal assignment cost: 2 + 4 + 6 = 12 (several optima).
        assert!((sol.objective - 12.0).abs() < 1e-6, "obj {}", sol.objective);
        assert!(stats.nodes <= 3, "took {} nodes", stats.nodes);
    }

    /// A multi-row knapsack family needing real search, solved at every
    /// kernel / warm-start combination; objectives must agree.
    #[test]
    fn warm_cold_and_oracle_agree() {
        let mut m = Model::new(Sense::Maximize);
        let n = 12;
        let mut obj = LinExpr::new();
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_integer(format!("x{i}"), 0.0, 3.0))
            .collect();
        for (i, &v) in vars.iter().enumerate() {
            obj += ((i % 5 + 2) as f64) * v;
        }
        m.set_objective(obj);
        for r in 0..5 {
            let mut row = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                row += (((i + r) % 3 + 1) as f64) * v;
            }
            m.add_constraint(row, cmp::LE, 17.5 + r as f64);
        }

        let warm = SolverOptions::default();
        let cold = SolverOptions {
            warm_start: false,
            ..Default::default()
        };
        let oracle = SolverOptions {
            kernel: Kernel::DenseTableau,
            ..Default::default()
        };
        let (s_warm, st_warm) = solve_with_stats(&m, &warm).unwrap();
        let (s_cold, st_cold) = solve_with_stats(&m, &cold).unwrap();
        let (s_oracle, _) = solve_with_stats(&m, &oracle).unwrap();
        assert!((s_warm.objective - s_cold.objective).abs() < 1e-6);
        assert!((s_warm.objective - s_oracle.objective).abs() < 1e-6);
        // Warm starts actually engage and save pivots on this family.
        assert!(st_warm.warm_solves > 0, "no warm solves recorded");
        assert!(
            st_warm.simplex_iters <= st_cold.simplex_iters,
            "warm {} pivots vs cold {}",
            st_warm.simplex_iters,
            st_cold.simplex_iters
        );
    }

    /// Both node orderings, under both kernel requests, agree with each
    /// other on a family needing real search (the dense-tableau request
    /// additionally cross-validates its incumbent against the tableau).
    #[test]
    fn node_orders_agree_across_kernels() {
        let mut m = Model::new(Sense::Maximize);
        let n = 12;
        let mut obj = LinExpr::new();
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_integer(format!("x{i}"), 0.0, 3.0))
            .collect();
        for (i, &v) in vars.iter().enumerate() {
            obj += ((i % 5 + 2) as f64) * v;
        }
        m.set_objective(obj);
        for r in 0..5 {
            let mut row = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                row += (((i + r) % 3 + 1) as f64) * v;
            }
            m.add_constraint(row, cmp::LE, 17.5 + r as f64);
        }
        let mut objectives = Vec::new();
        for order in [NodeOrder::DfsNearerFirst, NodeOrder::BestBound] {
            for kernel in [Kernel::Revised, Kernel::DenseTableau] {
                let opts = SolverOptions {
                    node_order: order,
                    kernel,
                    ..Default::default()
                };
                let (sol, stats) = solve_with_stats(&m, &opts).unwrap();
                assert!(!stats.truncated, "{order:?}/{kernel:?} truncated");
                assert_eq!(stats.order, order);
                objectives.push(((order, kernel), sol.objective));
            }
        }
        let (_, reference) = objectives[0];
        for &(cfg, obj) in &objectives {
            assert!(
                (obj - reference).abs() < 1e-6,
                "{cfg:?}: {obj} vs reference {reference}"
            );
        }
    }

    /// An integer variable with *fractional* bounds must still get an
    /// integral value: the rounding heuristic clamps into the box, which
    /// used to re-fractionalize the incumbent (x = 2.5 reported as an
    /// "optimal" integer).
    #[test]
    fn fractional_bounds_still_yield_integral_solutions() {
        for kernel in [Kernel::Revised, Kernel::DenseTableau] {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_integer("x", 0.0, 2.5);
            m.set_objective(LinExpr::var(x));
            m.add_constraint(LinExpr::var(x), cmp::LE, 10.0);
            let opts = SolverOptions {
                kernel,
                ..Default::default()
            };
            let sol = m.solve_with(&opts).unwrap();
            assert!(
                (sol[x] - 2.0).abs() < 1e-6,
                "{kernel:?}: expected x = 2, got {}",
                sol[x]
            );
        }
    }

    /// Free integers branch natively through their split-pair columns
    /// on the warm path — one cold root solve, every other node a warm
    /// reoptimization — under both node orderings.
    #[test]
    fn free_integer_branches_on_the_warm_path() {
        for order in [NodeOrder::DfsNearerFirst, NodeOrder::BestBound] {
            let mut m = Model::new(Sense::Minimize);
            let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, true);
            m.set_objective(LinExpr::var(x));
            m.add_constraint(LinExpr::var(x), cmp::GE, -2.5);
            let opts = SolverOptions {
                node_order: order,
                ..Default::default()
            };
            let (sol, stats) = solve_with_stats(&m, &opts).unwrap();
            assert_eq!(sol.int_value(x), -2, "{order:?}");
            assert_eq!(
                stats.cold_solves, 1,
                "{order:?}: warm path must engage (one cold root solve)"
            );
            assert_eq!(stats.cold_solves + stats.warm_solves, stats.nodes);
        }
    }

    /// Mirrored integers (finite upper bound, lower −∞) branch through
    /// flipped column boxes; the answer must round toward the feasible
    /// side and stay on the warm path.
    #[test]
    fn mirrored_integer_branches_on_the_warm_path() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", f64::NEG_INFINITY, 3.5, true);
        m.set_objective(LinExpr::var(x));
        m.add_constraint(LinExpr::var(x), cmp::GE, -10.0);
        let (sol, stats) = solve_with_stats(&m, &SolverOptions::default()).unwrap();
        assert_eq!(sol.int_value(x), 3);
        assert_eq!(stats.cold_solves, 1);
        assert_eq!(stats.cold_solves + stats.warm_solves, stats.nodes);
    }

    /// A rowless model (every constraint folds to a satisfied constant)
    /// solves in closed form, integer boxes respected.
    #[test]
    fn rowless_models_solve_in_closed_form() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", -4.6, 9.0);
        let y = m.add_integer("y", 1.2, 7.8);
        let z = m.add_continuous("z", 2.0, 5.0);
        m.set_objective(1.0 * x - 2.0 * y + 0.5 * z);
        let (sol, stats) = solve_with_stats(&m, &SolverOptions::default()).unwrap();
        assert_eq!(sol.int_value(x), -4);
        assert_eq!(sol.int_value(y), 7);
        assert!((sol[z] - 2.0).abs() < 1e-9);
        assert_eq!(stats.nodes, 1);
        assert_eq!(stats.cold_solves, 1);

        // An integer fixed at a fraction has no lattice point.
        let mut m = Model::new(Sense::Minimize);
        let w = m.add_integer("w", 2.5, 2.5);
        m.set_objective(LinExpr::var(w));
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);

        // A favorable unbounded direction is reported as such.
        let mut m = Model::new(Sense::Maximize);
        let f = m.add_var("f", f64::NEG_INFINITY, f64::INFINITY, true);
        m.set_objective(LinExpr::var(f));
        assert_eq!(m.solve().unwrap_err(), SolveError::Unbounded);
    }
}
