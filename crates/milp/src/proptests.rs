//! Property-based tests of the solver.
//!
//! Random LPs/MILPs are generated in a shape where feasibility is
//! guaranteed by construction (a known feasible point is planted), then the
//! solver's answers are checked against first principles:
//!
//! * returned points satisfy every bound and constraint,
//! * integer variables are integral,
//! * the objective is at least as good as the planted point,
//! * the MILP optimum never beats its own LP relaxation.

use proptest::prelude::*;

use crate::model::{cmp, Model, Sense, SolverOptions};
use crate::LinExpr;

/// A randomly generated model together with a feasible point.
#[derive(Debug, Clone)]
struct PlantedLp {
    nvars: usize,
    integers: Vec<bool>,
    point: Vec<f64>,
    /// Rows as (coeffs, op_is_le, slack).
    rows: Vec<(Vec<f64>, bool, f64)>,
    obj: Vec<f64>,
    maximize: bool,
}

impl PlantedLp {
    fn build(&self) -> (Model, Vec<crate::VarId>) {
        let sense = if self.maximize {
            Sense::Maximize
        } else {
            Sense::Minimize
        };
        let mut m = Model::new(sense);
        let vars: Vec<_> = (0..self.nvars)
            .map(|i| m.add_var(format!("x{i}"), 0.0, 10.0, self.integers[i]))
            .collect();
        let mut obj = LinExpr::new();
        for (i, &c) in self.obj.iter().enumerate() {
            obj += c * vars[i];
        }
        m.set_objective(obj);
        for (coeffs, is_le, slack) in &self.rows {
            let mut e = LinExpr::new();
            let mut lhs_at_point = 0.0;
            for (i, &c) in coeffs.iter().enumerate() {
                e += c * vars[i];
                lhs_at_point += c * self.point[i];
            }
            // Choose rhs so the planted point is feasible with `slack` room.
            if *is_le {
                m.add_constraint(e, cmp::LE, lhs_at_point + slack);
            } else {
                m.add_constraint(e, cmp::GE, lhs_at_point - slack);
            }
        }
        (m, vars)
    }
}

fn planted_lp(max_vars: usize, max_rows: usize) -> impl Strategy<Value = PlantedLp> {
    (2..=max_vars, 1..=max_rows, any::<bool>()).prop_flat_map(move |(nv, nr, maximize)| {
        let integers = proptest::collection::vec(any::<bool>(), nv);
        // Plant integer-valued points so they stay feasible when some
        // variables are declared integral.
        let point = proptest::collection::vec((0..=6i32).prop_map(|v| v as f64), nv);
        let row = (
            proptest::collection::vec(-5..=5i32, nv).prop_map(|v| {
                v.into_iter().map(|c| c as f64).collect::<Vec<_>>()
            }),
            any::<bool>(),
            (0..=40i32).prop_map(|s| s as f64 / 4.0),
        );
        let rows = proptest::collection::vec(row, nr);
        let obj = proptest::collection::vec(-5..=5i32, nv)
            .prop_map(|v| v.into_iter().map(|c| c as f64).collect::<Vec<_>>());
        (integers, point, rows, obj).prop_map(move |(integers, point, rows, obj)| PlantedLp {
            nvars: nv,
            integers,
            point,
            rows,
            obj,
            maximize,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lp_solutions_are_feasible_and_beat_planted_point(lp in planted_lp(6, 5)) {
        let relaxed = PlantedLp {
            integers: vec![false; lp.nvars],
            ..lp.clone()
        };
        let (m, _vars) = relaxed.build();
        let sol = m.solve().expect("planted LP must be feasible");
        prop_assert!(m.max_violation(sol.values(), 1e-6) < 1e-5,
            "violation {}", m.max_violation(sol.values(), 1e-6));
        let planted_obj: f64 = lp.obj.iter().zip(&lp.point).map(|(c, x)| c * x).sum();
        if lp.maximize {
            prop_assert!(sol.objective >= planted_obj - 1e-6);
        } else {
            prop_assert!(sol.objective <= planted_obj + 1e-6);
        }
    }

    #[test]
    fn milp_solutions_are_integral_feasible_and_bounded_by_relaxation(lp in planted_lp(5, 4)) {
        let (m, vars) = lp.build();
        let opts = SolverOptions { max_nodes: 2_000, ..Default::default() };
        let sol = m.solve_with(&opts).expect("planted MILP must be feasible");
        prop_assert!(m.max_violation(sol.values(), 1e-6) < 1e-5);
        for (i, &v) in vars.iter().enumerate() {
            if lp.integers[i] {
                let x = sol[v];
                prop_assert!((x - x.round()).abs() < 1e-6, "x{i} = {x} not integral");
            }
        }
        // The MILP optimum can never beat the LP relaxation.
        let relax = m.solve_relaxation(&opts).unwrap();
        if lp.maximize {
            prop_assert!(sol.objective <= relax.objective + 1e-5);
        } else {
            prop_assert!(sol.objective >= relax.objective - 1e-5);
        }
    }
}
