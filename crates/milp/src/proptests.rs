//! Property-based tests of the solver.
//!
//! Random LPs/MILPs are generated in a shape where feasibility is
//! guaranteed by construction (a known feasible point is planted), then the
//! solver's answers are checked against first principles:
//!
//! * returned points satisfy every bound and constraint,
//! * integer variables are integral,
//! * the objective is at least as good as the planted point,
//! * the MILP optimum never beats its own LP relaxation,
//! * and — the **kernel oracle** — the revised simplex
//!   ([`crate::Kernel::Revised`], warm-started and cold) and the dense
//!   tableau ([`crate::Kernel::DenseTableau`]) agree on objective values
//!   and feasibility verdicts, including on *unplanted* instances that
//!   may be infeasible.

use proptest::prelude::*;

use crate::factor::{Eta, Factor, FactorConfig};
use crate::model::{
    cmp, Branching, FactorKind, Kernel, Model, NodeOrder, Pricing, Sense, SolverOptions, UpdateKind,
};
use crate::solution::SolveError;
use crate::LinExpr;

/// A randomly generated model together with a feasible point.
#[derive(Debug, Clone)]
struct PlantedLp {
    nvars: usize,
    integers: Vec<bool>,
    point: Vec<f64>,
    /// Rows as (coeffs, op_is_le, slack).
    rows: Vec<(Vec<f64>, bool, f64)>,
    obj: Vec<f64>,
    maximize: bool,
}

impl PlantedLp {
    fn build(&self) -> (Model, Vec<crate::VarId>) {
        let sense = if self.maximize {
            Sense::Maximize
        } else {
            Sense::Minimize
        };
        let mut m = Model::new(sense);
        let vars: Vec<_> = (0..self.nvars)
            .map(|i| m.add_var(format!("x{i}"), 0.0, 10.0, self.integers[i]))
            .collect();
        let mut obj = LinExpr::new();
        for (i, &c) in self.obj.iter().enumerate() {
            obj += c * vars[i];
        }
        m.set_objective(obj);
        for (coeffs, is_le, slack) in &self.rows {
            let mut e = LinExpr::new();
            let mut lhs_at_point = 0.0;
            for (i, &c) in coeffs.iter().enumerate() {
                e += c * vars[i];
                lhs_at_point += c * self.point[i];
            }
            // Choose rhs so the planted point is feasible with `slack` room.
            if *is_le {
                m.add_constraint(e, cmp::LE, lhs_at_point + slack);
            } else {
                m.add_constraint(e, cmp::GE, lhs_at_point - slack);
            }
        }
        (m, vars)
    }
}

fn planted_lp(max_vars: usize, max_rows: usize) -> impl Strategy<Value = PlantedLp> {
    (2..=max_vars, 1..=max_rows, any::<bool>()).prop_flat_map(move |(nv, nr, maximize)| {
        let integers = proptest::collection::vec(any::<bool>(), nv);
        // Plant integer-valued points so they stay feasible when some
        // variables are declared integral.
        let point = proptest::collection::vec((0..=6i32).prop_map(|v| v as f64), nv);
        let row = (
            proptest::collection::vec(-5..=5i32, nv)
                .prop_map(|v| v.into_iter().map(|c| c as f64).collect::<Vec<_>>()),
            any::<bool>(),
            (0..=40i32).prop_map(|s| s as f64 / 4.0),
        );
        let rows = proptest::collection::vec(row, nr);
        let obj = proptest::collection::vec(-5..=5i32, nv)
            .prop_map(|v| v.into_iter().map(|c| c as f64).collect::<Vec<_>>());
        (integers, point, rows, obj).prop_map(move |(integers, point, rows, obj)| PlantedLp {
            nvars: nv,
            integers,
            point,
            rows,
            obj,
            maximize,
        })
    })
}

/// A planted MILP whose integer variables carry the bound shapes the
/// legacy backend used to own: negative boxes (shifted by a negative
/// finite lower bound), mirrored (upper bound only, lower −∞), and
/// fully free (split-pair columns). The planted integer point lives in
/// `[-6, 6]^n`; per-variable **anchor rows** `x_i ≥ p_i − 5` and
/// `x_i ≤ p_i + 5` — genuine constraint rows, not variable bounds —
/// keep every shape bounded without reintroducing the finite bounds the
/// shapes are meant to avoid.
#[derive(Debug, Clone)]
struct PlantedUnboxedMilp {
    nvars: usize,
    /// 0 = negative box, 1 = mirrored, 2 = free.
    shapes: Vec<u8>,
    point: Vec<f64>,
    rows: Vec<(Vec<f64>, bool, f64)>,
    obj: Vec<f64>,
    maximize: bool,
}

impl PlantedUnboxedMilp {
    fn build(&self) -> (Model, Vec<crate::VarId>) {
        let sense = if self.maximize {
            Sense::Maximize
        } else {
            Sense::Minimize
        };
        let mut m = Model::new(sense);
        let vars: Vec<_> = (0..self.nvars)
            .map(|i| {
                let (lo, hi) = match self.shapes[i] {
                    0 => (-9.0, 9.0),
                    1 => (f64::NEG_INFINITY, 9.0),
                    _ => (f64::NEG_INFINITY, f64::INFINITY),
                };
                m.add_var(format!("x{i}"), lo, hi, true)
            })
            .collect();
        let mut obj = LinExpr::new();
        for (i, &c) in self.obj.iter().enumerate() {
            obj += c * vars[i];
        }
        m.set_objective(obj);
        for (i, &v) in vars.iter().enumerate() {
            m.add_constraint(LinExpr::var(v), cmp::GE, self.point[i] - 5.0);
            m.add_constraint(LinExpr::var(v), cmp::LE, self.point[i] + 5.0);
        }
        for (coeffs, is_le, slack) in &self.rows {
            let mut e = LinExpr::new();
            let mut lhs_at_point = 0.0;
            for (i, &c) in coeffs.iter().enumerate() {
                e += c * vars[i];
                lhs_at_point += c * self.point[i];
            }
            if *is_le {
                m.add_constraint(e, cmp::LE, lhs_at_point + slack);
            } else {
                m.add_constraint(e, cmp::GE, lhs_at_point - slack);
            }
        }
        (m, vars)
    }
}

fn planted_unboxed_milp(
    max_vars: usize,
    max_rows: usize,
) -> impl Strategy<Value = PlantedUnboxedMilp> {
    (2..=max_vars, 1..=max_rows, any::<bool>()).prop_flat_map(move |(nv, nr, maximize)| {
        let shapes = proptest::collection::vec((0u32..3).prop_map(|s| s as u8), nv);
        let point = proptest::collection::vec((-6..=6i32).prop_map(|v| v as f64), nv);
        let row = (
            proptest::collection::vec(-4..=4i32, nv)
                .prop_map(|v| v.into_iter().map(|c| c as f64).collect::<Vec<_>>()),
            any::<bool>(),
            (0..=40i32).prop_map(|s| s as f64 / 4.0),
        );
        let rows = proptest::collection::vec(row, nr);
        let obj = proptest::collection::vec(-5..=5i32, nv)
            .prop_map(|v| v.into_iter().map(|c| c as f64).collect::<Vec<_>>());
        (shapes, point, rows, obj).prop_map(move |(shapes, point, rows, obj)| PlantedUnboxedMilp {
            nvars: nv,
            shapes,
            point,
            rows,
            obj,
            maximize,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// **Unboxed-integer oracle**: MILPs whose integers carry negative,
    /// mirrored, and fully free bound shapes — the class the deleted
    /// `LegacyBackend` used to own — must branch natively on the warm
    /// path and agree with the dense-tableau oracle request across every
    /// `NodeOrder` × `Branching` × `workers ∈ {1, 2}` combination, with
    /// integral feasible points throughout.
    #[test]
    fn mirrored_and_free_integers_agree_with_dense_oracle(
        lp in planted_unboxed_milp(4, 3),
    ) {
        let (m, vars) = lp.build();
        let base = SolverOptions { max_nodes: 4_000, ..Default::default() };
        let (dense, dense_stats) = crate::solve_with_stats(
            &m,
            &SolverOptions { kernel: Kernel::DenseTableau, ..base.clone() },
        )
        .expect("planted MILP must be feasible");
        prop_assert!(m.max_violation(dense.values(), 1e-6) < 1e-5);
        for order in [NodeOrder::DfsNearerFirst, NodeOrder::BestBound] {
            for workers in [1usize, 2] {
                for branching in [Branching::MostFractional, Branching::PseudoCost] {
                    let opts = SolverOptions {
                        node_order: order,
                        workers,
                        branching,
                        ..base.clone()
                    };
                    let (sol, stats) = crate::solve_with_stats(&m, &opts)
                        .expect("planted MILP must be feasible");
                    prop_assert!(m.max_violation(sol.values(), 1e-6) < 1e-5);
                    for (i, &v) in vars.iter().enumerate() {
                        let x = sol[v];
                        prop_assert!(
                            (x - x.round()).abs() < 1e-6,
                            "x{i} = {x} not integral (shape {})",
                            lp.shapes[i]
                        );
                    }
                    if stats.truncated || dense_stats.truncated {
                        continue;
                    }
                    prop_assert!(
                        (sol.objective - dense.objective).abs() < 1e-7,
                        "{order:?}/workers={workers}/{branching:?}: warm {} vs dense oracle {}",
                        sol.objective,
                        dense.objective
                    );
                }
            }
        }
    }

    #[test]
    fn lp_solutions_are_feasible_and_beat_planted_point(lp in planted_lp(6, 5)) {
        let relaxed = PlantedLp {
            integers: vec![false; lp.nvars],
            ..lp.clone()
        };
        let (m, _vars) = relaxed.build();
        let sol = m.solve().expect("planted LP must be feasible");
        prop_assert!(m.max_violation(sol.values(), 1e-6) < 1e-5,
            "violation {}", m.max_violation(sol.values(), 1e-6));
        let planted_obj: f64 = lp.obj.iter().zip(&lp.point).map(|(c, x)| c * x).sum();
        if lp.maximize {
            prop_assert!(sol.objective >= planted_obj - 1e-6);
        } else {
            prop_assert!(sol.objective <= planted_obj + 1e-6);
        }
    }

    #[test]
    fn milp_solutions_are_integral_feasible_and_bounded_by_relaxation(lp in planted_lp(5, 4)) {
        let (m, vars) = lp.build();
        let opts = SolverOptions { max_nodes: 2_000, ..Default::default() };
        let sol = m.solve_with(&opts).expect("planted MILP must be feasible");
        prop_assert!(m.max_violation(sol.values(), 1e-6) < 1e-5);
        for (i, &v) in vars.iter().enumerate() {
            if lp.integers[i] {
                let x = sol[v];
                prop_assert!((x - x.round()).abs() < 1e-6, "x{i} = {x} not integral");
            }
        }
        // The MILP optimum can never beat the LP relaxation.
        let relax = m.solve_relaxation(&opts).unwrap();
        if lp.maximize {
            prop_assert!(sol.objective <= relax.objective + 1e-5);
        } else {
            prop_assert!(sol.objective >= relax.objective - 1e-5);
        }
    }

    /// Revised vs dense-tableau oracle on planted (feasible) LPs.
    #[test]
    fn kernels_agree_on_lp_objectives(lp in planted_lp(6, 5)) {
        let relaxed = PlantedLp {
            integers: vec![false; lp.nvars],
            ..lp.clone()
        };
        let (m, _vars) = relaxed.build();
        let revised = m.solve_with(&SolverOptions::default()).unwrap();
        let dense = m
            .solve_with(&SolverOptions { kernel: Kernel::DenseTableau, ..Default::default() })
            .unwrap();
        prop_assert!(
            (revised.objective - dense.objective).abs() < 1e-6,
            "revised {} vs dense {}",
            revised.objective,
            dense.objective
        );
    }

    /// Revised (warm and cold B&B) vs dense-tableau oracle on planted
    /// (feasible) MILPs: same optimum, and the returned points are
    /// feasible under either kernel.
    #[test]
    fn kernels_agree_on_milp_objectives(lp in planted_lp(5, 4)) {
        let (m, _vars) = lp.build();
        let base = SolverOptions { max_nodes: 2_000, ..Default::default() };
        let warm = m.solve_with(&base).unwrap();
        let cold = m
            .solve_with(&SolverOptions { warm_start: false, ..base.clone() })
            .unwrap();
        let dense = m
            .solve_with(&SolverOptions { kernel: Kernel::DenseTableau, ..base.clone() })
            .unwrap();
        prop_assert!(m.max_violation(warm.values(), 1e-6) < 1e-5);
        prop_assert!(
            (warm.objective - dense.objective).abs() < 1e-6,
            "warm {} vs dense {}",
            warm.objective,
            dense.objective
        );
        prop_assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
    }

    /// Unplanted instances may be infeasible; both kernels must return
    /// the *same verdict* (and the same objective when feasible). Bounded
    /// variables rule out unboundedness, so the only verdicts are
    /// Optimal and Infeasible.
    #[test]
    fn kernels_agree_on_feasibility_verdicts(
        nv in 2usize..5,
        nr in 1usize..5,
        coeffs in prop::collection::vec(-4i32..=4, 25),
        rhs in prop::collection::vec(-6i32..=6, 5),
        ops in prop::collection::vec(any::<bool>(), 5),
        ints in prop::collection::vec(any::<bool>(), 5),
        obj in prop::collection::vec(-3i32..=3, 5),
    ) {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..nv)
            .map(|i| m.add_var(format!("x{i}"), 0.0, 4.0, ints[i]))
            .collect();
        let mut e = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            e += (obj[i] as f64) * v;
        }
        m.set_objective(e);
        for r in 0..nr {
            let mut row = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                row += (coeffs[(r * nv + i) % coeffs.len()] as f64) * v;
            }
            // Mix of == (hard to satisfy, often infeasible) and >=.
            let op = if ops[r] { cmp::EQ } else { cmp::GE };
            m.add_constraint(row, op, rhs[r] as f64);
        }
        let revised = m.solve_with(&SolverOptions::default());
        let dense = m.solve_with(&SolverOptions {
            kernel: Kernel::DenseTableau,
            ..Default::default()
        });
        match (revised, dense) {
            (Ok(a), Ok(b)) => prop_assert!(
                (a.objective - b.objective).abs() < 1e-6,
                "objectives diverge: revised {} vs dense {}",
                a.objective,
                b.objective
            ),
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (a, b) => prop_assert!(
                false,
                "verdicts diverge: revised {:?} vs dense {:?}",
                a.map(|s| s.objective),
                b.map(|s| s.objective)
            ),
        }
    }

    /// **Factorization oracle**: random sparse nonsingular bases (planted
    /// diagonal dominance, then randomly row/column-permuted) factored by
    /// the Markowitz sparse LU and by the dense LU; FTRAN and BTRAN
    /// answers must agree to 1e-9 — at the snapshot and through a
    /// nonempty product-form eta file built from random pivot sequences.
    #[test]
    fn sparse_factor_matches_dense_oracle_through_eta_file(
        m in 1usize..9,
        entries in prop::collection::vec(
            (any::<prop::sample::Index>(), any::<prop::sample::Index>(), -1.0f64..1.0),
            24,
        ),
        rowp in prop::collection::vec(any::<prop::sample::Index>(), 9),
        colp in prop::collection::vec(any::<prop::sample::Index>(), 9),
        pivots in prop::collection::vec(
            (any::<prop::sample::Index>(), prop::collection::vec(-1.0f64..1.0, 9)),
            4,
        ),
        rhs_raw in prop::collection::vec(-2.0f64..2.0, 9),
        rhs_mask in prop::collection::vec(any::<bool>(), 9),
    ) {
        // Sparse-ish base matrix made nonsingular by strict diagonal
        // dominance, then permuted so the factorizations must pivot.
        let mut a = vec![0.0f64; m * m];
        for (ri, ci, v) in &entries {
            a[ri.index(m) * m + ci.index(m)] = *v;
        }
        for i in 0..m {
            let off: f64 = (0..m).filter(|&j| j != i).map(|j| a[i * m + j].abs()).sum();
            a[i * m + i] = off + 1.0;
        }
        let perm = |idx: &[prop::sample::Index]| {
            let mut p: Vec<usize> = (0..m).collect();
            for i in (1..m).rev() {
                p.swap(i, idx[i].index(i + 1));
            }
            p
        };
        let (rp, cp) = (perm(&rowp), perm(&colp));
        let mut b = vec![0.0f64; m * m];
        for i in 0..m {
            for j in 0..m {
                b[rp[i] * m + cp[j]] = a[i * m + j];
            }
        }
        let cols: Vec<Vec<(usize, f64)>> = (0..m)
            .map(|j| {
                (0..m)
                    .filter(|&i| b[i * m + j] != 0.0)
                    .map(|i| (i, b[i * m + j]))
                    .collect()
            })
            .collect();
        let mk = |kind| {
            Factor::refactor(
                m,
                &FactorConfig {
                    kind,
                    update: UpdateKind::ProductForm,
                    max_etas: 0,
                    fill_growth: 8.0,
                },
                |j, out| out.extend_from_slice(&cols[j]),
            )
            .expect("diagonally dominant basis is nonsingular")
        };
        let mut sparse = mk(FactorKind::Sparse);
        let mut dense = mk(FactorKind::Dense);
        prop_assert!(sparse.lu_nnz() <= m * m, "sparse fill exceeds dense storage");

        // A sparse right-hand side (masked), checked in both directions
        // after every basis change.
        let rhs: Vec<f64> = (0..m)
            .map(|i| if rhs_mask[i] { rhs_raw[i] } else { 0.0 })
            .collect();
        let check = |sparse: &Factor, dense: &Factor, stage: &str| {
            let mut xs = rhs.clone();
            let mut xd = rhs.clone();
            sparse.ftran(&mut xs);
            dense.ftran(&mut xd);
            for i in 0..m {
                assert!(
                    (xs[i] - xd[i]).abs() < 1e-9,
                    "{stage}: ftran[{i}] sparse {} vs dense {}",
                    xs[i],
                    xd[i]
                );
            }
            let mut ys = rhs.clone();
            let mut yd = rhs.clone();
            sparse.btran(&mut ys);
            dense.btran(&mut yd);
            for i in 0..m {
                assert!(
                    (ys[i] - yd[i]).abs() < 1e-9,
                    "{stage}: btran[{i}] sparse {} vs dense {}",
                    ys[i],
                    yd[i]
                );
            }
        };
        check(&sparse, &dense, "snapshot");

        // Random pivot sequence: replace basis slot r with a random
        // column whose direction d = B⁻¹a has a usable pivot; both
        // factors receive the *same* eta, so they must keep agreeing.
        for (slot, colvals) in &pivots {
            let r = slot.index(m);
            let mut d: Vec<f64> = colvals[..m].to_vec();
            dense.ftran(&mut d);
            if d[r].abs() < 0.1 {
                continue; // replacement would make B near-singular
            }
            let others: Vec<(usize, f64)> = d
                .iter()
                .enumerate()
                .filter(|&(i, &v)| i != r && v.abs() > 1e-12)
                .map(|(i, &v)| (i, v))
                .collect();
            sparse.push(Eta { row: r, pivot: d[r], others: others.clone() });
            dense.push(Eta { row: r, pivot: d[r], others });
            check(&sparse, &dense, "eta file");
        }
    }

    /// **Search-order oracle**: every `NodeOrder` × `FactorKind`
    /// combination, run through the full warm-started branch & bound,
    /// must agree on the verdict and the objective.
    #[test]
    fn node_orders_and_factor_kinds_agree(lp in planted_lp(5, 4)) {
        let (m, _vars) = lp.build();
        let mut reference: Option<f64> = None;
        for order in [NodeOrder::DfsNearerFirst, NodeOrder::BestBound] {
            for factor in [FactorKind::Sparse, FactorKind::Dense] {
                let opts = SolverOptions {
                    max_nodes: 4_000,
                    node_order: order,
                    factor,
                    ..Default::default()
                };
                let (sol, stats) =
                    crate::solve_with_stats(&m, &opts).expect("planted MILP must be feasible");
                prop_assert!(m.max_violation(sol.values(), 1e-6) < 1e-5);
                // Truncated searches may legitimately hold different
                // incumbents; only completed runs must agree.
                if stats.truncated {
                    continue;
                }
                match reference {
                    None => reference = Some(sol.objective),
                    Some(r) => prop_assert!(
                        (sol.objective - r).abs() < 1e-7,
                        "{order:?}/{factor:?}: {} vs reference {}",
                        sol.objective,
                        r
                    ),
                }
            }
        }
    }

    /// A completed best-bound run never expands more nodes than the
    /// proven-optimal DFS run on the same instance, up to branching
    /// ties: best-bound must additionally expand some nodes whose LP
    /// bound *equals* the optimum before the proving incumbent appears
    /// (DFS can dodge those with a luckily early incumbent). Cold node
    /// solves keep the two trees identical (warm starts may surface
    /// different vertices of degenerate node LPs, changing the branching
    /// variable), so the comparison is exact.
    #[test]
    fn best_bound_expands_no_more_nodes_than_dfs_plus_ties(lp in planted_lp(5, 4)) {
        let (m, _vars) = lp.build();
        // Pinned to most-fractional branching: the tie-counting argument
        // assumes both trees branch identically at every shared node,
        // which pseudo-cost probing (history-dependent) would break.
        let base = SolverOptions {
            max_nodes: 20_000,
            warm_start: false,
            branching: Branching::MostFractional,
            ..Default::default()
        };
        let dfs = crate::solve_with_stats(&m, &base).expect("planted MILP must be feasible");
        let bb = crate::solve_with_stats(
            &m,
            &SolverOptions { node_order: NodeOrder::BestBound, ..base.clone() },
        )
        .expect("planted MILP must be feasible");
        if !dfs.1.truncated && !bb.1.truncated {
            prop_assert!((dfs.0.objective - bb.0.objective).abs() < 1e-7);
            let sgn = match m.sense {
                Sense::Minimize => 1.0,
                Sense::Maximize => -1.0,
            };
            let opt = sgn * bb.0.objective;
            // Slack nodes: LP bound ties the optimum (or worse), or the
            // node proved infeasible (bound effectively +∞, recorded as
            // NaN) — DFS can dodge either with a luckily early
            // incumbent, best-bound cannot.
            let ties = bb
                .1
                .node_bounds
                .iter()
                .filter(|b| b.is_nan() || sgn * **b >= opt - 1e-6)
                .count();
            prop_assert!(
                bb.1.nodes <= dfs.1.nodes + ties,
                "best-bound expanded {} nodes vs DFS {} + {} ties",
                bb.1.nodes,
                dfs.1.nodes,
                ties
            );
        }
    }

    /// **Branching-rule oracle**: pseudo-cost branching (reliability
    /// probes, best-estimate scoring) changes which nodes get explored,
    /// never which answer comes out. For every `NodeOrder` × `workers ∈
    /// {1, 2}` combination, a completed pseudo-cost run and a completed
    /// most-fractional run must agree on the objective, and both must
    /// return feasible integral points. (Planted models carry no
    /// cycle-sum cuts, so this isolates the branching layer.)
    #[test]
    fn pseudo_cost_and_most_fractional_agree(lp in planted_lp(5, 4)) {
        let (m, _vars) = lp.build();
        let mut reference: Option<f64> = None;
        for order in [NodeOrder::DfsNearerFirst, NodeOrder::BestBound] {
            for workers in [1usize, 2] {
                for branching in [Branching::MostFractional, Branching::PseudoCost] {
                    let opts = SolverOptions {
                        max_nodes: 4_000,
                        node_order: order,
                        workers,
                        branching,
                        ..Default::default()
                    };
                    let (sol, stats) =
                        crate::solve_with_stats(&m, &opts).expect("planted MILP must be feasible");
                    prop_assert!(m.max_violation(sol.values(), 1e-6) < 1e-5);
                    if stats.truncated {
                        continue;
                    }
                    match reference {
                        None => reference = Some(sol.objective),
                        Some(r) => prop_assert!(
                            (sol.objective - r).abs() < 1e-7,
                            "{order:?}/workers={workers}/{branching:?}: {} vs reference {}",
                            sol.objective,
                            r
                        ),
                    }
                }
            }
        }
    }

    /// **Forrest–Tomlin oracle**: random admissible pivot sequences
    /// (same planted-dominance basis family as the eta-file test) driven
    /// through `ft_update`; after every absorbed pivot the FT-updated
    /// FTRAN/BTRAN must agree within 1e-9 with a *fresh* Markowitz
    /// refactorization of the mutated basis, and with a product-form
    /// factor fed the equivalent eta.
    #[test]
    fn ft_updates_match_fresh_refactorization_and_eta_file(
        m in 1usize..9,
        entries in prop::collection::vec(
            (any::<prop::sample::Index>(), any::<prop::sample::Index>(), -1.0f64..1.0),
            24,
        ),
        rowp in prop::collection::vec(any::<prop::sample::Index>(), 9),
        colp in prop::collection::vec(any::<prop::sample::Index>(), 9),
        pivots in prop::collection::vec(
            (any::<prop::sample::Index>(), prop::collection::vec(-1.0f64..1.0, 9)),
            5,
        ),
        rhs_raw in prop::collection::vec(-2.0f64..2.0, 9),
        rhs_mask in prop::collection::vec(any::<bool>(), 9),
    ) {
        // Planted diagonally dominant basis, randomly permuted (see the
        // eta-file proptest above for the construction rationale).
        let mut a = vec![0.0f64; m * m];
        for (ri, ci, v) in &entries {
            a[ri.index(m) * m + ci.index(m)] = *v;
        }
        for i in 0..m {
            let off: f64 = (0..m).filter(|&j| j != i).map(|j| a[i * m + j].abs()).sum();
            a[i * m + i] = off + 1.0;
        }
        let perm = |idx: &[prop::sample::Index]| {
            let mut p: Vec<usize> = (0..m).collect();
            for i in (1..m).rev() {
                p.swap(i, idx[i].index(i + 1));
            }
            p
        };
        let (rp, cp) = (perm(&rowp), perm(&colp));
        let mut b = vec![0.0f64; m * m];
        for i in 0..m {
            for j in 0..m {
                b[rp[i] * m + cp[j]] = a[i * m + j];
            }
        }
        let csc = |b: &[f64]| -> Vec<Vec<(usize, f64)>> {
            (0..m)
                .map(|j| {
                    (0..m)
                        .filter(|&i| b[i * m + j] != 0.0)
                        .map(|i| (i, b[i * m + j]))
                        .collect()
                })
                .collect()
        };
        let mk = |b: &[f64], update: UpdateKind| {
            let cols = csc(b);
            Factor::refactor(
                m,
                &FactorConfig {
                    kind: FactorKind::Sparse,
                    update,
                    max_etas: 1_000_000, // keep updates in play: no auto flush
                    fill_growth: 0.0,
                },
                |j, out| out.extend_from_slice(&cols[j]),
            )
            .expect("diagonally dominant basis is nonsingular")
        };
        let mut ft = mk(&b, UpdateKind::ForrestTomlin);
        let mut pf = mk(&b, UpdateKind::ProductForm);

        let rhs: Vec<f64> = (0..m)
            .map(|i| if rhs_mask[i] { rhs_raw[i] } else { 0.0 })
            .collect();
        let check = |ft: &Factor, pf: &Factor, fresh: &Factor, stage: &str| {
            for (label, other) in [("fresh refactorization", fresh), ("eta file", pf)] {
                let mut xu = rhs.clone();
                let mut xo = rhs.clone();
                ft.ftran(&mut xu);
                other.ftran(&mut xo);
                for i in 0..m {
                    assert!(
                        (xu[i] - xo[i]).abs() < 1e-9,
                        "{stage}: ftran[{i}] FT {} vs {label} {}",
                        xu[i],
                        xo[i]
                    );
                }
                let mut yu = rhs.clone();
                let mut yo = rhs.clone();
                ft.btran(&mut yu);
                other.btran(&mut yo);
                for i in 0..m {
                    assert!(
                        (yu[i] - yo[i]).abs() < 1e-9,
                        "{stage}: btran[{i}] FT {} vs {label} {}",
                        yu[i],
                        yo[i]
                    );
                }
            }
        };
        check(&ft, &pf, &mk(&b, UpdateKind::ForrestTomlin), "snapshot");

        // Random admissible pivot sequence: replace basis slot `slot`
        // with a random column whose direction has a usable pivot. The
        // FT factor absorbs the column, the product-form factor the
        // equivalent eta, and the fresh factorization sees the mutated
        // dense mirror.
        for (step, (slot, colvals)) in pivots.iter().enumerate() {
            let r = slot.index(m);
            let mut d: Vec<f64> = colvals[..m].to_vec();
            ft.ftran(&mut d);
            if d[r].abs() < 0.1 {
                continue; // replacement would make B near-singular
            }
            let col: Vec<(usize, f64)> = colvals[..m]
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0.0)
                .map(|(i, &v)| (i, v))
                .collect();
            prop_assert!(ft.ft_update(r, &col), "admissible update {step} refused");
            let others: Vec<(usize, f64)> = d
                .iter()
                .enumerate()
                .filter(|&(i, &v)| i != r && v.abs() > 1e-12)
                .map(|(i, &v)| (i, v))
                .collect();
            pf.push(Eta { row: r, pivot: d[r], others });
            for i in 0..m {
                b[i * m + r] = 0.0;
            }
            for &(i, v) in &col {
                b[i * m + r] = v;
            }
            check(
                &ft,
                &pf,
                &mk(&b, UpdateKind::ForrestTomlin),
                &format!("after pivot {step}"),
            );
        }
    }

    /// Every `FactorKind` × `UpdateKind` combination, run through the
    /// full warm-started branch & bound, must agree on the verdict and
    /// the objective (Forrest–Tomlin degrades to the product form on the
    /// dense snapshot — that combination pins the degradation path).
    #[test]
    fn factor_and_update_kinds_agree_on_milps(lp in planted_lp(5, 4)) {
        let (m, _vars) = lp.build();
        let mut reference: Option<f64> = None;
        for factor in [FactorKind::Sparse, FactorKind::Dense] {
            for update in [UpdateKind::ForrestTomlin, UpdateKind::ProductForm] {
                let opts = SolverOptions {
                    max_nodes: 4_000,
                    factor,
                    update,
                    ..Default::default()
                };
                let (sol, stats) =
                    crate::solve_with_stats(&m, &opts).expect("planted MILP must be feasible");
                prop_assert!(m.max_violation(sol.values(), 1e-6) < 1e-5);
                if stats.truncated {
                    continue;
                }
                match reference {
                    None => reference = Some(sol.objective),
                    Some(r) => prop_assert!(
                        (sol.objective - r).abs() < 1e-7,
                        "{factor:?}/{update:?}: {} vs reference {}",
                        sol.objective,
                        r
                    ),
                }
            }
        }
    }

    /// The sparse and dense basis factorizations, driven through the full
    /// warm-started branch & bound, must land on the same MILP optimum —
    /// also under an aggressive refactor policy that flushes the eta file
    /// every couple of pivots.
    #[test]
    fn factor_kinds_agree_on_milp_objectives(lp in planted_lp(5, 4)) {
        let (m, _vars) = lp.build();
        let base = SolverOptions { max_nodes: 2_000, ..Default::default() };
        let sparse = m.solve_with(&base).unwrap();
        let dense = m
            .solve_with(&SolverOptions { factor: FactorKind::Dense, ..base.clone() })
            .unwrap();
        prop_assert!(
            (sparse.objective - dense.objective).abs() < 1e-7,
            "sparse-LU {} vs dense-LU {}",
            sparse.objective,
            dense.objective
        );
        let eager = m
            .solve_with(&SolverOptions { refactor_eta_len: 2, ..base.clone() })
            .unwrap();
        prop_assert!(
            (sparse.objective - eager.objective).abs() < 1e-7,
            "default policy {} vs eager refactor {}",
            sparse.objective,
            eager.objective
        );
    }

    /// **Pricing oracle**: steepest-edge pricing (dual steepest-edge
    /// rows, Devex columns, long-step ratio test, incremental reduced
    /// costs) changes which pivots the simplex takes, never which answer
    /// comes out. For every `NodeOrder` × `workers ∈ {1, 2}` combination,
    /// completed runs under both pricing rules must agree on the
    /// objective and return feasible integral points.
    #[test]
    fn pricing_rules_agree_on_milp_objectives(lp in planted_lp(5, 4)) {
        let (m, _vars) = lp.build();
        let mut reference: Option<f64> = None;
        for order in [NodeOrder::DfsNearerFirst, NodeOrder::BestBound] {
            for workers in [1usize, 2] {
                for pricing in [Pricing::SteepestEdge, Pricing::Dantzig] {
                    let opts = SolverOptions {
                        max_nodes: 4_000,
                        node_order: order,
                        workers,
                        pricing,
                        ..Default::default()
                    };
                    let (sol, stats) =
                        crate::solve_with_stats(&m, &opts).expect("planted MILP must be feasible");
                    prop_assert!(m.max_violation(sol.values(), 1e-6) < 1e-5);
                    if stats.truncated {
                        continue;
                    }
                    match reference {
                        None => reference = Some(sol.objective),
                        Some(r) => prop_assert!(
                            (sol.objective - r).abs() < 1e-7,
                            "{order:?}/workers={workers}/{pricing:?}: {} vs reference {}",
                            sol.objective,
                            r
                        ),
                    }
                }
            }
        }
    }

    /// **Incremental reduced-cost oracle**: the steepest-edge dual
    /// reoptimizer maintains reduced costs across pivots (`rc_j ← rc_j −
    /// γ·α_j`) where the Dantzig path recomputes the full dual vector by
    /// BTRAN every pivot. Twin kernels solving the same planted LP, hit
    /// with the same box tightening, must agree on the repaired optimum
    /// and on the feasibility verdict — any drift in the maintained
    /// reduced costs would steer the long-step ratio test to a dual-
    /// infeasible column and surface here as a diverging objective.
    #[test]
    fn dual_reopt_pricings_agree_after_box_tightening(
        lp in planted_lp(6, 5),
        col in any::<prop::sample::Index>(),
        frac in 0.0f64..1.0,
    ) {
        let relaxed = PlantedLp {
            integers: vec![false; lp.nvars],
            ..lp.clone()
        };
        let (m, _vars) = relaxed.build();
        let bf = crate::standard::BoxedForm::build(&m);
        let j = col.index(lp.nvars);
        let run = |pricing: Pricing| -> Result<f64, SolveError> {
            let opts = SolverOptions { pricing, ..Default::default() };
            let mut k = crate::revised::Revised::new(&bf, &opts);
            let mut budget = opts.max_pivots;
            k.solve_two_phase(&opts, &mut budget)?;
            // Variables are [0, 10] with zero lower bound, so standard-
            // form column j is variable j unshifted.
            k.set_col_bounds(j, 0.0, 10.0 * frac);
            k.dual_reopt(&opts, &mut budget)?;
            k.primal_opt(&opts, &mut budget)?;
            let v = bf.sf.recover(&k.values());
            Ok(lp.obj.iter().zip(&v).map(|(c, x)| c * x).sum())
        };
        match (run(Pricing::SteepestEdge), run(Pricing::Dantzig)) {
            (Ok(a), Ok(b)) => prop_assert!(
                (a - b).abs() < 1e-6,
                "steepest-edge {a} vs dantzig {b} after tightening x{j} to [0, {}]",
                10.0 * frac
            ),
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (a, b) => prop_assert!(
                false,
                "verdicts diverge: steepest-edge {a:?} vs dantzig {b:?}"
            ),
        }
    }

    /// **Self-healing oracle**: a fault-injected run must land on the
    /// same optimum and verdict as its clean twin on planted (feasible)
    /// MILPs, for arbitrary fault-plan seeds — the recovery ladder
    /// absorbs every injected failure and never prunes on a corrupted
    /// bound. The returned point must also stay genuinely feasible.
    #[test]
    fn faulted_solves_agree_with_clean_twins(lp in planted_lp(5, 4), seed in any::<u64>()) {
        let (m, _vars) = lp.build();
        let base = SolverOptions { max_nodes: 4_000, ..Default::default() };
        let (clean, clean_stats) =
            crate::solve_with_stats(&m, &base).expect("planted MILP must be feasible");
        let (faulted, faulted_stats) = crate::solve_with_stats(
            &m,
            &SolverOptions { faults: Some(crate::FaultPlan::seeded(seed)), ..base.clone() },
        )
        .expect("faulted twin must recover, not fail");
        prop_assert!(m.max_violation(faulted.values(), 1e-6) < 1e-5);
        if !clean_stats.truncated && !faulted_stats.truncated {
            prop_assert!(
                (clean.objective - faulted.objective).abs() < 1e-7,
                "seed {seed:#x}: clean {} vs faulted {} ({:?})",
                clean.objective,
                faulted.objective,
                faulted_stats.recovery
            );
            prop_assert_eq!(clean.status, faulted.status);
        }
    }
}
