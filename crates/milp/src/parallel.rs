//! Work-stealing parallel branch & bound over the warm revised backend.
//!
//! Layering (see also the crate-level "Concurrency model" docs):
//!
//! * **Shared frontier** — one [`Frontier`] (best-bound heap or DFS
//!   stack, per [`SolverOptions::node_order`]) plus the branch-tree
//!   arena, the node/time budget, and the `node_bounds` telemetry, all
//!   behind a single `Mutex` with a `Condvar` for idle workers. The
//!   incumbent lives behind its *own* `Mutex`, with the pruning cutoff
//!   mirrored into an atomic (signed-objective bits) so the hot pruning
//!   path never takes a lock. The two locks are never held at once.
//!
//! * **Worker layer** — each worker owns a full [`WarmBackend`]: its own
//!   [`crate::revised::Revised`] kernel, sparse factors, fault injector,
//!   and recovery ladder, sharing only the read-only `Arc<BoxedForm>`.
//!   A worker claims one open node from the frontier and runs it as a
//!   bounded DFS **episode** (the serial core's dive mechanism is the
//!   unit of work): children bypass the queue onto a worker-local dive
//!   stack until the episode cap trips, whereupon the leftovers — each
//!   carrying its own bound key and parent-basis `Arc` — are flushed
//!   back to the shared frontier for any worker to steal. Node boxes are
//!   re-derived per worker by the same LCA tree walk the serial core
//!   uses, reading the shared arena under the lock but applying the box
//!   mutations to the worker's private kernel.
//!
//! * **Merge layer** — every worker accumulates a private
//!   [`BranchBoundStats`]; at join they are folded additively (counters
//!   sum, peaks max, recovery ledgers absorb) into the single stats
//!   struct the serial search produces, so `report.rs`, Table-1
//!   rendering, and `BENCH_milp.json` records keep their shape.
//!
//! Termination: a worker that finds the frontier empty while
//! `outstanding == 0` (no episode still running that could flush more
//! work) declares the search done. Frontier entries whose bound cannot
//! beat the cutoff are discarded unsolved at claim time — each discard
//! is individually sound (its bound alone proves the subtree useless),
//! so no global agreement is needed. Budget exhaustion (shared node cap
//! or the single shared deadline) marks the search truncated and stops
//! every worker at its next claim.
//!
//! Only the warm revised path parallelizes; `workers <= 1` and the
//! legacy rebuild-per-node backend route through the serial
//! [`crate::branch_bound`] core unchanged, which is what makes
//! `workers = 1` bit-exact with the historical trajectories.

use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::branch_bound::{
    branch_children, finish, BranchBoundStats, Frontier, LpBackend, OpenNode, TreeNode, WarmBackend,
};
use crate::expr::VarId;
use crate::model::{Model, Sense, SolverOptions};
use crate::revised::Revised;
use crate::solution::{Solution, SolveError};
use crate::standard::BoxedForm;

/// Search-wide state behind the frontier lock.
struct Shared {
    frontier: Frontier,
    /// The branch tree. Append-only; indices are stable, so workers can
    /// cache arena indices (`cur`) across lock drops.
    arena: Vec<TreeNode>,
    /// Episodes currently running — claims that have not yet returned.
    /// The frontier being empty proves nothing while this is non-zero:
    /// any running episode may still flush leftovers back.
    outstanding: usize,
    /// Nodes claimed so far (the shared node budget).
    nodes: usize,
    truncated: bool,
    done: bool,
    err: Option<SolveError>,
    root_bound: f64,
    root_solved: bool,
    queue_peak: usize,
    /// Slot per claimed node, indexed by claim order; written when the
    /// node's LP concludes (claim order ≠ completion order).
    node_bounds: Vec<f64>,
    /// Push sequence for heap tie-breaking.
    seq: usize,
}

/// Incumbent state, separate from [`Shared`] so accepting an incumbent
/// never blocks node claims. The pruning cutoff is mirrored into
/// [`Ctx::cutoff`] *while this lock is held*, so the atomic only ever
/// tightens and a racy read sees, at worst, a slightly stale (looser)
/// cutoff — which can never prune a node the serial search would keep.
struct Incumbent {
    best: Option<Solution>,
    incumbents: usize,
    first_incumbent_node: usize,
    incumbent_trace: Vec<(usize, f64)>,
}

/// Everything the workers share.
struct Ctx<'m> {
    model: &'m Model,
    opts: &'m SolverOptions,
    int_vars: Vec<VarId>,
    sense_mul: f64,
    /// The single wall-clock deadline, captured once at solve start.
    deadline: Option<Instant>,
    shared: Mutex<Shared>,
    idle: Condvar,
    incumbent: Mutex<Incumbent>,
    /// Bits of the signed incumbent objective (`+inf` = no incumbent).
    cutoff: AtomicU64,
}

impl Ctx<'_> {
    fn signed(&self, obj: f64) -> f64 {
        self.sense_mul * obj
    }

    fn cutoff(&self) -> f64 {
        f64::from_bits(self.cutoff.load(AtomicOrdering::Acquire))
    }

    fn out_of_clock(&self) -> bool {
        self.deadline.is_some_and(|dl| Instant::now() >= dl)
    }

    /// Offers `candidate` as an incumbent (must be integral to win) and
    /// returns whether it was installed. On improvement the atomic
    /// cutoff is tightened before the lock drops; the gap check against
    /// the root bound runs afterwards (separate lock) and may end the
    /// whole search.
    fn accept(&self, candidate: Solution, node_idx: usize) -> bool {
        let integral = self.int_vars.iter().all(|&v| {
            let x = candidate.value(v);
            (x - x.round()).abs() <= self.opts.int_tol
        });
        if !integral {
            return false;
        }
        let installed = {
            let mut inc = self.incumbent.lock().unwrap();
            let better = match &inc.best {
                None => true,
                Some(b) => self.signed(candidate.objective) < self.signed(b.objective) - 1e-9,
            };
            if better {
                if inc.incumbents == 0 {
                    inc.first_incumbent_node = node_idx;
                }
                inc.incumbents += 1;
                inc.incumbent_trace.push((node_idx, candidate.objective));
                self.cutoff.store(
                    self.signed(candidate.objective).to_bits(),
                    AtomicOrdering::Release,
                );
                inc.best = Some(candidate);
            }
            better
        };
        if installed && self.within_gap() {
            let mut sh = self.shared.lock().unwrap();
            sh.done = true;
            drop(sh);
            self.idle.notify_all();
        }
        installed
    }

    /// Relative gap of the current incumbent against the root LP bound
    /// (the serial core's stopping rule, evaluated on the shared state).
    fn within_gap(&self) -> bool {
        let (root_bound, root_solved) = {
            let sh = self.shared.lock().unwrap();
            (sh.root_bound, sh.root_solved)
        };
        if !root_solved {
            return false;
        }
        let inc = {
            let inc = self.incumbent.lock().unwrap();
            match &inc.best {
                Some(b) => self.signed(b.objective),
                None => return false,
            }
        };
        inc - self.signed(root_bound) <= self.opts.gap_tol * inc.abs().max(1.0)
    }
}

/// One worker: a private backend plus the locally tracked box state
/// (`lo`/`hi`/`cur`) that mirrors whatever tree node its kernel
/// currently has applied.
struct Worker<'c, 'm> {
    ctx: &'c Ctx<'m>,
    backend: WarmBackend<'m>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Arena index of the node whose boxes this worker's kernel has
    /// applied.
    cur: usize,
    stats: BranchBoundStats,
    /// Shorter than the serial cap: episodes are also the unit of load
    /// balancing, so with more workers each claim hands work back to
    /// the frontier sooner.
    episode_cap: usize,
}

impl Worker<'_, '_> {
    /// Claims an open node, discarding prunable entries unsolved, or
    /// waits until one appears. `None` = the search is over.
    fn claim(&self) -> Option<OpenNode> {
        let ctx = self.ctx;
        let mut sh = ctx.shared.lock().unwrap();
        loop {
            if sh.done || sh.err.is_some() {
                return None;
            }
            let cutoff = ctx.cutoff();
            while let Some(o) = sh.frontier.pop() {
                if o.key >= cutoff - 1e-9 {
                    // Its bound alone proves the subtree useless —
                    // individually sound, no global agreement needed.
                    continue;
                }
                sh.outstanding += 1;
                return Some(o);
            }
            if sh.outstanding == 0 {
                // Nothing queued and nobody who could queue more.
                sh.done = true;
                drop(sh);
                ctx.idle.notify_all();
                return None;
            }
            sh = ctx.idle.wait(sh).unwrap();
        }
    }

    /// The serial core's LCA walk, read-only: collects the box
    /// mutations that switch this worker from `self.cur` to `t` into
    /// `ops` (in application order) and returns `t`'s depth. Runs under
    /// the shared lock (the arena is append-only but `Vec` growth moves
    /// it); the collected ops are applied to the private kernel after
    /// the lock drops.
    fn path_ops(&self, arena: &[TreeNode], t: usize, ops: &mut Vec<(usize, f64, f64)>) -> usize {
        let mut a = self.cur;
        let mut b = t;
        let mut down: Vec<usize> = Vec::new();
        while arena[a].depth > arena[b].depth {
            ops.push((arena[a].vi, arena[a].parent_lo, arena[a].parent_hi));
            a = arena[a].parent;
        }
        while arena[b].depth > arena[a].depth {
            down.push(b);
            b = arena[b].parent;
        }
        while a != b {
            ops.push((arena[a].vi, arena[a].parent_lo, arena[a].parent_hi));
            a = arena[a].parent;
            down.push(b);
            b = arena[b].parent;
        }
        for &n in down.iter().rev() {
            ops.push((arena[n].vi, arena[n].lo, arena[n].hi));
        }
        arena[t].depth
    }

    /// Branching variable: highest priority class, most fractional
    /// within it (identical to the serial core).
    fn most_fractional(&self, sol: &Solution) -> Option<(VarId, f64)> {
        let ctx = self.ctx;
        let mut best: Option<(VarId, f64)> = None;
        let mut best_key = (i32::MIN, ctx.opts.int_tol);
        for &v in &ctx.int_vars {
            let val = sol.value(v);
            let frac = (val - val.round()).abs();
            if frac <= ctx.opts.int_tol {
                continue;
            }
            let key = (ctx.model.var(v).priority(), frac);
            if key > best_key {
                best_key = key;
                best = Some((v, val));
            }
        }
        best
    }

    /// Round-and-fix heuristic on this worker's kernel; the candidate is
    /// offered through the shared incumbent lock.
    fn offer_incumbent(&mut self, sol: &Solution, node_idx: usize) {
        let ctx = self.ctx;
        let mut pins: Vec<(usize, f64)> = Vec::with_capacity(ctx.int_vars.len());
        let mut restore: Vec<(usize, f64, f64)> = Vec::with_capacity(ctx.int_vars.len());
        for &v in &ctx.int_vars {
            let vi = v.index();
            if !self.backend.branchable(vi) {
                continue;
            }
            let val = sol.value(v).round().clamp(self.lo[vi], self.hi[vi]);
            pins.push((vi, val));
            restore.push((vi, self.lo[vi], self.hi[vi]));
        }
        let candidate = self
            .backend
            .round_and_fix(ctx.opts, &pins, &restore, sol, &mut self.stats);
        ctx.accept(candidate, node_idx);
    }

    /// Queues the children of an expanded node onto the episode's dive
    /// stack. Must be called with the shared lock held (arena append).
    fn expand(
        &self,
        sh: &mut Shared,
        t: usize,
        (var, val): (VarId, f64),
        bound: f64,
        basis: &Option<Arc<crate::revised::BasisState>>,
        dive: &mut Vec<OpenNode>,
    ) {
        let vi = var.index();
        let key = self.ctx.signed(bound);
        let depth = sh.arena[t].depth + 1;
        let children = branch_children(t, depth, vi, val, self.lo[vi], self.hi[vi]);
        for child in children.into_iter().flatten() {
            let idx = sh.arena.len();
            sh.arena.push(child);
            sh.seq += 1;
            dive.push(OpenNode {
                node: idx,
                key,
                seq: sh.seq,
                basis: basis.clone(),
            });
        }
        // Telemetry approximation: the shared queue plus this worker's
        // dive (other workers' in-flight dives are not counted).
        let open_now = sh.frontier.len() + dive.len();
        sh.queue_peak = sh.queue_peak.max(open_now);
    }

    /// Runs one claimed node as a bounded DFS episode. Returns `false`
    /// when the worker should stop claiming (search done or hard error).
    ///
    /// The hot path costs exactly two shared-lock acquisitions per node:
    /// one to claim a budget unit and read the activation path, one to
    /// publish the bound and append the children.
    fn episode(&mut self, root: OpenNode) -> bool {
        let ctx = self.ctx;
        let mut dive: Vec<OpenNode> = vec![root];
        let mut ops: Vec<(usize, f64, f64)> = Vec::new();
        let mut solved = 0usize;
        while let Some(open) = dive.pop() {
            if open.key >= ctx.cutoff() - 1e-9 {
                continue; // discarded unsolved, like the serial dive
            }
            // Lock 1: claim one unit of the shared node budget and read
            // the box mutations that move this kernel to the node.
            ops.clear();
            let (node_idx, depth) = {
                let mut sh = ctx.shared.lock().unwrap();
                if sh.done || sh.err.is_some() {
                    return false;
                }
                if sh.nodes >= ctx.opts.max_nodes || ctx.out_of_clock() {
                    sh.truncated = true;
                    sh.done = true;
                    drop(sh);
                    ctx.idle.notify_all();
                    return false;
                }
                sh.nodes += 1;
                sh.node_bounds.push(f64::NAN);
                let depth = self.path_ops(&sh.arena, open.node, &mut ops);
                (sh.nodes - 1, depth)
            };
            for &(vi, lo, hi) in &ops {
                self.lo[vi] = lo;
                self.hi[vi] = hi;
                self.backend.set_var_box(vi, lo, hi);
            }
            self.cur = open.node;
            let relax =
                match self
                    .backend
                    .solve_node(ctx.opts, open.basis.as_deref(), &mut self.stats)
                {
                    Ok(sol) => sol,
                    Err(SolveError::Infeasible) => continue, // bound slot stays NaN
                    Err(SolveError::IterationLimit) | Err(SolveError::Numerical(_)) => {
                        // No usable bound for this subtree: prune it, keep
                        // whatever incumbent exists, mark the run truncated.
                        let mut sh = ctx.shared.lock().unwrap();
                        sh.truncated = true;
                        continue;
                    }
                    Err(e) => {
                        let mut sh = ctx.shared.lock().unwrap();
                        if sh.err.is_none() {
                            sh.err = Some(e);
                        }
                        sh.done = true;
                        drop(sh);
                        ctx.idle.notify_all();
                        return false;
                    }
                };
            solved += 1;
            let pruned = ctx.signed(relax.objective) >= ctx.cutoff() - 1e-9;
            // Branching decision and basis snapshot are pure local work.
            let branch = if pruned {
                None
            } else {
                self.most_fractional(&relax)
            };
            let heuristic_due = ctx.opts.rounding_heuristic
                && branch.is_some()
                && (depth == 0 || depth.is_multiple_of(8));
            // Children warm-start from this node's optimal basis
            // (snapshot before the heuristic perturbs the kernel).
            let my_basis = if branch.is_some() {
                self.backend.snapshot(ctx.opts).map(Arc::new)
            } else {
                None
            };
            if heuristic_due {
                self.offer_incumbent(&relax, node_idx + 1);
            }
            // Lock 2: publish the bound; append the children.
            {
                let mut sh = ctx.shared.lock().unwrap();
                sh.node_bounds[node_idx] = relax.objective;
                if depth == 0 {
                    sh.root_bound = relax.objective;
                    sh.root_solved = true;
                }
                if let Some(bv) = branch {
                    self.expand(
                        &mut sh,
                        open.node,
                        bv,
                        relax.objective,
                        &my_basis,
                        &mut dive,
                    );
                }
            }
            if branch.is_none() && !pruned {
                // Integral leaf: the relaxation point is the optimal
                // incumbent for this box.
                ctx.accept(relax, node_idx + 1);
                continue;
            }
            if solved >= self.episode_cap && !dive.is_empty() {
                // Episode over: hand the leftovers to the frontier so
                // idle workers can steal them.
                let mut sh = ctx.shared.lock().unwrap();
                for e in dive.drain(..) {
                    sh.frontier.push(e);
                }
                sh.queue_peak = sh.queue_peak.max(sh.frontier.len());
                drop(sh);
                ctx.idle.notify_all();
                return true;
            }
        }
        true
    }

    /// The worker main loop: claim, run the episode, retire the claim.
    fn run(&mut self) {
        while let Some(open) = self.claim() {
            let keep_going = self.episode(open);
            let mut sh = self.ctx.shared.lock().unwrap();
            sh.outstanding -= 1;
            if sh.outstanding == 0 && sh.frontier.len() == 0 {
                sh.done = true;
            }
            drop(sh);
            self.ctx.idle.notify_all();
            if !keep_going {
                return;
            }
        }
    }
}

/// Entry point from [`crate::branch_bound::solve_with_stats_hinted`]:
/// the warm revised path with `opts.workers >= 2`.
pub(crate) fn solve_parallel(
    model: &Model,
    opts: &SolverOptions,
    hint: &[(VarId, f64)],
    form: Arc<BoxedForm>,
    int_cols: Vec<Option<(usize, f64)>>,
    deadline: Option<Instant>,
) -> Result<(Solution, BranchBoundStats), SolveError> {
    let workers = opts.workers;
    let int_vars: Vec<VarId> = model
        .vars()
        .filter(|(_, v)| v.is_integer())
        .map(|(id, _)| id)
        .collect();
    let int_count = int_vars.len();
    let arena = vec![TreeNode::root()];
    let mut frontier = Frontier::new(opts.node_order);
    frontier.push(OpenNode {
        node: 0,
        key: f64::NEG_INFINITY,
        seq: 0,
        basis: None,
    });
    let ctx = Ctx {
        model,
        opts,
        int_vars,
        sense_mul: match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        },
        deadline,
        shared: Mutex::new(Shared {
            frontier,
            arena,
            outstanding: 0,
            nodes: 0,
            truncated: false,
            done: false,
            err: None,
            root_bound: 0.0,
            root_solved: false,
            queue_peak: 1,
            node_bounds: Vec::new(),
            seq: 0,
        }),
        idle: Condvar::new(),
        incumbent: Mutex::new(Incumbent {
            best: None,
            incumbents: 0,
            first_incumbent_node: 0,
            incumbent_trace: Vec::new(),
        }),
        cutoff: AtomicU64::new(f64::INFINITY.to_bits()),
    };
    // The serial cap (one integral leaf per episode) divided across the
    // workers, so early episodes start feeding the frontier quickly.
    let episode_cap = (64.max(2 * int_count) / workers).max(8);
    let mut pool: Vec<Worker> = (0..workers)
        .map(|_| {
            let mut kernel = Revised::new(&form, opts);
            kernel.set_deadline(deadline);
            Worker {
                ctx: &ctx,
                backend: WarmBackend {
                    model,
                    form: Arc::clone(&form),
                    int_cols: int_cols.clone(),
                    kernel,
                },
                lo: model.vars.iter().map(|v| v.lower).collect(),
                hi: model.vars.iter().map(|v| v.upper).collect(),
                cur: 0,
                stats: BranchBoundStats {
                    order: opts.node_order,
                    ..BranchBoundStats::default()
                },
                episode_cap,
            }
        })
        .collect();
    // Hint seeding runs serially on worker 0 before any thread spawns
    // (it may install the first incumbent and tighten the cutoff).
    if !hint.is_empty() {
        let w0 = &mut pool[0];
        let mut pins: Vec<(usize, f64)> = Vec::with_capacity(hint.len());
        let mut restore: Vec<(usize, f64, f64)> = Vec::with_capacity(hint.len());
        for &(v, val) in hint {
            let vi = v.index();
            if !model.var(v).is_integer() || !w0.backend.branchable(vi) {
                continue;
            }
            let val = val.round().clamp(w0.lo[vi], w0.hi[vi]);
            pins.push((vi, val));
            restore.push((vi, w0.lo[vi], w0.hi[vi]));
        }
        if let Some(sol) = w0.backend.seed_hint(opts, &pins, &restore, &mut w0.stats) {
            ctx.accept(sol, 0);
        }
    }
    let worker_stats: Vec<BranchBoundStats> = std::thread::scope(|s| {
        let handles: Vec<_> = pool
            .into_iter()
            .map(|mut w| {
                s.spawn(move || {
                    w.run();
                    let mut stats = w.stats;
                    w.backend.finish(&mut stats);
                    stats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Merge layer: counters sum, peaks max, recovery ledgers absorb.
    let mut stats = BranchBoundStats {
        order: opts.node_order,
        ..BranchBoundStats::default()
    };
    for w in &worker_stats {
        stats.simplex_iters += w.simplex_iters;
        stats.warm_solves += w.warm_solves;
        stats.cold_solves += w.cold_solves;
        stats.refactors += w.refactors;
        stats.ft_updates += w.ft_updates;
        stats.forced_refactors += w.forced_refactors;
        stats.peak_u_nnz = stats.peak_u_nnz.max(w.peak_u_nnz);
        stats.peak_lu_nnz = stats.peak_lu_nnz.max(w.peak_lu_nnz);
        stats.basis_rows = stats.basis_rows.max(w.basis_rows);
        stats.recovery.absorb(&w.recovery);
    }
    let shared = ctx.shared.into_inner().unwrap();
    if let Some(e) = shared.err {
        return Err(e);
    }
    stats.nodes = shared.nodes;
    stats.truncated = shared.truncated;
    stats.root_bound = shared.root_bound;
    stats.queue_peak = shared.queue_peak;
    stats.node_bounds = shared.node_bounds;
    let inc = ctx.incumbent.into_inner().unwrap();
    stats.incumbents = inc.incumbents;
    stats.first_incumbent_node = inc.first_incumbent_node;
    stats.incumbent_trace = inc.incumbent_trace;
    finish(inc.best, stats)
}
