//! Work-stealing parallel branch & bound over the warm revised backend.
//!
//! Layering (see also the crate-level "Concurrency model" docs):
//!
//! * **Shared frontier** — one [`Frontier`] (best-bound heap or DFS
//!   stack, per [`SolverOptions::node_order`]) plus the branch-tree
//!   arena, the node/time budget, and the `node_bounds` telemetry, all
//!   behind a single `Mutex` with a `Condvar` for idle workers. The
//!   incumbent lives behind its *own* `Mutex`, with the pruning cutoff
//!   mirrored into an atomic (signed-objective bits) so the hot pruning
//!   path never takes a lock. The two locks are never held at once.
//!
//! * **Worker layer** — each worker owns a full [`WarmBackend`]: its own
//!   [`crate::revised::Revised`] kernel, sparse factors, fault injector,
//!   and recovery ladder, sharing only the read-only `Arc<BoxedForm>`.
//!   A worker claims one open node from the frontier and runs it as a
//!   bounded DFS **episode** (the serial core's dive mechanism is the
//!   unit of work): children bypass the queue onto a worker-local dive
//!   stack until the episode cap trips, whereupon the leftovers — each
//!   carrying its own bound key and parent-basis `Arc` — are flushed
//!   back to the shared frontier for any worker to steal. Node boxes are
//!   re-derived per worker by the same LCA tree walk the serial core
//!   uses, reading the shared arena under the lock but applying the box
//!   mutations to the worker's private kernel.
//!
//! * **Merge layer** — every worker accumulates a private
//!   [`BranchBoundStats`]; at join they are folded additively (counters
//!   sum, peaks max, recovery ledgers absorb) into the single stats
//!   struct the serial search produces, so `report.rs`, Table-1
//!   rendering, and `BENCH_milp.json` records keep their shape.
//!
//! Termination: a worker that finds the frontier empty while
//! `outstanding == 0` (no episode still running that could flush more
//! work) declares the search done. Frontier entries whose bound cannot
//! beat the cutoff are discarded unsolved at claim time — each discard
//! is individually sound (its bound alone proves the subtree useless),
//! so no global agreement is needed. Budget exhaustion (shared node cap
//! or the single shared deadline) marks the search truncated and stops
//! every worker at its next claim.
//!
//! Every model parallelizes — shifted, mirrored, and free (split-pair)
//! integers all branch through the same in-place column-box updates.
//! `workers <= 1` routes through the serial [`crate::branch_bound`]
//! core unchanged, which is what makes `workers = 1` bit-exact with the
//! historical trajectories.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::branch_bound::{
    branch_children, finish, most_fractional_of, select_branch_var, BranchBoundStats, Frontier,
    LpBackend, OpenNode, PseudoCosts, TreeNode, WarmBackend,
};
use crate::expr::VarId;
use crate::model::{Branching, Model, NodeOrder, Sense, SolverOptions};
use crate::revised::Revised;
use crate::solution::{Solution, SolveError};
use crate::standard::{BoxedForm, ColMap};

/// Search-wide state behind the frontier lock.
struct Shared {
    frontier: Frontier,
    /// The branch tree. Append-only; indices are stable, so workers can
    /// cache arena indices (`cur`) across lock drops.
    arena: Vec<TreeNode>,
    /// Episodes currently running — claims that have not yet returned.
    /// The frontier being empty proves nothing while this is non-zero:
    /// any running episode may still flush leftovers back.
    outstanding: usize,
    /// Nodes claimed so far (the shared node budget).
    nodes: usize,
    truncated: bool,
    done: bool,
    err: Option<SolveError>,
    root_bound: f64,
    root_solved: bool,
    queue_peak: usize,
    /// Slot per claimed node, indexed by claim order; written when the
    /// node's LP concludes (claim order ≠ completion order).
    node_bounds: Vec<f64>,
    /// Push sequence for heap tie-breaking.
    seq: usize,
    /// Per worker: the signed bound of the node it claimed (`+∞` when
    /// idle). A claim's bound lower-bounds every node its episode can
    /// produce, so `min(frontier, episode_floor)` is a valid global
    /// dual bound even while episodes are in flight.
    episode_floor: Vec<f64>,
}

/// Incumbent state, separate from [`Shared`] so accepting an incumbent
/// never blocks node claims. The pruning cutoff is mirrored into
/// [`Ctx::cutoff`] *while this lock is held*, so the atomic only ever
/// tightens and a racy read sees, at worst, a slightly stale (looser)
/// cutoff — which can never prune a node the serial search would keep.
struct Incumbent {
    best: Option<Solution>,
    incumbents: usize,
    first_incumbent_node: usize,
    incumbent_trace: Vec<(usize, f64)>,
}

/// Everything the workers share.
struct Ctx<'m> {
    model: &'m Model,
    opts: &'m SolverOptions,
    int_vars: Vec<VarId>,
    sense_mul: f64,
    /// The single wall-clock deadline, captured once at solve start.
    deadline: Option<Instant>,
    shared: Mutex<Shared>,
    idle: Condvar,
    incumbent: Mutex<Incumbent>,
    /// Bits of the signed incumbent objective (`+inf` = no incumbent).
    cutoff: AtomicU64,
    /// Shared pseudo-cost table: read lock-free (atomics) by every
    /// worker's branching selection; node-degradation observations are
    /// recorded under the existing shared (budget) lock at bound
    /// publication.
    pseudo: PseudoCosts,
    /// Global cut-activation flags, one per cut row. A worker that
    /// separates a cut publishes its flag; every other worker mirrors
    /// set flags into its private kernel before each node solve.
    cut_flags: Vec<AtomicBool>,
}

impl Ctx<'_> {
    fn signed(&self, obj: f64) -> f64 {
        self.sense_mul * obj
    }

    fn cutoff(&self) -> f64 {
        f64::from_bits(self.cutoff.load(AtomicOrdering::Acquire))
    }

    fn out_of_clock(&self) -> bool {
        self.deadline.is_some_and(|dl| Instant::now() >= dl)
    }

    /// Offers `candidate` as an incumbent (must be integral to win) and
    /// returns whether it was installed. On improvement the atomic
    /// cutoff is tightened before the lock drops; the gap check against
    /// the root bound runs afterwards (separate lock) and may end the
    /// whole search.
    fn accept(&self, candidate: Solution, node_idx: usize) -> bool {
        let integral = self.int_vars.iter().all(|&v| {
            let x = candidate.value(v);
            (x - x.round()).abs() <= self.opts.int_tol
        });
        if !integral {
            return false;
        }
        let installed = {
            let mut inc = self.incumbent.lock().unwrap();
            let better = match &inc.best {
                None => true,
                Some(b) => self.signed(candidate.objective) < self.signed(b.objective) - 1e-9,
            };
            if better {
                if inc.incumbents == 0 {
                    inc.first_incumbent_node = node_idx;
                }
                inc.incumbents += 1;
                inc.incumbent_trace.push((node_idx, candidate.objective));
                self.cutoff.store(
                    self.signed(candidate.objective).to_bits(),
                    AtomicOrdering::Release,
                );
                inc.best = Some(candidate);
            }
            better
        };
        if installed && self.within_gap() {
            let mut sh = self.shared.lock().unwrap();
            sh.done = true;
            drop(sh);
            self.idle.notify_all();
        }
        installed
    }

    /// Gap termination test (the serial core's stopping rule, evaluated
    /// on the shared state): against the root LP bound historically
    /// (most-fractional mode, keeping the pinned goldens bit-exact), or
    /// against the valid global dual bound — frontier minimum joined
    /// with the in-flight episode floors — under pseudo-cost branching.
    fn within_gap(&self) -> bool {
        let bound = {
            let sh = self.shared.lock().unwrap();
            if !sh.root_solved {
                return false;
            }
            match self.opts.branching {
                Branching::MostFractional => self.signed(sh.root_bound),
                Branching::PseudoCost => sh
                    .episode_floor
                    .iter()
                    .copied()
                    .fold(sh.frontier.min_bound(), f64::min),
            }
        };
        let inc = {
            let inc = self.incumbent.lock().unwrap();
            match &inc.best {
                Some(b) => self.signed(b.objective),
                None => return false,
            }
        };
        inc - bound <= self.opts.gap_tol * inc.abs().max(1.0)
    }
}

/// One worker: a private backend plus the locally tracked box state
/// (`lo`/`hi`/`cur`) that mirrors whatever tree node its kernel
/// currently has applied.
struct Worker<'c, 'm> {
    ctx: &'c Ctx<'m>,
    /// Index into [`Shared::episode_floor`].
    id: usize,
    backend: WarmBackend<'m>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Arena index of the node whose boxes this worker's kernel has
    /// applied.
    cur: usize,
    stats: BranchBoundStats,
    /// Shorter than the serial cap: episodes are also the unit of load
    /// balancing, so with more workers each claim hands work back to
    /// the frontier sooner.
    episode_cap: usize,
}

impl Worker<'_, '_> {
    /// Claims an open node, discarding prunable entries unsolved, or
    /// waits until one appears. `None` = the search is over.
    fn claim(&self) -> Option<OpenNode> {
        let ctx = self.ctx;
        let mut sh = ctx.shared.lock().unwrap();
        loop {
            if sh.done || sh.err.is_some() {
                return None;
            }
            let cutoff = ctx.cutoff();
            while let Some(o) = sh.frontier.pop() {
                if o.bound >= cutoff - 1e-9 {
                    // Its bound alone proves the subtree useless —
                    // individually sound, no global agreement needed.
                    continue;
                }
                sh.outstanding += 1;
                sh.episode_floor[self.id] = o.bound;
                return Some(o);
            }
            if sh.outstanding == 0 {
                // Nothing queued and nobody who could queue more.
                sh.done = true;
                drop(sh);
                ctx.idle.notify_all();
                return None;
            }
            sh = ctx.idle.wait(sh).unwrap();
        }
    }

    /// The serial core's LCA walk, read-only: collects the box
    /// mutations that switch this worker from `self.cur` to `t` into
    /// `ops` (in application order) and returns `t`'s depth. Runs under
    /// the shared lock (the arena is append-only but `Vec` growth moves
    /// it); the collected ops are applied to the private kernel after
    /// the lock drops.
    fn path_ops(&self, arena: &[TreeNode], t: usize, ops: &mut Vec<(usize, f64, f64)>) -> usize {
        let mut a = self.cur;
        let mut b = t;
        let mut down: Vec<usize> = Vec::new();
        while arena[a].depth > arena[b].depth {
            ops.push((arena[a].vi, arena[a].parent_lo, arena[a].parent_hi));
            a = arena[a].parent;
        }
        while arena[b].depth > arena[a].depth {
            down.push(b);
            b = arena[b].parent;
        }
        while a != b {
            ops.push((arena[a].vi, arena[a].parent_lo, arena[a].parent_hi));
            a = arena[a].parent;
            down.push(b);
            b = arena[b].parent;
        }
        for &n in down.iter().rev() {
            ops.push((arena[n].vi, arena[n].lo, arena[n].hi));
        }
        arena[t].depth
    }

    /// Branching variable, through the same shared selection functions
    /// the serial core uses (pseudo-cost estimates read lock-free from
    /// the shared table; strong-branch probes run on this worker's
    /// private kernel).
    fn pick_branch_var(&mut self, sol: &Solution) -> Option<(VarId, f64)> {
        let ctx = self.ctx;
        match ctx.opts.branching {
            Branching::MostFractional => {
                most_fractional_of(ctx.model, &ctx.int_vars, ctx.opts.int_tol, sol)
            }
            Branching::PseudoCost => select_branch_var(
                &mut self.backend,
                ctx.model,
                ctx.opts,
                &ctx.int_vars,
                sol,
                &self.lo,
                &self.hi,
                ctx.sense_mul,
                &ctx.pseudo,
                &mut self.stats,
            ),
        }
    }

    /// Round-and-fix heuristic on this worker's kernel; the candidate is
    /// offered through the shared incumbent lock.
    fn offer_incumbent(&mut self, sol: &Solution, node_idx: usize) {
        let ctx = self.ctx;
        let mut pins: Vec<(usize, f64)> = Vec::with_capacity(ctx.int_vars.len());
        let mut restore: Vec<(usize, f64, f64)> = Vec::with_capacity(ctx.int_vars.len());
        for &v in &ctx.int_vars {
            let vi = v.index();
            let val = sol.value(v).round().clamp(self.lo[vi], self.hi[vi]);
            pins.push((vi, val));
            restore.push((vi, self.lo[vi], self.hi[vi]));
        }
        let candidate = self
            .backend
            .round_and_fix(ctx.opts, &pins, &restore, sol, &mut self.stats);
        ctx.accept(candidate, node_idx);
    }

    /// Queues the children of an expanded node onto the episode's dive
    /// stack. Must be called with the shared lock held (arena append).
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &self,
        sh: &mut Shared,
        t: usize,
        (var, val): (VarId, f64),
        bound: f64,
        basis: &Option<Arc<crate::revised::BasisState>>,
        dive: &mut Vec<OpenNode>,
        sol: &Solution,
    ) {
        let ctx = self.ctx;
        let vi = var.index();
        let signed_bound = ctx.signed(bound);
        // Best-estimate keys, mirroring the serial core (estimates order
        // the queue; pruning reads `OpenNode::bound`).
        let estimate = ctx.opts.branching == Branching::PseudoCost
            && ctx.opts.node_order == NodeOrder::BestBound;
        let common = if estimate {
            let mut sum = 0.0;
            for &v in &ctx.int_vars {
                if v.index() == vi {
                    continue;
                }
                let x = sol.value(v);
                let fd = x - x.floor();
                let fu = x.ceil() - x;
                if fd.min(fu) <= ctx.opts.int_tol {
                    continue;
                }
                let down = ctx.pseudo.estimate(v.index(), false) * fd;
                let up = ctx.pseudo.estimate(v.index(), true) * fu;
                sum += down.min(up).max(0.0);
            }
            sum
        } else {
            0.0
        };
        let depth = sh.arena[t].depth + 1;
        let children = branch_children(t, depth, vi, val, self.lo[vi], self.hi[vi], bound);
        for child in children.into_iter().flatten() {
            let key = if estimate {
                signed_bound + common + ctx.pseudo.estimate(vi, child.up) * child.frac
            } else {
                signed_bound
            };
            let idx = sh.arena.len();
            sh.arena.push(child);
            sh.seq += 1;
            dive.push(OpenNode {
                node: idx,
                bound: signed_bound,
                key,
                seq: sh.seq,
                basis: basis.clone(),
            });
        }
        // Telemetry approximation: the shared queue plus this worker's
        // dive (other workers' in-flight dives are not counted).
        let open_now = sh.frontier.len() + dive.len();
        sh.queue_peak = sh.queue_peak.max(open_now);
    }

    /// Runs one claimed node as a bounded DFS episode. Returns `false`
    /// when the worker should stop claiming (search done or hard error).
    ///
    /// The hot path costs exactly two shared-lock acquisitions per node:
    /// one to claim a budget unit and read the activation path, one to
    /// publish the bound and append the children.
    fn episode(&mut self, root: OpenNode) -> bool {
        let ctx = self.ctx;
        let mut dive: Vec<OpenNode> = vec![root];
        let mut ops: Vec<(usize, f64, f64)> = Vec::new();
        let mut solved = 0usize;
        while let Some(open) = dive.pop() {
            if open.bound >= ctx.cutoff() - 1e-9 {
                continue; // discarded unsolved, like the serial dive
            }
            // Lock 1: claim one unit of the shared node budget and read
            // the box mutations that move this kernel to the node. Early
            // exits flush the unexplored entries (their bounds included)
            // back to the frontier so the final dual bound stays valid.
            ops.clear();
            let (node_idx, depth) = {
                let mut sh = ctx.shared.lock().unwrap();
                if sh.done || sh.err.is_some() {
                    sh.frontier.push(open);
                    for e in dive.drain(..) {
                        sh.frontier.push(e);
                    }
                    return false;
                }
                if sh.nodes >= ctx.opts.max_nodes || ctx.out_of_clock() {
                    sh.truncated = true;
                    sh.done = true;
                    sh.frontier.push(open);
                    for e in dive.drain(..) {
                        sh.frontier.push(e);
                    }
                    drop(sh);
                    ctx.idle.notify_all();
                    return false;
                }
                sh.nodes += 1;
                sh.node_bounds.push(f64::NAN);
                let depth = self.path_ops(&sh.arena, open.node, &mut ops);
                (sh.nodes - 1, depth)
            };
            for &(vi, lo, hi) in &ops {
                self.lo[vi] = lo;
                self.hi[vi] = hi;
                self.backend.set_var_box(vi, lo, hi);
            }
            self.cur = open.node;
            // Mirror cut activations other workers published (an rhs
            // tighten preserves dual feasibility, so the warm start
            // survives).
            for (i, flag) in ctx.cut_flags.iter().enumerate() {
                if flag.load(AtomicOrdering::Relaxed) {
                    self.backend.apply_cut(i);
                }
            }
            let mut relax =
                match self
                    .backend
                    .solve_node(ctx.opts, open.basis.as_deref(), &mut self.stats)
                {
                    Ok(sol) => sol,
                    Err(SolveError::Infeasible) => continue, // bound slot stays NaN
                    Err(SolveError::IterationLimit) | Err(SolveError::Numerical(_)) => {
                        // No usable bound for this subtree: prune it, keep
                        // whatever incumbent exists, mark the run truncated.
                        let mut sh = ctx.shared.lock().unwrap();
                        sh.truncated = true;
                        continue;
                    }
                    Err(e) => {
                        let mut sh = ctx.shared.lock().unwrap();
                        if sh.err.is_none() {
                            sh.err = Some(e);
                        }
                        sh.done = true;
                        for e in dive.drain(..) {
                            sh.frontier.push(e);
                        }
                        drop(sh);
                        ctx.idle.notify_all();
                        return false;
                    }
                };
            // Lazy cut separation, as in the serial core: activate
            // violated cuts (publishing each first activation globally)
            // and re-solve; Infeasible closes the node.
            let mut cut_closed = false;
            if self.backend.cut_count() > 0 {
                for _ in 0..8 {
                    if self.backend.separate_cuts(&relax) == 0 {
                        break;
                    }
                    for (i, flag) in ctx.cut_flags.iter().enumerate() {
                        if self.backend.active_cuts[i] && !flag.swap(true, AtomicOrdering::Relaxed)
                        {
                            // First activation anywhere: count it once.
                            self.stats.cuts_activated += 1;
                        }
                    }
                    match self
                        .backend
                        .solve_node(ctx.opts, open.basis.as_deref(), &mut self.stats)
                    {
                        Ok(sol) => relax = sol,
                        Err(SolveError::Infeasible) => {
                            cut_closed = true;
                            break;
                        }
                        Err(_) => break,
                    }
                }
            }
            solved += 1;
            let pruned = cut_closed || ctx.signed(relax.objective) >= ctx.cutoff() - 1e-9;
            // Children warm-start from this node's optimal basis —
            // snapshot before strong-branch probes or the heuristic
            // perturb the kernel. Branching selection is local work
            // (probes run on this worker's private kernel).
            let my_basis = if pruned {
                None
            } else {
                self.backend.snapshot(ctx.opts).map(Arc::new)
            };
            let branch = if pruned {
                None
            } else {
                self.pick_branch_var(&relax)
            };
            let heuristic_due = ctx.opts.rounding_heuristic
                && branch.is_some()
                && (depth == 0 || depth.is_multiple_of(8));
            if heuristic_due {
                self.offer_incumbent(&relax, node_idx + 1);
            }
            // Lock 2: publish the bound, record the pseudo-cost
            // observation (the shared table is updated under the
            // existing budget lock), and append the children.
            {
                let mut sh = ctx.shared.lock().unwrap();
                sh.node_bounds[node_idx] = relax.objective;
                if depth == 0 {
                    sh.root_bound = relax.objective;
                    sh.root_solved = true;
                }
                if ctx.opts.branching == Branching::PseudoCost {
                    let nd = &sh.arena[open.node];
                    if nd.vi != usize::MAX
                        && nd.frac > ctx.opts.int_tol
                        && nd.parent_obj.is_finite()
                    {
                        let degrade =
                            (ctx.signed(relax.objective) - ctx.signed(nd.parent_obj)).max(0.0);
                        ctx.pseudo.record(nd.vi, nd.up, degrade / nd.frac);
                        self.stats.pseudo_updates += 1;
                    }
                }
                if let Some(bv) = branch {
                    self.expand(
                        &mut sh,
                        open.node,
                        bv,
                        relax.objective,
                        &my_basis,
                        &mut dive,
                        &relax,
                    );
                }
            }
            if branch.is_none() && !pruned {
                // Integral leaf: the relaxation point is the optimal
                // incumbent for this box.
                ctx.accept(relax, node_idx + 1);
                continue;
            }
            if solved >= self.episode_cap && !dive.is_empty() {
                // Episode over: hand the leftovers to the frontier so
                // idle workers can steal them.
                let mut sh = ctx.shared.lock().unwrap();
                for e in dive.drain(..) {
                    sh.frontier.push(e);
                }
                sh.queue_peak = sh.queue_peak.max(sh.frontier.len());
                drop(sh);
                ctx.idle.notify_all();
                return true;
            }
        }
        true
    }

    /// The worker main loop: claim, run the episode, retire the claim.
    fn run(&mut self) {
        while let Some(open) = self.claim() {
            let keep_going = self.episode(open);
            let mut sh = self.ctx.shared.lock().unwrap();
            sh.outstanding -= 1;
            sh.episode_floor[self.id] = f64::INFINITY;
            if sh.outstanding == 0 && sh.frontier.len() == 0 {
                sh.done = true;
            }
            drop(sh);
            self.ctx.idle.notify_all();
            if !keep_going {
                return;
            }
        }
    }
}

/// Entry point from [`crate::branch_bound::solve_with_stats_hinted`]:
/// the warm revised path with `opts.workers >= 2`.
pub(crate) fn solve_parallel(
    model: &Model,
    opts: &SolverOptions,
    hint: &[(VarId, f64)],
    form: Arc<BoxedForm>,
    int_maps: Vec<Option<ColMap>>,
    deadline: Option<Instant>,
) -> Result<(Solution, BranchBoundStats), SolveError> {
    let workers = opts.workers;
    let int_vars: Vec<VarId> = model
        .vars()
        .filter(|(_, v)| v.is_integer())
        .map(|(id, _)| id)
        .collect();
    let int_count = int_vars.len();
    let arena = vec![TreeNode::root()];
    let mut frontier = Frontier::new(opts.node_order);
    frontier.push(OpenNode {
        node: 0,
        bound: f64::NEG_INFINITY,
        key: f64::NEG_INFINITY,
        seq: 0,
        basis: None,
    });
    let ctx = Ctx {
        model,
        opts,
        int_vars,
        sense_mul: match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        },
        deadline,
        shared: Mutex::new(Shared {
            frontier,
            arena,
            outstanding: 0,
            nodes: 0,
            truncated: false,
            done: false,
            err: None,
            root_bound: 0.0,
            root_solved: false,
            queue_peak: 1,
            node_bounds: Vec::new(),
            seq: 0,
            episode_floor: vec![f64::INFINITY; workers],
        }),
        idle: Condvar::new(),
        incumbent: Mutex::new(Incumbent {
            best: None,
            incumbents: 0,
            first_incumbent_node: 0,
            incumbent_trace: Vec::new(),
        }),
        cutoff: AtomicU64::new(f64::INFINITY.to_bits()),
        pseudo: PseudoCosts::new(model.vars.len()),
        cut_flags: (0..form.cut_rows.len())
            .map(|_| AtomicBool::new(false))
            .collect(),
    };
    // The serial cap (one integral leaf per episode) divided across the
    // workers, so early episodes start feeding the frontier quickly.
    let episode_cap = (64.max(2 * int_count) / workers).max(8);
    let mut pool: Vec<Worker> = (0..workers)
        .map(|id| {
            let mut kernel = Revised::new(&form, opts);
            kernel.set_deadline(deadline);
            Worker {
                ctx: &ctx,
                id,
                backend: WarmBackend {
                    model,
                    form: Arc::clone(&form),
                    int_maps: int_maps.clone(),
                    kernel,
                    active_cuts: vec![false; form.cut_rows.len()],
                },
                lo: model.vars.iter().map(|v| v.lower).collect(),
                hi: model.vars.iter().map(|v| v.upper).collect(),
                cur: 0,
                stats: BranchBoundStats {
                    order: opts.node_order,
                    ..BranchBoundStats::default()
                },
                episode_cap,
            }
        })
        .collect();
    // Hint seeding runs serially on worker 0 before any thread spawns
    // (it may install the first incumbent and tighten the cutoff).
    if !hint.is_empty() {
        let w0 = &mut pool[0];
        let mut pins: Vec<(usize, f64)> = Vec::with_capacity(hint.len());
        let mut restore: Vec<(usize, f64, f64)> = Vec::with_capacity(hint.len());
        for &(v, val) in hint {
            let vi = v.index();
            if !model.var(v).is_integer() {
                continue;
            }
            let val = val.round().clamp(w0.lo[vi], w0.hi[vi]);
            pins.push((vi, val));
            restore.push((vi, w0.lo[vi], w0.hi[vi]));
        }
        if let Some(sol) = w0.backend.seed_hint(opts, &pins, &restore, &mut w0.stats) {
            ctx.accept(sol, 0);
        }
    }
    let worker_stats: Vec<BranchBoundStats> = std::thread::scope(|s| {
        let handles: Vec<_> = pool
            .into_iter()
            .map(|mut w| {
                s.spawn(move || {
                    w.run();
                    let mut stats = w.stats;
                    w.backend.finish(&mut stats);
                    stats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Merge layer: counters sum, peaks max, recovery ledgers absorb.
    let mut stats = BranchBoundStats {
        order: opts.node_order,
        ..BranchBoundStats::default()
    };
    for w in &worker_stats {
        stats.simplex_iters += w.simplex_iters;
        stats.warm_solves += w.warm_solves;
        stats.cold_solves += w.cold_solves;
        stats.refactors += w.refactors;
        stats.ft_updates += w.ft_updates;
        stats.forced_refactors += w.forced_refactors;
        stats.peak_u_nnz = stats.peak_u_nnz.max(w.peak_u_nnz);
        stats.peak_lu_nnz = stats.peak_lu_nnz.max(w.peak_lu_nnz);
        stats.basis_rows = stats.basis_rows.max(w.basis_rows);
        stats.strong_branches += w.strong_branches;
        stats.pseudo_updates += w.pseudo_updates;
        stats.cuts_activated += w.cuts_activated;
        stats.recovery.absorb(&w.recovery);
        stats.dual_pivots += w.dual_pivots;
        stats.primal_pivots += w.primal_pivots;
        stats.bound_flips += w.bound_flips;
        stats.weight_resets += w.weight_resets;
    }
    stats.cuts_added = form.cut_rows.len();
    let shared = ctx.shared.into_inner().unwrap();
    if let Some(e) = shared.err {
        return Err(e);
    }
    stats.nodes = shared.nodes;
    stats.truncated = shared.truncated;
    stats.root_bound = shared.root_bound;
    stats.queue_peak = shared.queue_peak;
    stats.node_bounds = shared.node_bounds;
    let inc = ctx.incumbent.into_inner().unwrap();
    stats.incumbents = inc.incumbents;
    stats.first_incumbent_node = inc.first_incumbent_node;
    stats.incumbent_trace = inc.incumbent_trace;
    // Proven dual bound: frontier leftovers (flushed back by every early
    // episode exit) joined with the incumbent; completed searches have an
    // empty frontier, so the bound collapses to the incumbent objective.
    let sense_mul = ctx.sense_mul;
    let open_min = shared.frontier.min_bound();
    let inc_signed = inc
        .best
        .as_ref()
        .map_or(f64::INFINITY, |b| sense_mul * b.objective);
    let bound = open_min.min(inc_signed);
    stats.dual_bound = if bound.is_finite() {
        sense_mul * bound
    } else {
        shared.root_bound
    };
    finish(inc.best, stats)
}
