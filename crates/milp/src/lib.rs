//! A self-contained linear-programming and mixed-integer-linear-programming
//! solver.
//!
//! The DAC'09 paper "Retiming and recycling for elastic systems with early
//! evaluation" solves its `MIN_CYC` / `MAX_THR` formulations with CPLEX.
//! No external solver is available to this reproduction, so this crate
//! implements the required machinery from scratch:
//!
//! * a [`Model`] builder with named, bounded, continuous or integer
//!   [`variables`](Model::add_var) and linear [`constraints`](Model::add_constraint),
//! * two LP kernels selected by [`SolverOptions::kernel`] (see below),
//! * a **warm-started branch & bound** driver with a rounding heuristic
//!   for integer programs (see [`solve_with_stats`]),
//! * time / node limits mirroring the 20-minute CPLEX timeout used in the
//!   paper ([`SolverOptions`]).
//!
//! # Kernel architecture
//!
//! The production kernel ([`Kernel::Revised`], the default) is a
//! **bounded-variable revised simplex**:
//!
//! * the constraint matrix is stored as **sparse columns**; variable
//!   bounds live on the columns (`l ≤ y ≤ u`, nonbasic columns rest at
//!   either bound, pricing may end in a bound *flip*), so the basis
//!   dimension is the number of genuine constraint rows — roughly half
//!   of what explicit bound rows would cost on the retiming MILPs;
//! * the basis is factorized as a **sparse LU with Forrest–Tomlin
//!   updates** (`factor` module): the snapshot is a Markowitz-ordered,
//!   threshold-pivoted sparse LU assembled straight from the sparse
//!   columns (`O(nnz(L+U))` storage; [`SolverOptions::factor`] keeps the
//!   old dense LU as a cross-validation oracle), each pivot updates the
//!   factors in place — spike column, one row eta, pivot permuted to the
//!   end ([`SolverOptions::update`] keeps the historical product-form
//!   eta file as the A/B baseline) — FTRAN / BTRAN apply triangular
//!   solves that are column-oriented with zero skipping (cost tracks
//!   the fill-in of the sparse right-hand sides, not `m²`), and the
//!   update state is flushed by refactorization when it grows long or
//!   heavy ([`SolverOptions::refactor_eta_len`] /
//!   [`SolverOptions::refactor_fill_growth`]), or eagerly when an
//!   unstable update is refused;
//! * pricing maintains **steepest-edge reference weights in both
//!   simplex directions** ([`SolverOptions::pricing`], see "Pricing"
//!   below), with an automatic **Bland fallback** after a long
//!   degenerate run;
//! * a **dual simplex** reoptimizer repairs primal infeasibility after
//!   right-hand-side or bound mutations from any dual-feasible basis.
//!
//! Branch & bound exploits that last point aggressively (**warm-start
//! policy**): bound/rhs changes never disturb reduced costs, so any
//! optimal basis anywhere in the tree is dual feasible for every node.
//! The search therefore builds the LP once, mutates integer-column boxes
//! in place as it branches, and dual-reoptimizes each node from whatever
//! basis the previous node left behind — typically a handful of pivots
//! and no refactorization. Warm-start misses fall back to a parent-basis
//! install, then a cold two-phase solve; `SolverOptions { warm_start:
//! false, .. }` forces cold node solves for A/B comparisons.
//!
//! # Pricing
//!
//! Which candidate a simplex iteration pivots on is the largest
//! per-pivot cost lever in the warm branch & bound hot path — nearly
//! every node LP is a dual reoptimization of a few pivots, so pivots
//! *saved* multiply across tens of thousands of nodes.
//! [`SolverOptions::pricing`] selects the rule:
//!
//! * [`Pricing::SteepestEdge`] (the default). The **dual reoptimizer**
//!   picks its leaving row by `violation²/β_r` against maintained
//!   reference weights `β_r ≈ ‖B⁻ᵀe_r‖²` (dual steepest edge): a large
//!   violation along a short edge is a genuinely better exit than a
//!   huge violation along a badly scaled one. Rows join the reference
//!   framework **lazily**: a row's weight is anchored to its exact
//!   norm the first time the scan surfaces it (the `ρ = B⁻ᵀe_r` the
//!   ratio test needs anyway makes `‖ρ‖²` free) and is maintained from
//!   then on by the Forrest–Goldfarb recurrence — one extra triangular
//!   solve (`τ = B⁻¹ρ`) per pivot; unanchored rows keep the unit
//!   baseline and never feed the recurrence, since folding a norm the
//!   basis never had through it manufactures garbage weights. Both
//!   frameworks ride across **both** pivot directions (a primal pivot
//!   applies the same Forrest–Goldfarb update from its own pivot row),
//!   so a warm-started node's first dual pivots price against the
//!   weights the previous node earned instead of cold units.
//!   **Maintenance is self-checking:** every selection corrects the
//!   chosen row's weight against its exact norm, and a gross mismatch
//!   on a framework member (beyond a fixed drift factor) is recorded
//!   as a [`NumericalEvent::WeightDrift`] and answered by restarting
//!   the framework, a pricing-tier recovery rung: quality dips for a
//!   few pivots, correctness never.
//!   Reduced costs are maintained **incrementally** across dual pivots
//!   (`rc_j ← rc_j − γ·α_j` from the ratio scan's own column pass)
//!   instead of recomputing the full dual vector by BTRAN every pivot.
//!   The dual ratio test takes **long steps** (bound-flip ratio test):
//!   entering candidates whose box span the dual step exhausts flip
//!   bounds and the scan continues, so one pivot crosses many
//!   breakpoints — on box-heavy MILP nodes this collapses chains of
//!   degenerate pivots into single basis changes. The **primal** loop
//!   prices by Devex reference weights (`rc²/w_j`, projected steepest
//!   edge without the exact-norm solves); overflowing frameworks reset
//!   to units (routine, counted in
//!   [`BranchBoundStats::weight_resets`] but not a numerical event).
//! * [`Pricing::Dantzig`] preserves the historical behavior bit-exactly
//!   — raw worst violation / most negative reduced cost, one
//!   breakpoint per dual pivot, duals recomputed every pivot. The
//!   trajectory goldens pin this mode so their numbers stay comparable
//!   across PRs.
//!
//! Directional pivot counters ([`BranchBoundStats::dual_pivots`] /
//! [`BranchBoundStats::primal_pivots`] /
//! [`BranchBoundStats::bound_flips`]) make the split observable; the
//! `pricing_comparison` bench arm gates steepest edge on actually
//! reducing total pivots on the cap-1000 `MAX_THR` runs.
//!
//! # Failure taxonomy and recovery ladder
//!
//! Numerical failure handling is centralized in the [`recover`] module
//! rather than scattered per call site. Every failure is classified as a
//! [`NumericalEvent`] (unstable update, singular refactor, cycling
//! suspected, residual drift, pivot/time budget) and answered by one
//! escalation ladder: retry the Forrest–Tomlin update from the entering
//! column → forced refactorization → re-solve the node under
//! [`UpdateKind::ProductForm`] → cold basis rebuild → Bland-only
//! pricing → dense-oracle kernel for that node. A residual health
//! monitor recomputes `‖B·x_B − b_eff‖∞` every few pivots and before
//! any node bound is trusted, so a corrupted factorization can never
//! produce a wrong prune. Which events occurred and which rungs fired is
//! reported in [`BranchBoundStats::recovery`] ([`RecoveryStats`]), and a
//! seeded [`FaultPlan`] ([`SolverOptions::faults`], default off) can
//! inject each failure class deterministically — the fault-injection
//! test and bench gates assert that injected runs prove the same optima
//! as their clean twins.
//!
//! The search itself is one generic core over **one LP backend** — the
//! warm revised kernel — with pluggable **node ordering**
//! ([`SolverOptions::node_order`]): depth-first with the nearer
//! branching side explored first ([`NodeOrder::DfsNearerFirst`], the
//! default), or a best-bound priority queue ([`NodeOrder::BestBound`])
//! that expands nodes in parent-LP-bound order with the parent basis
//! handed off across jumps — the remedy for DFS plateau incumbents
//! under tight node caps. Every integer variable shape branches
//! natively: a node box on a shifted, mirrored (upper-bounded, lower
//! −∞), or fully free (split-pair) integer translates to in-place
//! column-bound updates on the bounded-variable form, so warm starts,
//! steepest-edge weights, and pseudo-costs survive across nodes for
//! every model. The historical rebuild-per-node `LegacyBackend` is
//! gone; see the `branch_bound` module docs.
//!
//! # Branching and node scoring
//!
//! Which variable to branch on is chosen by [`SolverOptions::branching`]:
//!
//! * [`Branching::PseudoCost`] (the default) maintains per-variable,
//!   per-direction **pseudo-costs** — running means of the observed LP
//!   bound degradation per unit of fractionality — learned from every
//!   expanded child. Until a variable's history is *reliable*
//!   ([`SolverOptions::reliability`] observations per direction), the
//!   most fractional unreliable candidates are **strong-branched**: both
//!   children get a bounded dual-simplex probe
//!   ([`SolverOptions::strong_branch_pivots`], capped at
//!   [`SolverOptions::strong_branch_candidates`] candidates per node)
//!   and the observed degradations seed the table. The candidate
//!   maximizing the product score `max(down·f⁻, ε) · max(up·f⁺, ε)` is
//!   branched; a probe that proves a child infeasible biases selection
//!   toward the variable but never prunes, so an unverified probe cannot
//!   break correctness. Under [`NodeOrder::BestBound`] the queue is
//!   keyed on a **best-estimate** score — the node LP bound plus the
//!   pseudo-cost-predicted cost of repairing every remaining fractional
//!   variable — rather than the raw parent bound, and the gap test /
//!   reported [`BranchBoundStats::dual_bound`] use the **global
//!   open-node minimum** (a valid dual bound) instead of the weak root
//!   LP bound. With `workers >= 2` the pseudo-cost table is shared:
//!   node-expansion updates fold in under the existing budget lock,
//!   probe updates and all reads are lock-free atomics.
//! * [`Branching::MostFractional`] is the historical rule — highest
//!   [`priority`](Model::set_priority) class first, most fractional
//!   within it, ties broken to the lowest [`VarId`] (a pinned golden,
//!   not an iteration-order accident). The trajectory goldens and the
//!   ordering A/B benches stay pinned to this mode so their numbers
//!   remain comparable across PRs.
//!
//! On the retiming MILPs the `MAX_THR` formulation additionally carries
//! **cycle-sum cuts** (`rr-core`'s formulation layer): every fundamental
//! cycle of the retiming-and-recycling graph needs at least
//! `⌈delay(C)/τ⌉` buffers, but the LP relaxation only implies the token
//! sum. The cut rows are built into the standard form at their
//! LP-implied (weak) right-hand sides and **activated lazily** — a
//! separation pass after each node LP tightens violated rows in place to
//! the integer-valid rhs via the same dual-feasible `set_rhs` mutation
//! the branching boxes use, so warm starts survive and activation costs
//! a few dual pivots ([`BranchBoundStats::cuts_added`] /
//! [`BranchBoundStats::cuts_activated`]).
//!
//! # Concurrency model
//!
//! [`SolverOptions::workers`]` >= 2` runs the search as a
//! **work-stealing parallel branch & bound** (the `parallel` module);
//! `workers = 1` (the default) routes through the serial core unchanged
//! and is bit-exact with the historical single-threaded trajectories.
//! Every model parallelizes — mirrored and free integers included;
//! there is no serial-only model class. Unsupported knob combinations
//! are normalized loudly in one place ([`SolverOptions::resolve`]), not
//! silently ignored per call site. Ownership is strictly layered:
//!
//! * **Per worker (exclusive):** one `Revised` kernel with its own
//!   sparse LU factors, eta file, fault injector, and recovery ladder
//!   state, plus the worker's locally tracked variable boxes. Nothing
//!   about LP solving is shared, so no kernel state is ever protected by
//!   a lock — a worker re-derives a claimed node's boxes from the shared
//!   branch tree (the same LCA walk the serial core uses) and applies
//!   them to its private kernel.
//! * **Shared (read-only):** the standard form behind an `Arc` — built
//!   once, immutable thereafter.
//! * **Shared (locked):** the open-node frontier, branch-tree arena, and
//!   node/time budget behind one mutex; the incumbent behind a second
//!   mutex. The two are never held simultaneously.
//!
//! **Incumbent publication ordering:** the pruning cutoff is mirrored
//! into an atomic (signed-objective bits) *while the incumbent lock is
//! held*, with `Release` ordering; the hot pruning path reads it
//! `Acquire` without locking. Because the cutoff only ever tightens, a
//! racy read sees at worst a slightly stale (looser) value — a node the
//! serial search would have pruned may get solved redundantly, but no
//! node is ever pruned against an incumbent that does not exist. The
//! same monotonicity argument makes discarding queued nodes at claim
//! time individually sound: each discarded entry's own bound proves its
//! subtree useless regardless of what other workers are doing.
//!
//! **Why recovery stays worker-local:** the PR 6 ladder mutates the
//! failing kernel (update-kind switch, cold rebuild, Bland pricing,
//! dense-oracle rebuild) and its counters describe *that kernel's*
//! numerical history. Sharing ladder state across workers would couple
//! one worker's numerical trouble to every other worker's healthy
//! factors, and would serialize exactly the slow path that most needs to
//! stay independent. Instead each worker escalates privately and the
//! merge layer folds the per-worker [`RecoveryStats`] ledgers together
//! additively at join, so the reported totals keep their serial shape.
//!
//! A single wall-clock deadline is captured once at solve start and
//! installed on every kernel, so N workers share one
//! [`SolverOptions::time_limit`] budget instead of each getting a fresh
//! one.
//!
//! The original dense full-tableau two-phase simplex is retained as a
//! **kernel-level cross-validation oracle** ([`Kernel::DenseTableau`]):
//! an independent implementation whose objectives and feasibility
//! verdicts the property tests compare against on random LPs/MILPs, the
//! baseline the `milp_scaling` bench measures speedups over
//! (`BENCH_milp.json`), and rung 6 of the per-node recovery ladder. It
//! is no longer a separate search backend: a MILP solved under
//! [`Kernel::DenseTableau`] runs the unified warm search in the oracle
//! configuration and then re-solves the incumbent's pinned integer
//! assignment on the genuine tableau, failing loudly on disagreement.
//!
//! Numerics are deliberately tolerance-based (no exact arithmetic): the
//! retiming/recycling MILPs have at most a few thousand rows and very
//! well-conditioned {-1, 0, 1, τ*} coefficient structure.
//!
//! # Example
//!
//! ```
//! use rr_milp::{Model, Sense, cmp};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x <= 2.5, x,y >= 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, 2.5, false);
//! let y = m.add_var("y", 0.0, f64::INFINITY, false);
//! m.set_objective(3.0 * x + 2.0 * y);
//! m.add_constraint(x + y, cmp::LE, 4.0);
//! let sol = m.solve()?;
//! assert!((sol.objective - 10.5).abs() < 1e-6);
//! assert!((sol[x] - 2.5).abs() < 1e-6);
//! # Ok::<(), rr_milp::SolveError>(())
//! ```

mod branch_bound;
mod expr;
mod factor;
mod model;
mod parallel;
pub mod recover;
mod revised;
mod simplex;
mod solution;
mod standard;

pub use branch_bound::{solve_with_stats, solve_with_stats_hinted, BranchBoundStats};
pub use expr::{LinExpr, VarId};
pub use model::{
    cmp, Branching, CmpOp, Constraint, FactorKind, Kernel, Model, NodeOrder, Pricing, Sense,
    SolverOptions, UpdateKind, Variable,
};
pub use recover::{FaultPlan, NumericalEvent, RecoveryStats};
pub use solution::{Solution, SolveError, Status};

#[cfg(test)]
mod proptests;
