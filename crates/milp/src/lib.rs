//! A self-contained linear-programming and mixed-integer-linear-programming
//! solver.
//!
//! The DAC'09 paper "Retiming and recycling for elastic systems with early
//! evaluation" solves its `MIN_CYC` / `MAX_THR` formulations with CPLEX.
//! No external solver is available to this reproduction, so this crate
//! implements the required machinery from scratch:
//!
//! * a [`Model`] builder with named, bounded, continuous or integer
//!   [`variables`](Model::add_var) and linear [`constraints`](Model::add_constraint),
//! * a dense **two-phase primal simplex** for the LP relaxation,
//! * a **branch & bound** driver with a rounding heuristic for integer
//!   programs (see [`solve_with_stats`]),
//! * time / node limits mirroring the 20-minute CPLEX timeout used in the
//!   paper ([`SolverOptions`]).
//!
//! The solver is deliberately dense and exact-arithmetic-free: the
//! retiming/recycling MILPs it targets have at most a few thousand rows and
//! very well-conditioned {-1, 0, 1, τ*} coefficient structure, for which a
//! tolerance-based dense simplex is plenty.
//!
//! # Example
//!
//! ```
//! use rr_milp::{Model, Sense, cmp};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x <= 2.5, x,y >= 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, 2.5, false);
//! let y = m.add_var("y", 0.0, f64::INFINITY, false);
//! m.set_objective(3.0 * x + 2.0 * y);
//! m.add_constraint(x + y, cmp::LE, 4.0);
//! let sol = m.solve()?;
//! assert!((sol.objective - 10.5).abs() < 1e-6);
//! assert!((sol[x] - 2.5).abs() < 1e-6);
//! # Ok::<(), rr_milp::SolveError>(())
//! ```

mod branch_bound;
mod expr;
mod model;
mod simplex;
mod solution;
mod standard;

pub use branch_bound::{solve_with_stats, solve_with_stats_hinted, BranchBoundStats};
pub use expr::{LinExpr, VarId};
pub use model::{cmp, CmpOp, Constraint, Model, Sense, SolverOptions, Variable};
pub use solution::{Solution, SolveError, Status};

#[cfg(test)]
mod proptests;
