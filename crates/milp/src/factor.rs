//! Basis factorization for the revised simplex kernel.
//!
//! The basis matrix `B` is held as an **LU factorization of a snapshot
//! basis `B₀`**, kept current across pivots by one of two update schemes
//! ([`UpdateKind`](crate::UpdateKind)):
//!
//! * **Forrest–Tomlin** (the production default, sparse snapshot only) —
//!   the factors themselves are updated in place, so FTRAN/BTRAN keep
//!   their zero-skipping triangular solves against a *current* `U`. On
//!   the basis change "slot `p` leaves, column `a` enters":
//!   1. **Spike**: the entering column is run through `L` (and every row
//!      eta accumulated so far) to give `w = L̃⁻¹·P·a`, which replaces
//!      column `p` of `U`. Entries of `w` other than `w[p]` land above
//!      the diagonal once step 3 runs, so none of them need elimination.
//!   2. **Row eta**: row `p` of `U` (its entries right of the diagonal
//!      in pivot order) is eliminated against the *trailing* rows of `U`
//!      — one multiplier `μ_j = u_pj / u_jj` per nonzero, processed in
//!      pivot order so fill generated into row `p` is itself eliminated.
//!      The multipliers form a single row transformation `M` (stored; it
//!      becomes part of `L̃ = L·M₁⁻¹·…·M_k⁻¹`), and the new diagonal
//!      `u_pp' = w[p] − Σ μ_j·w[j]` absorbs the spike.
//!   3. **Permute to the end**: position `p` moves to the last place in
//!      the **pivot order** (a permutation layer over the stored factored
//!      indices — no data moves), restoring triangularity.
//!
//!   A near-zero new diagonal (relative to the spike's scale) or an
//!   exploding multiplier aborts the update *before any state mutates*
//!   and the caller falls back to a full refactorization (**forced
//!   refactor**) — the standard FT stability policy.
//! * **Product-form eta file** (the historical scheme, and the only one
//!   the dense oracle supports) — after `k` pivots,
//!   `B = B₀·E₁·…·E_k` where each `Eᵢ` is an identity matrix with one
//!   column replaced by the pivot direction `d = B⁻¹A_j`; FTRAN/BTRAN
//!   apply the LU triangles and then replay the whole file.
//!
//! Under either scheme, when the update state grows past
//! [`Factor::needs_refactor`] the current basis is refactorized from
//! scratch, which both caps the per-solve cost and flushes accumulated
//! round-off. The refactor policy is configurable ([`FactorConfig`]):
//! refactorize when the update count is *long* ([`FactorConfig::max_etas`]
//! pivots absorbed) or the accumulated update fill is *heavy* relative to
//! the snapshot LU's own nonzeros ([`FactorConfig::fill_growth`] — eta
//! fill under the product form; `U` growth plus row-eta fill under
//! Forrest–Tomlin).
//!
//! Two snapshot factorizations implement the same contract, selected by
//! [`FactorKind`](crate::FactorKind):
//!
//! * [`SparseLu`] (the production default) — a **right-looking sparse LU
//!   with Markowitz pivot ordering and threshold partial pivoting**. The
//!   basis is assembled straight from the model's sparse columns (no
//!   dense `m×m` matrix is ever materialized); at every elimination step
//!   the pivot is chosen to minimize the Markowitz fill bound
//!   `(r_i − 1)·(c_j − 1)` over the active submatrix, restricted to
//!   entries within a threshold factor of their column's magnitude so
//!   stability is not sacrificed for sparsity. The factors `P·B·Q = L·U`
//!   (row *and* column permutations) store `O(nnz(L+U))`, and a refactor
//!   costs `O(fill)` instead of `O(m³)`.
//! * [`DenseLu`] — the original dense partial-pivoting LU, kept alive as
//!   the **cross-validation oracle**: an independent implementation whose
//!   FTRAN/BTRAN answers the property tests compare against, and the
//!   baseline the `milp_scaling` bench measures the sparse scheme's
//!   storage and speed wins over.
//!
//! Both store their triangles in **dual row/column-major layouts** so the
//! triangular solves stay column-oriented with zero skipping in both
//! directions (the simplex right-hand sides are extremely sparse — a
//! constraint column for FTRAN, a couple of objective entries for BTRAN —
//! so the solve cost tracks the fill-in of the solution, not `m²`):
//!
//! * `L x = b` / `U x = y` (FTRAN) walk *columns* of `L`/`U`;
//! * `Uᵀ z = c` / `Lᵀ w = z` (BTRAN) walk columns of the transposes,
//!   which are *rows* of `U`/`L`.
//!
//! Singularity tests are **relative to each basis column's scale** (the
//! largest input magnitude of that column), so a well-conditioned but
//! badly scaled basis (every entry ~1e-12) factors fine while a genuinely
//! rank-deficient one (duplicate columns cancelling to round-off) is
//! still rejected.

use crate::model::{FactorKind, UpdateKind};

/// Relative singularity threshold: a pivot candidate must exceed this
/// fraction of its column's input scale to count as nonzero.
const SINGULAR_REL: f64 = 1e-11;

/// Threshold partial pivoting factor: a Markowitz candidate is
/// admissible only when its magnitude is at least `PIVOT_THRESHOLD`
/// times the largest magnitude in its (active) column.
const PIVOT_THRESHOLD: f64 = 0.1;

/// Pivot-search cap: once a candidate exists, at most this many further
/// columns (in increasing nonzero-count order) are examined.
const MARKOWITZ_SEARCH_COLS: usize = 8;

/// Forrest–Tomlin stability: the updated diagonal must exceed this
/// fraction of the spike's largest magnitude, or the update is refused
/// and the caller refactorizes (the new basis may be fine — the *update*
/// is what would be unstable).
const FT_DIAG_REL: f64 = 1e-9;

/// Forrest–Tomlin stability: a row-eta multiplier above this magnitude
/// signals an ill-scaled elimination; the update is refused.
const FT_MULT_MAX: f64 = 1e8;

/// Relative drop tolerance for spike entries and row-eta fill (matches
/// the cancellation drop the Markowitz factorization applies).
const FT_DROP_REL: f64 = 1e-14;

/// Resolved refactorization policy plus snapshot kind, derived from
/// [`SolverOptions`](crate::SolverOptions) by the kernel.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FactorConfig {
    /// Which snapshot factorization backs the update scheme.
    pub kind: FactorKind,
    /// **Effective** update scheme: Forrest–Tomlin is only available on
    /// the sparse snapshot, so `resolve` degrades `ForrestTomlin` to
    /// `ProductForm` under [`FactorKind::Dense`].
    pub update: UpdateKind,
    /// Update count (etas or FT updates) that triggers a refactor; `0` =
    /// automatic (`max(64, 2m)`, see [`Factor::needs_refactor`]).
    pub max_etas: usize,
    /// Refactor when the accumulated update fill exceeds this multiple
    /// of the snapshot LU's nonzero count; non-finite or `<= 0` disables
    /// the fill trigger.
    pub fill_growth: f64,
}

impl FactorConfig {
    /// Pulls the factorization-relevant knobs out of solver options,
    /// resolving the effective update scheme for the chosen snapshot.
    pub fn resolve(opts: &crate::model::SolverOptions) -> FactorConfig {
        let update = match (opts.factor, opts.update) {
            (FactorKind::Sparse, u) => u,
            // The dense oracle has no row/column-wise U to update.
            (FactorKind::Dense, _) => UpdateKind::ProductForm,
        };
        FactorConfig {
            kind: opts.factor,
            update,
            max_etas: opts.refactor_eta_len,
            fill_growth: opts.refactor_fill_growth,
        }
    }
}

impl Default for FactorConfig {
    fn default() -> Self {
        Self::resolve(&crate::model::SolverOptions::default())
    }
}

// ---------------------------------------------------------------------------
// Dense LU (cross-validation oracle)
// ---------------------------------------------------------------------------

/// Dense LU factorization `P·B = L·U` with partial pivoting, stored in
/// both layouts (see the module docs). Kept as the oracle behind
/// [`FactorKind::Dense`].
pub(crate) struct DenseLu {
    m: usize,
    /// Row-major `m × m`; strict lower triangle holds `L` (unit
    /// diagonal implied), upper triangle holds `U`.
    lu: Vec<f64>,
    /// Column-major copy of the same factors.
    lu_col: Vec<f64>,
    /// `perm[i]` = original row index stored at factored row `i`.
    perm: Vec<usize>,
}

impl DenseLu {
    /// Factors a dense row-major matrix; `None` when numerically singular.
    ///
    /// Singularity is judged **relative to each column's input scale**:
    /// column `k` is declared dependent when its best pivot is below
    /// `SINGULAR_REL · max_i |B_ik|`, so uniformly tiny (but
    /// well-conditioned) bases are not misreported as singular.
    pub fn factor(mut a: Vec<f64>, m: usize) -> Option<DenseLu> {
        debug_assert_eq!(a.len(), m * m);
        // Per-column scale of the *input* matrix, before elimination
        // mixes columns.
        let mut scale = vec![0.0f64; m];
        for i in 0..m {
            for j in 0..m {
                scale[j] = scale[j].max(a[i * m + j].abs());
            }
        }
        let mut perm: Vec<usize> = (0..m).collect();
        for k in 0..m {
            // Partial pivot: largest magnitude in column k at/below row k.
            let mut p = k;
            let mut mx = a[k * m + k].abs();
            for i in k + 1..m {
                let v = a[i * m + k].abs();
                if v > mx {
                    mx = v;
                    p = i;
                }
            }
            if mx <= SINGULAR_REL * scale[k] {
                return None;
            }
            if p != k {
                for j in 0..m {
                    a.swap(k * m + j, p * m + j);
                }
                perm.swap(k, p);
            }
            let inv = 1.0 / a[k * m + k];
            for i in k + 1..m {
                let f = a[i * m + k] * inv;
                a[i * m + k] = f;
                if f != 0.0 {
                    let (top, bottom) = a.split_at_mut(i * m);
                    let arow = &mut bottom[..m];
                    let krow = &top[k * m..k * m + m];
                    for j in k + 1..m {
                        arow[j] -= f * krow[j];
                    }
                }
            }
        }
        let mut lu_col = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                lu_col[j * m + i] = a[i * m + j];
            }
        }
        Some(DenseLu {
            m,
            lu: a,
            lu_col,
            perm,
        })
    }

    /// Solves `B·x = rhs` in place (`rhs` becomes `x`). Column-oriented
    /// with zero skipping: cost scales with the fill-in of the solution,
    /// not with `m²`, when `rhs` is sparse.
    pub fn solve(&self, rhs: &mut [f64]) {
        let m = self.m;
        let mut x = vec![0.0; m];
        for i in 0..m {
            x[i] = rhs[self.perm[i]];
        }
        // L y = Pb (unit lower): walk columns of L (column-major).
        for j in 0..m {
            let xj = x[j];
            if xj != 0.0 {
                let col = &self.lu_col[j * m..(j + 1) * m];
                for i in j + 1..m {
                    x[i] -= col[i] * xj;
                }
            }
        }
        // U x = y: backward, columns of U (column-major).
        for j in (0..m).rev() {
            let xj = x[j] / self.lu_col[j * m + j];
            x[j] = xj;
            if xj != 0.0 {
                let col = &self.lu_col[j * m..j * m + j];
                for (i, &u) in col.iter().enumerate() {
                    if u != 0.0 {
                        x[i] -= u * xj;
                    }
                }
            }
        }
        rhs.copy_from_slice(&x);
    }

    /// Solves `Bᵀ·y = rhs` in place. Columns of `Uᵀ`/`Lᵀ` are rows of
    /// `U`/`L` — contiguous in the row-major copy — with zero skipping.
    pub fn solve_transpose(&self, rhs: &mut [f64]) {
        let m = self.m;
        // Uᵀ z = c (lower-triangular, forward over columns of Uᵀ).
        let mut z = rhs.to_vec();
        for j in 0..m {
            let zj = z[j] / self.lu[j * m + j];
            z[j] = zj;
            if zj != 0.0 {
                let row = &self.lu[j * m..(j + 1) * m];
                for i in j + 1..m {
                    if row[i] != 0.0 {
                        z[i] -= row[i] * zj;
                    }
                }
            }
        }
        // Lᵀ w = z (unit upper in transpose, backward over columns of Lᵀ).
        for j in (0..m).rev() {
            let zj = z[j];
            if zj != 0.0 {
                let row = &self.lu[j * m..j * m + j];
                for (i, &l) in row.iter().enumerate() {
                    if l != 0.0 {
                        z[i] -= l * zj;
                    }
                }
            }
        }
        // y = Pᵀ w.
        for i in 0..m {
            rhs[self.perm[i]] = z[i];
        }
    }

    /// Stored nonzeros: the dense scheme always pays `m²`.
    pub fn nnz(&self) -> usize {
        self.m * self.m
    }
}

// ---------------------------------------------------------------------------
// Sparse LU with Markowitz ordering and threshold partial pivoting
// ---------------------------------------------------------------------------

/// One Forrest–Tomlin row transformation: after the `L` solve, row
/// `row`'s value is reduced by `Σ μ_j·x[j]` over `terms = (j, μ_j)` —
/// the elimination that restored `U`'s triangularity when `row`'s pivot
/// was permuted to the end.
struct RowEta {
    row: usize,
    terms: Vec<(usize, f64)>,
}

/// Sparse LU factorization `P·B·Q = L·U` (row *and* column permutations,
/// chosen per elimination step by the Markowitz rule). `L` is unit lower
/// triangular, `U` upper triangular; both are stored twice — by column
/// for FTRAN and by row for BTRAN — in *factored* coordinates.
///
/// Forrest–Tomlin updates ([`SparseLu::ft_update`]) mutate `U` in place
/// and accumulate [`RowEta`] transformations on the `L` side;
/// triangularity is then relative to the **pivot order** `porder` (a
/// permutation of the factored indices), which starts as the identity
/// and cycles one position to the end per update. `L` itself, the row
/// permutation `P` and the column permutation `Q` never change between
/// refactorizations.
pub(crate) struct SparseLu {
    m: usize,
    /// Column `k` of `L`: entries `(i, L[i][k])` with `i > k`.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Row `k` of `L`: entries `(j, L[k][j])` with `j < k`.
    l_rows: Vec<Vec<(usize, f64)>>,
    /// Column `k` of `U` above the diagonal in pivot order: entries
    /// `(i, U[i][k])` with `ppos[i] < ppos[k]` (unsorted within a column).
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Row `k` of `U` past the diagonal in pivot order: entries
    /// `(j, U[k][j])` with `ppos[j] > ppos[k]` (unsorted within a row).
    u_rows: Vec<Vec<(usize, f64)>>,
    /// `U[k][k]` (pivot magnitudes are threshold-checked at selection).
    u_diag: Vec<f64>,
    /// `row_of[i]` = original row held at factored row `i` (`P`).
    row_of: Vec<usize>,
    /// `rowpos[r]` = factored row holding original row `r` (`P⁻¹`).
    rowpos: Vec<usize>,
    /// `col_of[k]` = original basis slot held at factored column `k` (`Q`).
    col_of: Vec<usize>,
    /// `colpos[s]` = factored column holding basis slot `s` (`Q⁻¹`).
    colpos: Vec<usize>,
    /// Pivot order: `porder[t]` = factored index eliminated at step `t`.
    porder: Vec<usize>,
    /// Inverse of `porder`.
    ppos: Vec<usize>,
    /// Forrest–Tomlin row transformations, in application order.
    row_etas: Vec<RowEta>,
}

impl SparseLu {
    /// Factors the basis given as sparse columns (`cols[j]` lists the
    /// `(row, value)` nonzeros of basis slot `j`, one entry per row);
    /// `None` when numerically singular. No dense `m×m` matrix is
    /// materialized at any point.
    pub fn factor(m: usize, cols: &[Vec<(usize, f64)>]) -> Option<SparseLu> {
        debug_assert_eq!(cols.len(), m);
        // Active submatrix, row-wise; rows sorted by column index. The
        // rows are the source of truth; `col_rows` carries candidate row
        // lists per column (pruned lazily) and `col_count` exact active
        // nonzero counts.
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut col_count = vec![0usize; m];
        let mut col_scale = vec![0.0f64; m];
        for (j, cj) in cols.iter().enumerate() {
            for &(r, v) in cj {
                debug_assert!(r < m);
                if v != 0.0 {
                    rows[r].push((j, v));
                    col_rows[j].push(r);
                    col_count[j] += 1;
                    col_scale[j] = col_scale[j].max(v.abs());
                }
            }
        }
        for row in &mut rows {
            row.sort_unstable_by_key(|&(c, _)| c);
        }
        let mut row_active = vec![true; m];
        let mut col_active = vec![true; m];

        let mut l_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut u_rows_orig: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut u_diag = Vec::with_capacity(m);
        let mut row_of = Vec::with_capacity(m);
        let mut col_of = Vec::with_capacity(m);
        // l_cols holds original row ids until the permutation is known.
        let mut order: Vec<usize> = (0..m).collect();

        for _step in 0..m {
            // --- Markowitz pivot selection -----------------------------
            // Active columns in increasing nonzero-count order (kept
            // nearly sorted across steps, pruned and re-sorted in
            // place); a column with no (numerically live) entry proves
            // singularity, since fill can only appear in columns a pivot
            // row touches.
            order.retain(|&j| col_active[j]);
            order.sort_unstable_by_key(|&j| col_count[j]);
            let mut best: Option<(usize, usize, f64)> = None; // (row, col, value)
            let mut best_cost = usize::MAX;
            let mut examined = 0usize;
            for &j in &order {
                if col_count[j] == 0 {
                    return None; // structurally singular
                }
                // Prune stale candidates and gather live entries. The
                // candidate list may hold duplicates (an entry that
                // cancelled and was later refilled is pushed again), so
                // dedupe before gathering.
                col_rows[j].sort_unstable();
                col_rows[j].dedup();
                let mut live: Vec<(usize, f64)> = Vec::with_capacity(col_count[j]);
                col_rows[j].retain(|&r| {
                    if !row_active[r] {
                        return false;
                    }
                    match rows[r].binary_search_by_key(&j, |&(c, _)| c) {
                        Ok(pos) => {
                            live.push((r, rows[r][pos].1));
                            true
                        }
                        Err(_) => false,
                    }
                });
                debug_assert_eq!(live.len(), col_count[j]);
                let colmax = live.iter().map(|&(_, v)| v.abs()).fold(0.0f64, f64::max);
                if colmax <= SINGULAR_REL * col_scale[j] {
                    return None; // column cancelled to round-off
                }
                for &(r, v) in &live {
                    if v.abs() < PIVOT_THRESHOLD * colmax || v.abs() <= SINGULAR_REL * col_scale[j]
                    {
                        continue;
                    }
                    let cost = (rows[r].len() - 1) * (col_count[j] - 1);
                    let better = cost < best_cost
                        || (cost == best_cost && best.is_some_and(|(_, _, bv)| v.abs() > bv.abs()));
                    if better {
                        best_cost = cost;
                        best = Some((r, j, v));
                    }
                }
                if best.is_some() {
                    examined += 1;
                    if best_cost == 0 || examined > MARKOWITZ_SEARCH_COLS {
                        break;
                    }
                }
            }
            let (pr, pj, diag) = best?;

            // --- record the pivot row and column ------------------------
            row_active[pr] = false;
            col_active[pj] = false;
            row_of.push(pr);
            col_of.push(pj);
            u_diag.push(diag);
            // Leaving the active submatrix: every entry of the pivot row
            // drops out of its column's count.
            let pivot_row: Vec<(usize, f64)> =
                rows[pr].iter().copied().filter(|&(c, _)| c != pj).collect();
            for &(c, _) in &pivot_row {
                col_count[c] -= 1;
            }
            col_count[pj] = 0;
            u_rows_orig.push(pivot_row.clone());

            // --- eliminate the pivot column from the active rows --------
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            let targets: Vec<usize> = col_rows[pj]
                .iter()
                .copied()
                .filter(|&r| row_active[r])
                .collect();
            for r in targets {
                let Ok(pos) = rows[r].binary_search_by_key(&pj, |&(c, _)| c) else {
                    continue; // stale candidate
                };
                let mult = rows[r][pos].1 / diag;
                lcol.push((r, mult));
                // rows[r] := rows[r] − mult · pivot_row, dropping the pj
                // entry; sorted merge keeps the row ordered and updates
                // column counts (and candidate lists) for fill/cancel.
                let old = std::mem::take(&mut rows[r]);
                let mut merged = Vec::with_capacity(old.len() + pivot_row.len());
                let (mut a, mut b) = (0usize, 0usize);
                while a < old.len() || b < pivot_row.len() {
                    let ca = old.get(a).map(|&(c, _)| c);
                    let cb = pivot_row.get(b).map(|&(c, _)| c);
                    match (ca, cb) {
                        (Some(ca_), _) if ca_ == pj => {
                            a += 1; // the eliminated entry itself
                        }
                        (Some(ca_), Some(cb_)) if ca_ == cb_ => {
                            let update = mult * pivot_row[b].1;
                            let nv = old[a].1 - update;
                            // Cancellation drop: keep the entry unless it
                            // is negligible against what was subtracted.
                            if nv.abs() > 1e-14 * (old[a].1.abs() + update.abs()) {
                                merged.push((ca_, nv));
                            } else {
                                col_count[ca_] -= 1;
                            }
                            a += 1;
                            b += 1;
                        }
                        (Some(ca_), Some(cb_)) if ca_ < cb_ => {
                            merged.push(old[a]);
                            a += 1;
                        }
                        (Some(_), Some(cb_)) | (None, Some(cb_)) => {
                            // Fill-in at (r, cb_).
                            let nv = -mult * pivot_row[b].1;
                            if nv != 0.0 {
                                merged.push((cb_, nv));
                                col_count[cb_] += 1;
                                col_rows[cb_].push(r);
                            }
                            b += 1;
                        }
                        (Some(_), None) => {
                            merged.push(old[a]);
                            a += 1;
                        }
                        (None, None) => unreachable!(),
                    }
                }
                rows[r] = merged;
            }
            l_cols.push(lcol);
        }

        // --- remap original row/col ids to factored positions -----------
        let mut rowpos = vec![0usize; m];
        let mut colpos = vec![0usize; m];
        for (k, &r) in row_of.iter().enumerate() {
            rowpos[r] = k;
        }
        for (k, &c) in col_of.iter().enumerate() {
            colpos[c] = k;
        }
        let mut l_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        let mut u_cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        let mut u_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        for (k, lc) in l_cols.iter_mut().enumerate() {
            for e in lc.iter_mut() {
                e.0 = rowpos[e.0];
                debug_assert!(e.0 > k);
            }
            lc.sort_unstable_by_key(|&(i, _)| i);
            for &(i, v) in lc.iter() {
                l_rows[i].push((k, v));
            }
        }
        for (k, ur) in u_rows_orig.into_iter().enumerate() {
            for (c, v) in ur {
                let j = colpos[c];
                debug_assert!(j > k);
                u_rows[k].push((j, v));
                u_cols[j].push((k, v));
            }
            u_rows[k].sort_unstable_by_key(|&(j, _)| j);
        }
        for uc in &mut u_cols {
            uc.sort_unstable_by_key(|&(i, _)| i);
        }
        Some(SparseLu {
            m,
            l_cols,
            l_rows,
            u_cols,
            u_rows,
            u_diag,
            row_of,
            rowpos,
            col_of,
            colpos,
            porder: (0..m).collect(),
            ppos: (0..m).collect(),
            row_etas: Vec::new(),
        })
    }

    /// Applies `L̃⁻¹` (the static `L` followed by every accumulated
    /// Forrest–Tomlin row eta) to `z`, in factored row coordinates.
    fn lower_solve(&self, z: &mut [f64]) {
        // L z' = z (unit lower), forward over columns of L.
        for k in 0..self.m {
            let zk = z[k];
            if zk != 0.0 {
                for &(i, l) in &self.l_cols[k] {
                    z[i] -= l * zk;
                }
            }
        }
        // Row etas, in the order the updates accumulated them.
        for eta in &self.row_etas {
            let mut s = z[eta.row];
            for &(j, mu) in &eta.terms {
                s -= mu * z[j];
            }
            z[eta.row] = s;
        }
    }

    /// Solves `B·x = rhs` in place; column-oriented with zero skipping.
    pub fn solve(&self, rhs: &mut [f64]) {
        self.solve_spiked(rhs, None);
    }

    /// [`SparseLu::solve`], additionally copying out the intermediate
    /// `L̃⁻¹·P·rhs` (factored row coordinates) — when `rhs` is an
    /// entering basis column this is exactly the Forrest–Tomlin spike,
    /// so a subsequent [`SparseLu::ft_update_spiked`] gets it for free
    /// instead of re-running the lower solve.
    pub fn solve_spiked(&self, rhs: &mut [f64], spike: Option<&mut Vec<f64>>) {
        let m = self.m;
        let mut z = vec![0.0; m];
        for k in 0..m {
            z[k] = rhs[self.row_of[k]];
        }
        self.lower_solve(&mut z);
        if let Some(s) = spike {
            s.clear();
            s.extend_from_slice(&z);
        }
        // U x' = z', backward over columns of U in pivot order.
        for t in (0..m).rev() {
            let k = self.porder[t];
            let xk = z[k] / self.u_diag[k];
            z[k] = xk;
            if xk != 0.0 {
                for &(i, u) in &self.u_cols[k] {
                    z[i] -= u * xk;
                }
            }
        }
        // x = Q·x'.
        for k in 0..m {
            rhs[self.col_of[k]] = z[k];
        }
    }

    /// Solves `Bᵀ·y = rhs` in place; columns of `Uᵀ`/`Lᵀ` are the stored
    /// rows of `U`/`L`, again with zero skipping.
    pub fn solve_transpose(&self, rhs: &mut [f64]) {
        let m = self.m;
        let mut z = vec![0.0; m];
        for k in 0..m {
            z[k] = rhs[self.col_of[k]];
        }
        // Uᵀ z' = Qᵀ·rhs (lower triangular in pivot order), forward over
        // rows of U.
        for t in 0..m {
            let k = self.porder[t];
            let zk = z[k] / self.u_diag[k];
            z[k] = zk;
            if zk != 0.0 {
                for &(j, u) in &self.u_rows[k] {
                    z[j] -= u * zk;
                }
            }
        }
        // Transposed row etas, most recent first.
        for eta in self.row_etas.iter().rev() {
            let zr = z[eta.row];
            if zr != 0.0 {
                for &(j, mu) in &eta.terms {
                    z[j] -= mu * zr;
                }
            }
        }
        // Lᵀ w = z' (unit upper in transpose), backward over rows of L.
        for k in (0..m).rev() {
            let wk = z[k];
            if wk != 0.0 {
                for &(j, l) in &self.l_rows[k] {
                    z[j] -= l * wk;
                }
            }
        }
        // y = Pᵀ·w.
        for k in 0..m {
            rhs[self.row_of[k]] = z[k];
        }
    }

    /// Absorbs the basis change "slot `slot` leaves, column `col`
    /// enters" (entries in original row coordinates) into the factors by
    /// a Forrest–Tomlin update. Returns `false` — with **no state
    /// mutated** — when the update would be unstable (near-zero updated
    /// diagonal or exploding multiplier); the caller must then
    /// refactorize the new basis from scratch.
    pub fn ft_update(&mut self, slot: usize, col: &[(usize, f64)]) -> bool {
        // --- spike: w = L̃⁻¹·P·a ---------------------------------------
        let mut w = vec![0.0; self.m];
        for &(r, v) in col {
            w[self.rowpos[r]] = v;
        }
        self.lower_solve(&mut w);
        self.ft_apply(slot, w)
    }

    /// [`SparseLu::ft_update`] with the spike already in hand (the
    /// `L̃⁻¹·P·a` intermediate a [`SparseLu::solve_spiked`] FTRAN of the
    /// entering column saved), skipping the redundant lower solve.
    pub fn ft_update_spiked(&mut self, slot: usize, spike: Vec<f64>) -> bool {
        debug_assert_eq!(spike.len(), self.m);
        self.ft_apply(slot, spike)
    }

    /// The shared Forrest–Tomlin core: replace factored column
    /// `colpos[slot]` of `U` with the spike `w`, eliminate the pivot's
    /// row with one row eta, permute the pivot to the end. See
    /// [`SparseLu::ft_update`] for the refusal contract.
    fn ft_apply(&mut self, slot: usize, w: Vec<f64>) -> bool {
        let m = self.m;
        let p = self.colpos[slot];
        let spike_scale = w.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        if spike_scale == 0.0 {
            return false; // a zero entering column cannot form a basis
        }

        // --- eliminate row p against U's trailing rows (scratch) -------
        // Work row = old row p of U; processing the trailing pivot
        // positions in order eliminates each entry and the fill it
        // spawns. Nothing is mutated yet: the multipliers and the final
        // diagonal are computed first so an unstable update can be
        // refused without corrupting the factors.
        let mut work = vec![0.0; m];
        for &(j, v) in &self.u_rows[p] {
            work[j] = v;
        }
        let mut terms: Vec<(usize, f64)> = Vec::new();
        let mut diag = w[p];
        let row_scale = self.u_rows[p]
            .iter()
            .fold(spike_scale, |a, &(_, v)| a.max(v.abs()));
        for t in self.ppos[p] + 1..m {
            let j = self.porder[t];
            let v = work[j];
            if v == 0.0 {
                continue;
            }
            if v.abs() <= FT_DROP_REL * row_scale {
                work[j] = 0.0;
                continue;
            }
            let mu = v / self.u_diag[j];
            if mu.abs() > FT_MULT_MAX {
                return false; // ill-scaled elimination
            }
            terms.push((j, mu));
            work[j] = 0.0;
            // Fill spawned into row p lands strictly later in pivot
            // order (entries of u_rows[j] all do), so the scan
            // eliminates it in turn.
            for &(k, ujk) in &self.u_rows[j] {
                work[k] -= mu * ujk;
            }
            // Row j's entry in the spike column contributes to the new
            // diagonal (the spike is not inserted into U yet).
            diag -= mu * w[j];
        }
        if diag.abs() <= FT_DIAG_REL * spike_scale || !diag.is_finite() {
            return false; // unstable update: force a refactorization
        }

        // --- commit ----------------------------------------------------
        // Drop the old column p…
        let old_col = std::mem::take(&mut self.u_cols[p]);
        for (i, _) in old_col {
            let row = &mut self.u_rows[i];
            let pos = row
                .iter()
                .position(|&(j, _)| j == p)
                .expect("U row/col desync");
            row.swap_remove(pos);
        }
        // …and the old row p.
        let old_row = std::mem::take(&mut self.u_rows[p]);
        for (j, _) in old_row {
            let cl = &mut self.u_cols[j];
            let pos = cl
                .iter()
                .position(|&(i, _)| i == p)
                .expect("U row/col desync");
            cl.swap_remove(pos);
        }
        // Insert the spike as the new column p (every other row now
        // precedes p in pivot order, so all entries are above-diagonal).
        for (i, &wi) in w.iter().enumerate() {
            if i != p && wi.abs() > FT_DROP_REL * spike_scale {
                self.u_cols[p].push((i, wi));
                self.u_rows[i].push((p, wi));
            }
        }
        self.u_diag[p] = diag;
        if !terms.is_empty() {
            self.row_etas.push(RowEta { row: p, terms });
        }
        // Cycle p to the end of the pivot order.
        let start = self.ppos[p];
        for t in start + 1..m {
            let k = self.porder[t];
            self.porder[t - 1] = k;
            self.ppos[k] = t - 1;
        }
        self.porder[m - 1] = p;
        self.ppos[p] = m - 1;
        true
    }

    /// Stored nonzeros of the current `U` (diagonal counted once).
    pub fn u_nnz(&self) -> usize {
        self.m + self.u_cols.iter().map(Vec::len).sum::<usize>()
    }

    /// Stored nonzeros of `L̃ + U`: the static `L` (unit diagonal not
    /// counted), the accumulated Forrest–Tomlin row etas, and the
    /// current `U` (diagonal counted once).
    pub fn nnz(&self) -> usize {
        self.l_cols.iter().map(Vec::len).sum::<usize>()
            + self.row_etas.iter().map(|e| e.terms.len()).sum::<usize>()
            + self.u_nnz()
    }
}

// ---------------------------------------------------------------------------
// Snapshot + eta file
// ---------------------------------------------------------------------------

/// The snapshot factorization behind the eta file.
#[allow(clippy::large_enum_variant)] // one long-lived factor per kernel
enum Lu {
    Dense(DenseLu),
    Sparse(SparseLu),
}

impl Lu {
    fn solve(&self, rhs: &mut [f64]) {
        match self {
            Lu::Dense(lu) => lu.solve(rhs),
            Lu::Sparse(lu) => lu.solve(rhs),
        }
    }
    fn solve_transpose(&self, rhs: &mut [f64]) {
        match self {
            Lu::Dense(lu) => lu.solve_transpose(rhs),
            Lu::Sparse(lu) => lu.solve_transpose(rhs),
        }
    }
    fn nnz(&self) -> usize {
        match self {
            Lu::Dense(lu) => lu.nnz(),
            Lu::Sparse(lu) => lu.nnz(),
        }
    }
}

/// One product-form update: identity with column `row` replaced by the
/// pivot direction `d = B⁻¹A_enter`.
pub(crate) struct Eta {
    /// Pivot row (the basis slot that changed).
    pub row: usize,
    /// `d[row]` — the pivot element.
    pub pivot: f64,
    /// Nonzero `d[i]` for `i != row`.
    pub others: Vec<(usize, f64)>,
}

/// LU snapshot plus its pivot-update state (Forrest–Tomlin row etas
/// inside the sparse LU, or a product-form eta file); see the module
/// docs.
pub(crate) struct Factor {
    lu: Lu,
    /// Effective update scheme (Forrest–Tomlin only on the sparse LU).
    update: UpdateKind,
    /// Product-form eta file (always empty under Forrest–Tomlin).
    etas: Vec<Eta>,
    /// Pivots absorbed since the refactor (etas or FT updates).
    updates: usize,
    /// Accumulated product-form eta fill (`1 + others.len()` per eta).
    eta_nnz: usize,
    /// Nonzeros of the snapshot LU at refactor time.
    lu_nnz: usize,
    /// Resolved policy: refactor after this many absorbed pivots…
    max_etas: usize,
    /// …or at this much accumulated update fill.
    max_eta_fill: usize,
    /// Fault injection: refuse this many FT updates outright (as a
    /// near-singular pivot would), leaving the factors untouched.
    refuse_next: u8,
}

impl Factor {
    /// Factorizes the basis given by `col(slot, out)` — a callback that
    /// appends basis column `slot`'s sparse `(row, value)` entries to
    /// `out` (one entry per row). Returns `None` when the basis is
    /// singular. Only [`FactorKind::Dense`] materializes an `m×m`
    /// matrix; the sparse path assembles CSC directly.
    pub fn refactor<F>(m: usize, cfg: &FactorConfig, mut col: F) -> Option<Factor>
    where
        F: FnMut(usize, &mut Vec<(usize, f64)>),
    {
        let mut cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for j in 0..m {
            scratch.clear();
            col(j, &mut scratch);
            cols.push(scratch.clone());
        }
        let lu = match cfg.kind {
            FactorKind::Sparse => Lu::Sparse(SparseLu::factor(m, &cols)?),
            FactorKind::Dense => {
                let mut a = vec![0.0; m * m];
                for (j, cj) in cols.iter().enumerate() {
                    for &(i, v) in cj {
                        a[i * m + j] = v;
                    }
                }
                Lu::Dense(DenseLu::factor(a, m)?)
            }
        };
        let lu_nnz = lu.nnz();
        // `max(64, 2m)` keeps the amortized refactor cost per pivot at
        // `O(m²)` worst case while warm-started branch & bound (a handful
        // of pivots per node) stays refactor-free across many nodes; the
        // fill trigger refactors early when individual etas are dense
        // (applying the file would outweigh a sparse refactor).
        let max_etas = if cfg.max_etas == 0 {
            64.max(2 * m)
        } else {
            cfg.max_etas
        };
        let max_eta_fill = if cfg.fill_growth.is_finite() && cfg.fill_growth > 0.0 {
            ((cfg.fill_growth * lu_nnz.max(m).max(1) as f64) as usize).max(1)
        } else {
            usize::MAX
        };
        Some(Factor {
            lu,
            update: cfg.update,
            etas: Vec::new(),
            updates: 0,
            eta_nnz: 0,
            lu_nnz,
            max_etas,
            max_eta_fill,
            refuse_next: 0,
        })
    }

    /// Fault injection: the next `n` FT updates are refused as if their
    /// pivot were near-singular. Refusals happen before any state is
    /// committed, so the factors stay exactly as a genuine refusal
    /// leaves them — valid for the old basis.
    pub(crate) fn inject_refusals(&mut self, n: u8) {
        self.refuse_next = self.refuse_next.saturating_add(n);
    }

    /// Fault injection: corrupts a saved FT spike by zeroing it. A zero
    /// spike has zero scale, which [`ft_update_spiked`] refuses *before*
    /// committing anything — so the factors survive and the caller can
    /// heal by recomputing the spike from the entering column (ladder
    /// rung 1).
    ///
    /// [`ft_update_spiked`]: Factor::ft_update_spiked
    pub(crate) fn poison_spike(spike: &mut [f64]) {
        for v in spike.iter_mut() {
            *v = 0.0;
        }
    }

    /// `true` once absorbing more pivot updates is worse than
    /// refactorizing: too many pivots absorbed
    /// ([`FactorConfig::max_etas`]) or the accumulated update fill
    /// outgrew the snapshot LU itself ([`FactorConfig::fill_growth`] —
    /// eta fill under the product form, `U` growth plus row-eta fill
    /// under Forrest–Tomlin). Round-off accumulated by long update
    /// sequences is caught by the consumers (pivot-vanished checks,
    /// active-artificial checks) which force an early refactorization.
    pub fn needs_refactor(&self) -> bool {
        self.updates >= self.max_etas || self.update_fill() >= self.max_eta_fill
    }

    /// Fill accumulated by pivot updates since the refactor.
    fn update_fill(&self) -> usize {
        match self.update {
            UpdateKind::ProductForm => self.eta_nnz,
            // FT fill lives inside the sparse LU (spikes and row etas);
            // cancellation can also shrink U, hence the saturation.
            UpdateKind::ForrestTomlin => self.lu.nnz().saturating_sub(self.lu_nnz),
        }
    }

    /// Nonzeros of the snapshot `L + U` at refactor time (the dense
    /// oracle reports its full `m²` storage).
    pub fn lu_nnz(&self) -> usize {
        self.lu_nnz
    }

    /// Current stored nonzeros: the (possibly FT-updated) factors plus
    /// the product-form eta file.
    pub fn current_nnz(&self) -> usize {
        self.lu.nnz() + self.eta_nnz
    }

    /// Current nonzeros of `U` alone (the dense oracle, which keeps no
    /// separate update state, reports its full `m²` storage).
    pub fn u_nnz(&self) -> usize {
        match &self.lu {
            Lu::Dense(lu) => lu.nnz(),
            Lu::Sparse(lu) => lu.u_nnz(),
        }
    }

    /// The update scheme this factor actually runs (Forrest–Tomlin
    /// degrades to the product form on the dense snapshot).
    pub fn update_kind(&self) -> UpdateKind {
        self.update
    }

    /// Appends a product-form pivot update; the caller guarantees
    /// `|pivot|` is safely away from zero.
    pub fn push(&mut self, eta: Eta) {
        debug_assert!(eta.pivot.abs() > 1e-12);
        debug_assert!(
            self.update == UpdateKind::ProductForm,
            "eta pushed onto a Forrest–Tomlin factor"
        );
        self.eta_nnz += 1 + eta.others.len();
        self.updates += 1;
        self.etas.push(eta);
    }

    /// Absorbs a basis change by a Forrest–Tomlin update of the sparse
    /// factors (see [`SparseLu::ft_update`]). Returns `false` — factors
    /// untouched — when the update would be unstable; the caller must
    /// refactorize the new basis.
    pub fn ft_update(&mut self, slot: usize, col: &[(usize, f64)]) -> bool {
        debug_assert!(self.update == UpdateKind::ForrestTomlin);
        if self.refuse_next > 0 {
            self.refuse_next -= 1;
            return false;
        }
        let Lu::Sparse(lu) = &mut self.lu else {
            unreachable!("Forrest–Tomlin is resolved away for the dense snapshot")
        };
        if lu.ft_update(slot, col) {
            self.updates += 1;
            true
        } else {
            false
        }
    }

    /// Solves `B·x = rhs` in place (forward transformation).
    pub fn ftran(&self, x: &mut [f64]) {
        self.lu.solve(x);
        for eta in &self.etas {
            let xr = x[eta.row] / eta.pivot;
            x[eta.row] = xr;
            if xr != 0.0 {
                for &(i, d) in &eta.others {
                    x[i] -= d * xr;
                }
            }
        }
    }

    /// [`Factor::ftran`] under Forrest–Tomlin, additionally saving the
    /// `L̃⁻¹`-phase intermediate into `spike`: when `x` is an entering
    /// column, a following [`Factor::ft_update_spiked`] absorbs the
    /// pivot without re-running the lower solve.
    pub fn ftran_spiked(&self, x: &mut [f64], spike: &mut Vec<f64>) {
        debug_assert!(self.update == UpdateKind::ForrestTomlin && self.etas.is_empty());
        match &self.lu {
            Lu::Sparse(lu) => lu.solve_spiked(x, Some(spike)),
            Lu::Dense(_) => unreachable!("Forrest–Tomlin is resolved away for the dense snapshot"),
        }
    }

    /// [`Factor::ft_update`] with the spike saved by a prior
    /// [`Factor::ftran_spiked`] of the entering column.
    pub fn ft_update_spiked(&mut self, slot: usize, spike: Vec<f64>) -> bool {
        debug_assert!(self.update == UpdateKind::ForrestTomlin);
        if self.refuse_next > 0 {
            self.refuse_next -= 1;
            return false;
        }
        let Lu::Sparse(lu) = &mut self.lu else {
            unreachable!("Forrest–Tomlin is resolved away for the dense snapshot")
        };
        if lu.ft_update_spiked(slot, spike) {
            self.updates += 1;
            true
        } else {
            false
        }
    }

    /// Solves `Bᵀ·y = rhs` in place (backward transformation).
    pub fn btran(&self, y: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut s = y[eta.row];
            for &(i, d) in &eta.others {
                s -= d * y[i];
            }
            y[eta.row] = s / eta.pivot;
        }
        self.lu.solve_transpose(y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f64], b: &[f64]) -> bool {
        a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    /// Sparse columns of a dense row-major matrix.
    fn csc_of(a: &[f64], m: usize) -> Vec<Vec<(usize, f64)>> {
        (0..m)
            .map(|j| {
                (0..m)
                    .filter(|&i| a[i * m + j] != 0.0)
                    .map(|i| (i, a[i * m + j]))
                    .collect()
            })
            .collect()
    }

    /// `Factor` over a dense row-major matrix with the given kind, in
    /// the historical product-form update mode (the Forrest–Tomlin
    /// update path has its own suite below).
    fn factor_of(a: &[f64], m: usize, kind: FactorKind) -> Option<Factor> {
        let cols = csc_of(a, m);
        let cfg = FactorConfig {
            kind,
            update: UpdateKind::ProductForm,
            ..FactorConfig::default()
        };
        Factor::refactor(m, &cfg, |j, out| out.extend_from_slice(&cols[j]))
    }

    #[test]
    fn lu_solves_small_system() {
        // [[2,1],[1,3]] x = [5,10] → x = [1,3].
        let lu = DenseLu::factor(vec![2.0, 1.0, 1.0, 3.0], 2).unwrap();
        let mut x = vec![5.0, 10.0];
        lu.solve(&mut x);
        assert!(approx(&x, &[1.0, 3.0]), "{x:?}");
        let mut y = vec![4.0, 7.0];
        lu.solve_transpose(&mut y);
        // Check Bᵀy = rhs: Bᵀ = [[2,1],[1,3]].
        assert!((2.0 * y[0] + 1.0 * y[1] - 4.0).abs() < 1e-9);
        assert!((1.0 * y[0] + 3.0 * y[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_lu_solves_small_system() {
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let lu = SparseLu::factor(2, &csc_of(&a, 2)).unwrap();
        let mut x = vec![5.0, 10.0];
        lu.solve(&mut x);
        assert!(approx(&x, &[1.0, 3.0]), "{x:?}");
        let mut y = vec![4.0, 7.0];
        lu.solve_transpose(&mut y);
        assert!((2.0 * y[0] + 1.0 * y[1] - 4.0).abs() < 1e-9);
        assert!((1.0 * y[0] + 3.0 * y[1] - 7.0).abs() < 1e-9);
        assert!(lu.nnz() <= 4);
    }

    #[test]
    fn singular_matrix_is_rejected_by_both_kinds() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(DenseLu::factor(a.clone(), 2).is_none());
        assert!(SparseLu::factor(2, &csc_of(&a, 2)).is_none());
    }

    /// The degenerate-case suite: 1×1, permutation matrices, duplicate
    /// columns, structurally singular (empty column/row), and empty.
    #[test]
    fn degenerate_cases_match_across_kinds() {
        // 1×1.
        for kind in [FactorKind::Sparse, FactorKind::Dense] {
            let f = factor_of(&[4.0], 1, kind).unwrap();
            let mut x = vec![6.0];
            f.ftran(&mut x);
            assert!((x[0] - 1.5).abs() < 1e-12, "{kind:?}");
            let mut y = vec![8.0];
            f.btran(&mut y);
            assert!((y[0] - 2.0).abs() < 1e-12, "{kind:?}");
            assert!(factor_of(&[0.0], 1, kind).is_none(), "{kind:?}");
        }
        // A 4×4 permutation matrix: nnz(L+U) must stay at m.
        let p = vec![
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 0.0, 1.0, //
            1.0, 0.0, 0.0, 0.0, //
            0.0, 0.0, 1.0, 0.0,
        ];
        let sp = SparseLu::factor(4, &csc_of(&p, 4)).unwrap();
        assert_eq!(sp.nnz(), 4, "permutation factors with zero fill");
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        sp.solve(&mut x);
        // P x = b with P e.g. mapping col j → row i: x = Pᵀ b.
        for i in 0..4 {
            let got: f64 = (0..4).map(|j| p[i * 4 + j] * x[j]).sum();
            assert!((got - (i as f64 + 1.0)).abs() < 1e-12);
        }
        // Duplicate columns → singular under both kinds.
        let dup = vec![
            1.0, 2.0, 1.0, //
            0.5, -1.0, 0.5, //
            3.0, 0.25, 3.0,
        ];
        assert!(factor_of(&dup, 3, FactorKind::Sparse).is_none());
        assert!(factor_of(&dup, 3, FactorKind::Dense).is_none());
        // Structurally singular: an empty column.
        let hole = vec![
            1.0, 0.0, 2.0, //
            4.0, 0.0, 1.0, //
            0.0, 0.0, 3.0,
        ];
        assert!(factor_of(&hole, 3, FactorKind::Sparse).is_none());
        assert!(factor_of(&hole, 3, FactorKind::Dense).is_none());
        // Empty basis (m = 0) factors trivially.
        for kind in [FactorKind::Sparse, FactorKind::Dense] {
            let f = factor_of(&[], 0, kind).unwrap();
            f.ftran(&mut []);
            f.btran(&mut []);
        }
    }

    /// A well-conditioned basis scaled by 1e-9 must not be misreported
    /// as singular (the old absolute `1e-11` pivot cutoff did exactly
    /// that once entries dipped below it).
    #[test]
    fn tiny_but_well_conditioned_basis_factors() {
        let scale = 1e-9;
        // Entries of magnitude ~5e-12 < the old absolute 1e-11 cutoff.
        let a: Vec<f64> = [
            0.004, 0.001, 0.0, //
            0.001, 0.003, 0.001, //
            0.0, 0.001, 0.005,
        ]
        .iter()
        .map(|v| v * scale)
        .collect();
        let b = [1.0, -2.0, 0.5];
        for kind in [FactorKind::Sparse, FactorKind::Dense] {
            let f = factor_of(&a, 3, kind)
                .unwrap_or_else(|| panic!("{kind:?} misreported a scaled basis as singular"));
            let mut x = b.to_vec();
            f.ftran(&mut x);
            for i in 0..3 {
                let got: f64 = (0..3).map(|j| a[i * 3 + j] * x[j]).sum();
                assert!(
                    (got - b[i]).abs() < 1e-9 * scale.max(1.0).max((x[i]).abs() * 1e-16),
                    "{kind:?} row {i}: {got} vs {}",
                    b[i]
                );
            }
        }
    }

    #[test]
    fn eta_updates_track_column_replacement() {
        // Start from B0 = I (3×3); replace column 1 with d = (0.5, 2.0, 0.25).
        for kind in [FactorKind::Sparse, FactorKind::Dense] {
            let eye = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
            let mut f = factor_of(&eye, 3, kind).unwrap();
            f.push(Eta {
                row: 1,
                pivot: 2.0,
                others: vec![(0, 0.5), (2, 0.25)],
            });
            // New B = [e0, (0.5,2,0.25), e2]. Solve B x = (1, 4, 1):
            // x1 = 2, x0 = 1 - 0.5*2 = 0, x2 = 1 - 0.25*2 = 0.5.
            let mut x = vec![1.0, 4.0, 1.0];
            f.ftran(&mut x);
            assert!(approx(&x, &[0.0, 2.0, 0.5]), "{kind:?}: {x:?}");
            // Bᵀ y = (3, 6, 8): y0 = 3, y2 = 8, row1: 0.5·y0 + 2·y1 + 0.25·y2 = 6
            // → y1 = (6 − 1.5 − 2)/2 = 1.25.
            let mut y = vec![3.0, 6.0, 8.0];
            f.btran(&mut y);
            assert!(approx(&y, &[3.0, 1.25, 8.0]), "{kind:?}: {y:?}");
        }
    }

    #[test]
    fn permuted_lu_round_trips_both_directions() {
        // A fixed well-conditioned 4×4 with forced pivoting.
        let a = vec![
            0.0, 2.0, 1.0, 0.5, //
            1.0, 0.0, 0.0, 2.0, //
            4.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 3.0, 1.0,
        ];
        for kind in [FactorKind::Sparse, FactorKind::Dense] {
            let f = factor_of(&a, 4, kind).unwrap();
            let b = vec![1.0, -2.0, 0.5, 3.0];
            let mut x = b.clone();
            f.ftran(&mut x);
            for i in 0..4 {
                let got: f64 = (0..4).map(|j| a[i * 4 + j] * x[j]).sum();
                assert!(
                    (got - b[i]).abs() < 1e-9,
                    "{kind:?} row {i}: {got} vs {}",
                    b[i]
                );
            }
            // Sparse rhs through the transpose: Bᵀ y = e2.
            let mut y = vec![0.0, 0.0, 1.0, 0.0];
            f.btran(&mut y);
            for i in 0..4 {
                let got: f64 = (0..4).map(|j| a[j * 4 + i] * y[j]).sum();
                let want = if i == 2 { 1.0 } else { 0.0 };
                assert!(
                    (got - want).abs() < 1e-9,
                    "{kind:?} col {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn sparse_nnz_tracks_fill_not_dimension() {
        // A tridiagonal system: sparse LU fill stays O(m), the dense
        // oracle burns m² regardless.
        let m = 32;
        let mut a = vec![0.0; m * m];
        for i in 0..m {
            a[i * m + i] = 4.0;
            if i + 1 < m {
                a[i * m + i + 1] = -1.0;
                a[(i + 1) * m + i] = -1.0;
            }
        }
        let sparse = factor_of(&a, m, FactorKind::Sparse).unwrap();
        let dense = factor_of(&a, m, FactorKind::Dense).unwrap();
        assert!(
            sparse.lu_nnz() <= 3 * m,
            "fill {} on tridiagonal",
            sparse.lu_nnz()
        );
        assert_eq!(dense.lu_nnz(), m * m);
        // Same answers regardless of storage.
        let mut xs: Vec<f64> = (0..m).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut xd = xs.clone();
        sparse.ftran(&mut xs);
        dense.ftran(&mut xd);
        assert!(approx(&xs, &xd), "ftran diverges");
        let mut ys: Vec<f64> = (0..m).map(|i| ((i * 7) % 3) as f64).collect();
        let mut yd = ys.clone();
        sparse.btran(&mut ys);
        dense.btran(&mut yd);
        assert!(approx(&ys, &yd), "btran diverges");
    }

    /// `Factor` over a dense row-major matrix, sparse snapshot,
    /// Forrest–Tomlin updates.
    fn ft_factor_of(a: &[f64], m: usize) -> Option<Factor> {
        let cols = csc_of(a, m);
        let cfg = FactorConfig {
            kind: FactorKind::Sparse,
            update: UpdateKind::ForrestTomlin,
            ..FactorConfig::default()
        };
        Factor::refactor(m, &cfg, |j, out| out.extend_from_slice(&cols[j]))
    }

    /// Replaces column `slot` of the dense row-major mirror with `col`.
    fn replace_col(a: &mut [f64], m: usize, slot: usize, col: &[(usize, f64)]) {
        for i in 0..m {
            a[i * m + slot] = 0.0;
        }
        for &(r, v) in col {
            a[r * m + slot] = v;
        }
    }

    /// FTRAN/BTRAN of `f` agree with a fresh Markowitz refactorization
    /// of the dense mirror `a` on a couple of rhs vectors.
    fn assert_matches_fresh(f: &Factor, a: &[f64], m: usize, stage: &str) {
        let fresh = factor_of(a, m, FactorKind::Sparse)
            .unwrap_or_else(|| panic!("{stage}: fresh refactorization failed"));
        let rhs: Vec<f64> = (0..m).map(|i| ((i * 7 + 3) % 5) as f64 - 2.0).collect();
        let mut xu = rhs.clone();
        let mut xf = rhs.clone();
        f.ftran(&mut xu);
        fresh.ftran(&mut xf);
        assert!(approx(&xu, &xf), "{stage}: ftran diverged {xu:?} vs {xf:?}");
        let mut yu = rhs.clone();
        let mut yf = rhs;
        f.btran(&mut yu);
        fresh.btran(&mut yf);
        assert!(approx(&yu, &yf), "{stage}: btran diverged {yu:?} vs {yf:?}");
    }

    /// A Forrest–Tomlin update tracks a column replacement exactly: the
    /// same small system as the eta test, answered through updated
    /// factors instead of an eta file.
    #[test]
    fn ft_update_tracks_column_replacement() {
        let eye = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let mut f = ft_factor_of(&eye, 3).unwrap();
        // Replace basis slot 1 with a = (0.5, 2.0, 0.25) (original rows).
        let col = vec![(0, 0.5), (1, 2.0), (2, 0.25)];
        assert!(f.ft_update(1, &col), "well-conditioned update refused");
        let mut x = vec![1.0, 4.0, 1.0];
        f.ftran(&mut x);
        assert!(approx(&x, &[0.0, 2.0, 0.5]), "{x:?}");
        let mut y = vec![3.0, 6.0, 8.0];
        f.btran(&mut y);
        assert!(approx(&y, &[3.0, 1.25, 8.0]), "{y:?}");
        // And against a fresh factorization of the replaced basis.
        let mut a = eye.to_vec();
        replace_col(&mut a, 3, 1, &col);
        assert_matches_fresh(&f, &a, 3, "identity column swap");
    }

    /// The FT degenerate suite: a 1×1 basis, a pivot already sitting in
    /// `U`'s last pivot position (no elimination work at all), and a
    /// near-singular spike, which must be *refused* — with the factors
    /// left intact — rather than absorbed.
    #[test]
    fn ft_degenerate_cases() {
        // m = 1: the update is a plain diagonal replacement.
        let mut f = ft_factor_of(&[4.0], 1).unwrap();
        assert!(f.ft_update(0, &[(0, 8.0)]));
        let mut x = vec![2.0];
        f.ftran(&mut x);
        assert!((x[0] - 0.25).abs() < 1e-12, "{x:?}");
        assert!(!f.ft_update(0, &[(0, 0.0)]), "zero column accepted");

        // Upper-triangular basis: slot 2 is eliminated last, so its
        // replacement needs no row eta and no permutation work.
        let tri = [
            2.0, 1.0, 1.0, //
            0.0, 3.0, 1.0, //
            0.0, 0.0, 4.0,
        ];
        let mut f = ft_factor_of(&tri, 3).unwrap();
        let col = vec![(0, 1.0), (1, 2.0), (2, 8.0)];
        assert!(f.ft_update(2, &col));
        let mut a = tri.to_vec();
        replace_col(&mut a, 3, 2, &col);
        assert_matches_fresh(&f, &a, 3, "last-position pivot");

        // Near-singular spike: replacing column 1 of the identity with a
        // column that is (numerically) a copy of column 0 drives the
        // updated diagonal to round-off → the update must refuse and
        // leave the factors answering for the *old* basis.
        let eye = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let mut f = ft_factor_of(&eye, 3).unwrap();
        let bad = vec![(0, 1.0), (1, 1e-14), (2, 0.0)];
        assert!(!f.ft_update(1, &bad), "near-singular spike accepted");
        assert_matches_fresh(&f, &eye, 3, "refused update must not corrupt");
    }

    /// A chain of FT updates across several slots (forcing pivot-order
    /// cycling and row-eta accumulation) keeps agreeing with fresh
    /// factorizations of the mutated basis.
    #[test]
    fn ft_update_chain_matches_fresh_refactorization() {
        let m = 5;
        let mut a = vec![0.0f64; m * m];
        for i in 0..m {
            a[i * m + i] = 3.0 + i as f64;
            if i + 1 < m {
                a[i * m + i + 1] = -1.0;
                a[(i + 1) * m + i] = 0.5;
            }
        }
        let mut f = ft_factor_of(&a, m).unwrap();
        let replacements: Vec<(usize, Vec<(usize, f64)>)> = vec![
            (2, vec![(0, 1.0), (2, 4.0), (4, -0.5)]),
            (0, vec![(0, 2.5), (1, 1.0), (3, 0.25)]),
            (2, vec![(1, -1.0), (2, 5.0), (3, 1.0)]),
            (4, vec![(0, 0.5), (3, -0.75), (4, 6.0)]),
            (1, vec![(1, 3.5), (2, 0.5), (4, 1.0)]),
        ];
        for (step, (slot, col)) in replacements.into_iter().enumerate() {
            assert!(f.ft_update(slot, &col), "update {step} refused");
            replace_col(&mut a, m, slot, &col);
            assert_matches_fresh(&f, &a, m, &format!("after update {step}"));
        }
    }

    /// The refactor policy counts FT updates like it counts etas, and
    /// the fill trigger sees the updated factors' growth.
    #[test]
    fn ft_updates_count_toward_the_refactor_policy() {
        let eye = [1.0, 0.0, 0.0, 1.0];
        let cols = csc_of(&eye, 2);
        let mut f = Factor::refactor(
            2,
            &FactorConfig {
                kind: FactorKind::Sparse,
                update: UpdateKind::ForrestTomlin,
                max_etas: 2,
                fill_growth: f64::INFINITY,
            },
            |j, out| out.extend_from_slice(&cols[j]),
        )
        .unwrap();
        assert!(f.ft_update(0, &[(0, 2.0), (1, 0.5)]));
        assert!(!f.needs_refactor(), "fired below the configured length");
        assert!(f.ft_update(1, &[(0, 0.25), (1, 3.0)]));
        assert!(f.needs_refactor(), "did not fire at the configured length");
    }

    /// The refactor policy fires exactly at the configured eta-file
    /// length, and independently at the configured fill growth.
    #[test]
    fn refactor_policy_fires_at_configured_point() {
        let eye = [1.0, 0.0, 0.0, 1.0];
        let cols = csc_of(&eye, 2);
        let mk = |max_etas, fill_growth| {
            Factor::refactor(
                2,
                &FactorConfig {
                    kind: FactorKind::Sparse,
                    update: UpdateKind::ProductForm,
                    max_etas,
                    fill_growth,
                },
                |j, out| out.extend_from_slice(&cols[j]),
            )
            .unwrap()
        };
        let eta = || Eta {
            row: 0,
            pivot: 2.0,
            others: vec![(1, 0.5)],
        };
        // Length trigger: fires at exactly 3 etas.
        let mut f = mk(3, f64::INFINITY);
        f.push(eta());
        f.push(eta());
        assert!(!f.needs_refactor(), "fired below the configured length");
        f.push(eta());
        assert!(f.needs_refactor(), "did not fire at the configured length");
        // Fill trigger: lu_nnz = 2, growth 2.0 → fires once eta fill ≥ 4,
        // i.e. after two 2-entry etas, long before the length cap.
        let mut f = mk(1_000_000, 2.0);
        f.push(eta());
        assert!(!f.needs_refactor(), "fill trigger fired early");
        f.push(eta());
        assert!(f.needs_refactor(), "fill trigger never fired");
        // Disabled fill trigger (growth ≤ 0) never fires on fill.
        let mut f = mk(1_000_000, 0.0);
        for _ in 0..64 {
            f.push(eta());
        }
        assert!(!f.needs_refactor());
    }
}
