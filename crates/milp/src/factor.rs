//! Basis factorization for the revised simplex kernel.
//!
//! The basis matrix `B` is held as an **LU factorization of a snapshot
//! basis `B₀`**, composed with a **product-form eta file**: after `k`
//! pivots, `B = B₀·E₁·…·E_k` where each `Eᵢ` is an identity matrix with
//! one column replaced by the pivot direction `d = B⁻¹A_j`. FTRAN/BTRAN
//! apply the LU triangles and then the eta transformations; when the file
//! grows past [`Factor::needs_refactor`] the current basis is
//! refactorized from scratch, which both caps the per-solve cost and
//! flushes accumulated round-off. The refactor policy is configurable
//! ([`FactorConfig`]): the file is flushed when it is *long* (eta count)
//! or *heavy* (accumulated eta fill relative to the LU's own nonzeros).
//!
//! Two snapshot factorizations implement the same contract, selected by
//! [`FactorKind`](crate::FactorKind):
//!
//! * [`SparseLu`] (the production default) — a **right-looking sparse LU
//!   with Markowitz pivot ordering and threshold partial pivoting**. The
//!   basis is assembled straight from the model's sparse columns (no
//!   dense `m×m` matrix is ever materialized); at every elimination step
//!   the pivot is chosen to minimize the Markowitz fill bound
//!   `(r_i − 1)·(c_j − 1)` over the active submatrix, restricted to
//!   entries within a threshold factor of their column's magnitude so
//!   stability is not sacrificed for sparsity. The factors `P·B·Q = L·U`
//!   (row *and* column permutations) store `O(nnz(L+U))`, and a refactor
//!   costs `O(fill)` instead of `O(m³)`.
//! * [`DenseLu`] — the original dense partial-pivoting LU, kept alive as
//!   the **cross-validation oracle**: an independent implementation whose
//!   FTRAN/BTRAN answers the property tests compare against, and the
//!   baseline the `milp_scaling` bench measures the sparse scheme's
//!   storage and speed wins over.
//!
//! Both store their triangles in **dual row/column-major layouts** so the
//! triangular solves stay column-oriented with zero skipping in both
//! directions (the simplex right-hand sides are extremely sparse — a
//! constraint column for FTRAN, a couple of objective entries for BTRAN —
//! so the solve cost tracks the fill-in of the solution, not `m²`):
//!
//! * `L x = b` / `U x = y` (FTRAN) walk *columns* of `L`/`U`;
//! * `Uᵀ z = c` / `Lᵀ w = z` (BTRAN) walk columns of the transposes,
//!   which are *rows* of `U`/`L`.
//!
//! Singularity tests are **relative to each basis column's scale** (the
//! largest input magnitude of that column), so a well-conditioned but
//! badly scaled basis (every entry ~1e-12) factors fine while a genuinely
//! rank-deficient one (duplicate columns cancelling to round-off) is
//! still rejected.

use crate::model::FactorKind;

/// Relative singularity threshold: a pivot candidate must exceed this
/// fraction of its column's input scale to count as nonzero.
const SINGULAR_REL: f64 = 1e-11;

/// Threshold partial pivoting factor: a Markowitz candidate is
/// admissible only when its magnitude is at least `PIVOT_THRESHOLD`
/// times the largest magnitude in its (active) column.
const PIVOT_THRESHOLD: f64 = 0.1;

/// Pivot-search cap: once a candidate exists, at most this many further
/// columns (in increasing nonzero-count order) are examined.
const MARKOWITZ_SEARCH_COLS: usize = 8;

/// Resolved refactorization policy plus snapshot kind, derived from
/// [`SolverOptions`](crate::SolverOptions) by the kernel.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FactorConfig {
    /// Which snapshot factorization backs the eta file.
    pub kind: FactorKind,
    /// Eta-file length that triggers a refactor; `0` = automatic
    /// (`max(64, 2m)`, see [`Factor::needs_refactor`]).
    pub max_etas: usize,
    /// Refactor when the accumulated eta fill exceeds this multiple of
    /// the LU's own nonzero count; non-finite or `<= 0` disables the
    /// fill trigger.
    pub fill_growth: f64,
}

impl FactorConfig {
    /// Pulls the factorization-relevant knobs out of solver options.
    pub fn resolve(opts: &crate::model::SolverOptions) -> FactorConfig {
        FactorConfig {
            kind: opts.factor,
            max_etas: opts.refactor_eta_len,
            fill_growth: opts.refactor_fill_growth,
        }
    }
}

impl Default for FactorConfig {
    fn default() -> Self {
        Self::resolve(&crate::model::SolverOptions::default())
    }
}

// ---------------------------------------------------------------------------
// Dense LU (cross-validation oracle)
// ---------------------------------------------------------------------------

/// Dense LU factorization `P·B = L·U` with partial pivoting, stored in
/// both layouts (see the module docs). Kept as the oracle behind
/// [`FactorKind::Dense`].
pub(crate) struct DenseLu {
    m: usize,
    /// Row-major `m × m`; strict lower triangle holds `L` (unit
    /// diagonal implied), upper triangle holds `U`.
    lu: Vec<f64>,
    /// Column-major copy of the same factors.
    lu_col: Vec<f64>,
    /// `perm[i]` = original row index stored at factored row `i`.
    perm: Vec<usize>,
}

impl DenseLu {
    /// Factors a dense row-major matrix; `None` when numerically singular.
    ///
    /// Singularity is judged **relative to each column's input scale**:
    /// column `k` is declared dependent when its best pivot is below
    /// `SINGULAR_REL · max_i |B_ik|`, so uniformly tiny (but
    /// well-conditioned) bases are not misreported as singular.
    pub fn factor(mut a: Vec<f64>, m: usize) -> Option<DenseLu> {
        debug_assert_eq!(a.len(), m * m);
        // Per-column scale of the *input* matrix, before elimination
        // mixes columns.
        let mut scale = vec![0.0f64; m];
        for i in 0..m {
            for j in 0..m {
                scale[j] = scale[j].max(a[i * m + j].abs());
            }
        }
        let mut perm: Vec<usize> = (0..m).collect();
        for k in 0..m {
            // Partial pivot: largest magnitude in column k at/below row k.
            let mut p = k;
            let mut mx = a[k * m + k].abs();
            for i in k + 1..m {
                let v = a[i * m + k].abs();
                if v > mx {
                    mx = v;
                    p = i;
                }
            }
            if mx <= SINGULAR_REL * scale[k] {
                return None;
            }
            if p != k {
                for j in 0..m {
                    a.swap(k * m + j, p * m + j);
                }
                perm.swap(k, p);
            }
            let inv = 1.0 / a[k * m + k];
            for i in k + 1..m {
                let f = a[i * m + k] * inv;
                a[i * m + k] = f;
                if f != 0.0 {
                    let (top, bottom) = a.split_at_mut(i * m);
                    let arow = &mut bottom[..m];
                    let krow = &top[k * m..k * m + m];
                    for j in k + 1..m {
                        arow[j] -= f * krow[j];
                    }
                }
            }
        }
        let mut lu_col = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                lu_col[j * m + i] = a[i * m + j];
            }
        }
        Some(DenseLu {
            m,
            lu: a,
            lu_col,
            perm,
        })
    }

    /// Solves `B·x = rhs` in place (`rhs` becomes `x`). Column-oriented
    /// with zero skipping: cost scales with the fill-in of the solution,
    /// not with `m²`, when `rhs` is sparse.
    pub fn solve(&self, rhs: &mut [f64]) {
        let m = self.m;
        let mut x = vec![0.0; m];
        for i in 0..m {
            x[i] = rhs[self.perm[i]];
        }
        // L y = Pb (unit lower): walk columns of L (column-major).
        for j in 0..m {
            let xj = x[j];
            if xj != 0.0 {
                let col = &self.lu_col[j * m..(j + 1) * m];
                for i in j + 1..m {
                    x[i] -= col[i] * xj;
                }
            }
        }
        // U x = y: backward, columns of U (column-major).
        for j in (0..m).rev() {
            let xj = x[j] / self.lu_col[j * m + j];
            x[j] = xj;
            if xj != 0.0 {
                let col = &self.lu_col[j * m..j * m + j];
                for (i, &u) in col.iter().enumerate() {
                    if u != 0.0 {
                        x[i] -= u * xj;
                    }
                }
            }
        }
        rhs.copy_from_slice(&x);
    }

    /// Solves `Bᵀ·y = rhs` in place. Columns of `Uᵀ`/`Lᵀ` are rows of
    /// `U`/`L` — contiguous in the row-major copy — with zero skipping.
    pub fn solve_transpose(&self, rhs: &mut [f64]) {
        let m = self.m;
        // Uᵀ z = c (lower-triangular, forward over columns of Uᵀ).
        let mut z = rhs.to_vec();
        for j in 0..m {
            let zj = z[j] / self.lu[j * m + j];
            z[j] = zj;
            if zj != 0.0 {
                let row = &self.lu[j * m..(j + 1) * m];
                for i in j + 1..m {
                    if row[i] != 0.0 {
                        z[i] -= row[i] * zj;
                    }
                }
            }
        }
        // Lᵀ w = z (unit upper in transpose, backward over columns of Lᵀ).
        for j in (0..m).rev() {
            let zj = z[j];
            if zj != 0.0 {
                let row = &self.lu[j * m..j * m + j];
                for (i, &l) in row.iter().enumerate() {
                    if l != 0.0 {
                        z[i] -= l * zj;
                    }
                }
            }
        }
        // y = Pᵀ w.
        for i in 0..m {
            rhs[self.perm[i]] = z[i];
        }
    }

    /// Stored nonzeros: the dense scheme always pays `m²`.
    pub fn nnz(&self) -> usize {
        self.m * self.m
    }
}

// ---------------------------------------------------------------------------
// Sparse LU with Markowitz ordering and threshold partial pivoting
// ---------------------------------------------------------------------------

/// Sparse LU factorization `P·B·Q = L·U` (row *and* column permutations,
/// chosen per elimination step by the Markowitz rule). `L` is unit lower
/// triangular, `U` upper triangular; both are stored twice — by column
/// for FTRAN and by row for BTRAN — in *factored* coordinates.
pub(crate) struct SparseLu {
    m: usize,
    /// Column `k` of `L`: entries `(i, L[i][k])` with `i > k`.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Row `k` of `L`: entries `(j, L[k][j])` with `j < k`.
    l_rows: Vec<Vec<(usize, f64)>>,
    /// Column `k` of `U` above the diagonal: entries `(i, U[i][k])`, `i < k`.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Row `k` of `U` past the diagonal: entries `(j, U[k][j])`, `j > k`.
    u_rows: Vec<Vec<(usize, f64)>>,
    /// `U[k][k]` (pivot magnitudes are threshold-checked at selection).
    u_diag: Vec<f64>,
    /// `row_of[i]` = original row held at factored row `i` (`P`).
    row_of: Vec<usize>,
    /// `col_of[k]` = original basis slot held at factored column `k` (`Q`).
    col_of: Vec<usize>,
}

impl SparseLu {
    /// Factors the basis given as sparse columns (`cols[j]` lists the
    /// `(row, value)` nonzeros of basis slot `j`, one entry per row);
    /// `None` when numerically singular. No dense `m×m` matrix is
    /// materialized at any point.
    pub fn factor(m: usize, cols: &[Vec<(usize, f64)>]) -> Option<SparseLu> {
        debug_assert_eq!(cols.len(), m);
        // Active submatrix, row-wise; rows sorted by column index. The
        // rows are the source of truth; `col_rows` carries candidate row
        // lists per column (pruned lazily) and `col_count` exact active
        // nonzero counts.
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut col_count = vec![0usize; m];
        let mut col_scale = vec![0.0f64; m];
        for (j, cj) in cols.iter().enumerate() {
            for &(r, v) in cj {
                debug_assert!(r < m);
                if v != 0.0 {
                    rows[r].push((j, v));
                    col_rows[j].push(r);
                    col_count[j] += 1;
                    col_scale[j] = col_scale[j].max(v.abs());
                }
            }
        }
        for row in &mut rows {
            row.sort_unstable_by_key(|&(c, _)| c);
        }
        let mut row_active = vec![true; m];
        let mut col_active = vec![true; m];

        let mut l_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut u_rows_orig: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut u_diag = Vec::with_capacity(m);
        let mut row_of = Vec::with_capacity(m);
        let mut col_of = Vec::with_capacity(m);
        // l_cols holds original row ids until the permutation is known.
        let mut order: Vec<usize> = (0..m).collect();

        for _step in 0..m {
            // --- Markowitz pivot selection -----------------------------
            // Active columns in increasing nonzero-count order (kept
            // nearly sorted across steps, pruned and re-sorted in
            // place); a column with no (numerically live) entry proves
            // singularity, since fill can only appear in columns a pivot
            // row touches.
            order.retain(|&j| col_active[j]);
            order.sort_unstable_by_key(|&j| col_count[j]);
            let mut best: Option<(usize, usize, f64)> = None; // (row, col, value)
            let mut best_cost = usize::MAX;
            let mut examined = 0usize;
            for &j in &order {
                if col_count[j] == 0 {
                    return None; // structurally singular
                }
                // Prune stale candidates and gather live entries. The
                // candidate list may hold duplicates (an entry that
                // cancelled and was later refilled is pushed again), so
                // dedupe before gathering.
                col_rows[j].sort_unstable();
                col_rows[j].dedup();
                let mut live: Vec<(usize, f64)> = Vec::with_capacity(col_count[j]);
                col_rows[j].retain(|&r| {
                    if !row_active[r] {
                        return false;
                    }
                    match rows[r].binary_search_by_key(&j, |&(c, _)| c) {
                        Ok(pos) => {
                            live.push((r, rows[r][pos].1));
                            true
                        }
                        Err(_) => false,
                    }
                });
                debug_assert_eq!(live.len(), col_count[j]);
                let colmax = live.iter().map(|&(_, v)| v.abs()).fold(0.0f64, f64::max);
                if colmax <= SINGULAR_REL * col_scale[j] {
                    return None; // column cancelled to round-off
                }
                for &(r, v) in &live {
                    if v.abs() < PIVOT_THRESHOLD * colmax || v.abs() <= SINGULAR_REL * col_scale[j]
                    {
                        continue;
                    }
                    let cost = (rows[r].len() - 1) * (col_count[j] - 1);
                    let better = cost < best_cost
                        || (cost == best_cost
                            && best.is_some_and(|(_, _, bv)| v.abs() > bv.abs()));
                    if better {
                        best_cost = cost;
                        best = Some((r, j, v));
                    }
                }
                if best.is_some() {
                    examined += 1;
                    if best_cost == 0 || examined > MARKOWITZ_SEARCH_COLS {
                        break;
                    }
                }
            }
            let (pr, pj, diag) = best?;

            // --- record the pivot row and column ------------------------
            row_active[pr] = false;
            col_active[pj] = false;
            row_of.push(pr);
            col_of.push(pj);
            u_diag.push(diag);
            // Leaving the active submatrix: every entry of the pivot row
            // drops out of its column's count.
            let pivot_row: Vec<(usize, f64)> = rows[pr]
                .iter()
                .copied()
                .filter(|&(c, _)| c != pj)
                .collect();
            for &(c, _) in &pivot_row {
                col_count[c] -= 1;
            }
            col_count[pj] = 0;
            u_rows_orig.push(pivot_row.clone());

            // --- eliminate the pivot column from the active rows --------
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            let targets: Vec<usize> = col_rows[pj]
                .iter()
                .copied()
                .filter(|&r| row_active[r])
                .collect();
            for r in targets {
                let Ok(pos) = rows[r].binary_search_by_key(&pj, |&(c, _)| c) else {
                    continue; // stale candidate
                };
                let mult = rows[r][pos].1 / diag;
                lcol.push((r, mult));
                // rows[r] := rows[r] − mult · pivot_row, dropping the pj
                // entry; sorted merge keeps the row ordered and updates
                // column counts (and candidate lists) for fill/cancel.
                let old = std::mem::take(&mut rows[r]);
                let mut merged = Vec::with_capacity(old.len() + pivot_row.len());
                let (mut a, mut b) = (0usize, 0usize);
                while a < old.len() || b < pivot_row.len() {
                    let ca = old.get(a).map(|&(c, _)| c);
                    let cb = pivot_row.get(b).map(|&(c, _)| c);
                    match (ca, cb) {
                        (Some(ca_), _) if ca_ == pj => {
                            a += 1; // the eliminated entry itself
                        }
                        (Some(ca_), Some(cb_)) if ca_ == cb_ => {
                            let update = mult * pivot_row[b].1;
                            let nv = old[a].1 - update;
                            // Cancellation drop: keep the entry unless it
                            // is negligible against what was subtracted.
                            if nv.abs() > 1e-14 * (old[a].1.abs() + update.abs()) {
                                merged.push((ca_, nv));
                            } else {
                                col_count[ca_] -= 1;
                            }
                            a += 1;
                            b += 1;
                        }
                        (Some(ca_), Some(cb_)) if ca_ < cb_ => {
                            merged.push(old[a]);
                            a += 1;
                        }
                        (Some(_), Some(cb_)) | (None, Some(cb_)) => {
                            // Fill-in at (r, cb_).
                            let nv = -mult * pivot_row[b].1;
                            if nv != 0.0 {
                                merged.push((cb_, nv));
                                col_count[cb_] += 1;
                                col_rows[cb_].push(r);
                            }
                            b += 1;
                        }
                        (Some(_), None) => {
                            merged.push(old[a]);
                            a += 1;
                        }
                        (None, None) => unreachable!(),
                    }
                }
                rows[r] = merged;
            }
            l_cols.push(lcol);
        }

        // --- remap original row/col ids to factored positions -----------
        let mut rowpos = vec![0usize; m];
        let mut colpos = vec![0usize; m];
        for (k, &r) in row_of.iter().enumerate() {
            rowpos[r] = k;
        }
        for (k, &c) in col_of.iter().enumerate() {
            colpos[c] = k;
        }
        let mut l_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        let mut u_cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        let mut u_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        for (k, lc) in l_cols.iter_mut().enumerate() {
            for e in lc.iter_mut() {
                e.0 = rowpos[e.0];
                debug_assert!(e.0 > k);
            }
            lc.sort_unstable_by_key(|&(i, _)| i);
            for &(i, v) in lc.iter() {
                l_rows[i].push((k, v));
            }
        }
        for (k, ur) in u_rows_orig.into_iter().enumerate() {
            for (c, v) in ur {
                let j = colpos[c];
                debug_assert!(j > k);
                u_rows[k].push((j, v));
                u_cols[j].push((k, v));
            }
            u_rows[k].sort_unstable_by_key(|&(j, _)| j);
        }
        for uc in &mut u_cols {
            uc.sort_unstable_by_key(|&(i, _)| i);
        }
        Some(SparseLu {
            m,
            l_cols,
            l_rows,
            u_cols,
            u_rows,
            u_diag,
            row_of,
            col_of,
        })
    }

    /// Solves `B·x = rhs` in place; column-oriented with zero skipping.
    pub fn solve(&self, rhs: &mut [f64]) {
        let m = self.m;
        let mut z = vec![0.0; m];
        for k in 0..m {
            z[k] = rhs[self.row_of[k]];
        }
        // L z' = P·rhs (unit lower), forward over columns of L.
        for k in 0..m {
            let zk = z[k];
            if zk != 0.0 {
                for &(i, l) in &self.l_cols[k] {
                    z[i] -= l * zk;
                }
            }
        }
        // U x' = z', backward over columns of U.
        for k in (0..m).rev() {
            let xk = z[k] / self.u_diag[k];
            z[k] = xk;
            if xk != 0.0 {
                for &(i, u) in &self.u_cols[k] {
                    z[i] -= u * xk;
                }
            }
        }
        // x = Q·x'.
        for k in 0..m {
            rhs[self.col_of[k]] = z[k];
        }
    }

    /// Solves `Bᵀ·y = rhs` in place; columns of `Uᵀ`/`Lᵀ` are the stored
    /// rows of `U`/`L`, again with zero skipping.
    pub fn solve_transpose(&self, rhs: &mut [f64]) {
        let m = self.m;
        let mut z = vec![0.0; m];
        for k in 0..m {
            z[k] = rhs[self.col_of[k]];
        }
        // Uᵀ z' = Qᵀ·rhs (lower triangular), forward over rows of U.
        for k in 0..m {
            let zk = z[k] / self.u_diag[k];
            z[k] = zk;
            if zk != 0.0 {
                for &(j, u) in &self.u_rows[k] {
                    z[j] -= u * zk;
                }
            }
        }
        // Lᵀ w = z' (unit upper in transpose), backward over rows of L.
        for k in (0..m).rev() {
            let wk = z[k];
            if wk != 0.0 {
                for &(j, l) in &self.l_rows[k] {
                    z[j] -= l * wk;
                }
            }
        }
        // y = Pᵀ·w.
        for k in 0..m {
            rhs[self.row_of[k]] = z[k];
        }
    }

    /// Stored nonzeros of `L + U` (unit diagonal of `L` not counted,
    /// diagonal of `U` counted once).
    pub fn nnz(&self) -> usize {
        self.m
            + self.l_cols.iter().map(Vec::len).sum::<usize>()
            + self.u_cols.iter().map(Vec::len).sum::<usize>()
    }
}

// ---------------------------------------------------------------------------
// Snapshot + eta file
// ---------------------------------------------------------------------------

/// The snapshot factorization behind the eta file.
enum Lu {
    Dense(DenseLu),
    Sparse(SparseLu),
}

impl Lu {
    fn solve(&self, rhs: &mut [f64]) {
        match self {
            Lu::Dense(lu) => lu.solve(rhs),
            Lu::Sparse(lu) => lu.solve(rhs),
        }
    }
    fn solve_transpose(&self, rhs: &mut [f64]) {
        match self {
            Lu::Dense(lu) => lu.solve_transpose(rhs),
            Lu::Sparse(lu) => lu.solve_transpose(rhs),
        }
    }
    fn nnz(&self) -> usize {
        match self {
            Lu::Dense(lu) => lu.nnz(),
            Lu::Sparse(lu) => lu.nnz(),
        }
    }
}

/// One product-form update: identity with column `row` replaced by the
/// pivot direction `d = B⁻¹A_enter`.
pub(crate) struct Eta {
    /// Pivot row (the basis slot that changed).
    pub row: usize,
    /// `d[row]` — the pivot element.
    pub pivot: f64,
    /// Nonzero `d[i]` for `i != row`.
    pub others: Vec<(usize, f64)>,
}

/// LU snapshot plus eta file; see the module docs.
pub(crate) struct Factor {
    lu: Lu,
    etas: Vec<Eta>,
    /// Accumulated eta fill (`1 + others.len()` per eta).
    eta_nnz: usize,
    /// Nonzeros of the snapshot LU at refactor time.
    lu_nnz: usize,
    /// Resolved policy: refactor at this eta-file length…
    max_etas: usize,
    /// …or at this much accumulated eta fill.
    max_eta_fill: usize,
}

impl Factor {
    /// Factorizes the basis given by `col(slot, out)` — a callback that
    /// appends basis column `slot`'s sparse `(row, value)` entries to
    /// `out` (one entry per row). Returns `None` when the basis is
    /// singular. Only [`FactorKind::Dense`] materializes an `m×m`
    /// matrix; the sparse path assembles CSC directly.
    pub fn refactor<F>(m: usize, cfg: &FactorConfig, mut col: F) -> Option<Factor>
    where
        F: FnMut(usize, &mut Vec<(usize, f64)>),
    {
        let mut cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for j in 0..m {
            scratch.clear();
            col(j, &mut scratch);
            cols.push(scratch.clone());
        }
        let lu = match cfg.kind {
            FactorKind::Sparse => Lu::Sparse(SparseLu::factor(m, &cols)?),
            FactorKind::Dense => {
                let mut a = vec![0.0; m * m];
                for (j, cj) in cols.iter().enumerate() {
                    for &(i, v) in cj {
                        a[i * m + j] = v;
                    }
                }
                Lu::Dense(DenseLu::factor(a, m)?)
            }
        };
        let lu_nnz = lu.nnz();
        // `max(64, 2m)` keeps the amortized refactor cost per pivot at
        // `O(m²)` worst case while warm-started branch & bound (a handful
        // of pivots per node) stays refactor-free across many nodes; the
        // fill trigger refactors early when individual etas are dense
        // (applying the file would outweigh a sparse refactor).
        let max_etas = if cfg.max_etas == 0 {
            64.max(2 * m)
        } else {
            cfg.max_etas
        };
        let max_eta_fill = if cfg.fill_growth.is_finite() && cfg.fill_growth > 0.0 {
            ((cfg.fill_growth * lu_nnz.max(m).max(1) as f64) as usize).max(1)
        } else {
            usize::MAX
        };
        Some(Factor {
            lu,
            etas: Vec::new(),
            eta_nnz: 0,
            lu_nnz,
            max_etas,
            max_eta_fill,
        })
    }

    /// `true` once streaming more eta updates is worse than
    /// refactorizing: the file is long ([`FactorConfig::max_etas`]) or
    /// its accumulated fill outgrew the LU itself
    /// ([`FactorConfig::fill_growth`]). Round-off accumulated by long
    /// files is caught by the consumers (pivot-vanished checks,
    /// active-artificial checks) which force an early refactorization.
    pub fn needs_refactor(&self) -> bool {
        self.etas.len() >= self.max_etas || self.eta_nnz >= self.max_eta_fill
    }

    /// Nonzeros of the snapshot `L + U` (the dense oracle reports its
    /// full `m²` storage).
    pub fn lu_nnz(&self) -> usize {
        self.lu_nnz
    }

    /// Appends a pivot update; the caller guarantees `|pivot|` is safely
    /// away from zero.
    pub fn push(&mut self, eta: Eta) {
        debug_assert!(eta.pivot.abs() > 1e-12);
        self.eta_nnz += 1 + eta.others.len();
        self.etas.push(eta);
    }

    /// Solves `B·x = rhs` in place (forward transformation).
    pub fn ftran(&self, x: &mut [f64]) {
        self.lu.solve(x);
        for eta in &self.etas {
            let xr = x[eta.row] / eta.pivot;
            x[eta.row] = xr;
            if xr != 0.0 {
                for &(i, d) in &eta.others {
                    x[i] -= d * xr;
                }
            }
        }
    }

    /// Solves `Bᵀ·y = rhs` in place (backward transformation).
    pub fn btran(&self, y: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut s = y[eta.row];
            for &(i, d) in &eta.others {
                s -= d * y[i];
            }
            y[eta.row] = s / eta.pivot;
        }
        self.lu.solve_transpose(y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f64], b: &[f64]) -> bool {
        a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    /// Sparse columns of a dense row-major matrix.
    fn csc_of(a: &[f64], m: usize) -> Vec<Vec<(usize, f64)>> {
        (0..m)
            .map(|j| {
                (0..m)
                    .filter(|&i| a[i * m + j] != 0.0)
                    .map(|i| (i, a[i * m + j]))
                    .collect()
            })
            .collect()
    }

    /// `Factor` over a dense row-major matrix with the given kind.
    fn factor_of(a: &[f64], m: usize, kind: FactorKind) -> Option<Factor> {
        let cols = csc_of(a, m);
        let cfg = FactorConfig {
            kind,
            ..FactorConfig::default()
        };
        Factor::refactor(m, &cfg, |j, out| out.extend_from_slice(&cols[j]))
    }

    #[test]
    fn lu_solves_small_system() {
        // [[2,1],[1,3]] x = [5,10] → x = [1,3].
        let lu = DenseLu::factor(vec![2.0, 1.0, 1.0, 3.0], 2).unwrap();
        let mut x = vec![5.0, 10.0];
        lu.solve(&mut x);
        assert!(approx(&x, &[1.0, 3.0]), "{x:?}");
        let mut y = vec![4.0, 7.0];
        lu.solve_transpose(&mut y);
        // Check Bᵀy = rhs: Bᵀ = [[2,1],[1,3]].
        assert!((2.0 * y[0] + 1.0 * y[1] - 4.0).abs() < 1e-9);
        assert!((1.0 * y[0] + 3.0 * y[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_lu_solves_small_system() {
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let lu = SparseLu::factor(2, &csc_of(&a, 2)).unwrap();
        let mut x = vec![5.0, 10.0];
        lu.solve(&mut x);
        assert!(approx(&x, &[1.0, 3.0]), "{x:?}");
        let mut y = vec![4.0, 7.0];
        lu.solve_transpose(&mut y);
        assert!((2.0 * y[0] + 1.0 * y[1] - 4.0).abs() < 1e-9);
        assert!((1.0 * y[0] + 3.0 * y[1] - 7.0).abs() < 1e-9);
        assert!(lu.nnz() <= 4);
    }

    #[test]
    fn singular_matrix_is_rejected_by_both_kinds() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(DenseLu::factor(a.clone(), 2).is_none());
        assert!(SparseLu::factor(2, &csc_of(&a, 2)).is_none());
    }

    /// The degenerate-case suite: 1×1, permutation matrices, duplicate
    /// columns, structurally singular (empty column/row), and empty.
    #[test]
    fn degenerate_cases_match_across_kinds() {
        // 1×1.
        for kind in [FactorKind::Sparse, FactorKind::Dense] {
            let f = factor_of(&[4.0], 1, kind).unwrap();
            let mut x = vec![6.0];
            f.ftran(&mut x);
            assert!((x[0] - 1.5).abs() < 1e-12, "{kind:?}");
            let mut y = vec![8.0];
            f.btran(&mut y);
            assert!((y[0] - 2.0).abs() < 1e-12, "{kind:?}");
            assert!(factor_of(&[0.0], 1, kind).is_none(), "{kind:?}");
        }
        // A 4×4 permutation matrix: nnz(L+U) must stay at m.
        let p = vec![
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 0.0, 1.0, //
            1.0, 0.0, 0.0, 0.0, //
            0.0, 0.0, 1.0, 0.0,
        ];
        let sp = SparseLu::factor(4, &csc_of(&p, 4)).unwrap();
        assert_eq!(sp.nnz(), 4, "permutation factors with zero fill");
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        sp.solve(&mut x);
        // P x = b with P e.g. mapping col j → row i: x = Pᵀ b.
        for i in 0..4 {
            let got: f64 = (0..4).map(|j| p[i * 4 + j] * x[j]).sum();
            assert!((got - (i as f64 + 1.0)).abs() < 1e-12);
        }
        // Duplicate columns → singular under both kinds.
        let dup = vec![
            1.0, 2.0, 1.0, //
            0.5, -1.0, 0.5, //
            3.0, 0.25, 3.0,
        ];
        assert!(factor_of(&dup, 3, FactorKind::Sparse).is_none());
        assert!(factor_of(&dup, 3, FactorKind::Dense).is_none());
        // Structurally singular: an empty column.
        let hole = vec![
            1.0, 0.0, 2.0, //
            4.0, 0.0, 1.0, //
            0.0, 0.0, 3.0,
        ];
        assert!(factor_of(&hole, 3, FactorKind::Sparse).is_none());
        assert!(factor_of(&hole, 3, FactorKind::Dense).is_none());
        // Empty basis (m = 0) factors trivially.
        for kind in [FactorKind::Sparse, FactorKind::Dense] {
            let f = factor_of(&[], 0, kind).unwrap();
            f.ftran(&mut []);
            f.btran(&mut []);
        }
    }

    /// A well-conditioned basis scaled by 1e-9 must not be misreported
    /// as singular (the old absolute `1e-11` pivot cutoff did exactly
    /// that once entries dipped below it).
    #[test]
    fn tiny_but_well_conditioned_basis_factors() {
        let scale = 1e-9;
        // Entries of magnitude ~5e-12 < the old absolute 1e-11 cutoff.
        let a: Vec<f64> = [
            0.004, 0.001, 0.0, //
            0.001, 0.003, 0.001, //
            0.0, 0.001, 0.005,
        ]
        .iter()
        .map(|v| v * scale)
        .collect();
        let b = [1.0, -2.0, 0.5];
        for kind in [FactorKind::Sparse, FactorKind::Dense] {
            let f = factor_of(&a, 3, kind)
                .unwrap_or_else(|| panic!("{kind:?} misreported a scaled basis as singular"));
            let mut x = b.to_vec();
            f.ftran(&mut x);
            for i in 0..3 {
                let got: f64 = (0..3).map(|j| a[i * 3 + j] * x[j]).sum();
                assert!(
                    (got - b[i]).abs() < 1e-9 * scale.max(1.0).max((x[i]).abs() * 1e-16),
                    "{kind:?} row {i}: {got} vs {}",
                    b[i]
                );
            }
        }
    }

    #[test]
    fn eta_updates_track_column_replacement() {
        // Start from B0 = I (3×3); replace column 1 with d = (0.5, 2.0, 0.25).
        for kind in [FactorKind::Sparse, FactorKind::Dense] {
            let eye = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
            let mut f = factor_of(&eye, 3, kind).unwrap();
            f.push(Eta {
                row: 1,
                pivot: 2.0,
                others: vec![(0, 0.5), (2, 0.25)],
            });
            // New B = [e0, (0.5,2,0.25), e2]. Solve B x = (1, 4, 1):
            // x1 = 2, x0 = 1 - 0.5*2 = 0, x2 = 1 - 0.25*2 = 0.5.
            let mut x = vec![1.0, 4.0, 1.0];
            f.ftran(&mut x);
            assert!(approx(&x, &[0.0, 2.0, 0.5]), "{kind:?}: {x:?}");
            // Bᵀ y = (3, 6, 8): y0 = 3, y2 = 8, row1: 0.5·y0 + 2·y1 + 0.25·y2 = 6
            // → y1 = (6 − 1.5 − 2)/2 = 1.25.
            let mut y = vec![3.0, 6.0, 8.0];
            f.btran(&mut y);
            assert!(approx(&y, &[3.0, 1.25, 8.0]), "{kind:?}: {y:?}");
        }
    }

    #[test]
    fn permuted_lu_round_trips_both_directions() {
        // A fixed well-conditioned 4×4 with forced pivoting.
        let a = vec![
            0.0, 2.0, 1.0, 0.5, //
            1.0, 0.0, 0.0, 2.0, //
            4.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 3.0, 1.0,
        ];
        for kind in [FactorKind::Sparse, FactorKind::Dense] {
            let f = factor_of(&a, 4, kind).unwrap();
            let b = vec![1.0, -2.0, 0.5, 3.0];
            let mut x = b.clone();
            f.ftran(&mut x);
            for i in 0..4 {
                let got: f64 = (0..4).map(|j| a[i * 4 + j] * x[j]).sum();
                assert!((got - b[i]).abs() < 1e-9, "{kind:?} row {i}: {got} vs {}", b[i]);
            }
            // Sparse rhs through the transpose: Bᵀ y = e2.
            let mut y = vec![0.0, 0.0, 1.0, 0.0];
            f.btran(&mut y);
            for i in 0..4 {
                let got: f64 = (0..4).map(|j| a[j * 4 + i] * y[j]).sum();
                let want = if i == 2 { 1.0 } else { 0.0 };
                assert!((got - want).abs() < 1e-9, "{kind:?} col {i}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn sparse_nnz_tracks_fill_not_dimension() {
        // A tridiagonal system: sparse LU fill stays O(m), the dense
        // oracle burns m² regardless.
        let m = 32;
        let mut a = vec![0.0; m * m];
        for i in 0..m {
            a[i * m + i] = 4.0;
            if i + 1 < m {
                a[i * m + i + 1] = -1.0;
                a[(i + 1) * m + i] = -1.0;
            }
        }
        let sparse = factor_of(&a, m, FactorKind::Sparse).unwrap();
        let dense = factor_of(&a, m, FactorKind::Dense).unwrap();
        assert!(sparse.lu_nnz() <= 3 * m, "fill {} on tridiagonal", sparse.lu_nnz());
        assert_eq!(dense.lu_nnz(), m * m);
        // Same answers regardless of storage.
        let mut xs: Vec<f64> = (0..m).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut xd = xs.clone();
        sparse.ftran(&mut xs);
        dense.ftran(&mut xd);
        assert!(approx(&xs, &xd), "ftran diverges");
        let mut ys: Vec<f64> = (0..m).map(|i| ((i * 7) % 3) as f64).collect();
        let mut yd = ys.clone();
        sparse.btran(&mut ys);
        dense.btran(&mut yd);
        assert!(approx(&ys, &yd), "btran diverges");
    }

    /// The refactor policy fires exactly at the configured eta-file
    /// length, and independently at the configured fill growth.
    #[test]
    fn refactor_policy_fires_at_configured_point() {
        let eye = [1.0, 0.0, 0.0, 1.0];
        let cols = csc_of(&eye, 2);
        let mk = |max_etas, fill_growth| {
            Factor::refactor(
                2,
                &FactorConfig {
                    kind: FactorKind::Sparse,
                    max_etas,
                    fill_growth,
                },
                |j, out| out.extend_from_slice(&cols[j]),
            )
            .unwrap()
        };
        let eta = || Eta {
            row: 0,
            pivot: 2.0,
            others: vec![(1, 0.5)],
        };
        // Length trigger: fires at exactly 3 etas.
        let mut f = mk(3, f64::INFINITY);
        f.push(eta());
        f.push(eta());
        assert!(!f.needs_refactor(), "fired below the configured length");
        f.push(eta());
        assert!(f.needs_refactor(), "did not fire at the configured length");
        // Fill trigger: lu_nnz = 2, growth 2.0 → fires once eta fill ≥ 4,
        // i.e. after two 2-entry etas, long before the length cap.
        let mut f = mk(1_000_000, 2.0);
        f.push(eta());
        assert!(!f.needs_refactor(), "fill trigger fired early");
        f.push(eta());
        assert!(f.needs_refactor(), "fill trigger never fired");
        // Disabled fill trigger (growth ≤ 0) never fires on fill.
        let mut f = mk(1_000_000, 0.0);
        for _ in 0..64 {
            f.push(eta());
        }
        assert!(!f.needs_refactor());
    }
}
