//! Basis factorization for the revised simplex kernel.
//!
//! The basis matrix `B` is held as a dense LU factorization (partial
//! pivoting) of a snapshot basis `B₀`, composed with a **product-form eta
//! file**: after `k` pivots, `B = B₀·E₁·…·E_k` where each `Eᵢ` is an
//! identity matrix with one column replaced by the pivot direction
//! `d = B⁻¹A_j`. FTRAN/BTRAN apply the LU triangles and then the eta
//! transformations; when the file grows past [`Factor::needs_refactor`]
//! the current basis is refactorized from scratch, which both caps the
//! per-solve cost and flushes accumulated round-off.
//!
//! The triangular solves are **column-oriented with zero skipping**: the
//! simplex right-hand sides are extremely sparse (a constraint column for
//! FTRAN, a couple of objective entries for BTRAN), so iterating over
//! the columns of the triangle and skipping those whose multiplier is
//! zero makes the solve cost proportional to the fill-in rather than
//! `m²`. The LU is stored in both row- and column-major layout so both
//! directions stream contiguous memory:
//!
//! * `L x = b` / `U x = y` (FTRAN) walk *columns* of `L`/`U` — contiguous
//!   in the column-major copy;
//! * `Uᵀ z = c` / `Lᵀ w = z` (BTRAN) walk columns of the transposes,
//!   which are *rows* of `U`/`L` — contiguous in the row-major copy.

/// Dense LU factorization `P·B = L·U` with partial pivoting, stored in
/// both layouts (see the module docs).
pub(crate) struct DenseLu {
    m: usize,
    /// Row-major `m × m`; strict lower triangle holds `L` (unit
    /// diagonal implied), upper triangle holds `U`.
    lu: Vec<f64>,
    /// Column-major copy of the same factors.
    lu_col: Vec<f64>,
    /// `perm[i]` = original row index stored at factored row `i`.
    perm: Vec<usize>,
}

impl DenseLu {
    /// Factors a dense row-major matrix; `None` when numerically singular.
    pub fn factor(mut a: Vec<f64>, m: usize) -> Option<DenseLu> {
        debug_assert_eq!(a.len(), m * m);
        let mut perm: Vec<usize> = (0..m).collect();
        for k in 0..m {
            // Partial pivot: largest magnitude in column k at/below row k.
            let mut p = k;
            let mut mx = a[k * m + k].abs();
            for i in k + 1..m {
                let v = a[i * m + k].abs();
                if v > mx {
                    mx = v;
                    p = i;
                }
            }
            if mx < 1e-11 {
                return None;
            }
            if p != k {
                for j in 0..m {
                    a.swap(k * m + j, p * m + j);
                }
                perm.swap(k, p);
            }
            let inv = 1.0 / a[k * m + k];
            for i in k + 1..m {
                let f = a[i * m + k] * inv;
                a[i * m + k] = f;
                if f != 0.0 {
                    let (top, bottom) = a.split_at_mut(i * m);
                    let arow = &mut bottom[..m];
                    let krow = &top[k * m..k * m + m];
                    for j in k + 1..m {
                        arow[j] -= f * krow[j];
                    }
                }
            }
        }
        let mut lu_col = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                lu_col[j * m + i] = a[i * m + j];
            }
        }
        Some(DenseLu {
            m,
            lu: a,
            lu_col,
            perm,
        })
    }

    /// Solves `B·x = rhs` in place (`rhs` becomes `x`). Column-oriented
    /// with zero skipping: cost scales with the fill-in of the solution,
    /// not with `m²`, when `rhs` is sparse.
    pub fn solve(&self, rhs: &mut [f64]) {
        let m = self.m;
        let mut x = vec![0.0; m];
        for i in 0..m {
            x[i] = rhs[self.perm[i]];
        }
        // L y = Pb (unit lower): walk columns of L (column-major).
        for j in 0..m {
            let xj = x[j];
            if xj != 0.0 {
                let col = &self.lu_col[j * m..(j + 1) * m];
                for i in j + 1..m {
                    x[i] -= col[i] * xj;
                }
            }
        }
        // U x = y: backward, columns of U (column-major).
        for j in (0..m).rev() {
            let xj = x[j] / self.lu_col[j * m + j];
            x[j] = xj;
            if xj != 0.0 {
                let col = &self.lu_col[j * m..j * m + j];
                for (i, &u) in col.iter().enumerate() {
                    if u != 0.0 {
                        x[i] -= u * xj;
                    }
                }
            }
        }
        rhs.copy_from_slice(&x);
    }

    /// Solves `Bᵀ·y = rhs` in place. Columns of `Uᵀ`/`Lᵀ` are rows of
    /// `U`/`L` — contiguous in the row-major copy — with zero skipping.
    pub fn solve_transpose(&self, rhs: &mut [f64]) {
        let m = self.m;
        // Uᵀ z = c (lower-triangular, forward over columns of Uᵀ).
        let mut z = rhs.to_vec();
        for j in 0..m {
            let zj = z[j] / self.lu[j * m + j];
            z[j] = zj;
            if zj != 0.0 {
                let row = &self.lu[j * m..(j + 1) * m];
                for i in j + 1..m {
                    if row[i] != 0.0 {
                        z[i] -= row[i] * zj;
                    }
                }
            }
        }
        // Lᵀ w = z (unit upper in transpose, backward over columns of Lᵀ).
        for j in (0..m).rev() {
            let zj = z[j];
            if zj != 0.0 {
                let row = &self.lu[j * m..j * m + j];
                for (i, &l) in row.iter().enumerate() {
                    if l != 0.0 {
                        z[i] -= l * zj;
                    }
                }
            }
        }
        // y = Pᵀ w.
        for i in 0..m {
            rhs[self.perm[i]] = z[i];
        }
    }
}

/// One product-form update: identity with column `row` replaced by the
/// pivot direction `d = B⁻¹A_enter`.
pub(crate) struct Eta {
    /// Pivot row (the basis slot that changed).
    pub row: usize,
    /// `d[row]` — the pivot element.
    pub pivot: f64,
    /// Nonzero `d[i]` for `i != row`.
    pub others: Vec<(usize, f64)>,
}

/// LU snapshot plus eta file; see the module docs.
pub(crate) struct Factor {
    lu: DenseLu,
    etas: Vec<Eta>,
    m: usize,
}

impl Factor {
    /// Factorizes the basis given by `col(slot, scatter)` — a callback
    /// that writes basis column `slot` into a dense scratch row. Returns
    /// `None` when the basis is singular.
    pub fn refactor<F>(m: usize, mut col: F) -> Option<Factor>
    where
        F: FnMut(usize, &mut [f64]),
    {
        let mut a = vec![0.0; m * m];
        let mut scratch = vec![0.0; m];
        for j in 0..m {
            scratch.iter_mut().for_each(|x| *x = 0.0);
            col(j, &mut scratch);
            for i in 0..m {
                a[i * m + j] = scratch[i];
            }
        }
        Some(Factor {
            lu: DenseLu::factor(a, m)?,
            etas: Vec::new(),
            m,
        })
    }

    /// `true` once the eta file is long enough that refactorizing is
    /// cheaper than streaming more updates. Applying an eta costs its
    /// fill (tens of entries) while refactorizing costs `O(m³)`, so the
    /// break-even file length is well past `m`; `2m` keeps the amortized
    /// refactor cost per pivot at `O(m²)` while the warm-started branch &
    /// bound (a handful of pivots per node) stays refactor-free across
    /// many consecutive nodes. Round-off accumulated by long files is
    /// caught by the consumers (pivot-vanished checks, active-artificial
    /// checks) which force an early refactorization.
    pub fn needs_refactor(&self) -> bool {
        self.etas.len() >= 64.max(2 * self.m)
    }

    /// Appends a pivot update; the caller guarantees `|pivot|` is safely
    /// away from zero.
    pub fn push(&mut self, eta: Eta) {
        debug_assert!(eta.pivot.abs() > 1e-12);
        self.etas.push(eta);
    }

    /// Solves `B·x = rhs` in place (forward transformation).
    pub fn ftran(&self, x: &mut [f64]) {
        self.lu.solve(x);
        for eta in &self.etas {
            let xr = x[eta.row] / eta.pivot;
            x[eta.row] = xr;
            if xr != 0.0 {
                for &(i, d) in &eta.others {
                    x[i] -= d * xr;
                }
            }
        }
    }

    /// Solves `Bᵀ·y = rhs` in place (backward transformation).
    pub fn btran(&self, y: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut s = y[eta.row];
            for &(i, d) in &eta.others {
                s -= d * y[i];
            }
            y[eta.row] = s / eta.pivot;
        }
        self.lu.solve_transpose(y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f64], b: &[f64]) -> bool {
        a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    #[test]
    fn lu_solves_small_system() {
        // [[2,1],[1,3]] x = [5,10] → x = [1,3].
        let lu = DenseLu::factor(vec![2.0, 1.0, 1.0, 3.0], 2).unwrap();
        let mut x = vec![5.0, 10.0];
        lu.solve(&mut x);
        assert!(approx(&x, &[1.0, 3.0]), "{x:?}");
        let mut y = vec![4.0, 7.0];
        lu.solve_transpose(&mut y);
        // Check Bᵀy = rhs: Bᵀ = [[2,1],[1,3]].
        assert!((2.0 * y[0] + 1.0 * y[1] - 4.0).abs() < 1e-9);
        assert!((1.0 * y[0] + 3.0 * y[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        assert!(DenseLu::factor(vec![1.0, 2.0, 2.0, 4.0], 2).is_none());
    }

    #[test]
    fn eta_updates_track_column_replacement() {
        // Start from B0 = I (3×3); replace column 1 with d = (0.5, 2.0, 0.25).
        let mut f = Factor::refactor(3, |j, s| s[j] = 1.0).unwrap();
        f.push(Eta {
            row: 1,
            pivot: 2.0,
            others: vec![(0, 0.5), (2, 0.25)],
        });
        // New B = [e0, (0.5,2,0.25), e2]. Solve B x = (1, 4, 1):
        // x1 = 2, x0 = 1 - 0.5*2 = 0, x2 = 1 - 0.25*2 = 0.5.
        let mut x = vec![1.0, 4.0, 1.0];
        f.ftran(&mut x);
        assert!(approx(&x, &[0.0, 2.0, 0.5]), "{x:?}");
        // Bᵀ y = (3, 6, 8): y0 = 3, y2 = 8, row1: 0.5·y0 + 2·y1 + 0.25·y2 = 6
        // → y1 = (6 − 1.5 − 2)/2 = 1.25.
        let mut y = vec![3.0, 6.0, 8.0];
        f.btran(&mut y);
        assert!(approx(&y, &[3.0, 1.25, 8.0]), "{y:?}");
    }

    #[test]
    fn permuted_lu_round_trips_both_directions() {
        // A fixed well-conditioned 4×4 with forced pivoting.
        let a = vec![
            0.0, 2.0, 1.0, 0.5, //
            1.0, 0.0, 0.0, 2.0, //
            4.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 3.0, 1.0,
        ];
        let lu = DenseLu::factor(a.clone(), 4).unwrap();
        let b = vec![1.0, -2.0, 0.5, 3.0];
        let mut x = b.clone();
        lu.solve(&mut x);
        for i in 0..4 {
            let got: f64 = (0..4).map(|j| a[i * 4 + j] * x[j]).sum();
            assert!((got - b[i]).abs() < 1e-9, "row {i}: {got} vs {}", b[i]);
        }
        // Sparse rhs through the transpose: Bᵀ y = e2.
        let mut y = vec![0.0, 0.0, 1.0, 0.0];
        lu.solve_transpose(&mut y);
        for i in 0..4 {
            let got: f64 = (0..4).map(|j| a[j * 4 + i] * y[j]).sum();
            let want = if i == 2 { 1.0 } else { 0.0 };
            assert!((got - want).abs() < 1e-9, "col {i}: {got} vs {want}");
        }
    }
}
