//! Conversion of a [`Model`] into simplex standard form.
//!
//! Two target shapes are produced:
//!
//! * [`StandardForm::build`] — the classic `min c·y, A·y = b, y >= 0`
//!   form consumed by the dense-tableau oracle. Finite upper bounds
//!   become explicit `y <= u - l` rows.
//! * [`BoxedForm::build`] — the **bounded-variable** form consumed by
//!   the revised kernel: `min c·y, A·y = b, l ≤ y ≤ u` with per-column
//!   bounds and *no* bound rows at all. This keeps the row count (and
//!   with it every factorization and triangular solve) proportional to
//!   the real constraints, and lets branch & bound tighten an integer
//!   variable by mutating its column bounds in place.
//!
//! The conversion handles the four bound shapes a model variable can have:
//!
//! | bounds            | substitution        |
//! |-------------------|---------------------|
//! | `l <= x <= u`     | `x = l + y` (row form adds `y <= u - l` when `u` is finite; boxed form sets the column bound) |
//! | `x <= u` (free below) | `x = u - y`     |
//! | free              | `x = y⁺ - y⁻`       |
//! | `l == u`          | constant, no column |
//!
//! Inequality rows get slack/surplus columns here so the simplex kernels
//! only ever see equalities. Rows are equilibrated (scaled by their largest
//! coefficient) for numerical robustness: the retiming MILPs mix ±1
//! coefficients with `τ* ≈ Σβ` big-M terms.

use crate::model::{CmpOp, Model, Sense};

/// How an original model variable maps onto standard-form columns.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ColMap {
    /// `x = lb + y[col]`
    Shifted { col: usize, lb: f64 },
    /// `x = ub - y[col]`
    Mirrored { col: usize, ub: f64 },
    /// `x = y[pos] - y[neg]`
    Split { pos: usize, neg: usize },
    /// `x` is fixed to a constant.
    Fixed { value: f64 },
}

impl ColMap {
    /// Translates a model-space box `[lo, hi]` on this variable into
    /// column-box updates `(col, l, u)` on the bounded-variable form —
    /// the dynamic counterpart of the build-time substitution, which is
    /// what lets branch & bound tighten *any* variable shape in place:
    ///
    /// * `Shifted`: `x = lb + y` ⇒ `y ∈ [lo − lb, hi − lb]`.
    /// * `Mirrored`: `x = ub − y` ⇒ the flipped box `y ∈ [ub − hi, ub − lo]`
    ///   (`ub` is finite by construction, so no `∞ − ∞` can occur; a
    ///   `lo = −∞` side simply leaves `y` unbounded above).
    /// * `Split`: `x = y⁺ − y⁻` with the box-consistency rule
    ///   `y⁺ ∈ [max(lo, 0), max(hi, 0)]`, `y⁻ ∈ [max(−hi, 0), max(−lo, 0)]`.
    ///   Exact in both directions: every `x ∈ [lo, hi]` is representable
    ///   and every in-box pair recovers an `x ∈ [lo, hi]` (when
    ///   `lo > 0` the negative column is pinned to 0, when `hi < 0` the
    ///   positive one — the pair can never stretch past the box).
    /// * `Fixed`: no columns, nothing to update.
    ///
    /// Because these are pure bound updates, they route through the same
    /// dual-feasibility-preserving [`crate::revised::Revised::set_col_bounds`]
    /// machinery as ordinary boxed integers: warm starts, steepest-edge
    /// weights, and pseudo-costs all survive across nodes.
    pub(crate) fn box_updates(self, lo: f64, hi: f64) -> [Option<(usize, f64, f64)>; 2] {
        match self {
            ColMap::Shifted { col, lb } => [Some((col, lo - lb, hi - lb)), None],
            ColMap::Mirrored { col, ub } => [Some((col, ub - hi, ub - lo)), None],
            ColMap::Split { pos, neg } => [
                Some((pos, lo.max(0.0), hi.max(0.0))),
                Some((neg, (-hi).max(0.0), (-lo).max(0.0))),
            ],
            ColMap::Fixed { .. } => [None, None],
        }
    }
}

/// Kind of auxiliary column appended to a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RowAux {
    /// `+1` slack (from `<=`).
    Slack(usize),
    /// `-1` surplus (from `>=`).
    Surplus(usize),
    /// Equality row, no auxiliary column.
    None,
}

/// A model in `min c·y, A·y = b, y >= 0` form.
#[derive(Debug, Clone)]
pub(crate) struct StandardForm {
    /// Total number of columns (structural + slack/surplus).
    pub ncols: usize,
    /// Sparse rows over column indices (slack/surplus included).
    pub rows: Vec<Vec<(usize, f64)>>,
    pub rhs: Vec<f64>,
    /// Minimization costs, length `ncols`.
    pub cost: Vec<f64>,
    /// Per-model-variable recovery mapping.
    pub map: Vec<ColMap>,
    /// Set when the conversion already proves infeasibility (e.g. a
    /// constant constraint that is violated).
    pub proven_infeasible: bool,
}

/// Where a lazily-activated [`crate::model::Cut`] landed in the
/// standard form, with its activated right-hand side already lowered
/// into scaled standard-form units.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CutRow {
    /// Index into `Model::cuts`.
    pub cut: usize,
    /// Row index in the standard form.
    pub row: usize,
    /// Integer-valid rhs to install on activation (scaled like the row).
    pub strong_b: f64,
}

/// The bounded-variable form: `min c·y, A·y = b, 0 ≤ y ≤ u` (upper
/// bounds may be `+∞`; branch & bound later raises column lower bounds
/// above 0 in place). Consumed by the revised kernel.
#[derive(Debug, Clone)]
pub(crate) struct BoxedForm {
    pub sf: StandardForm,
    /// Per-column upper bound (`+∞` for unbounded, slack and surplus
    /// columns), length `sf.ncols`.
    pub col_upper: Vec<f64>,
    /// Lazily-activated cut rows (born with their weak rhs).
    pub cut_rows: Vec<CutRow>,
}

impl BoxedForm {
    /// Builds the bounded-variable form of `model` (its LP relaxation:
    /// integrality is ignored here).
    pub fn build(model: &Model) -> BoxedForm {
        StandardForm::build_ext(model, true)
    }
}

impl StandardForm {
    /// Builds the row-bounded standard form of `model` (its LP
    /// relaxation: integrality is ignored here).
    pub fn build(model: &Model) -> StandardForm {
        Self::build_ext(model, false).sf
    }

    fn build_ext(model: &Model, boxed: bool) -> BoxedForm {
        let mut ncols = 0usize;
        let mut map = Vec::with_capacity(model.vars.len());
        // Finite upper bounds of shifted variables: rows in the classic
        // form, column bounds in the boxed form.
        let mut bound_rows: Vec<(usize, f64)> = Vec::new();
        let mut col_upper: Vec<f64> = Vec::new();

        for var in &model.vars {
            let (l, u) = (var.lower, var.upper);
            if l == u {
                map.push(ColMap::Fixed { value: l });
            } else if l.is_finite() {
                let col = ncols;
                ncols += 1;
                map.push(ColMap::Shifted { col, lb: l });
                if u.is_finite() {
                    if boxed {
                        col_upper.push(u - l);
                    } else {
                        bound_rows.push((col, u - l));
                        col_upper.push(f64::INFINITY);
                    }
                } else {
                    col_upper.push(f64::INFINITY);
                }
            } else if u.is_finite() {
                let col = ncols;
                ncols += 1;
                map.push(ColMap::Mirrored { col, ub: u });
                col_upper.push(f64::INFINITY);
            } else {
                let pos = ncols;
                let neg = ncols + 1;
                ncols += 2;
                map.push(ColMap::Split { pos, neg });
                col_upper.push(f64::INFINITY);
                col_upper.push(f64::INFINITY);
            }
            debug_assert_eq!(col_upper.len(), ncols);
        }

        // Objective in minimization form.
        let sense_mul = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut cost = vec![0.0; ncols];
        for (v, c) in model.objective.iter() {
            let c = c * sense_mul;
            match map[v.index()] {
                ColMap::Shifted { col, .. } => cost[col] += c,
                ColMap::Mirrored { col, .. } => cost[col] -= c,
                ColMap::Split { pos, neg } => {
                    cost[pos] += c;
                    cost[neg] -= c;
                }
                ColMap::Fixed { .. } => {}
            }
        }

        let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
        let mut rhs: Vec<f64> = Vec::new();
        let mut aux: Vec<RowAux> = Vec::new();
        let mut proven_infeasible = false;

        // Constraint rows.
        for cstr in &model.constraints {
            let (mut row, shift) = lower_expr(&map, &cstr.expr);
            let mut b = cstr.rhs - shift;
            if row.is_empty() {
                // Constant constraint: check it directly.
                let ok = match cstr.op {
                    CmpOp::Le => 0.0 <= b + 1e-9,
                    CmpOp::Ge => 0.0 >= b - 1e-9,
                    CmpOp::Eq => b.abs() <= 1e-9,
                };
                if !ok {
                    proven_infeasible = true;
                }
                continue;
            }
            // Equilibrate.
            let scale = row
                .iter()
                .map(|&(_, c)| c.abs())
                .fold(0.0f64, f64::max)
                .max(1e-12);
            for t in &mut row {
                t.1 /= scale;
            }
            b /= scale;
            rows.push(row);
            rhs.push(b);
            aux.push(match cstr.op {
                CmpOp::Le => RowAux::Slack(0),
                CmpOp::Ge => RowAux::Surplus(0),
                CmpOp::Eq => RowAux::None,
            });
        }

        // Cut rows, born with the weak (LP-implied) rhs so the
        // relaxation is identical in both forms and under every
        // backend. The boxed form records where each cut landed plus
        // its activated rhs (in the same scaled units as the row) so
        // the warm-started backend can tighten rows in place on
        // separation.
        let mut cut_rows: Vec<CutRow> = Vec::new();
        for (idx, cut) in model.cuts.iter().enumerate() {
            let (mut row, shift) = lower_expr(&map, &cut.expr);
            if row.is_empty() {
                // A cut over fixed variables carries no search
                // information; its weak form is LP-implied by
                // construction, so it is safe to drop.
                continue;
            }
            let scale = row
                .iter()
                .map(|&(_, c)| c.abs())
                .fold(0.0f64, f64::max)
                .max(1e-12);
            for t in &mut row {
                t.1 /= scale;
            }
            cut_rows.push(CutRow {
                cut: idx,
                row: rows.len(),
                strong_b: (cut.rhs - shift) / scale,
            });
            rows.push(row);
            rhs.push((cut.weak_rhs - shift) / scale);
            aux.push(RowAux::Surplus(0));
        }

        // Upper-bound rows (`y <= u - l`), already scaled (coeff 1) —
        // classic form only; the boxed form carries them on the columns.
        for (col, ub) in bound_rows {
            rows.push(vec![(col, 1.0)]);
            rhs.push(ub);
            aux.push(RowAux::Slack(0));
        }

        // Assign slack/surplus columns (unbounded above in either form).
        for (row, a) in rows.iter_mut().zip(aux.iter_mut()) {
            match a {
                RowAux::Slack(c) => {
                    *c = ncols;
                    row.push((ncols, 1.0));
                    ncols += 1;
                }
                RowAux::Surplus(c) => {
                    *c = ncols;
                    row.push((ncols, -1.0));
                    ncols += 1;
                }
                RowAux::None => {}
            }
        }
        cost.resize(ncols, 0.0);
        col_upper.resize(ncols, f64::INFINITY);

        BoxedForm {
            sf: StandardForm {
                ncols,
                rows,
                rhs,
                cost,
                map,
                proven_infeasible,
            },
            col_upper,
            cut_rows,
        }
    }

    /// Maps a standard-form assignment `y` back to model-variable values.
    pub fn recover(&self, y: &[f64]) -> Vec<f64> {
        self.map
            .iter()
            .map(|m| match *m {
                ColMap::Shifted { col, lb } => lb + y[col],
                ColMap::Mirrored { col, ub } => ub - y[col],
                ColMap::Split { pos, neg } => y[pos] - y[neg],
                ColMap::Fixed { value } => value,
            })
            .collect()
    }
}

/// Lowers a model-space expression onto standard-form columns: returns
/// the merged sparse row plus the rhs shift induced by the variable
/// substitutions (`lowered rhs = model rhs - shift`).
fn lower_expr(map: &[ColMap], expr: &crate::expr::LinExpr) -> (Vec<(usize, f64)>, f64) {
    let mut row: Vec<(usize, f64)> = Vec::with_capacity(expr.terms.len() + 1);
    let mut shift = 0.0;
    for (v, c) in expr.iter() {
        match map[v.index()] {
            ColMap::Shifted { col, lb } => {
                row.push((col, c));
                shift += c * lb;
            }
            ColMap::Mirrored { col, ub } => {
                row.push((col, -c));
                shift += c * ub;
            }
            ColMap::Split { pos, neg } => {
                row.push((pos, c));
                row.push((neg, -c));
            }
            ColMap::Fixed { value } => shift += c * value,
        }
    }
    merge_row(&mut row);
    (row, shift)
}

/// Merges duplicate column indices in a sparse row.
fn merge_row(row: &mut Vec<(usize, f64)>) {
    if row.len() <= 1 {
        row.retain(|&(_, c)| c != 0.0);
        return;
    }
    row.sort_by_key(|&(c, _)| c);
    let mut out: Vec<(usize, f64)> = Vec::with_capacity(row.len());
    for &(c, v) in row.iter() {
        match out.last_mut() {
            Some((lc, lv)) if *lc == c => *lv += v,
            _ => out.push((c, v)),
        }
    }
    out.retain(|&(_, v)| v.abs() > 0.0);
    *row = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{cmp, Model, Sense};
    use crate::LinExpr;

    #[test]
    fn free_variables_split() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_free("x");
        m.set_objective(LinExpr::var(x));
        m.add_constraint(LinExpr::var(x), cmp::GE, -3.0);
        let sf = StandardForm::build(&m);
        assert!(matches!(sf.map[0], ColMap::Split { .. }));
        // x >= -3 plus split columns: one row, one surplus column.
        assert_eq!(sf.rows.len(), 1);
        assert_eq!(sf.ncols, 3);
    }

    #[test]
    fn fixed_variables_get_no_column() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 2.0, 2.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint(x + y, cmp::EQ, 5.0);
        let sf = StandardForm::build(&m);
        assert!(matches!(sf.map[0], ColMap::Fixed { value } if value == 2.0));
        // Row becomes y = 3.
        assert_eq!(sf.rows.len(), 1);
        assert!((sf.rhs[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn violated_constant_row_is_proven_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 1.0, 1.0);
        m.add_constraint(LinExpr::var(x), cmp::GE, 2.0);
        let sf = StandardForm::build(&m);
        assert!(sf.proven_infeasible);
    }

    #[test]
    fn box_updates_round_trip_through_every_map_shape() {
        // Shifted: x = -1 + y, box [0, 3] => y in [1, 4].
        let shifted = ColMap::Shifted { col: 0, lb: -1.0 };
        assert_eq!(shifted.box_updates(0.0, 3.0), [Some((0, 1.0, 4.0)), None]);

        // Mirrored: x = 7 - y, box [2, 5] => flipped box y in [2, 5].
        let mirrored = ColMap::Mirrored { col: 1, ub: 7.0 };
        assert_eq!(mirrored.box_updates(2.0, 5.0), [Some((1, 2.0, 5.0)), None]);
        // A half-open model box leaves y unbounded above, never NaN.
        let [Some((_, l, u)), None] = mirrored.box_updates(f64::NEG_INFINITY, 4.0) else {
            panic!("mirrored map must touch exactly one column");
        };
        assert_eq!((l, u), (3.0, f64::INFINITY));

        // Split: x = y+ - y-. Every box lands exactly: the off-sign
        // column is pinned to zero, so the pair cannot stretch past it.
        let split = ColMap::Split { pos: 2, neg: 3 };
        assert_eq!(
            split.box_updates(-5.0, -2.0),
            [Some((2, 0.0, 0.0)), Some((3, 2.0, 5.0))]
        );
        assert_eq!(
            split.box_updates(-1.0, 3.0),
            [Some((2, 0.0, 3.0)), Some((3, 0.0, 1.0))]
        );
        let updates = split.box_updates(f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(
            updates,
            [Some((2, 0.0, f64::INFINITY)), Some((3, 0.0, f64::INFINITY))]
        );
        // Per-column sanity across all shapes: l <= u always.
        for map in [shifted, mirrored, split, ColMap::Fixed { value: 9.0 }] {
            for (lo, hi) in [(-2.5, -2.5), (-2.5, 6.0), (0.0, 0.0), (3.0, 8.5)] {
                for upd in map.box_updates(lo, hi).into_iter().flatten() {
                    assert!(upd.1 <= upd.2 + 1e-12, "{map:?} {lo} {hi} -> {upd:?}");
                }
            }
        }
        assert_eq!(
            ColMap::Fixed { value: 9.0 }.box_updates(1.0, 2.0),
            [None, None]
        );
    }

    #[test]
    fn recover_round_trips_shifted_and_mirrored() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_continuous("a", -1.0, 4.0); // shifted
        let b = m.add_continuous("b", f64::NEG_INFINITY, 7.0); // mirrored
        let sf = StandardForm::build(&m);
        let vals = sf.recover(&[0.5, 2.0, /* slack for a's ub row */ 0.0]);
        assert!((vals[a.index()] - (-0.5)).abs() < 1e-12);
        assert!((vals[b.index()] - 5.0).abs() < 1e-12);
    }
}
