//! Dense two-phase primal simplex on [`StandardForm`] — the
//! **cross-validation oracle** kernel ([`crate::Kernel::DenseTableau`]).
//!
//! The production solve path is the revised simplex in
//! [`crate::revised`]; this tableau kernel is retained because it is a
//! short, independent implementation whose answers the property tests
//! compare against, and because it gives the scaling benchmarks a
//! baseline to measure the revised kernel's speedup over.
//!
//! A classic full-tableau implementation:
//!
//! * **Phase 1** introduces artificial variables for rows without a natural
//!   identity column and minimizes their sum; a positive optimum proves
//!   infeasibility.
//! * **Phase 2** optimizes the real costs; a column with negative reduced
//!   cost and no positive tableau entry proves unboundedness.
//!
//! Anti-cycling: Dantzig pricing is used until a long run of degenerate
//! pivots is observed, after which the kernel switches to Bland's rule
//! (guaranteed finite). The ratio test breaks near-ties toward the largest
//! pivot magnitude for stability.

use crate::model::SolverOptions;
use crate::solution::SolveError;
use crate::standard::StandardForm;

/// Dense tableau: `m` constraint rows plus one objective row, `width`
/// columns (all variables, artificials, rhs).
struct Tableau {
    m: usize,
    width: usize,
    /// Row-major `(m + 1) * width`; the objective row is row `m`.
    data: Vec<f64>,
    /// Basic column of each row.
    basis: Vec<usize>,
}

impl Tableau {
    #[inline]
    fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.width..(r + 1) * self.width]
    }
    #[inline]
    fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.width..(r + 1) * self.width]
    }
    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.data[r * self.width + self.width - 1]
    }

    /// Performs the pivot on (`prow`, `pcol`), updating all rows including
    /// the objective row.
    fn pivot(&mut self, prow: usize, pcol: usize) {
        let width = self.width;
        let pval = self.data[prow * width + pcol];
        debug_assert!(pval.abs() > 1e-12, "pivot on a zero element");
        let inv = 1.0 / pval;
        {
            let r = self.row_mut(prow);
            for x in r.iter_mut() {
                *x *= inv;
            }
            r[pcol] = 1.0; // kill round-off on the pivot element
        }
        // Split the storage to get simultaneous access to the pivot row and
        // the row being eliminated.
        let (before, rest) = self.data.split_at_mut(prow * width);
        let (prow_slice, after) = rest.split_at_mut(width);
        let eliminate = |row: &mut [f64]| {
            let f = row[pcol];
            if f.abs() > 1e-12 {
                for (x, &p) in row.iter_mut().zip(prow_slice.iter()) {
                    *x -= f * p;
                }
                row[pcol] = 0.0;
            }
        };
        for row in before.chunks_exact_mut(width) {
            eliminate(row);
        }
        for row in after.chunks_exact_mut(width) {
            eliminate(row);
        }
        self.basis[prow] = pcol;
    }

    /// Entering column by Dantzig rule (most negative reduced cost) over
    /// `allowed` columns; `None` when optimal.
    fn price_dantzig(&self, ncols_allowed: usize, blocked: &[bool], tol: f64) -> Option<usize> {
        let obj = self.row(self.m);
        let mut best = None;
        let mut best_val = -tol;
        for (j, &rc) in obj.iter().enumerate().take(ncols_allowed) {
            if !blocked[j] && rc < best_val {
                best_val = rc;
                best = Some(j);
            }
        }
        best
    }

    /// Entering column by Bland's rule (smallest index with negative
    /// reduced cost).
    fn price_bland(&self, ncols_allowed: usize, blocked: &[bool], tol: f64) -> Option<usize> {
        let obj = self.row(self.m);
        (0..ncols_allowed).find(|&j| !blocked[j] && obj[j] < -tol)
    }

    /// Ratio test for the entering column; `None` means unbounded.
    ///
    /// `bland` switches to smallest-basis-index tie-breaking.
    fn ratio_test(&self, pcol: usize, bland: bool, tol: f64) -> Option<usize> {
        let mut best_row: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        let mut best_piv = 0.0f64;
        for r in 0..self.m {
            let a = self.row(r)[pcol];
            if a > tol {
                let ratio = self.rhs(r) / a;
                let better = if bland {
                    ratio < best_ratio - 1e-12
                        || (ratio < best_ratio + 1e-12
                            && best_row.is_some_and(|br| self.basis[r] < self.basis[br]))
                } else {
                    // Prefer clearly smaller ratios; among near-ties pick the
                    // larger pivot element for numerical stability.
                    ratio < best_ratio - 1e-9 || (ratio < best_ratio + 1e-9 && a > best_piv)
                };
                if better {
                    best_ratio = ratio;
                    best_row = Some(r);
                    best_piv = a;
                }
            }
        }
        best_row
    }
}

/// Outcome of one phase of pivoting.
enum PhaseEnd {
    Optimal,
    Unbounded,
}

/// Pivot interval of the wall-clock check in [`run_phase`].
const TIME_CHECK_EVERY: usize = 128;

/// Runs pivots until optimality/unboundedness or a budget — pivots or
/// wall clock (checked every [`TIME_CHECK_EVERY`] pivots) — is spent.
fn run_phase(
    t: &mut Tableau,
    ncols_allowed: usize,
    blocked: &[bool],
    pivots_left: &mut usize,
    tol: f64,
    deadline: Option<std::time::Instant>,
) -> Result<PhaseEnd, SolveError> {
    // Degeneracy bookkeeping for the Bland switch.
    let mut degenerate_run = 0usize;
    let switch_after = 4 * (t.m + t.width);
    let mut bland = false;
    let mut pivots_done = 0usize;
    loop {
        if *pivots_left == 0 {
            return Err(SolveError::IterationLimit);
        }
        if pivots_done.is_multiple_of(TIME_CHECK_EVERY)
            && deadline.is_some_and(|dl| std::time::Instant::now() >= dl)
        {
            return Err(SolveError::IterationLimit);
        }
        let pcol = if bland {
            t.price_bland(ncols_allowed, blocked, tol)
        } else {
            t.price_dantzig(ncols_allowed, blocked, tol)
        };
        let Some(pcol) = pcol else {
            return Ok(PhaseEnd::Optimal);
        };
        let Some(prow) = t.ratio_test(pcol, bland, 1e-9) else {
            return Ok(PhaseEnd::Unbounded);
        };
        let before = t.rhs(t.m);
        t.pivot(prow, pcol);
        *pivots_left -= 1;
        pivots_done += 1;
        let after = t.rhs(t.m);
        if (after - before).abs() <= 1e-12 {
            degenerate_run += 1;
            if degenerate_run > switch_after {
                bland = true;
            }
        } else {
            degenerate_run = 0;
            bland = false;
        }
    }
}

/// Solves `min c·y, A·y = b, y >= 0`, returning the optimal `y` and the
/// pivot count.
///
/// # Errors
///
/// [`SolveError::Infeasible`], [`SolveError::Unbounded`] or
/// [`SolveError::IterationLimit`].
pub(crate) fn solve(
    sf: &StandardForm,
    opts: &SolverOptions,
) -> Result<(Vec<f64>, usize), SolveError> {
    if sf.proven_infeasible {
        return Err(SolveError::Infeasible);
    }
    let m = sf.rows.len();
    let n = sf.ncols;
    if m == 0 {
        // No rows: minimize over y >= 0 directly. Any negative cost makes
        // the problem unbounded; otherwise all-zero is optimal.
        if sf.cost.iter().any(|&c| c < -opts.feas_tol) {
            return Err(SolveError::Unbounded);
        }
        return Ok((vec![0.0; n], 0));
    }

    // --- Assemble tableau with artificials -----------------------------
    // Make rhs nonnegative by row negation, then give every row a basic
    // column: a +1 slack if one survived the sign flip, else an artificial.
    let mut need_artificial: Vec<bool> = vec![true; m];
    let negate: Vec<bool> = sf.rhs.iter().map(|&b| b < 0.0).collect();
    // Identify usable basis columns: a column works for row `r` if it has
    // coefficient +1 there (after the sign flip) and appears in no other
    // row. Auxiliary slack/surplus columns satisfy the uniqueness test by
    // construction; unit structural columns are accepted too.
    let mut col_count = vec![0u32; n];
    for row in &sf.rows {
        for &(c, _) in row {
            col_count[c] += 1;
        }
    }
    let mut slack_col: Vec<Option<usize>> = vec![None; m];
    for r in 0..m {
        for &(c, v) in &sf.rows[r] {
            let eff = if negate[r] { -v } else { v };
            if eff == 1.0 && col_count[c] == 1 {
                // Prefer the highest index (the auxiliary column, if any),
                // whose cost is zero.
                match slack_col[r] {
                    Some(prev) if prev > c => {}
                    _ => slack_col[r] = Some(c),
                }
            }
        }
    }

    let mut nart = 0usize;
    for r in 0..m {
        if slack_col[r].is_some() {
            need_artificial[r] = false;
        } else {
            nart += 1;
        }
    }

    let width = n + nart + 1;
    let mut t = Tableau {
        m,
        width,
        data: vec![0.0; (m + 1) * width],
        basis: vec![usize::MAX; m],
    };
    let mut next_art = n;
    for r in 0..m {
        let sign = if negate[r] { -1.0 } else { 1.0 };
        {
            let row = t.row_mut(r);
            for &(c, v) in &sf.rows[r] {
                row[c] = sign * v;
            }
            row[width - 1] = sign * sf.rhs[r];
        }
        if need_artificial[r] {
            let a = next_art;
            next_art += 1;
            t.row_mut(r)[a] = 1.0;
            t.basis[r] = a;
        } else {
            // `need_artificial[r]` is cleared exactly when a slack column
            // was found, but a structured error beats a panic if that
            // bookkeeping ever drifts.
            let Some(c) = slack_col[r] else {
                return Err(SolveError::Numerical(format!(
                    "dense tableau row {r} has neither an artificial nor a slack column"
                )));
            };
            t.basis[r] = c;
        }
    }

    let mut pivots_left = opts.max_pivots;
    let tol = opts.feas_tol;
    let deadline = opts.time_limit.map(|d| std::time::Instant::now() + d);
    let blocked_none = vec![false; width];

    // --- Phase 1 --------------------------------------------------------
    if nart > 0 {
        // Objective row: minimize sum of artificials. Reduced costs:
        // r_j = c1_j - sum over rows with artificial basis of a_ij.
        for j in 0..width {
            let mut z = 0.0;
            for r in 0..m {
                if t.basis[r] >= n {
                    z += t.row(r)[j];
                }
            }
            let c1 = if (n..n + nart).contains(&j) { 1.0 } else { 0.0 };
            t.row_mut(m)[j] = c1 - z;
        }
        // rhs of objective row: -(sum of b over artificial rows).
        let mut z = 0.0;
        for r in 0..m {
            if t.basis[r] >= n {
                z += t.rhs(r);
            }
        }
        t.row_mut(m)[width - 1] = -z;

        match run_phase(
            &mut t,
            width - 1,
            &blocked_none,
            &mut pivots_left,
            tol,
            deadline,
        )? {
            PhaseEnd::Optimal => {}
            PhaseEnd::Unbounded => {
                // Phase-1 objective is bounded below by 0; unbounded here
                // means numerical trouble.
                return Err(SolveError::Numerical("phase-1 unbounded".into()));
            }
        }
        let phase1_obj = -t.rhs(m);
        if phase1_obj > 1e-6 {
            return Err(SolveError::Infeasible);
        }
        // Drive leftover (zero-valued) artificials out of the basis.
        for r in 0..m {
            if t.basis[r] >= n {
                let pcol = (0..n).find(|&j| t.row(r)[j].abs() > 1e-7);
                if let Some(pcol) = pcol {
                    t.pivot(r, pcol);
                    pivots_left = pivots_left.saturating_sub(1);
                }
                // If the row is all-zero over real columns it is redundant;
                // the artificial stays basic at value 0, which is harmless
                // as long as it never re-enters (blocked below).
            }
        }
    }

    // --- Phase 2 --------------------------------------------------------
    // Rebuild the objective row from the real costs.
    for j in 0..width {
        let cj = if j < n { sf.cost[j] } else { 0.0 };
        let mut z = 0.0;
        for r in 0..m {
            let cb = if t.basis[r] < n {
                sf.cost[t.basis[r]]
            } else {
                0.0
            };
            if cb != 0.0 {
                z += cb * t.row(r)[j];
            }
        }
        t.row_mut(m)[j] = cj - z;
    }
    {
        let mut z = 0.0;
        for r in 0..m {
            let cb = if t.basis[r] < n {
                sf.cost[t.basis[r]]
            } else {
                0.0
            };
            if cb != 0.0 {
                z += cb * t.rhs(r);
            }
        }
        t.row_mut(m)[width - 1] = -z;
    }
    // Block artificial columns from re-entering.
    let mut blocked = vec![false; width];
    for b in blocked.iter_mut().take(n + nart).skip(n) {
        *b = true;
    }

    match run_phase(&mut t, width - 1, &blocked, &mut pivots_left, tol, deadline)? {
        PhaseEnd::Optimal => {}
        PhaseEnd::Unbounded => return Err(SolveError::Unbounded),
    }

    // --- Extract --------------------------------------------------------
    let mut y = vec![0.0; n];
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            // Clamp tiny negatives produced by round-off.
            y[b] = t.rhs(r).max(0.0);
        }
    }
    Ok((y, opts.max_pivots - pivots_left))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{cmp, Model, Sense, SolverOptions};
    use crate::LinExpr;

    fn solve_model(m: &Model) -> Result<Vec<f64>, SolveError> {
        let sf = StandardForm::build(m);
        let (y, _) = solve(&sf, &SolverOptions::default())?;
        Ok(sf.recover(&y))
    }

    /// `time_limit` is enforced inside the tableau pivot loop too: an
    /// already expired deadline aborts before the first pivot.
    #[test]
    fn zero_time_limit_aborts_inside_the_tableau_kernel() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.set_objective(3.0 * x + 5.0 * y);
        m.add_constraint(x + y, cmp::LE, 4.0);
        let sf = StandardForm::build(&m);
        let opts = SolverOptions {
            time_limit: Some(std::time::Duration::ZERO),
            ..SolverOptions::default()
        };
        assert_eq!(solve(&sf, &opts), Err(SolveError::IterationLimit));
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → (2, 6), 36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(3.0 * x + 5.0 * y);
        m.add_constraint(LinExpr::var(x), cmp::LE, 4.0);
        m.add_constraint(2.0 * y, cmp::LE, 12.0);
        m.add_constraint(3.0 * x + 2.0 * y, cmp::LE, 18.0);
        let v = solve_model(&m).unwrap();
        assert!((v[0] - 2.0).abs() < 1e-7, "x = {}", v[0]);
        assert!((v[1] - 6.0).abs() < 1e-7, "y = {}", v[1]);
    }

    #[test]
    fn equality_and_ge_rows_need_phase1() {
        // min x + y s.t. x + y = 4, x - y >= 1, x,y >= 0 → (2.5, 1.5).
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(x + y);
        m.add_constraint(x + y, cmp::EQ, 4.0);
        m.add_constraint(x - y, cmp::GE, 1.0);
        let v = solve_model(&m).unwrap();
        assert!((v[0] + v[1] - 4.0).abs() < 1e-7);
        assert!(v[0] - v[1] >= 1.0 - 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::var(x), cmp::LE, 1.0);
        m.add_constraint(LinExpr::var(x), cmp::GE, 2.0);
        assert_eq!(solve_model(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::var(x));
        m.add_constraint(-1.0 * x, cmp::LE, 5.0);
        assert_eq!(solve_model(&m).unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_handled() {
        // min x s.t. -x <= -3  (x >= 3).
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::var(x));
        m.add_constraint(-1.0 * x, cmp::LE, -3.0);
        let v = solve_model(&m).unwrap();
        assert!((v[0] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn free_variables_can_go_negative() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_free("x");
        m.set_objective(LinExpr::var(x));
        m.add_constraint(LinExpr::var(x), cmp::GE, -7.5);
        let v = solve_model(&m).unwrap();
        assert!((v[0] + 7.5).abs() < 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: redundant constraints through the optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(x + y);
        m.add_constraint(x + y, cmp::LE, 1.0);
        m.add_constraint(x + 2.0 * y, cmp::LE, 1.0);
        m.add_constraint(2.0 * x + y, cmp::LE, 1.0);
        m.add_constraint(x - y, cmp::LE, 1.0);
        let v = solve_model(&m).unwrap();
        assert!((v[0] + v[1] - (2.0 / 3.0)).abs() < 1e-6);
    }

    #[test]
    fn no_rows_means_bounds_only() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 1.5, 10.0);
        m.set_objective(LinExpr::var(x));
        let sol = m.solve().unwrap();
        assert!((sol[x] - 1.5).abs() < 1e-9);
    }
}
