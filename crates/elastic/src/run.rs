//! γ-randomised simulation runs and throughput measurement.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rr_rrg::{EdgeId, NodeId, Rrg};

use crate::machine::{Capacity, Machine, MachineError, TelescopicSpec};

/// Parameters of a randomised machine run.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineParams {
    /// Total simulated clock cycles.
    pub horizon: u64,
    /// Cycles discarded before measuring.
    pub warmup: u64,
    /// Guard-draw RNG seed.
    pub seed: u64,
    /// Channel capacity model.
    pub capacity: Capacity,
    /// Variable-latency units (empty = none).
    pub telescopic: Vec<TelescopicSpec>,
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams {
            horizon: 30_000,
            warmup: 3_000,
            seed: 0x5EED_CAFE,
            capacity: Capacity::Unbounded,
            telescopic: Vec::new(),
        }
    }
}

impl MachineParams {
    /// Quick low-accuracy parameters for property tests.
    pub fn fast(seed: u64) -> Self {
        MachineParams {
            horizon: 4_000,
            warmup: 500,
            seed,
            ..Self::default()
        }
    }
}

/// Result of a randomised run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Measured steady-state throughput (firings of node 0 per cycle over
    /// the measurement window — every node of a live system has the same
    /// rate).
    pub throughput: f64,
    /// Total firings per node over the whole horizon.
    pub firings: Vec<u64>,
    /// Highest token occupancy seen per channel.
    pub max_occupancy: Vec<u64>,
    /// Highest anti-token debt seen per channel.
    pub max_anti: Vec<u64>,
}

/// Runs the elastic machine for `params.horizon` cycles with γ-weighted
/// guard draws and measures the throughput.
///
/// # Errors
///
/// [`MachineError::CombinationalCycle`] for invalid configurations;
/// [`MachineError::Deadlock`] when the machine stops making progress (a
/// correct configuration of a live RRG cannot deadlock under unbounded
/// capacity, but bounded capacity can introduce structural deadlocks).
pub fn simulate(g: &Rrg, params: &MachineParams) -> Result<RunResult, MachineError> {
    let mut machine =
        Machine::with_telescopic(g, params.capacity, &params.telescopic, params.seed ^ 0x7E1E)?;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut draw = move |g: &Rrg, v: NodeId| -> EdgeId {
        let ins = g.in_edges(v);
        let mut x: f64 = rng.random_range(0.0..1.0);
        for &e in ins {
            let p = g.edge(e).gamma().expect("early input without γ");
            if x < p {
                return e;
            }
            x -= p;
        }
        *ins.last().expect("early node with no inputs")
    };

    let mut warm_counts: Option<(u64, Vec<u64>)> = None;
    let graph = g.clone();
    for cycle in 0..params.horizon {
        let outcome = machine.step_with(|v| draw(&graph, v));
        if !outcome.live {
            return Err(MachineError::Deadlock { at_cycle: cycle });
        }
        if warm_counts.is_none() && machine.now() >= params.warmup {
            warm_counts = Some((machine.now(), machine.fired_total().to_vec()));
        }
    }
    let (warm_at, warm) = warm_counts.unwrap_or_else(|| (0, vec![0; machine.fired_total().len()]));
    let window = (machine.now() - warm_at) as f64;
    let throughput = (machine.fired_total()[0] - warm[0]) as f64 / window;
    Ok(RunResult {
        throughput,
        firings: machine.fired_total().to_vec(),
        max_occupancy: machine.max_occupancy().to_vec(),
        max_anti: machine.max_anti().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_rrg::figures;

    #[test]
    fn figure_1a_runs_at_one() {
        let r = simulate(&figures::figure_1a(0.5), &MachineParams::default()).unwrap();
        assert!((r.throughput - 1.0).abs() < 0.01, "Θ = {}", r.throughput);
    }

    #[test]
    fn figure_1b_matches_paper_markov_values() {
        let r05 = simulate(&figures::figure_1b(0.5), &MachineParams::default()).unwrap();
        assert!(
            (r05.throughput - 0.491).abs() < 0.015,
            "Θ(0.5) = {}",
            r05.throughput
        );
        let r09 = simulate(&figures::figure_1b(0.9), &MachineParams::default()).unwrap();
        assert!(
            (r09.throughput - 0.719).abs() < 0.015,
            "Θ(0.9) = {}",
            r09.throughput
        );
    }

    #[test]
    fn figure_2_matches_closed_form() {
        for &alpha in &[0.3, 0.5, 0.7, 0.9] {
            let r = simulate(&figures::figure_2(alpha), &MachineParams::default()).unwrap();
            let exact = figures::figure_2_throughput(alpha);
            assert!(
                (r.throughput - exact).abs() < 0.02,
                "α={alpha}: Θ = {} vs {exact}",
                r.throughput
            );
        }
    }

    #[test]
    fn bounded_capacity_never_beats_unbounded() {
        for &alpha in &[0.5, 0.9] {
            let g = figures::figure_1b(alpha);
            let unb = simulate(&g, &MachineParams::default()).unwrap();
            let bnd = simulate(
                &g,
                &MachineParams {
                    capacity: Capacity::PerBuffer(2),
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(
                bnd.throughput <= unb.throughput + 0.01,
                "α={alpha}: bounded {} vs unbounded {}",
                bnd.throughput,
                unb.throughput
            );
        }
    }

    #[test]
    fn occupancy_tracking_reports_positive_values() {
        let r = simulate(&figures::figure_1b(0.9), &MachineParams::default()).unwrap();
        assert!(r.max_occupancy.iter().any(|&o| o > 0));
        assert!(
            r.max_anti.iter().any(|&a| a > 0),
            "α=0.9 should issue anti-tokens"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = figures::figure_1b(0.7);
        let a = simulate(&g, &MachineParams::default()).unwrap();
        let b = simulate(&g, &MachineParams::default()).unwrap();
        assert_eq!(a.firings, b.firings);
    }
}
