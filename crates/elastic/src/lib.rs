//! Cycle-accurate simulation of synchronous elastic machines with early
//! evaluation and anti-token counterflow.
//!
//! This crate is the reproduction's stand-in for the paper's generated
//! Verilog controllers: where `rr-tgmg` simulates the *abstract* timed
//! guarded marked graph, this crate executes the elastic **machine** —
//! channels with elastic-buffer pipelines, one firing per node per clock,
//! join/fork behaviour, early-evaluation multiplexers that issue
//! anti-tokens on the channels they did not use, and (optionally) real
//! back-pressure from bounded buffer capacity.
//!
//! Lemma 3.1 of the paper says both views have the same steady-state
//! throughput under the big-enough-FIFO assumption (footnote 1); the test
//! suites of both crates enforce that agreement, and the bounded-capacity
//! mode quantifies what the assumption is worth (an ablation the paper
//! cites Lu & Koh for).
//!
//! The per-cycle step function is exposed deterministically
//! ([`Machine::step_with`]) so that `rr-markov` can enumerate the exact
//! reachable state space.
//!
//! # Example
//!
//! ```
//! use rr_elastic::{simulate, MachineParams};
//! use rr_rrg::figures;
//!
//! let rrg = figures::figure_2(0.9);
//! let run = simulate(&rrg, &MachineParams::default())?;
//! // Θ = 1/(3−2·0.9) = 5/6.
//! assert!((run.throughput - 5.0 / 6.0).abs() < 0.02);
//! # Ok::<(), rr_elastic::MachineError>(())
//! ```

mod machine;
mod run;
pub mod sizing;

pub use machine::{Capacity, Machine, MachineError, StepOutcome, TelescopicSpec};
pub use run::{simulate, MachineParams, RunResult};

#[cfg(test)]
mod proptests;
