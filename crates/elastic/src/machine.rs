//! The synchronous elastic machine: state and one-cycle step function.
//!
//! ## Channel model
//!
//! Each RRG edge is a FIFO with **latency** `R(e)` (one cycle per elastic
//! buffer) plus an **anti-token counter**. Tokens are timestamps: a token
//! pushed at cycle `t` becomes visible at the consumer at `t + R(e)`.
//! Edges with `R(e) = 0` are combinational wires — a token produced this
//! cycle is consumable this cycle (nodes are evaluated in topological
//! order of the wire subgraph, which is acyclic for every valid
//! configuration).
//!
//! ## Firing rules (one firing per node per clock)
//!
//! * a **simple** node fires when every input channel offers a token;
//! * an **early** node holds a pending guard selection (drawn from γ when
//!   the previous one is consumed) and fires when the *selected* channel
//!   offers a token; firing consumes the offered tokens of every input
//!   and increments the anti-token counter of inputs that offered none —
//!   passive anti-tokens that cancel the late token on arrival
//!   (Cortadella & Kishinevsky, DAC'07);
//! * anti-token counters cancel against the oldest queued token eagerly.
//!
//! ## Capacity
//!
//! [`Capacity::Unbounded`] implements the paper's footnote-1 idealisation.
//! [`Capacity::PerBuffer`]`(k)` limits each channel to `k·R(e)` stored
//! tokens (a real elastic buffer holds two) and stalls producers whose
//! output would overflow — including the combinational stall of wire
//! channels (`R = 0` stores nothing: producer and consumer must fire in
//! the same cycle). The maximal consistent firing set is computed as a
//! greatest fixpoint, mirroring how valid/stop signals settle within a
//! clock cycle.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use rr_rrg::{algo, EdgeId, NodeId, NodeKind, Rrg};

/// Channel capacity model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Capacity {
    /// FIFOs never fill (footnote 1 of the paper).
    #[default]
    Unbounded,
    /// Each channel holds at most `k · R(e)` tokens (`k = 2` models real
    /// elastic buffers); wires hold none.
    PerBuffer(u32),
}

/// A *telescopic* unit — the paper's §6 future-work extension: a block
/// with variable latency that usually completes within the clock cycle
/// but occasionally stretches over several.
///
/// While stretched, the unit is busy (it cannot accept the next operation)
/// and its results reach the output channels late; the elastic handshake
/// absorbs both effects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelescopicSpec {
    /// The node that telescopes.
    pub node: NodeId,
    /// Probability the operation finishes in the normal single cycle.
    pub fast_prob: f64,
    /// Extra cycles taken by a slow operation (≥ 1).
    pub slow_extra: u64,
}

/// Machine construction failures.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The configuration has a combinational cycle (wire cycle).
    CombinationalCycle { edge: EdgeId },
    /// No progress is possible any more (reported by the run loop).
    Deadlock { at_cycle: u64 },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::CombinationalCycle { edge } => {
                write!(f, "combinational cycle through edge {edge}")
            }
            MachineError::Deadlock { at_cycle } => write!(f, "deadlock at cycle {at_cycle}"),
        }
    }
}

impl Error for MachineError {}

/// One channel's runtime state.
#[derive(Debug, Clone)]
struct Channel {
    /// Arrival cycle of each in-flight/stored token (monotone queue).
    queue: VecDeque<u64>,
    /// Passive anti-tokens waiting at the consumer side.
    anti: u64,
    latency: u64,
    /// Stored-token capacity (`u64::MAX` when unbounded).
    capacity: u64,
}

impl Channel {
    fn settle_anti(&mut self) {
        while self.anti > 0 && !self.queue.is_empty() {
            self.queue.pop_front();
            self.anti -= 1;
        }
    }

    /// Token consumable at cycle `now` (ignores same-cycle wire pushes —
    /// callers account for those via `wire_pending`).
    fn offers(&self, now: u64) -> bool {
        self.anti == 0 && self.queue.front().is_some_and(|&a| a <= now)
    }
}

/// What happened in one clock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// Which nodes fired this cycle.
    pub fired: Vec<bool>,
    /// `true` when the machine can still make progress (a node fired or a
    /// token is still in flight).
    pub live: bool,
}

/// A running elastic machine over an RRG configuration.
///
/// Use [`crate::simulate`] for γ-randomised runs; drive
/// [`Machine::step_with`] directly for deterministic exploration.
#[derive(Debug, Clone)]
pub struct Machine {
    graph: Rrg,
    wire_topo: Vec<NodeId>,
    early_nodes: Vec<NodeId>,
    channels: Vec<Channel>,
    /// Pending guard selection per node (an input-edge id), early only.
    selection: Vec<Option<EdgeId>>,
    /// Scratch: tokens produced on wires during firing-set computation.
    wire_pending: Vec<u64>,
    bounded: bool,
    now: u64,
    fired_total: Vec<u64>,
    max_occupancy: Vec<u64>,
    max_anti: Vec<u64>,
    /// Per-node `(fast_prob, slow_extra)` for telescopic units.
    telescopic: Vec<Option<(f64, u64)>>,
    /// First cycle at which a busy (stretched) unit can fire again.
    busy_until: Vec<u64>,
    /// This cycle's pre-drawn extra latency per node (0 = fast); only
    /// meaningful for telescopic nodes, resampled every cycle.
    pending_extra: Vec<u64>,
    /// RNG for telescopic latency draws (`None` when no unit telescopes).
    tele_rng: Option<SplitMix64>,
}

/// Minimal cloneable RNG (SplitMix64) for telescopic latency draws; the
/// machine must stay `Clone` because `rr-markov` snapshots it per state.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Machine {
    /// Builds a machine for the graph's own configuration.
    ///
    /// # Errors
    ///
    /// [`MachineError::CombinationalCycle`] if the wire subgraph is cyclic.
    pub fn new(g: &Rrg, capacity: Capacity) -> Result<Machine, MachineError> {
        Machine::with_telescopic(g, capacity, &[], 0)
    }

    /// Builds a machine with telescopic (variable-latency) units.
    ///
    /// `seed` drives the latency draws; runs are deterministic per seed.
    ///
    /// # Errors
    ///
    /// See [`Machine::new`].
    ///
    /// # Panics
    ///
    /// Panics if a spec names an out-of-range node, has `fast_prob`
    /// outside `(0, 1]`, or `slow_extra == 0`.
    pub fn with_telescopic(
        g: &Rrg,
        capacity: Capacity,
        specs: &[TelescopicSpec],
        seed: u64,
    ) -> Result<Machine, MachineError> {
        let buffers: Vec<i64> = g.edges().map(|(_, e)| e.buffers()).collect();
        let wire_topo = algo::combinational_topo_order(g, &buffers)
            .map_err(|edge| MachineError::CombinationalCycle { edge })?;
        let channels: Vec<Channel> = g
            .edges()
            .map(|(_, e)| {
                let latency = e.buffers() as u64;
                let cap = match capacity {
                    Capacity::Unbounded => u64::MAX,
                    Capacity::PerBuffer(k) => latency * k as u64,
                };
                let mut queue = VecDeque::new();
                let mut anti = 0;
                if e.tokens() >= 0 {
                    for _ in 0..e.tokens() {
                        queue.push_back(0); // resident tokens: ready at once
                    }
                } else {
                    anti = (-e.tokens()) as u64;
                }
                Channel {
                    queue,
                    anti,
                    latency,
                    capacity: cap,
                }
            })
            .collect();
        let n = g.num_nodes();
        let early_nodes = g
            .nodes()
            .filter(|(_, node)| node.is_early())
            .map(|(id, _)| id)
            .collect();
        let mut telescopic = vec![None; n];
        for spec in specs {
            assert!(
                spec.node.index() < n,
                "telescopic spec names a missing node"
            );
            assert!(
                spec.fast_prob > 0.0 && spec.fast_prob <= 1.0,
                "fast_prob must lie in (0, 1]"
            );
            assert!(spec.slow_extra >= 1, "slow_extra must be at least 1");
            telescopic[spec.node.index()] = Some((spec.fast_prob, spec.slow_extra));
        }
        let tele_rng = if specs.is_empty() {
            None
        } else {
            Some(SplitMix64(seed ^ 0x5174_65CE_5C0D_E5D1))
        };
        Ok(Machine {
            graph: g.clone(),
            wire_topo,
            early_nodes,
            bounded: matches!(capacity, Capacity::PerBuffer(_)),
            wire_pending: vec![0; g.num_edges()],
            channels,
            selection: vec![None; n],
            now: 0,
            fired_total: vec![0; n],
            max_occupancy: vec![0; g.num_edges()],
            max_anti: vec![0; g.num_edges()],
            telescopic,
            busy_until: vec![0; n],
            pending_extra: vec![0; n],
            tele_rng,
        })
    }

    /// Current cycle number.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total firings per node since construction.
    pub fn fired_total(&self) -> &[u64] {
        &self.fired_total
    }

    /// Highest token occupancy seen per channel (in-flight + stored).
    pub fn max_occupancy(&self) -> &[u64] {
        &self.max_occupancy
    }

    /// Highest anti-token debt seen per channel.
    pub fn max_anti(&self) -> &[u64] {
        &self.max_anti
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Rrg {
        &self.graph
    }

    /// Early nodes (in id order).
    pub fn early_nodes(&self) -> &[NodeId] {
        &self.early_nodes
    }

    /// Early nodes whose guard is currently undrawn; `draw` will be asked
    /// for exactly these on the next [`Machine::step_with`].
    pub fn undrawn_early_nodes(&self) -> Vec<NodeId> {
        self.early_nodes
            .iter()
            .copied()
            .filter(|id| self.selection[id.index()].is_none())
            .collect()
    }

    /// A canonical encoding of the machine state (queue ages, anti
    /// counters, pending selections). Two machines with equal encodings
    /// behave identically from here on — the key for `rr-markov`'s
    /// reachability analysis.
    pub fn canonical_state(&self) -> Vec<u64> {
        let mut s = Vec::new();
        self.canonical_state_into(&mut s);
        s
    }

    /// Writes the canonical encoding into `s` (cleared first). State-key
    /// interners probe millions of candidate successors; reusing one
    /// scratch buffer keeps the hot enumeration loop allocation-free.
    pub fn canonical_state_into(&self, s: &mut Vec<u64>) {
        s.clear();
        for ch in &self.channels {
            s.push(ch.queue.len() as u64);
            for &a in &ch.queue {
                s.push(a.saturating_sub(self.now));
            }
            s.push(ch.anti);
        }
        for &v in &self.early_nodes {
            s.push(match self.selection[v.index()] {
                None => u64::MAX,
                Some(e) => e.index() as u64,
            });
        }
        for &b in &self.busy_until {
            s.push(b.saturating_sub(self.now));
        }
    }

    /// Executes one clock cycle with externally supplied guard draws.
    ///
    /// `draw(node)` is called once per early node whose pending selection
    /// is empty at the start of the cycle; it must return one of the
    /// node's input edges. Randomised callers pass a γ-weighted sampler;
    /// `rr-markov` enumerates every combination.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `draw` returns an edge that does not enter
    /// its node.
    pub fn step_with(&mut self, mut draw: impl FnMut(NodeId) -> EdgeId) -> StepOutcome {
        // Draw pending guards eagerly — distribution-equivalent to lazy
        // draws because selections are independent of this cycle's events.
        for i in 0..self.early_nodes.len() {
            let v = self.early_nodes[i];
            if self.selection[v.index()].is_none() {
                let e = draw(v);
                debug_assert_eq!(
                    self.graph.edge(e).target(),
                    v,
                    "guard edge must enter its node"
                );
                self.selection[v.index()] = Some(e);
            }
        }
        for ch in &mut self.channels {
            ch.settle_anti();
        }
        // Pre-draw this cycle's telescopic latencies so the firing-set
        // computation knows which wire outputs would arrive late.
        if let Some(rng) = &mut self.tele_rng {
            for v in 0..self.telescopic.len() {
                if let Some((fast_prob, slow_extra)) = self.telescopic[v] {
                    self.pending_extra[v] = if rng.next_f64() < fast_prob {
                        0
                    } else {
                        slow_extra
                    };
                }
            }
        }

        let fired = if self.bounded {
            self.firing_set_bounded()
        } else {
            self.firing_set_unbounded()
        };

        // Apply: consume inputs and produce outputs in wire-topo order so
        // that same-cycle wire tokens exist before their consumer pops.
        for idx in 0..self.wire_topo.len() {
            let v = self.wire_topo[idx];
            if !fired[v.index()] {
                continue;
            }
            self.fired_total[v.index()] += 1;
            let is_early = self.graph.node(v).is_early();
            let sel = self.selection[v.index()];
            for ei in 0..self.graph.in_edges(v).len() {
                let e = self.graph.in_edges(v)[ei];
                let ch = &mut self.channels[e.index()];
                if ch.offers(self.now) {
                    ch.queue.pop_front();
                } else {
                    debug_assert!(
                        is_early && sel != Some(e),
                        "missing token on a required input"
                    );
                    ch.anti += 1;
                }
            }
            if is_early {
                self.selection[v.index()] = None;
            }
            let extra = self.pending_extra[v.index()];
            if extra > 0 {
                self.busy_until[v.index()] = self.now + 1 + extra;
            }
            for ei in 0..self.graph.out_edges(v).len() {
                let e = self.graph.out_edges(v)[ei];
                let ch = &mut self.channels[e.index()];
                let arrival = self.now + ch.latency + extra;
                ch.queue.push_back(arrival);
                ch.settle_anti();
            }
        }

        for (i, ch) in self.channels.iter().enumerate() {
            self.max_occupancy[i] = self.max_occupancy[i].max(ch.queue.len() as u64);
            self.max_anti[i] = self.max_anti[i].max(ch.anti);
        }

        let any_fired = fired.iter().any(|&f| f);
        let tokens_in_flight = self
            .channels
            .iter()
            .any(|c| c.queue.front().is_some_and(|&a| a > self.now));
        self.now += 1;
        StepOutcome {
            fired,
            live: any_fired || tokens_in_flight,
        }
    }

    /// Firing set under unbounded capacity: one wire-topo pass.
    fn firing_set_unbounded(&mut self) -> Vec<bool> {
        for p in self.wire_pending.iter_mut() {
            *p = 0;
        }
        let mut fired = vec![false; self.graph.num_nodes()];
        for idx in 0..self.wire_topo.len() {
            let v = self.wire_topo[idx];
            if self.now >= self.busy_until[v.index()] && self.inputs_ready(v) {
                fired[v.index()] = true;
                // Wire tokens of a telescoping (slow) firing arrive late,
                // so they do not feed same-cycle consumers.
                if self.pending_extra[v.index()] == 0 {
                    for &e in self.graph.out_edges(v) {
                        if self.channels[e.index()].latency == 0 {
                            self.wire_pending[e.index()] += 1;
                        }
                    }
                }
            }
        }
        fired
    }

    /// Readiness of `v`'s guard inputs, counting same-cycle wire tokens
    /// recorded in `wire_pending`.
    fn inputs_ready(&self, v: NodeId) -> bool {
        let check = |e: EdgeId| -> bool {
            let ch = &self.channels[e.index()];
            if ch.anti > 0 {
                // A wire produces at most one token per cycle; it can only
                // cancel debt, never satisfy the consumer as well.
                return false;
            }
            ch.offers(self.now) || (ch.latency == 0 && self.wire_pending[e.index()] > 0)
        };
        match self.graph.node(v).kind() {
            NodeKind::Simple => {
                !self.graph.in_edges(v).is_empty()
                    && self.graph.in_edges(v).iter().all(|&e| check(e))
            }
            NodeKind::EarlyEval => {
                let sel = self.selection[v.index()].expect("selection drawn at cycle start");
                check(sel)
            }
        }
    }

    /// Firing set under bounded capacity: greatest fixpoint of
    /// "inputs ready ∧ outputs accept" (how valid/stop settle in a cycle).
    fn firing_set_bounded(&mut self) -> Vec<bool> {
        let n = self.graph.num_nodes();
        let mut fire = vec![true; n];
        loop {
            let mut changed = false;
            for v in self.graph.node_ids() {
                if !fire[v.index()] {
                    continue;
                }
                let inputs_ok =
                    self.now >= self.busy_until[v.index()] && self.inputs_ready_hyp(v, &fire);
                let outputs_ok = self.graph.out_edges(v).iter().all(|&e| {
                    let ch = &self.channels[e.index()];
                    if ch.anti > 0 {
                        return true; // the new token cancels waiting debt
                    }
                    let consumed = u64::from(self.consumes_under(e, &fire));
                    (ch.queue.len() as u64 + 1).saturating_sub(consumed) <= ch.capacity
                });
                if !(inputs_ok && outputs_ok) {
                    fire[v.index()] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Record wire production for the apply phase's availability needs.
        for p in self.wire_pending.iter_mut() {
            *p = 0;
        }
        for v in self.graph.node_ids() {
            if fire[v.index()] {
                for &e in self.graph.out_edges(v) {
                    if self.channels[e.index()].latency == 0 {
                        self.wire_pending[e.index()] += 1;
                    }
                }
            }
        }
        fire
    }

    /// Input readiness under a hypothesised firing set (wire producers
    /// taken from the hypothesis).
    fn inputs_ready_hyp(&self, v: NodeId, fire: &[bool]) -> bool {
        let check = |e: EdgeId| -> bool {
            let ch = &self.channels[e.index()];
            if ch.anti > 0 {
                return false;
            }
            let src = self.graph.edge(e).source().index();
            ch.offers(self.now) || (ch.latency == 0 && fire[src] && self.pending_extra[src] == 0)
        };
        match self.graph.node(v).kind() {
            NodeKind::Simple => {
                !self.graph.in_edges(v).is_empty()
                    && self.graph.in_edges(v).iter().all(|&e| check(e))
            }
            NodeKind::EarlyEval => {
                let sel = self.selection[v.index()].expect("selection drawn at cycle start");
                check(sel)
            }
        }
    }

    /// Whether the consumer of `e` takes a token off `e` this cycle under
    /// the hypothesised firing set.
    fn consumes_under(&self, e: EdgeId, fire: &[bool]) -> bool {
        fire[self.graph.edge(e).target().index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_rrg::figures;

    #[test]
    fn figure_1a_machine_runs_at_rate_one() {
        let g = figures::figure_1a(0.5);
        let mut m = Machine::new(&g, Capacity::Unbounded).unwrap();
        let mux = g.node_by_name("m").unwrap();
        for _ in 0..100 {
            // Always select the (token-rich) top channel.
            m.step_with(|_| figures::edge::TOP);
        }
        let fired = m.fired_total()[mux.index()];
        assert!(fired >= 98, "mux fired {fired} times in 100 cycles");
    }

    #[test]
    fn anti_tokens_accumulate_and_cancel() {
        let g = figures::figure_1b(0.5);
        let mut m = Machine::new(&g, Capacity::Unbounded).unwrap();
        for _ in 0..50 {
            m.step_with(|_| figures::edge::TOP);
        }
        let bottom = figures::edge::BOTTOM.index();
        assert!(m.max_anti()[bottom] > 0, "no anti-tokens were issued");
        // Debt stays bounded: every f firing feeds the bottom channel.
        let ch_anti = m.max_anti()[bottom];
        assert!(ch_anti <= 5, "debt exploded: {ch_anti}");
    }

    #[test]
    fn canonical_state_detects_periodicity() {
        // Figure 1(a) with a fixed guard is deterministic with period 1
        // once warmed up.
        let g = figures::figure_1a(0.5);
        let mut m = Machine::new(&g, Capacity::Unbounded).unwrap();
        for _ in 0..10 {
            m.step_with(|_| figures::edge::TOP);
        }
        let s1 = m.canonical_state();
        m.step_with(|_| figures::edge::TOP);
        let s2 = m.canonical_state();
        assert_eq!(s1, s2, "steady state should be a fixed point");
    }

    #[test]
    fn undrawn_guards_are_reported_and_drawn_once() {
        let g = figures::figure_1b(0.5);
        let mut m = Machine::new(&g, Capacity::Unbounded).unwrap();
        assert_eq!(m.undrawn_early_nodes().len(), 1);
        let mut draws = 0;
        m.step_with(|_| {
            draws += 1;
            figures::edge::TOP
        });
        assert_eq!(draws, 1);
        // Selection consumed on firing (top is full: the mux fires at
        // cycle 0) → undrawn again.
        assert_eq!(m.undrawn_early_nodes().len(), 1);
    }

    #[test]
    fn bounded_wires_force_joint_firing_at_full_rate() {
        use rr_rrg::RrgBuilder;
        // a → b over a wire; b → a with one buffered token. The cycle has
        // one token and one EB, so the rate is 1; the capacity-0 wire
        // makes a and b fire in the same cycles.
        let mut bld = RrgBuilder::new();
        let a = bld.add_simple("a", 1.0);
        let b = bld.add_simple("b", 1.0);
        bld.add_edge(a, b, 0, 0);
        bld.add_edge(b, a, 1, 1);
        let g = bld.build().unwrap();
        let mut m = Machine::new(&g, Capacity::PerBuffer(2)).unwrap();
        for _ in 0..40 {
            m.step_with(|_| unreachable!("no early nodes"));
        }
        let fa = m.fired_total()[a.index()];
        let fb = m.fired_total()[b.index()];
        assert_eq!(fa, fb, "wire forces joint firing");
        assert!(fa >= 39, "cycle ratio 1/1 → rate 1, fired {fa}");
    }

    #[test]
    fn telescopic_ring_matches_renewal_theory() {
        use rr_rrg::RrgBuilder;
        // One-node ring with a single token: firings are a renewal
        // process with period 1 (prob p) or 1 + extra (prob 1−p), so
        // Θ = 1/(p + (1−p)(1+extra)).
        let mut bld = RrgBuilder::new();
        let a = bld.add_simple("a", 1.0);
        bld.add_edge(a, a, 1, 1);
        let g = bld.build().unwrap();
        for (p, extra) in [(0.5, 1u64), (0.8, 3)] {
            let spec = TelescopicSpec {
                node: a,
                fast_prob: p,
                slow_extra: extra,
            };
            let mut m = Machine::with_telescopic(&g, Capacity::Unbounded, &[spec], 99).unwrap();
            let cycles = 40_000;
            for _ in 0..cycles {
                m.step_with(|_| unreachable!("no early nodes"));
            }
            let theta = m.fired_total()[a.index()] as f64 / cycles as f64;
            let expect = 1.0 / (p + (1.0 - p) * (1.0 + extra as f64));
            assert!(
                (theta - expect).abs() < 0.01,
                "p={p}, extra={extra}: Θ = {theta} vs renewal {expect}"
            );
        }
    }

    #[test]
    fn always_fast_telescopic_is_a_no_op() {
        let g = figures::figure_1b(0.7);
        let spec = TelescopicSpec {
            node: g.node_by_name("F2").unwrap(),
            fast_prob: 1.0,
            slow_extra: 4,
        };
        let mut plain = Machine::new(&g, Capacity::Unbounded).unwrap();
        let mut tele = Machine::with_telescopic(&g, Capacity::Unbounded, &[spec], 5).unwrap();
        for _ in 0..300 {
            plain.step_with(|_| figures::edge::TOP);
            tele.step_with(|_| figures::edge::TOP);
        }
        assert_eq!(plain.fired_total(), tele.fired_total());
    }

    #[test]
    fn telescopic_slowdown_reduces_throughput() {
        let g = figures::figure_1a(0.5);
        let spec = TelescopicSpec {
            node: g.node_by_name("F1").unwrap(),
            fast_prob: 0.5,
            slow_extra: 2,
        };
        let mut m = Machine::with_telescopic(&g, Capacity::Unbounded, &[spec], 5).unwrap();
        for _ in 0..4_000 {
            m.step_with(|_| figures::edge::TOP);
        }
        let theta = m.fired_total()[0] as f64 / 4_000.0;
        assert!(theta < 0.75, "Θ = {theta} should drop well below 1");
        assert!(theta > 0.3);
    }

    #[test]
    fn bounded_starved_buffer_halves_the_rate() {
        use rr_rrg::RrgBuilder;
        // Two-EB ring with one token: latency 2 per revolution → rate 1/2
        // regardless of capacity mode.
        let mut bld = RrgBuilder::new();
        let a = bld.add_simple("a", 1.0);
        let b = bld.add_simple("b", 1.0);
        bld.add_edge(a, b, 0, 1);
        bld.add_edge(b, a, 1, 1);
        let g = bld.build().unwrap();
        for cap in [Capacity::Unbounded, Capacity::PerBuffer(2)] {
            let mut m = Machine::new(&g, cap).unwrap();
            for _ in 0..40 {
                m.step_with(|_| unreachable!("no early nodes"));
            }
            let fa = m.fired_total()[a.index()];
            assert!((19..=21).contains(&fa), "{cap:?}: fired {fa}");
        }
    }
}
