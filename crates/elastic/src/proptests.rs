//! The load-bearing cross-check of the whole reproduction: the
//! cycle-accurate elastic machine and the abstract TGMG simulator are
//! *independent implementations* of the same semantics, and Lemma 3.1
//! says their steady-state throughputs coincide. These tests enforce that
//! agreement on random graphs, plus machine-level invariants.

use proptest::prelude::*;
use rr_rrg::generate::GeneratorParams;
use rr_tgmg::sim::{simulate as tgmg_sim, SimParams};
use rr_tgmg::skeleton::tgmg_of;

use crate::machine::Capacity;
use crate::run::{simulate, MachineParams};

fn small_params() -> impl Strategy<Value = (GeneratorParams, u64)> {
    (2usize..9, 0usize..3, 0usize..10, any::<u64>()).prop_map(|(ns, ne, extra, seed)| {
        let n = ns + ne;
        (
            GeneratorParams::paper_defaults(ns, ne, n + ne + extra),
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn machine_agrees_with_tgmg_simulator((p, seed) in small_params()) {
        let g = p.generate(seed);
        let machine = simulate(
            &g,
            &MachineParams { horizon: 10_000, warmup: 2_000, seed, capacity: Capacity::Unbounded, telescopic: Vec::new() },
        )
        .unwrap()
        .throughput;
        let tgmg = tgmg_sim(
            &tgmg_of(&g),
            &SimParams { horizon: 10_000, warmup: 2_000, seed: seed ^ 1, ..Default::default() },
        )
        .unwrap()
        .throughput;
        prop_assert!(
            (machine - tgmg).abs() < 0.06,
            "machine {machine} vs tgmg {tgmg}"
        );
    }

    #[test]
    fn all_nodes_fire_at_the_same_rate((p, seed) in small_params()) {
        let g = p.generate(seed);
        let r = simulate(&g, &MachineParams { horizon: 8_000, warmup: 1_000, seed, capacity: Capacity::Unbounded, telescopic: Vec::new() }).unwrap();
        let max = *r.firings.iter().max().unwrap() as f64;
        let min = *r.firings.iter().min().unwrap() as f64;
        prop_assert!(max - min <= 0.05 * max + 8.0, "firings spread: {:?}", r.firings);
    }

    #[test]
    fn bounded_capacity_only_hurts((p, seed) in small_params()) {
        let g = p.generate(seed);
        let unb = simulate(&g, &MachineParams::fast(seed)).unwrap().throughput;
        let bnd = simulate(
            &g,
            &MachineParams { capacity: Capacity::PerBuffer(2), ..MachineParams::fast(seed) },
        );
        // Bounded runs may deadlock on wire-heavy graphs; when they finish
        // they must not beat the idealised machine.
        if let Ok(b) = bnd {
            prop_assert!(b.throughput <= unb + 0.05, "bounded {} > unbounded {unb}", b.throughput);
        }
    }

    #[test]
    fn generous_bounded_capacity_matches_unbounded((p, seed) in small_params()) {
        // With a huge per-buffer capacity the back-pressure never binds on
        // buffered channels; wire channels still couple firings, so only
        // graphs whose wires were already never-stalled are guaranteed to
        // match. We check the throughput is not *higher* and is within a
        // loose band.
        let g = p.generate(seed);
        let unb = simulate(&g, &MachineParams::fast(seed)).unwrap().throughput;
        if let Ok(b) = simulate(
            &g,
            &MachineParams { capacity: Capacity::PerBuffer(64), ..MachineParams::fast(seed) },
        ) {
            prop_assert!(b.throughput <= unb + 0.05);
        }
    }

    #[test]
    fn throughput_in_unit_interval((p, seed) in small_params()) {
        let g = p.generate(seed);
        let th = simulate(&g, &MachineParams::fast(seed)).unwrap().throughput;
        prop_assert!(th > 0.0 && th <= 1.0 + 1e-9, "Θ = {th}");
    }
}
