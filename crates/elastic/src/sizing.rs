//! FIFO sizing — the reproduction's substitute for the paper's footnote-1
//! reference (Lu & Koh, ICCAD'03: "performance optimization of latency
//! insensitive systems through buffer queue sizing").
//!
//! The paper *assumes* buffers are big enough that only forward paths
//! limit throughput. These helpers find how big "big enough" actually is
//! for a given configuration, by measuring the bounded-capacity machine
//! against the idealised one.

use rr_rrg::Rrg;

use crate::machine::Capacity;
use crate::run::{simulate, MachineParams, RunResult};

/// Result of a capacity search.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingResult {
    /// The smallest per-buffer multiplier `k` whose throughput reaches
    /// the requested fraction of the unbounded throughput.
    pub capacity_per_buffer: u32,
    /// Bounded throughput at that `k`.
    pub throughput: f64,
    /// The idealised (unbounded) throughput it was measured against.
    pub unbounded_throughput: f64,
}

/// Finds the smallest uniform per-EB capacity multiplier `k ∈ [1, max_k]`
/// such that the bounded machine reaches `fraction` (e.g. 0.99) of the
/// unbounded throughput. Returns `None` when even `max_k` falls short —
/// which happens when wire channels (capacity 0 at any `k`) structurally
/// couple producers to stalled consumers.
///
/// Deadlocking capacities are skipped, mirroring how a FIFO-sizing tool
/// would reject them.
pub fn minimal_uniform_capacity(
    g: &Rrg,
    fraction: f64,
    max_k: u32,
    params: &MachineParams,
) -> Option<SizingResult> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    let unbounded = simulate(
        g,
        &MachineParams {
            capacity: Capacity::Unbounded,
            ..params.clone()
        },
    )
    .ok()?
    .throughput;
    for k in 1..=max_k {
        let run: Result<RunResult, _> = simulate(
            g,
            &MachineParams {
                capacity: Capacity::PerBuffer(k),
                ..params.clone()
            },
        );
        if let Ok(r) = run {
            if r.throughput >= fraction * unbounded - 1e-9 {
                return Some(SizingResult {
                    capacity_per_buffer: k,
                    throughput: r.throughput,
                    unbounded_throughput: unbounded,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_rrg::figures;

    #[test]
    fn figure_1a_needs_minimal_capacity() {
        // A bubble-free ring at Θ = 1 works with real 2-slot EBs.
        let g = figures::figure_1a(0.5);
        let r = minimal_uniform_capacity(&g, 0.98, 4, &MachineParams::fast(1)).unwrap();
        assert!(
            r.capacity_per_buffer <= 2,
            "needed k = {}",
            r.capacity_per_buffer
        );
        assert!((r.unbounded_throughput - 1.0).abs() < 0.05);
    }

    #[test]
    fn capacity_requirement_is_monotone_in_fraction() {
        let g = figures::figure_1b(0.9);
        let lo = minimal_uniform_capacity(&g, 0.5, 8, &MachineParams::fast(2));
        let hi = minimal_uniform_capacity(&g, 0.95, 8, &MachineParams::fast(2));
        if let (Some(lo), Some(hi)) = (lo, hi) {
            assert!(lo.capacity_per_buffer <= hi.capacity_per_buffer);
        }
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_bad_fraction() {
        let g = figures::figure_1a(0.5);
        let _ = minimal_uniform_capacity(&g, 1.5, 2, &MachineParams::fast(1));
    }
}
