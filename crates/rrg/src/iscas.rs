//! The 18 benchmark profiles of Table 2.
//!
//! The paper took the largest strongly connected component of each ISCAS89
//! circuit and randomised every attribute (tokens, delays, early marking,
//! branch probabilities); the netlists contributed *only* the graph sizes
//! and rough structure. This module records those sizes (`|N1|`, `|N2|`,
//! `|E|` exactly as printed in Table 2) and instantiates each profile with
//! the [`generate`](crate::generate) recipe.

use crate::generate::GeneratorParams;
use crate::rrg::Rrg;

/// Size profile of one Table-2 benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IscasProfile {
    /// ISCAS89 circuit name, e.g. `"s526"`.
    pub name: &'static str,
    /// Simple (late-evaluation) node count `|N1|`.
    pub simple_nodes: usize,
    /// Early-evaluation node count `|N2|`.
    pub early_nodes: usize,
    /// Edge count `|E|`.
    pub edges: usize,
}

/// All rows of Table 2, in the paper's order.
pub const TABLE2: [IscasProfile; 18] = [
    IscasProfile {
        name: "s208",
        simple_nodes: 7,
        early_nodes: 1,
        edges: 9,
    },
    IscasProfile {
        name: "s641",
        simple_nodes: 206,
        early_nodes: 15,
        edges: 270,
    },
    IscasProfile {
        name: "s27",
        simple_nodes: 9,
        early_nodes: 5,
        edges: 24,
    },
    IscasProfile {
        name: "s444",
        simple_nodes: 45,
        early_nodes: 13,
        edges: 82,
    },
    IscasProfile {
        name: "s838",
        simple_nodes: 7,
        early_nodes: 1,
        edges: 9,
    },
    IscasProfile {
        name: "s386",
        simple_nodes: 36,
        early_nodes: 12,
        edges: 131,
    },
    IscasProfile {
        name: "s344",
        simple_nodes: 122,
        early_nodes: 13,
        edges: 176,
    },
    IscasProfile {
        name: "s400",
        simple_nodes: 37,
        early_nodes: 9,
        edges: 66,
    },
    IscasProfile {
        name: "s526",
        simple_nodes: 43,
        early_nodes: 7,
        edges: 71,
    },
    IscasProfile {
        name: "s382",
        simple_nodes: 35,
        early_nodes: 7,
        edges: 60,
    },
    IscasProfile {
        name: "s420",
        simple_nodes: 7,
        early_nodes: 1,
        edges: 9,
    },
    IscasProfile {
        name: "s832",
        simple_nodes: 76,
        early_nodes: 41,
        edges: 462,
    },
    IscasProfile {
        name: "s1488",
        simple_nodes: 85,
        early_nodes: 48,
        edges: 572,
    },
    IscasProfile {
        name: "s510",
        simple_nodes: 63,
        early_nodes: 40,
        edges: 407,
    },
    IscasProfile {
        name: "s953",
        simple_nodes: 232,
        early_nodes: 36,
        edges: 371,
    },
    IscasProfile {
        name: "s713",
        simple_nodes: 229,
        early_nodes: 27,
        edges: 341,
    },
    IscasProfile {
        name: "s1494",
        simple_nodes: 88,
        early_nodes: 48,
        edges: 572,
    },
    IscasProfile {
        name: "s820",
        simple_nodes: 72,
        early_nodes: 38,
        edges: 424,
    },
];

impl IscasProfile {
    /// Looks up a profile by circuit name.
    pub fn by_name(name: &str) -> Option<IscasProfile> {
        TABLE2.iter().copied().find(|p| p.name == name)
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.simple_nodes + self.early_nodes
    }

    /// Instantiates the profile with the paper's §5 attribute recipe.
    ///
    /// The same `(profile, seed)` pair always yields the same graph.
    pub fn generate(&self, seed: u64) -> Rrg {
        self.params().generate(seed ^ fxhash(self.name))
    }

    /// The generator parameters of this profile.
    pub fn params(&self) -> GeneratorParams {
        GeneratorParams::paper_defaults(self.simple_nodes, self.early_nodes, self.edges)
    }

    /// A proportionally scaled-down copy capped at `max_edges` edges (at
    /// least 8), used to keep MILP solves tractable without CPLEX. Node
    /// counts shrink by the same ratio; a profile already within the cap is
    /// returned unchanged. See EXPERIMENTS.md for where this is applied.
    pub fn scaled(&self, max_edges: usize) -> IscasProfile {
        if self.edges <= max_edges {
            return *self;
        }
        let ratio = max_edges as f64 / self.edges as f64;
        let scale = |x: usize| ((x as f64 * ratio).round() as usize).max(1);
        let mut simple = scale(self.simple_nodes);
        let early = scale(self.early_nodes).max(1);
        let mut edges = max_edges;
        // Keep the invariant edges >= nodes needed for strong connectivity
        // plus one extra input per early node.
        if edges < simple + early + early {
            simple = (edges.saturating_sub(2 * early)).max(1);
        }
        if edges < simple + early {
            edges = simple + early;
        }
        IscasProfile {
            name: self.name,
            simple_nodes: simple,
            early_nodes: early,
            edges,
        }
    }
}

/// Tiny deterministic string hash so each profile gets decorrelated
/// generator seeds (FxHash-style multiply-xor).
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::check_generated;

    #[test]
    fn table_has_all_rows() {
        assert_eq!(TABLE2.len(), 18);
        assert_eq!(IscasProfile::by_name("s526").unwrap().edges, 71);
        assert!(IscasProfile::by_name("s9999").is_none());
    }

    #[test]
    fn profiles_generate_valid_graphs() {
        // Keep the test quick: the small and mid profiles.
        for name in ["s208", "s27", "s526", "s382", "s400"] {
            let p = IscasProfile::by_name(name).unwrap();
            let g = p.generate(1);
            check_generated(&g, &p.params()).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn different_profiles_get_different_seeds() {
        // s208, s838 and s420 share sizes; the name hash must still
        // decorrelate their structures.
        let a = IscasProfile::by_name("s208").unwrap().generate(1);
        let b = IscasProfile::by_name("s838").unwrap().generate(1);
        let ea: Vec<_> = a.edges().map(|(_, e)| (e.source(), e.target())).collect();
        let eb: Vec<_> = b.edges().map(|(_, e)| (e.source(), e.target())).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn scaling_caps_edges_and_keeps_early_nodes() {
        let p = IscasProfile::by_name("s1488").unwrap();
        let s = p.scaled(150);
        assert!(s.edges <= 150);
        assert!(s.early_nodes >= 1);
        assert!(s.edges >= s.nodes());
        let g = s.generate(3);
        assert_eq!(g.num_edges(), s.edges);
        // Unscaled profiles pass through.
        let small = IscasProfile::by_name("s27").unwrap();
        assert_eq!(small.scaled(150), small);
    }
}
