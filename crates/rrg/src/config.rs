//! Retiming & recycling configurations — the paper's "RC" (Definition 2.7).
//!
//! A [`Config`] assigns every edge a new token count `R0'` and buffer count
//! `R'` such that
//!
//! * `R0'(e) = R0(e) + r(v) − r(u)` for some integer retiming vector `r`
//!   (Definition 2.6), and
//! * `R'(e) ≥ max(R0'(e), 0)`.
//!
//! The first condition is equivalent to preserving the token sum of every
//! directed cycle, which is what [`Config::validate`] checks (it does not
//! need `r` itself).

use std::error::Error;
use std::fmt;

use crate::algo;
use crate::rrg::{EdgeId, Rrg};
use crate::validate::ValidateError;

/// A retiming/recycling configuration: per-edge tokens and buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// `R0'(e)` per edge (indexed by [`EdgeId::index`]).
    pub tokens: Vec<i64>,
    /// `R'(e)` per edge.
    pub buffers: Vec<i64>,
}

/// Violations of Definition 2.7 for a configuration against its base RRG.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Vector lengths do not match the edge count.
    LengthMismatch { expected: usize, got: usize },
    /// Underlying RRG invariant broken (buffers < tokens, dead cycle, ...).
    Invalid(ValidateError),
    /// Token counts are not a retiming of the base graph: some cycle
    /// changed its token sum.
    NotARetiming { edge: EdgeId },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::LengthMismatch { expected, got } => {
                write!(f, "configuration covers {got} edges, graph has {expected}")
            }
            ConfigError::Invalid(e) => write!(f, "invalid configuration: {e}"),
            ConfigError::NotARetiming { edge } => write!(
                f,
                "token counts are not a retiming of the base graph (first mismatch near edge {edge})"
            ),
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl Config {
    /// The identity configuration of a graph (its own `R0`, `R`).
    pub fn initial(g: &Rrg) -> Config {
        Config {
            tokens: g.edges().map(|(_, e)| e.tokens()).collect(),
            buffers: g.edges().map(|(_, e)| e.buffers()).collect(),
        }
    }

    /// Configuration obtained by applying a retiming vector `r` to `g`
    /// (Definition 2.6) and assigning the **minimal legal buffers**
    /// `R' = max(R0', 0)` on every edge.
    ///
    /// # Panics
    ///
    /// Panics if `r.len() != g.num_nodes()`.
    pub fn from_retiming(g: &Rrg, r: &[i64]) -> Config {
        let tokens = retime_tokens(g, r);
        let buffers = tokens.iter().map(|&t| t.max(0)).collect();
        Config { tokens, buffers }
    }

    /// Configuration from a retiming vector, keeping each edge's buffer
    /// count *at least* the original one moved along with the retiming:
    /// `R'(e) = max(R(e) + r(v) − r(u), R0'(e), 0)`.
    ///
    /// This mirrors how hardware retiming moves whole EBs.
    ///
    /// # Panics
    ///
    /// Panics if `r.len() != g.num_nodes()`.
    pub fn from_retiming_with_buffers(g: &Rrg, r: &[i64]) -> Config {
        let tokens = retime_tokens(g, r);
        let buffers = g
            .edges()
            .zip(tokens.iter())
            .map(|((_, e), &t)| {
                let moved = e.buffers() + r[e.target().0] - r[e.source().0];
                moved.max(t).max(0)
            })
            .collect();
        Config { tokens, buffers }
    }

    /// Adds `count` bubbles (empty EBs) on `edge` — the paper's
    /// *recycling* transformation.
    pub fn add_bubbles(&mut self, edge: EdgeId, count: i64) {
        self.buffers[edge.index()] += count;
    }

    /// Number of bubbles on an edge (`R' − max(R0', 0)`).
    pub fn bubbles(&self, edge: EdgeId) -> i64 {
        self.buffers[edge.index()] - self.tokens[edge.index()].max(0)
    }

    /// Total bubble count of the configuration.
    pub fn total_bubbles(&self) -> i64 {
        self.tokens
            .iter()
            .zip(&self.buffers)
            .map(|(&t, &b)| b - t.max(0))
            .sum()
    }

    /// Checks Definition 2.7 against the base graph `g`:
    ///
    /// 1. vector lengths match,
    /// 2. `R' ≥ max(R0', 0)` and liveness (via [`crate::validate`]),
    /// 3. the token change is a retiming, i.e. every directed cycle keeps
    ///    its token sum. (Checked by verifying that `R0' − R0` is a
    ///    potential difference: both `Σ(R0'−R0)` and `Σ(R0−R0')` have no
    ///    negative cycle.)
    ///
    /// # Errors
    ///
    /// See [`ConfigError`].
    pub fn validate(&self, g: &Rrg) -> Result<(), ConfigError> {
        if self.tokens.len() != g.num_edges() || self.buffers.len() != g.num_edges() {
            return Err(ConfigError::LengthMismatch {
                expected: g.num_edges(),
                got: self.tokens.len().min(self.buffers.len()),
            });
        }
        let applied = self.apply(g).map_err(ConfigError::Invalid)?;
        // Retiming check: δ(e) = R0'(e) − R0(e) must satisfy
        // δ(e) = r(v) − r(u) for some node potential r. This holds iff
        // every directed cycle has Σδ = 0, iff neither δ nor −δ admits a
        // negative cycle.
        let delta = |e: EdgeId| self.tokens[e.index()] - g.edge(e).tokens();
        let bad_neg = algo::find_negative_cycle_with(&applied, delta);
        let bad_pos = algo::find_negative_cycle_with(&applied, |e| -delta(e));
        if let Some(cyc) = bad_neg.or(bad_pos) {
            return Err(ConfigError::NotARetiming { edge: cyc[0] });
        }
        Ok(())
    }

    /// Materialises the configuration as a new graph.
    ///
    /// # Errors
    ///
    /// [`ValidateError`] if the configured graph violates RRG invariants.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match `g`.
    pub fn apply(&self, g: &Rrg) -> Result<Rrg, ValidateError> {
        assert_eq!(self.tokens.len(), g.num_edges());
        assert_eq!(self.buffers.len(), g.num_edges());
        let mut out = g.clone();
        for (i, e) in out.edges.iter_mut().enumerate() {
            e.tokens = self.tokens[i];
            e.buffers = self.buffers[i];
        }
        crate::validate::validate(&out)?;
        Ok(out)
    }
}

/// Applies Definition 2.6: `R0'(e) = R0(e) + r(v) − r(u)`.
///
/// # Panics
///
/// Panics if `r.len() != g.num_nodes()`.
pub fn retime_tokens(g: &Rrg, r: &[i64]) -> Vec<i64> {
    assert_eq!(r.len(), g.num_nodes(), "retiming vector length mismatch");
    g.edges()
        .map(|(_, e)| e.tokens() + r[e.target().0] - r[e.source().0])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;

    #[test]
    fn identity_config_is_valid() {
        let g = figures::figure_1a(0.5);
        let c = Config::initial(&g);
        c.validate(&g).unwrap();
    }

    #[test]
    fn paper_retiming_vector_reaches_figure_2() {
        // r(m) = -2, r(F1) = -2, r(F2) = -1, r(F3) = r(f) = 0 turns
        // Figure 1(a) into Figure 2.
        let g = figures::figure_1a(0.9);
        let mut r = vec![0i64; g.num_nodes()];
        r[g.node_by_name("m").unwrap().0] = -2;
        r[g.node_by_name("F1").unwrap().0] = -2;
        r[g.node_by_name("F2").unwrap().0] = -1;
        let c = Config::from_retiming(&g, &r);
        c.validate(&g).unwrap();
        let retimed = c.apply(&g).unwrap();
        let expect = figures::figure_2(0.9);
        let got: Vec<(i64, i64)> = retimed
            .edges()
            .map(|(_, e)| (e.tokens(), e.buffers()))
            .collect();
        let want: Vec<(i64, i64)> = expect
            .edges()
            .map(|(_, e)| (e.tokens(), e.buffers()))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn cycle_token_sums_are_invariant_under_retiming() {
        let g = figures::figure_1a(0.5);
        let r: Vec<i64> = vec![3, -1, 2, 0, -5];
        let tokens = retime_tokens(&g, &r);
        // Top cycle: edges (f→m top), (m→F1), (F1→F2), (F2→F3), (F3→f).
        // We recompute its sum and compare with the original.
        let cycle_sum = |t: &dyn Fn(EdgeId) -> i64| -> i64 {
            g.edges()
                .filter(|(_, e)| {
                    // the top f→m edge is edge with 3 original tokens
                    true && (e.gamma().is_none() || e.tokens() >= 0)
                })
                .map(|(id, _)| t(id))
                .sum()
        };
        // All edges form the union of both cycles sharing the m→…→f path;
        // the *total* is a linear combination of cycle sums and must also
        // be preserved only when the retiming telescopes. Instead check
        // per-cycle via validate():
        let c = Config {
            tokens: tokens.clone(),
            buffers: tokens.iter().map(|&t| t.max(0)).collect(),
        };
        // Liveness may fail for arbitrary r (cycles keep sums, so it won't).
        c.validate(&g).unwrap();
        let _ = cycle_sum; // silence unused in case of refactor
    }

    #[test]
    fn non_retiming_tokens_are_rejected() {
        let g = figures::figure_1a(0.5);
        let mut c = Config::initial(&g);
        // Adding a token out of thin air changes a cycle sum.
        c.tokens[0] += 1;
        c.buffers[0] += 1;
        assert!(matches!(
            c.validate(&g),
            Err(ConfigError::NotARetiming { .. })
        ));
    }

    #[test]
    fn bubbles_are_recycling_not_retiming() {
        let g = figures::figure_1a(0.5);
        let mut c = Config::initial(&g);
        c.add_bubbles(EdgeId(1), 2);
        c.validate(&g).unwrap();
        assert_eq!(c.total_bubbles(), 2);
        assert_eq!(c.bubbles(EdgeId(1)), 2);
    }

    #[test]
    fn length_mismatch_detected() {
        let g = figures::figure_1a(0.5);
        let c = Config {
            tokens: vec![0; 2],
            buffers: vec![0; 2],
        };
        assert!(matches!(
            c.validate(&g),
            Err(ConfigError::LengthMismatch { .. })
        ));
    }
}
