//! Retiming and Recycling Graphs (RRGs).
//!
//! An RRG (Definition 2.1 of the paper) models a synchronous elastic system
//! as a directed multigraph whose nodes are combinational blocks and whose
//! edges carry elastic buffers (EBs):
//!
//! * `β(n)` — combinational delay of each node ([`Node::delay`]),
//! * `R0(e)` — tokens on each edge, negative values are **anti-tokens**
//!   ([`Edge::tokens`]),
//! * `R(e)` — number of EBs on each edge, `R ≥ R0` ([`Edge::buffers`]),
//! * `γ(e)` — branch-selection probability on the input edges of
//!   **early-evaluation** nodes ([`Edge::gamma`]).
//!
//! This crate provides:
//!
//! * the graph data model and a validating [`builder`](RrgBuilder),
//! * structural algorithms: SCCs, liveness (every directed cycle must carry
//!   a positive token sum), combinational topological order ([`algo`]),
//! * the cycle-time engine (longest combinational path, [`cycle_time`]),
//! * retiming / recycling configurations ([`Config`]) — the paper's "RC",
//! * the paper's motivating figures ([`figures`]),
//! * the random benchmark generator and the ISCAS89 Table-2 profiles
//!   ([`generate`], [`iscas`]),
//! * Graphviz export ([`dot`]).
//!
//! # Example
//!
//! ```
//! use rr_rrg::{figures, cycle_time};
//!
//! let rrg = figures::figure_1a(0.5);
//! // The critical combinational path F1,F2,F3,f,m has delay 3.
//! let ct = cycle_time::cycle_time(&rrg)?;
//! assert_eq!(ct, 3.0);
//! # Ok::<(), rr_rrg::cycle_time::CycleTimeError>(())
//! ```

pub mod algo;
mod builder;
pub mod config;
pub mod cycle_time;
pub mod dot;
pub mod figures;
pub mod generate;
pub mod io;
pub mod iscas;
mod rrg;
pub mod stats;
pub mod validate;

pub use builder::RrgBuilder;
pub use config::Config;
pub use rrg::{Edge, EdgeId, Node, NodeId, NodeKind, Rrg};
pub use validate::ValidateError;

#[cfg(test)]
mod proptests;
