//! Random RRG generation following the paper's benchmark recipe (§5):
//!
//! * a strongly connected multigraph of a requested size,
//! * each edge carries an initialised register (one token in one EB) with
//!   probability 0.25,
//! * node delays uniform in `(0, 20]`,
//! * a requested number of multi-input nodes marked early-evaluation with
//!   random branch probabilities.
//!
//! The paper extracted its graph *structures* from the largest SCCs of the
//! ISCAS89 circuits; those netlists are not shipped here, so the
//! [`iscas`](crate::iscas) module pairs this generator with the exact
//! |N1|/|N2|/|E| sizes of Table 2 (see DESIGN.md §2 for the substitution
//! rationale).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::algo;
use crate::rrg::{NodeId, Rrg};
use crate::RrgBuilder;

/// Parameters of the random benchmark generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorParams {
    /// Number of simple nodes (`|N1|`).
    pub simple_nodes: usize,
    /// Number of early-evaluation nodes (`|N2|`); each needs in-degree ≥ 2.
    pub early_nodes: usize,
    /// Total number of edges (`|E|`), at least `simple + early`.
    pub edges: usize,
    /// Probability that an edge starts with one token in one EB (paper:
    /// 0.25).
    pub token_probability: f64,
    /// Node delays are drawn uniformly from `(0, max_delay]` (paper: 20).
    pub max_delay: f64,
}

impl GeneratorParams {
    /// The paper's §5 attribute distribution for a given size.
    pub fn paper_defaults(simple_nodes: usize, early_nodes: usize, edges: usize) -> Self {
        GeneratorParams {
            simple_nodes,
            early_nodes,
            edges,
            token_probability: 0.25,
            max_delay: 20.0,
        }
    }

    /// Generates a graph with these parameters and the given seed.
    ///
    /// The result is strongly connected, live (every cycle carries ≥ 1
    /// token — enforced by a token fix-up pass mirroring the fact that the
    /// paper's source circuits were live by construction) and has exactly
    /// `early_nodes` early-evaluation nodes.
    ///
    /// # Panics
    ///
    /// Panics if `edges < simple_nodes + early_nodes` (a strongly
    /// connected graph on `n` nodes needs at least `n` edges) or if fewer
    /// than two nodes are requested.
    pub fn generate(&self, seed: u64) -> Rrg {
        let n = self.simple_nodes + self.early_nodes;
        assert!(n >= 2, "need at least two nodes");
        assert!(
            self.edges >= n,
            "strong connectivity needs at least {n} edges, got {}",
            self.edges
        );
        let mut rng = StdRng::seed_from_u64(seed);

        // 1. Backbone Hamiltonian cycle in shuffled order → strong
        //    connectivity by construction.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut edge_list: Vec<(usize, usize)> =
            (0..n).map(|i| (order[i], order[(i + 1) % n])).collect();

        // 2. Choose the early nodes and give them a second input first so
        //    the requested |N2| is always achievable.
        let mut candidates: Vec<usize> = (0..n).collect();
        candidates.shuffle(&mut rng);
        let early: Vec<usize> = candidates.into_iter().take(self.early_nodes).collect();
        let mut extra = self.edges - n;
        let mut is_early = vec![false; n];
        for &e in &early {
            is_early[e] = true;
        }
        for &t in &early {
            if extra == 0 {
                break;
            }
            let mut s = rng.random_range(0..n);
            // Avoid a self-loop; a duplicate parallel edge is fine (the
            // definition allows multigraphs).
            while s == t {
                s = rng.random_range(0..n);
            }
            edge_list.push((s, t));
            extra -= 1;
        }

        // 3. Remaining edges uniformly at random (no self-loops).
        for _ in 0..extra {
            let s = rng.random_range(0..n);
            let mut t = rng.random_range(0..n);
            while t == s {
                t = rng.random_range(0..n);
            }
            edge_list.push((s, t));
        }

        // 4. Attributes.
        let mut b = RrgBuilder::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| {
                let delay = rng.random_range(0.0..self.max_delay) + f64::EPSILON;
                if is_early[i] {
                    b.add_early(format!("e{i}"), delay)
                } else {
                    b.add_simple(format!("n{i}"), delay)
                }
            })
            .collect();
        let mut token_count = vec![0i64; edge_list.len()];
        for (i, _) in edge_list.iter().enumerate() {
            if rng.random_bool(self.token_probability) {
                token_count[i] = 1;
            }
        }
        let edge_ids: Vec<_> = edge_list
            .iter()
            .zip(&token_count)
            .map(|(&(s, t), &tok)| b.add_edge(ids[s], ids[t], tok, tok))
            .collect();

        // γ: random strictly-positive weights, normalised per early node.
        for &e in &early {
            let node = ids[e];
            // Count inputs of this node in the edge list.
            let ins: Vec<usize> = edge_list
                .iter()
                .enumerate()
                .filter(|(_, &(_, t))| t == e)
                .map(|(i, _)| i)
                .collect();
            let weights: Vec<f64> = ins.iter().map(|_| rng.random_range(0.05..1.0)).collect();
            let sum: f64 = weights.iter().sum();
            for (&i, w) in ins.iter().zip(&weights) {
                b.set_gamma(edge_ids[i], w / sum);
            }
            let _ = node;
        }

        // 5. Liveness fix-up: while a token-free cycle exists, drop a
        //    token (in a fresh EB) on one of its edges. Build a throwaway
        //    graph skipping validation to run the cycle finder.
        loop {
            let trial = b.clone().build();
            match trial {
                Ok(g) => return g,
                Err(crate::ValidateError::DeadCycle { edges }) => {
                    let pick = edges[rng.random_range(0..edges.len())];
                    let idx = pick.index();
                    token_count[idx] += 1;
                    b.set_tokens(edge_ids[idx], token_count[idx]);
                    b.set_buffers(edge_ids[idx], token_count[idx]);
                }
                Err(e) => unreachable!("generator produced an invalid graph: {e}"),
            }
        }
    }
}

/// Convenience wrapper: a paper-style random RRG of the given size.
pub fn random_rrg(simple_nodes: usize, early_nodes: usize, edges: usize, seed: u64) -> Rrg {
    GeneratorParams::paper_defaults(simple_nodes, early_nodes, edges).generate(seed)
}

/// Verifies the structural promises of the generator (used in tests and
/// as a debugging aid): strong connectivity, exact node/edge counts, exact
/// early count, liveness.
pub fn check_generated(g: &Rrg, params: &GeneratorParams) -> Result<(), String> {
    if g.num_nodes() != params.simple_nodes + params.early_nodes {
        return Err(format!("node count {}", g.num_nodes()));
    }
    if g.num_edges() != params.edges {
        return Err(format!("edge count {}", g.num_edges()));
    }
    if g.num_early() != params.early_nodes {
        return Err(format!("early count {}", g.num_early()));
    }
    if !algo::is_strongly_connected(g) {
        return Err("not strongly connected".into());
    }
    if algo::find_dead_cycle(g).is_some() {
        return Err("dead cycle".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let p = GeneratorParams::paper_defaults(20, 5, 60);
        let g = p.generate(42);
        check_generated(&g, &p).unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let p = GeneratorParams::paper_defaults(10, 2, 25);
        let a = p.generate(7);
        let b = p.generate(7);
        let ea: Vec<_> = a
            .edges()
            .map(|(_, e)| (e.source(), e.target(), e.tokens()))
            .collect();
        let eb: Vec<_> = b
            .edges()
            .map(|(_, e)| (e.source(), e.target(), e.tokens()))
            .collect();
        assert_eq!(ea, eb);
        let c = p.generate(8);
        let ec: Vec<_> = c
            .edges()
            .map(|(_, e)| (e.source(), e.target(), e.tokens()))
            .collect();
        assert_ne!(ea, ec, "different seeds should differ");
    }

    #[test]
    fn small_graphs_work() {
        let p = GeneratorParams::paper_defaults(2, 0, 2);
        let g = p.generate(1);
        check_generated(&g, &p).unwrap();
    }

    #[test]
    fn delays_in_range() {
        let p = GeneratorParams::paper_defaults(15, 3, 40);
        let g = p.generate(3);
        for (_, n) in g.nodes() {
            assert!(n.delay() > 0.0 && n.delay() <= 20.0 + 1e-9);
        }
    }

    #[test]
    fn early_nodes_have_multiple_inputs_and_normalised_gamma() {
        let p = GeneratorParams::paper_defaults(12, 4, 40);
        let g = p.generate(11);
        for (id, n) in g.nodes() {
            if n.is_early() {
                let ins = g.in_edges(id);
                assert!(ins.len() >= 2);
                let sum: f64 = ins.iter().map(|&e| g.edge(e).gamma().unwrap()).sum();
                assert!((sum - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_few_edges_rejected() {
        GeneratorParams::paper_defaults(5, 0, 3).generate(0);
    }
}
