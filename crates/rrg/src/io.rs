//! A plain-text interchange format for RRGs, so generated benchmark
//! instances can be stored, diffed and re-run bit-identically (the paper's
//! random attributes make this essential for reproducibility).
//!
//! Format (line-oriented, `#` comments):
//!
//! ```text
//! rrg v1
//! node <name> <simple|early> <delay>
//! edge <source-name> <target-name> <tokens> <buffers> [gamma]
//! ```
//!
//! Nodes must be declared before edges referencing them. The parser
//! validates the result through [`RrgBuilder`], so every loaded graph
//! satisfies the RRG invariants.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::rrg::{NodeKind, Rrg};
use crate::validate::ValidateError;
use crate::RrgBuilder;

/// Parse failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Missing or wrong `rrg v1` header.
    BadHeader,
    /// Malformed line, with its 1-based number and a description.
    BadLine { line: usize, reason: String },
    /// Edge references an undeclared node.
    UnknownNode { line: usize, name: String },
    /// A node name was declared twice.
    DuplicateNode { line: usize, name: String },
    /// The parsed graph violates RRG invariants.
    Invalid(ValidateError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadHeader => f.write_str("missing `rrg v1` header"),
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::UnknownNode { line, name } => {
                write!(f, "line {line}: unknown node {name}")
            }
            ParseError::DuplicateNode { line, name } => {
                write!(f, "line {line}: duplicate node {name}")
            }
            ParseError::Invalid(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

/// Serialises a graph to the text format. Node names are written as-is;
/// names containing whitespace are rejected by [`from_text`] on the way
/// back, so prefer simple identifiers.
pub fn to_text(g: &Rrg) -> String {
    let mut s = String::from("rrg v1\n");
    for (_, n) in g.nodes() {
        let kind = match n.kind() {
            NodeKind::Simple => "simple",
            NodeKind::EarlyEval => "early",
        };
        let _ = writeln!(s, "node {} {} {}", n.name(), kind, n.delay());
    }
    for (_, e) in g.edges() {
        let src = g.node(e.source()).name();
        let dst = g.node(e.target()).name();
        match e.gamma() {
            Some(p) => {
                let _ = writeln!(s, "edge {src} {dst} {} {} {p}", e.tokens(), e.buffers());
            }
            None => {
                let _ = writeln!(s, "edge {src} {dst} {} {}", e.tokens(), e.buffers());
            }
        }
    }
    s
}

/// Parses the text format back into a validated graph.
///
/// # Errors
///
/// See [`ParseError`].
pub fn from_text(text: &str) -> Result<Rrg, ParseError> {
    let mut lines = text.lines().enumerate();
    // Header (skipping blank/comment lines).
    loop {
        match lines.next() {
            Some((_, l)) if l.trim().is_empty() || l.trim_start().starts_with('#') => continue,
            Some((_, l)) if l.trim() == "rrg v1" => break,
            _ => return Err(ParseError::BadHeader),
        }
    }
    let mut b = RrgBuilder::new();
    let mut names: HashMap<String, crate::NodeId> = HashMap::new();
    for (idx, raw) in lines {
        let line = idx + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let mut parts = l.split_whitespace();
        match parts.next() {
            Some("node") => {
                let (name, kind, delay) = (parts.next(), parts.next(), parts.next());
                let (Some(name), Some(kind), Some(delay)) = (name, kind, delay) else {
                    return Err(ParseError::BadLine {
                        line,
                        reason: "node needs: name kind delay".into(),
                    });
                };
                let kind = match kind {
                    "simple" => NodeKind::Simple,
                    "early" => NodeKind::EarlyEval,
                    other => {
                        return Err(ParseError::BadLine {
                            line,
                            reason: format!("unknown node kind {other}"),
                        })
                    }
                };
                let delay: f64 = delay.parse().map_err(|_| ParseError::BadLine {
                    line,
                    reason: format!("bad delay {delay}"),
                })?;
                if names.contains_key(name) {
                    return Err(ParseError::DuplicateNode {
                        line,
                        name: name.to_string(),
                    });
                }
                let id = b.add_node(name, kind, delay);
                names.insert(name.to_string(), id);
            }
            Some("edge") => {
                let (src, dst, tokens, buffers) =
                    (parts.next(), parts.next(), parts.next(), parts.next());
                let (Some(src), Some(dst), Some(tokens), Some(buffers)) =
                    (src, dst, tokens, buffers)
                else {
                    return Err(ParseError::BadLine {
                        line,
                        reason: "edge needs: source target tokens buffers [gamma]".into(),
                    });
                };
                let &su = names.get(src).ok_or_else(|| ParseError::UnknownNode {
                    line,
                    name: src.to_string(),
                })?;
                let &tu = names.get(dst).ok_or_else(|| ParseError::UnknownNode {
                    line,
                    name: dst.to_string(),
                })?;
                let tokens: i64 = tokens.parse().map_err(|_| ParseError::BadLine {
                    line,
                    reason: format!("bad token count {tokens}"),
                })?;
                let buffers: i64 = buffers.parse().map_err(|_| ParseError::BadLine {
                    line,
                    reason: format!("bad buffer count {buffers}"),
                })?;
                let e = b.add_edge(su, tu, tokens, buffers);
                if let Some(gamma) = parts.next() {
                    let gamma: f64 = gamma.parse().map_err(|_| ParseError::BadLine {
                        line,
                        reason: format!("bad gamma {gamma}"),
                    })?;
                    b.set_gamma(e, gamma);
                }
            }
            Some(other) => {
                return Err(ParseError::BadLine {
                    line,
                    reason: format!("unknown directive {other}"),
                })
            }
            None => unreachable!("blank lines were skipped"),
        }
    }
    b.build().map_err(ParseError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use crate::generate::GeneratorParams;

    #[test]
    fn round_trips_the_figures() {
        for g in [
            figures::figure_1a(0.5),
            figures::figure_1b(0.9),
            figures::figure_2(0.25),
        ] {
            let text = to_text(&g);
            let back = from_text(&text).unwrap();
            assert_eq!(back.num_nodes(), g.num_nodes());
            assert_eq!(back.num_edges(), g.num_edges());
            for (i, (a, b)) in g.edges().zip(back.edges()).enumerate() {
                assert_eq!(a.1.tokens(), b.1.tokens(), "edge {i}");
                assert_eq!(a.1.buffers(), b.1.buffers(), "edge {i}");
                match (a.1.gamma(), b.1.gamma()) {
                    (Some(x), Some(y)) => assert!((x - y).abs() < 1e-12),
                    (None, None) => {}
                    other => panic!("gamma mismatch on edge {i}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn round_trips_generated_graphs() {
        let g = GeneratorParams::paper_defaults(10, 3, 30).generate(17);
        let back = from_text(&to_text(&g)).unwrap();
        assert_eq!(to_text(&back), to_text(&g), "canonical text must be stable");
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(from_text("").unwrap_err(), ParseError::BadHeader);
        assert!(matches!(
            from_text("rrg v1\nnode a simple not_a_number"),
            Err(ParseError::BadLine { .. })
        ));
        assert!(matches!(
            from_text("rrg v1\nnode a simple 1\nedge a b 0 0"),
            Err(ParseError::UnknownNode { .. })
        ));
        assert!(matches!(
            from_text("rrg v1\nnode a simple 1\nnode a simple 2"),
            Err(ParseError::DuplicateNode { .. })
        ));
        assert!(matches!(
            from_text("rrg v1\nfrobnicate"),
            Err(ParseError::BadLine { .. })
        ));
    }

    #[test]
    fn invalid_graphs_fail_validation() {
        // Token-free cycle.
        let text = "rrg v1\nnode a simple 1\nnode b simple 1\nedge a b 0 0\nedge b a 0 0\n";
        assert!(matches!(from_text(text), Err(ParseError::Invalid(_))));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header comment\n\nrrg v1\n# a node\nnode a simple 1\n\nedge a a 1 1\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 1);
    }
}
