//! Structural statistics of RRGs — used to sanity-check that generated
//! benchmark instances have the intended character (§5's attribute
//! distributions) and to describe instances in experiment logs.

use crate::rrg::Rrg;

/// Summary statistics of one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct RrgStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Early-evaluation node count.
    pub early_nodes: usize,
    /// Fraction of edges carrying at least one token.
    pub token_density: f64,
    /// Total tokens (anti-tokens negative).
    pub total_tokens: i64,
    /// Total elastic buffers.
    pub total_buffers: i64,
    /// Mean combinational delay.
    pub mean_delay: f64,
    /// Largest combinational delay.
    pub max_delay: f64,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Number of self-loops.
    pub self_loops: usize,
}

/// Computes [`RrgStats`] for a graph.
pub fn stats(g: &Rrg) -> RrgStats {
    let nodes = g.num_nodes();
    let edges = g.num_edges();
    let with_tokens = g.edges().filter(|(_, e)| e.tokens() > 0).count();
    let mean_delay = if nodes == 0 {
        0.0
    } else {
        g.nodes().map(|(_, n)| n.delay()).sum::<f64>() / nodes as f64
    };
    RrgStats {
        nodes,
        edges,
        early_nodes: g.num_early(),
        token_density: if edges == 0 {
            0.0
        } else {
            with_tokens as f64 / edges as f64
        },
        total_tokens: g.total_tokens(),
        total_buffers: g.total_buffers(),
        mean_delay,
        max_delay: g.max_delay(),
        max_in_degree: g.node_ids().map(|n| g.in_edges(n).len()).max().unwrap_or(0),
        max_out_degree: g
            .node_ids()
            .map(|n| g.out_edges(n).len())
            .max()
            .unwrap_or(0),
        self_loops: g.edges().filter(|(_, e)| e.source() == e.target()).count(),
    }
}

impl std::fmt::Display for RrgStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|N|={} (|N2|={}), |E|={}, tokens {} in {} EBs (density {:.2}), \
             β mean {:.2} max {:.2}, deg≤({},{}), self-loops {}",
            self.nodes,
            self.early_nodes,
            self.edges,
            self.total_tokens,
            self.total_buffers,
            self.token_density,
            self.mean_delay,
            self.max_delay,
            self.max_in_degree,
            self.max_out_degree,
            self.self_loops,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use crate::generate::GeneratorParams;

    #[test]
    fn figure_2_statistics() {
        let s = stats(&figures::figure_2(0.5));
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 6);
        assert_eq!(s.early_nodes, 1);
        assert_eq!(s.total_tokens, 2); // 1+1+1+0+1−2
        assert_eq!(s.total_buffers, 4);
        assert_eq!(s.max_in_degree, 2); // the mux
        assert_eq!(s.self_loops, 0);
        let rendered = s.to_string();
        assert!(rendered.contains("|N2|=1"));
    }

    #[test]
    fn generated_graphs_match_the_recipe() {
        // Token density should hover near the paper's 0.25 (liveness
        // fix-up pushes it slightly up on sparse graphs).
        let p = GeneratorParams::paper_defaults(40, 8, 120);
        let mut densities = Vec::new();
        for seed in 0..8 {
            let s = stats(&p.generate(seed));
            assert_eq!(s.early_nodes, 8);
            assert!(
                s.mean_delay > 5.0 && s.mean_delay < 15.0,
                "{}",
                s.mean_delay
            );
            densities.push(s.token_density);
        }
        let avg: f64 = densities.iter().sum::<f64>() / densities.len() as f64;
        assert!(
            (avg - 0.25).abs() < 0.12,
            "average token density {avg} strays from the paper's 0.25"
        );
    }

    #[test]
    fn empty_graph_statistics_are_defined() {
        use crate::RrgBuilder;
        let g = RrgBuilder::new().build().unwrap();
        let s = stats(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.token_density, 0.0);
    }
}
