//! Graphviz (DOT) export of RRGs, drawing edges in the paper's visual
//! language: one box per elastic buffer, a dot for each token, and a
//! rhombus with a count for anti-tokens.

use std::fmt::Write as _;

use crate::rrg::{NodeKind, Rrg};

/// Renders the graph as a `digraph` in DOT syntax.
///
/// Early-evaluation nodes are drawn as trapezia (the mux symbol of the
/// figures), simple nodes as ellipses. Edge labels show `R0/R` plus the
/// branch probability where present.
pub fn to_dot(g: &Rrg) -> String {
    let mut s = String::new();
    s.push_str("digraph rrg {\n  rankdir=LR;\n");
    for (id, n) in g.nodes() {
        let shape = match n.kind() {
            NodeKind::Simple => "ellipse",
            NodeKind::EarlyEval => "trapezium",
        };
        let _ = writeln!(
            s,
            "  {} [label=\"{}\\nβ={:.2}\", shape={}];",
            id.index(),
            escape(n.name()),
            n.delay(),
            shape
        );
    }
    for (_, e) in g.edges() {
        let mut label = String::new();
        if e.tokens() < 0 {
            let _ = write!(label, "◇{}", -e.tokens());
        } else {
            for _ in 0..e.tokens() {
                label.push('●');
            }
        }
        for _ in 0..e.bubbles().max(0) {
            label.push('□');
        }
        if let Some(p) = e.gamma() {
            let _ = write!(label, " γ={p:.2}");
        }
        let _ = writeln!(
            s,
            "  {} -> {} [label=\"{}\"];",
            e.source().index(),
            e.target().index(),
            label
        );
    }
    s.push_str("}\n");
    s
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;

    #[test]
    fn dot_output_is_well_formed() {
        let g = figures::figure_2(0.5);
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph rrg {"));
        assert!(dot.trim_end().ends_with('}'));
        // 5 nodes + 6 edges + header/footer lines.
        assert_eq!(dot.lines().count(), 2 + 5 + 6 + 1);
        // Anti-tokens are drawn with the rhombus marker.
        assert!(dot.contains('◇'), "{dot}");
        // Probabilities appear.
        assert!(dot.contains("γ=0.50"));
    }

    #[test]
    fn names_are_escaped() {
        let mut b = crate::RrgBuilder::new();
        let a = b.add_simple("a\"quote", 1.0);
        let c = b.add_simple("c", 1.0);
        b.add_edge(a, c, 1, 1);
        b.add_edge(c, a, 0, 0);
        let g = b.build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("a\\\"quote"));
    }
}
