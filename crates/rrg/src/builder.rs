//! Validating builder for [`Rrg`].

use crate::rrg::{Edge, EdgeId, Node, NodeId, NodeKind, Rrg};
use crate::validate::{self, ValidateError};

/// Incrementally constructs an [`Rrg`] and validates Definition 2.1's side
/// conditions on [`build`](RrgBuilder::build).
///
/// # Example
///
/// ```
/// use rr_rrg::RrgBuilder;
///
/// let mut b = RrgBuilder::new();
/// let mux = b.add_early("mux", 0.0);
/// let f = b.add_simple("f", 1.0);
/// let top = b.add_edge(f, mux, 1, 1);
/// let bot = b.add_edge(f, mux, 0, 1);
/// b.add_edge(mux, f, 1, 1);
/// b.set_gamma(top, 0.7);
/// b.set_gamma(bot, 0.3);
/// let rrg = b.build()?;
/// assert_eq!(rrg.num_early(), 1);
/// # Ok::<(), rr_rrg::ValidateError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RrgBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl RrgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with an explicit kind.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind, delay: f64) -> NodeId {
        assert!(delay >= 0.0, "combinational delay must be nonnegative");
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            kind,
            delay,
        });
        id
    }

    /// Adds a simple (late-evaluation) node.
    pub fn add_simple(&mut self, name: impl Into<String>, delay: f64) -> NodeId {
        self.add_node(name, NodeKind::Simple, delay)
    }

    /// Adds an early-evaluation node.
    pub fn add_early(&mut self, name: impl Into<String>, delay: f64) -> NodeId {
        self.add_node(name, NodeKind::EarlyEval, delay)
    }

    /// Adds an edge with `tokens` = R0 and `buffers` = R.
    ///
    /// `R ≥ max(R0, 0)` is checked at [`build`](RrgBuilder::build) time so
    /// intermediate states may be inconsistent.
    pub fn add_edge(
        &mut self,
        source: NodeId,
        target: NodeId,
        tokens: i64,
        buffers: i64,
    ) -> EdgeId {
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            source,
            target,
            tokens,
            buffers,
            gamma: None,
        });
        id
    }

    /// Sets the guard-selection probability γ of an edge (only meaningful
    /// for input edges of early-evaluation nodes).
    pub fn set_gamma(&mut self, edge: EdgeId, gamma: f64) -> &mut Self {
        self.edges[edge.0].gamma = Some(gamma);
        self
    }

    /// Overrides the token count of an edge.
    pub fn set_tokens(&mut self, edge: EdgeId, tokens: i64) -> &mut Self {
        self.edges[edge.0].tokens = tokens;
        self
    }

    /// Overrides the buffer count of an edge.
    pub fn set_buffers(&mut self, edge: EdgeId, buffers: i64) -> &mut Self {
        self.edges[edge.0].buffers = buffers;
        self
    }

    /// Current number of nodes added.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Current number of edges added.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finishes construction, validating the RRG invariants.
    ///
    /// For early-evaluation nodes whose input γ values are missing, uniform
    /// probabilities are assigned automatically; partially-assigned γ sets
    /// are an error.
    ///
    /// # Errors
    ///
    /// See [`ValidateError`] — `R < max(R0, 0)`, non-normalised γ, dead
    /// (token-free) cycles, dangling endpoints, etc.
    pub fn build(self) -> Result<Rrg, ValidateError> {
        let mut g = Rrg {
            nodes: self.nodes,
            edges: self.edges,
            succ: Vec::new(),
            pred: Vec::new(),
        };
        // Endpoint sanity before adjacency indexing.
        let n = g.nodes.len();
        for (i, e) in g.edges.iter().enumerate() {
            if e.source.0 >= n || e.target.0 >= n {
                return Err(ValidateError::DanglingEndpoint { edge: EdgeId(i) });
            }
        }
        g.rebuild_adjacency();

        // Default missing γ to uniform on fully-unassigned early nodes.
        for node in 0..n {
            let node = NodeId(node);
            if g.nodes[node.0].kind != NodeKind::EarlyEval {
                continue;
            }
            let ins: Vec<EdgeId> = g.pred[node.0].clone();
            let assigned = ins.iter().filter(|e| g.edges[e.0].gamma.is_some()).count();
            if assigned == 0 && !ins.is_empty() {
                let p = 1.0 / ins.len() as f64;
                for e in ins {
                    g.edges[e.0].gamma = Some(p);
                }
            }
        }

        validate::validate(&g)?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_graph() {
        let mut b = RrgBuilder::new();
        let a = b.add_simple("a", 1.0);
        let c = b.add_simple("c", 1.0);
        b.add_edge(a, c, 1, 1);
        b.add_edge(c, a, 0, 0);
        assert_eq!(b.num_nodes(), 2);
        assert_eq!(b.num_edges(), 2);
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_buffers_below_tokens() {
        let mut b = RrgBuilder::new();
        let a = b.add_simple("a", 1.0);
        let c = b.add_simple("c", 1.0);
        b.add_edge(a, c, 2, 1); // R < R0
        b.add_edge(c, a, 0, 0);
        assert!(matches!(
            b.build(),
            Err(ValidateError::BuffersBelowTokens { .. })
        ));
    }

    #[test]
    fn rejects_dead_cycle() {
        let mut b = RrgBuilder::new();
        let a = b.add_simple("a", 1.0);
        let c = b.add_simple("c", 1.0);
        b.add_edge(a, c, 0, 1);
        b.add_edge(c, a, 0, 1);
        assert!(matches!(b.build(), Err(ValidateError::DeadCycle { .. })));
    }

    #[test]
    fn uniform_gamma_defaulting() {
        let mut b = RrgBuilder::new();
        let m = b.add_early("m", 0.0);
        let f = b.add_simple("f", 1.0);
        b.add_edge(f, m, 1, 1);
        b.add_edge(f, m, 1, 1);
        b.add_edge(m, f, 1, 1);
        let g = b.build().unwrap();
        let probs: Vec<f64> = g
            .in_edges(m)
            .iter()
            .map(|&e| g.edge(e).gamma().unwrap())
            .collect();
        assert_eq!(probs, vec![0.5, 0.5]);
    }

    #[test]
    fn partially_assigned_gamma_is_an_error() {
        let mut b = RrgBuilder::new();
        let m = b.add_early("m", 0.0);
        let f = b.add_simple("f", 1.0);
        let top = b.add_edge(f, m, 1, 1);
        b.add_edge(f, m, 1, 1);
        b.add_edge(m, f, 1, 1);
        b.set_gamma(top, 0.5);
        assert!(matches!(b.build(), Err(ValidateError::MissingGamma { .. })));
    }

    #[test]
    fn negative_tokens_need_no_buffers() {
        // Anti-tokens may sit on a bufferless channel (Figure 2's mux
        // bypass has R0 = -2, R = 0).
        let mut b = RrgBuilder::new();
        let m = b.add_early("m", 0.0);
        let f = b.add_simple("f", 1.0);
        let e1 = b.add_edge(f, m, -2, 0);
        let e2 = b.add_edge(f, m, 4, 4);
        // Three tokens m→f keep both cycles live (-2+3 = 1 > 0).
        b.add_edge(m, f, 3, 3);
        b.set_gamma(e1, 0.5).set_gamma(e2, 0.5);
        assert!(b.build().is_ok());
    }
}
