//! The paper's motivating example (Figures 1(a), 1(b) and 2).
//!
//! All three graphs share the same structure: a multiplexer `m` (the only
//! early-evaluation node), a chain of unit-delay blocks `F1, F2, F3`, and a
//! zero-delay block `f` feeding `m` through two parallel channels — the
//! "top" channel selected with probability `α` and the "bottom" bypass
//! selected with probability `1 − α`:
//!
//! ```text
//!            ┌────────────── top (γ = α) ──────────────┐
//!            ▼                                          │
//!      ┌───┐     ┌────┐    ┌────┐    ┌────┐    ┌───┐   │
//!      │ m │ ──▶ │ F1 │ ─▶ │ F2 │ ─▶ │ F3 │ ─▶ │ f │ ──┤
//!      └───┘     └────┘    └────┘    └────┘    └───┘   │
//!            ▲                                          │
//!            └────────── bottom (γ = 1 − α) ────────────┘
//! ```
//!
//! The variants differ only in token/buffer placement:
//!
//! | figure | cycle time | behaviour |
//! |--------|-----------|-----------|
//! | 1(a)   | 3 | no bubbles, Θ = 1, ξ = 3 |
//! | 1(b)   | 1 | two bubbles: Θ(late) = 1/3; Θ(early, α=0.5) ≈ 0.491 |
//! | 2      | 1 | optimal RR with anti-tokens: Θ = 1/(3 − 2α) |

use crate::rrg::{NodeId, Rrg};
use crate::RrgBuilder;

/// Edge indices of the figure graphs, in construction order.
///
/// Kept public so tests and benches can address specific channels.
pub mod edge {
    use crate::rrg::EdgeId;
    /// `m → F1`
    pub const M_F1: EdgeId = EdgeId(0);
    /// `F1 → F2`
    pub const F1_F2: EdgeId = EdgeId(1);
    /// `F2 → F3`
    pub const F2_F3: EdgeId = EdgeId(2);
    /// `F3 → f`
    pub const F3_F: EdgeId = EdgeId(3);
    /// `f → m`, the "top" channel (γ = α)
    pub const TOP: EdgeId = EdgeId(4);
    /// `f → m`, the "bottom" bypass (γ = 1 − α)
    pub const BOTTOM: EdgeId = EdgeId(5);
}

/// Tokens/buffers per edge, in [`edge`] order.
fn build(alpha: f64, r0: [i64; 6], r: [i64; 6]) -> Rrg {
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "branch probability α must lie strictly between 0 and 1"
    );
    let mut b = RrgBuilder::new();
    let m = b.add_early("m", 0.0);
    let f1 = b.add_simple("F1", 1.0);
    let f2 = b.add_simple("F2", 1.0);
    let f3 = b.add_simple("F3", 1.0);
    let f = b.add_simple("f", 0.0);
    let edges = [(m, f1), (f1, f2), (f2, f3), (f3, f), (f, m), (f, m)];
    let mut ids = Vec::new();
    for (i, (u, v)) in edges.into_iter().enumerate() {
        ids.push(b.add_edge(u, v, r0[i], r[i]));
    }
    b.set_gamma(ids[4], alpha);
    b.set_gamma(ids[5], 1.0 - alpha);
    b.build().expect("figure graphs are valid by construction")
}

/// Figure 1(a): the original system. Cycle time 3 (critical path
/// `F1,F2,F3,f,m`), throughput 1, effective cycle time 3.
pub fn figure_1a(alpha: f64) -> Rrg {
    build(alpha, [1, 0, 0, 0, 3, 0], [1, 0, 0, 0, 3, 0])
}

/// Figure 1(b): one retiming move (the `m→F1` token moves to `F1→F2`)
/// plus two bubbles, on `F2→F3` and on the bottom bypass. Cycle time 1;
/// late throughput 1/3; early-evaluation throughput ≈ 0.491 at α = 0.5 and
/// ≈ 0.719 at α = 0.9 (the paper's Markov-chain values, which this exact
/// placement reproduces — a bubble on `F3→f` instead would give 0.484 and
/// 0.632).
pub fn figure_1b(alpha: f64) -> Rrg {
    build(alpha, [0, 1, 0, 0, 3, 0], [0, 1, 1, 0, 3, 1])
}

/// Figure 2: the optimal retiming & recycling configuration with early
/// evaluation. The bottom bypass carries two anti-tokens; throughput is
/// `1/(3 − 2α)` and the cycle time is 1.
pub fn figure_2(alpha: f64) -> Rrg {
    build(alpha, [1, 1, 1, 0, 1, -2], [1, 1, 1, 0, 1, 0])
}

/// The node ids of the figure graphs, in construction order
/// `(m, F1, F2, F3, f)`.
pub fn figure_nodes() -> (NodeId, NodeId, NodeId, NodeId, NodeId) {
    (NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4))
}

/// A pipelined generalisation of Figure 1(b): `lens.len()` stages in a
/// ring, where stage `i` is a mux `m_i` (the only early node of the
/// stage) feeding a chain of `lens[i]` unit-delay blocks that ends in a
/// zero-delay block `f_i`, and `f_i` feeds the next stage's mux through
/// two parallel channels — a "top" channel with three tokens in three EBs
/// (γ = α) and an empty-EB "bottom" bypass (γ = 1 − α). Stage chains use
/// Figure 1(b)'s placement: a token on the first chain edge, bubbles
/// after.
///
/// Every stage multiplies the number of reachable anti-token/queue
/// patterns, so the Markov state space grows geometrically with the
/// stage count — the scaling workload for `rr-markov`'s sparse solver
/// (2 stages of length 3 ≈ 2.5k states, 2×5 ≈ 28k, 3×3 ≈ 255k).
///
/// # Panics
///
/// Panics if `lens` is empty, any length is 0, or α ∉ (0, 1).
pub fn figure_1b_pipeline(lens: &[usize], alpha: f64) -> Rrg {
    assert!(!lens.is_empty(), "need at least one stage");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "branch probability α must lie strictly between 0 and 1"
    );
    let mut b = RrgBuilder::new();
    let mut muxes = Vec::new();
    let mut fs = Vec::new();
    for (i, &len) in lens.iter().enumerate() {
        assert!(len >= 1, "stage {i} has no blocks");
        let m = b.add_early(format!("m{i}"), 0.0);
        let mut prev = m;
        for j in 0..len {
            let fj = b.add_simple(format!("F{i}_{j}"), 1.0);
            let (tokens, buffers) = if j == 0 { (1, 1) } else { (0, 1) };
            b.add_edge(prev, fj, tokens, buffers);
            prev = fj;
        }
        let f = b.add_simple(format!("f{i}"), 0.0);
        b.add_edge(prev, f, 0, 0);
        muxes.push(m);
        fs.push(f);
    }
    for i in 0..lens.len() {
        let m = muxes[(i + 1) % lens.len()];
        let top = b.add_edge(fs[i], m, 3, 3);
        let bottom = b.add_edge(fs[i], m, 0, 1);
        b.set_gamma(top, alpha);
        b.set_gamma(bottom, 1.0 - alpha);
    }
    b.build()
        .expect("pipeline graphs are valid by construction")
}

/// Closed-form throughput of Figure 2 derived from its Markov chain in the
/// paper: `Θ = 1/(3 − 2α)`.
pub fn figure_2_throughput(alpha: f64) -> f64 {
    1.0 / (3.0 - 2.0 * alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_sums_match_the_paper() {
        // "the total sum of tokens is an invariant and is equal to four for
        //  the top cycle and to one (3 − 2) for the bottom cycle"
        for g in [figure_1a(0.5), figure_1b(0.5), figure_2(0.5)] {
            let t = |e: crate::EdgeId| g.edge(e).tokens();
            let shared = t(edge::M_F1) + t(edge::F1_F2) + t(edge::F2_F3) + t(edge::F3_F);
            assert_eq!(shared + t(edge::TOP), 4, "top cycle sum");
            assert_eq!(shared + t(edge::BOTTOM), 1, "bottom cycle sum");
        }
    }

    #[test]
    fn early_node_is_the_mux() {
        let g = figure_1a(0.3);
        let (m, ..) = figure_nodes();
        assert!(g.node(m).is_early());
        assert_eq!(g.num_early(), 1);
        assert_eq!(g.num_simple(), 4);
    }

    #[test]
    fn gamma_assignment() {
        let g = figure_1b(0.9);
        assert_eq!(g.edge(edge::TOP).gamma(), Some(0.9));
        assert!((g.edge(edge::BOTTOM).gamma().unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn figure_2_has_anti_tokens() {
        let g = figure_2(0.5);
        assert_eq!(g.edge(edge::BOTTOM).tokens(), -2);
        assert_eq!(g.edge(edge::BOTTOM).buffers(), 0);
    }

    #[test]
    fn figure_1b_has_two_bubbles() {
        let g = figure_1b(0.5);
        let total: i64 = g.edges().map(|(_, e)| e.bubbles()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    #[should_panic(expected = "between 0 and 1")]
    fn degenerate_alpha_rejected() {
        figure_1a(1.0);
    }

    #[test]
    fn closed_form_matches_paper_examples() {
        // α = 0.9 → Θ = 5/6 ≈ 0.833
        assert!((figure_2_throughput(0.9) - 5.0 / 6.0).abs() < 1e-12);
    }
}
