//! Property tests for the RRG invariants the rest of the workspace builds
//! on:
//!
//! * generated graphs satisfy their advertised contract,
//! * retiming preserves the token sum of every directed cycle (checked via
//!   liveness + the potential-difference test in `Config::validate`),
//! * recycling (adding bubbles) keeps configurations valid,
//! * the cycle time never increases when buffers are added.

use proptest::prelude::*;

use crate::config::Config;
use crate::cycle_time;
use crate::generate::{check_generated, GeneratorParams};

fn params_strategy() -> impl Strategy<Value = (GeneratorParams, u64)> {
    (2usize..20, 0usize..5, 0usize..30, any::<u64>()).prop_map(|(ns, ne, extra, seed)| {
        let n = ns + ne;
        (
            GeneratorParams::paper_defaults(ns, ne, n + ne + extra),
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generator_contract((p, seed) in params_strategy()) {
        let g = p.generate(seed);
        prop_assert!(check_generated(&g, &p).is_ok());
    }

    #[test]
    fn retiming_preserves_liveness_and_cycle_sums(
        (p, seed) in params_strategy(),
        rbits in proptest::collection::vec(-3i64..=3, 64),
    ) {
        let g = p.generate(seed);
        let r: Vec<i64> = (0..g.num_nodes()).map(|i| rbits[i % rbits.len()]).collect();
        let c = Config::from_retiming(&g, &r);
        // from_retiming uses minimal buffers; the configuration must be a
        // valid RC of g (liveness is preserved because cycle sums are).
        prop_assert!(c.validate(&g).is_ok(), "{:?}", c.validate(&g));
    }

    #[test]
    fn recycling_keeps_configs_valid(
        (p, seed) in params_strategy(),
        bubbles in proptest::collection::vec(0i64..3, 64),
    ) {
        let g = p.generate(seed);
        let mut c = Config::initial(&g);
        for (i, &extra) in bubbles.iter().enumerate().take(g.num_edges()) {
            c.buffers[i] += extra;
        }
        prop_assert!(c.validate(&g).is_ok());
        // Bubble bookkeeping is consistent.
        let total: i64 = (0..g.num_edges())
            .map(|i| c.buffers[i] - c.tokens[i].max(0))
            .sum();
        prop_assert_eq!(total, c.total_bubbles());
    }

    #[test]
    fn adding_buffers_never_increases_cycle_time(
        (p, seed) in params_strategy(),
        extra_edge in any::<prop::sample::Index>(),
    ) {
        let g = p.generate(seed);
        let base: Vec<i64> = g.edges().map(|(_, e)| e.buffers()).collect();
        let tau0 = cycle_time::cycle_time_with(&g, &base).unwrap();
        let mut more = base.clone();
        let idx = extra_edge.index(more.len());
        more[idx] += 1;
        let tau1 = cycle_time::cycle_time_with(&g, &more).unwrap();
        prop_assert!(tau1 <= tau0 + 1e-12, "tau grew from {tau0} to {tau1}");
    }

    #[test]
    fn critical_path_is_a_real_combinational_path((p, seed) in params_strategy()) {
        let g = p.generate(seed);
        let cp = cycle_time::critical_path(&g).unwrap();
        // Delay equals the sum of the node delays on the reported path.
        let sum: f64 = cp.nodes.iter().map(|&n| g.node(n).delay()).sum();
        prop_assert!((sum - cp.delay).abs() < 1e-9);
        // Consecutive nodes are joined by a bufferless edge.
        for w in cp.nodes.windows(2) {
            let ok = g.out_edges(w[0]).iter().any(|&e| {
                g.edge(e).target() == w[1] && g.edge(e).buffers() == 0
            });
            prop_assert!(ok, "no combinational edge between {:?} and {:?}", w[0], w[1]);
        }
    }
}
