//! RRG well-formedness checks (the side conditions of Definition 2.1).

use std::error::Error;
use std::fmt;

use crate::algo;
use crate::rrg::{EdgeId, NodeId, NodeKind, Rrg};

/// Violations of the RRG definition.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateError {
    /// An edge references a node that does not exist.
    DanglingEndpoint { edge: EdgeId },
    /// `R(e) < max(R0(e), 0)`: more tokens than buffers.
    BuffersBelowTokens {
        edge: EdgeId,
        tokens: i64,
        buffers: i64,
    },
    /// Negative buffer count.
    NegativeBuffers { edge: EdgeId, buffers: i64 },
    /// A directed cycle whose token sum is ≤ 0 (deadlock).
    DeadCycle { edges: Vec<EdgeId> },
    /// γ missing on an input edge of an early-evaluation node while other
    /// inputs have γ assigned.
    MissingGamma { node: NodeId, edge: EdgeId },
    /// γ values of an early node do not sum to 1.
    GammaNotNormalized { node: NodeId, sum: f64 },
    /// γ outside (0, 1].
    GammaOutOfRange { edge: EdgeId, gamma: f64 },
    /// An early-evaluation node with fewer than two inputs (early
    /// evaluation is meaningless there).
    EarlyWithoutChoice { node: NodeId },
    /// A node delay is negative or NaN.
    BadDelay { node: NodeId, delay: f64 },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::DanglingEndpoint { edge } => {
                write!(f, "edge {edge} references a missing node")
            }
            ValidateError::BuffersBelowTokens {
                edge,
                tokens,
                buffers,
            } => write!(
                f,
                "edge {edge} holds {tokens} tokens in only {buffers} buffers"
            ),
            ValidateError::NegativeBuffers { edge, buffers } => {
                write!(f, "edge {edge} has negative buffer count {buffers}")
            }
            ValidateError::DeadCycle { edges } => write!(
                f,
                "cycle through {} edges carries no tokens and can never fire",
                edges.len()
            ),
            ValidateError::MissingGamma { node, edge } => write!(
                f,
                "early node {node} has γ on some inputs but not on edge {edge}"
            ),
            ValidateError::GammaNotNormalized { node, sum } => {
                write!(f, "γ probabilities of node {node} sum to {sum}, not 1")
            }
            ValidateError::GammaOutOfRange { edge, gamma } => {
                write!(f, "γ of edge {edge} is {gamma}, outside (0, 1]")
            }
            ValidateError::EarlyWithoutChoice { node } => {
                write!(f, "early-evaluation node {node} has fewer than two inputs")
            }
            ValidateError::BadDelay { node, delay } => {
                write!(f, "node {node} has invalid delay {delay}")
            }
        }
    }
}

impl Error for ValidateError {}

/// Tolerance for γ normalisation.
pub const GAMMA_TOL: f64 = 1e-6;

/// Checks all RRG invariants; used by [`RrgBuilder::build`](crate::RrgBuilder::build)
/// and available for re-validating transformed graphs.
///
/// # Errors
///
/// The first violation found, see [`ValidateError`].
pub fn validate(g: &Rrg) -> Result<(), ValidateError> {
    for (id, n) in g.nodes() {
        // NaN delays must be rejected too, hence the explicit is_nan.
        if n.delay() < 0.0 || n.delay().is_nan() {
            return Err(ValidateError::BadDelay {
                node: id,
                delay: n.delay(),
            });
        }
    }
    for (id, e) in g.edges() {
        if e.buffers() < 0 {
            return Err(ValidateError::NegativeBuffers {
                edge: id,
                buffers: e.buffers(),
            });
        }
        if e.buffers() < e.tokens() {
            return Err(ValidateError::BuffersBelowTokens {
                edge: id,
                tokens: e.tokens(),
                buffers: e.buffers(),
            });
        }
    }
    for (id, n) in g.nodes() {
        if n.kind() != NodeKind::EarlyEval {
            continue;
        }
        let ins = g.in_edges(id);
        if ins.len() < 2 {
            return Err(ValidateError::EarlyWithoutChoice { node: id });
        }
        let mut sum = 0.0;
        for &e in ins {
            match g.edge(e).gamma() {
                None => return Err(ValidateError::MissingGamma { node: id, edge: e }),
                Some(p) if p <= 0.0 || p > 1.0 + GAMMA_TOL => {
                    return Err(ValidateError::GammaOutOfRange { edge: e, gamma: p })
                }
                Some(p) => sum += p,
            }
        }
        if (sum - 1.0).abs() > GAMMA_TOL {
            return Err(ValidateError::GammaNotNormalized { node: id, sum });
        }
    }
    if let Some(cycle) = algo::find_dead_cycle(g) {
        return Err(ValidateError::DeadCycle { edges: cycle });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RrgBuilder;

    #[test]
    fn early_node_needs_two_inputs() {
        let mut b = RrgBuilder::new();
        let m = b.add_early("m", 0.0);
        let f = b.add_simple("f", 1.0);
        b.add_edge(f, m, 1, 1);
        b.add_edge(m, f, 1, 1);
        assert!(matches!(
            b.build(),
            Err(ValidateError::EarlyWithoutChoice { .. })
        ));
    }

    #[test]
    fn gamma_must_normalise() {
        let mut b = RrgBuilder::new();
        let m = b.add_early("m", 0.0);
        let f = b.add_simple("f", 1.0);
        let e1 = b.add_edge(f, m, 1, 1);
        let e2 = b.add_edge(f, m, 1, 1);
        b.add_edge(m, f, 1, 1);
        b.set_gamma(e1, 0.6).set_gamma(e2, 0.6);
        assert!(matches!(
            b.build(),
            Err(ValidateError::GammaNotNormalized { .. })
        ));
    }

    #[test]
    fn gamma_range_enforced() {
        let mut b = RrgBuilder::new();
        let m = b.add_early("m", 0.0);
        let f = b.add_simple("f", 1.0);
        let e1 = b.add_edge(f, m, 1, 1);
        let e2 = b.add_edge(f, m, 1, 1);
        b.add_edge(m, f, 1, 1);
        b.set_gamma(e1, 0.0).set_gamma(e2, 1.0);
        assert!(matches!(
            b.build(),
            Err(ValidateError::GammaOutOfRange { .. })
        ));
    }

    #[test]
    fn anti_token_cycles_must_stay_live() {
        // Cycle with sum 3 - 4 = -1 is dead even though one edge has many
        // tokens.
        let mut b = RrgBuilder::new();
        let a = b.add_simple("a", 1.0);
        let c = b.add_simple("c", 1.0);
        b.add_edge(a, c, 3, 3);
        b.add_edge(c, a, -4, 0);
        assert!(matches!(b.build(), Err(ValidateError::DeadCycle { .. })));
    }

    #[test]
    fn display_messages_are_informative() {
        let err = ValidateError::GammaNotNormalized {
            node: crate::NodeId(3),
            sum: 1.2,
        };
        let msg = err.to_string();
        assert!(msg.contains("n3") && msg.contains("1.2"));
    }
}
